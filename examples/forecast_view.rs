//! Forecast views: probabilistic statements about the *future* of a series
//! (an extension of the paper's machinery — same ARMA+GARCH fit, pushed k
//! steps ahead).
//!
//! Run with: `cargo run --release --example forecast_view`

use tspdb::core::horizon::{forecast_view, prob_exceeds_at};
use tspdb::timeseries::generate::TemperatureGenerator;
use tspdb::{MetricConfig, OmegaSpec};

fn main() {
    // Recent history: the last 3 hours of 2-minute temperature readings.
    let series = TemperatureGenerator::default().generate(400);
    let window = &series.values()[series.len() - 90..];
    let now = *window.last().unwrap();
    println!(
        "current reading: {now:.2} degC (window of {} samples)",
        window.len()
    );

    let cfg = MetricConfig::default();

    // A probabilistic forecast view: Omega lattice per future step.
    let omega = OmegaSpec::new(0.5, 8).expect("omega");
    let views = forecast_view(window, &cfg, 15, omega).expect("forecast view");
    println!("\nforecast view (every 3rd step, 2-minute ticks):");
    println!(
        "{:>6} {:>9} {:>8}   most probable 0.5-degC range",
        "step", "r_hat", "sigma"
    );
    for v in views.iter().step_by(3) {
        let best = v
            .values
            .iter()
            .max_by(|a, b| a.rho.partial_cmp(&b.rho).unwrap())
            .unwrap();
        println!(
            "{:>6} {:>9.2} {:>8.3}   [{:.2}, {:.2}] with p = {:.3}",
            v.steps_ahead, v.expected, v.sigma, best.lo, best.hi, best.rho
        );
    }

    // Monitoring-style exceedance queries.
    println!("\nexceedance probabilities:");
    for (label, threshold) in [
        ("+0.5 degC above now", now + 0.5),
        ("+1.0 degC above now", now + 1.0),
        ("+2.0 degC above now", now + 2.0),
    ] {
        let p10 = prob_exceeds_at(window, &cfg, 10, threshold).expect("exceedance");
        println!("  P(r exceeds {label} in 20 minutes) = {p10:.3}");
    }

    println!(
        "\nnote how sigma grows with the horizon — the predictive density \
         widens as the GARCH variance path accumulates (see core::horizon)."
    );
}
