//! Online mode: streaming probability-view generation over a GPS feed.
//!
//! The paper's framework works online ("the dynamic density metrics infer
//! p_t(R_t) as soon as a new value r_t is streamed to the system"). This
//! example pushes the car-data stream through the online Ω-view builder
//! twice — once computing every tuple directly, once through the adaptive
//! σ-cache — and reports the speedup and cache behaviour.
//!
//! Run with: `cargo run --release --example streaming_online`

use std::time::Instant;
use tspdb::core::online::OnlineViewBuilder;
use tspdb::timeseries::generate::GpsGenerator;
use tspdb::{MetricConfig, MetricKind, OmegaSpec};

fn run(label: &str, cache: Option<f64>, omega: OmegaSpec) -> (std::time::Duration, usize) {
    let series = GpsGenerator::default().generate(2500);
    let mut builder = OnlineViewBuilder::new(
        MetricKind::VariableThresholding, // cheap inference isolates generation cost
        MetricConfig {
            p: 1,
            q: 0,
            ..MetricConfig::default()
        },
        40,
        omega,
        cache,
    )
    .expect("builder");

    let started = Instant::now();
    let mut emitted = 0usize;
    let mut mass_check = 0.0f64;
    for obs in series.iter() {
        if let Some(row) = builder.push(obs.time, obs.value).expect("push") {
            emitted += 1;
            mass_check += row.values.iter().map(|v| v.rho).sum::<f64>();
        }
    }
    let elapsed = started.elapsed();
    println!(
        "{label:<18} emitted {emitted} rows in {elapsed:?} (avg mass {:.3})",
        mass_check / emitted as f64
    );
    if let Some(stats) = builder.cache_stats() {
        println!(
            "{:<18} cache: {} hits, {} misses",
            "", stats.hits, stats.misses
        );
    }
    (elapsed, emitted)
}

fn main() {
    // A fine lattice makes per-tuple CDF work dominate — the regime the
    // σ-cache is built for.
    let omega = OmegaSpec::new(0.5, 400).expect("omega");

    println!("streaming 2500 GPS observations, Omega lattice n = 400:\n");
    let (naive, n1) = run("direct (no cache)", None, omega);
    let (cached, n2) = run("adaptive σ-cache", Some(0.01), omega);
    assert_eq!(n1, n2);

    let speedup = naive.as_secs_f64() / cached.as_secs_f64();
    println!("\nspeedup from the adaptive σ-cache: {speedup:.1}x");
    println!(
        "(the offline σ-cache of Fig. 14a achieves ~10x on the full campus \
         workload; see `cargo run -p tspdb-bench --bin experiments -- fig14a`)"
    );
}
