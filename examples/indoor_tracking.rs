//! Indoor tracking — the paper's motivating example (Fig. 1).
//!
//! Alice walks through a 2×2 grid of rooms while an indoor positioning
//! system reports noisy (x, y) coordinates. We infer a density per axis
//! with the ARMA-GARCH metric, integrate it over each room's extent, and
//! materialise the `prob_view` table of Fig. 1: `⟨time, room, probability⟩`.
//! The most-probable-room query is scored against the ground truth, and the
//! temporal-window clause buckets the trace into fixed-width windows to
//! report per-window event probabilities (`GROUP BY WINDOW(time, w)`),
//! exact and Monte-Carlo.
//!
//! Run with: `cargo run --release --example indoor_tracking`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tspdb::core::metrics::{ArmaGarch, DynamicDensityMetric};
use tspdb::probdb::query::{most_probable_per_group, threshold};
use tspdb::probdb::{ColumnType, ProbTable, Schema, Value};
use tspdb::MetricConfig;

/// Room layout: a 2×2 grid, each room 10 m × 10 m (ids match Fig. 1).
const ROOMS: [(i64, f64, f64, f64, f64); 4] = [
    (1, 0.0, 10.0, 0.0, 10.0),   // room 1: lower-left
    (2, 10.0, 20.0, 0.0, 10.0),  // room 2: lower-right
    (3, 0.0, 10.0, 10.0, 20.0),  // room 3: upper-left
    (4, 10.0, 20.0, 10.0, 20.0), // room 4: upper-right
];

fn room_of(x: f64, y: f64) -> i64 {
    for (id, xl, xu, yl, yu) in ROOMS {
        if x >= xl && x < xu && y >= yl && y < yu {
            return id;
        }
    }
    // Outside the grid — attribute to the nearest room edgewise.
    if x < 10.0 {
        if y < 10.0 {
            1
        } else {
            3
        }
    } else if y < 10.0 {
        2
    } else {
        4
    }
}

/// A 2-D position sample.
type Point = (f64, f64);

/// Simulates Alice's walk: a waypoint-seeking stroll with positioning
/// noise. Returns (true positions, measured positions).
fn simulate_walk(steps: usize, seed: u64) -> (Vec<Point>, Vec<Point>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pos: Point = (5.0, 5.0); // start in room 1
    let mut waypoint: Point = (15.0, 5.0);
    let mut truth = Vec::with_capacity(steps);
    let mut measured = Vec::with_capacity(steps);
    for _ in 0..steps {
        // Head toward the waypoint; pick a new one on arrival.
        let dx = waypoint.0 - pos.0;
        let dy = waypoint.1 - pos.1;
        let dist = (dx * dx + dy * dy).sqrt();
        if dist < 0.8 {
            waypoint = (rng.gen_range(1.0..19.0), rng.gen_range(1.0..19.0));
        } else {
            let speed = 0.35;
            pos.0 += speed * dx / dist + rng.gen_range(-0.05..0.05);
            pos.1 += speed * dy / dist + rng.gen_range(-0.05..0.05);
        }
        truth.push(pos);
        // Indoor positioning error: ~1.2 m per axis.
        measured.push((
            pos.0 + rng.gen_range(-1.2..1.2),
            pos.1 + rng.gen_range(-1.2..1.2),
        ));
    }
    (truth, measured)
}

fn main() {
    let steps = 400;
    let h = 60;
    let (truth, measured) = simulate_walk(steps, 7);

    let xs: Vec<f64> = measured.iter().map(|p| p.0).collect();
    let ys: Vec<f64> = measured.iter().map(|p| p.1).collect();

    let cfg = MetricConfig {
        p: 2,
        q: 0,
        ..MetricConfig::default()
    };
    let mut metric_x = ArmaGarch::new(cfg).expect("metric");
    let mut metric_y = ArmaGarch::new(cfg).expect("metric");

    // Build the Fig. 1 prob_view: for each t, P(room i) = P(x ∈ room_x) ·
    // P(y ∈ room_y) under the independence of the two axis densities.
    let schema = Schema::of(&[("time", ColumnType::Int), ("room", ColumnType::Int)]);
    let mut prob_view = ProbTable::new("prob_view", schema);
    for t in h..steps {
        let dx = match metric_x.infer(&xs[t - h..t]) {
            Ok(inf) => inf.density,
            Err(_) => continue,
        };
        let dy = match metric_y.infer(&ys[t - h..t]) {
            Ok(inf) => inf.density,
            Err(_) => continue,
        };
        for (id, xl, xu, yl, yu) in ROOMS {
            let p = dx.prob_in(xl, xu) * dy.prob_in(yl, yu);
            prob_view
                .insert(
                    vec![Value::Int(t as i64), Value::Int(id)],
                    p.clamp(0.0, 1.0),
                )
                .unwrap();
        }
    }

    println!("prob_view (paper Fig. 1), first two timestamps:");
    print!("{}", prob_view.render(8));

    // "Where is Alice?" — the most probable room per timestamp.
    let best = most_probable_per_group(&prob_view, "time").expect("argmax query");
    let mut correct = 0usize;
    let mut total = 0usize;
    for (row, _) in best.iter() {
        let t = row[0].as_i64().unwrap() as usize;
        let predicted = row[1].as_i64().unwrap();
        let actual = room_of(truth[t].0, truth[t].1);
        total += 1;
        if predicted == actual {
            correct += 1;
        }
    }
    println!(
        "\nmost-probable-room accuracy vs ground truth: {:.1}% over {} timestamps",
        100.0 * correct as f64 / total as f64,
        total
    );

    // A threshold query: moments where we are ≥ 90% sure of the room.
    let confident = threshold(&prob_view, 0.9).expect("threshold query");
    println!(
        "tuples with probability ≥ 0.9: {} (of {})",
        confident.len(),
        prob_view.len()
    );

    // Room occupancy as expected time: Σ_t P(room, t), by linearity.
    println!("\nexpected timestamps spent per room:");
    for (id, ..) in ROOMS {
        let mass: f64 = prob_view
            .iter()
            .filter(|(row, _)| row[1].as_i64() == Some(id))
            .map(|(_, p)| p)
            .sum();
        println!("  room {id}: {mass:.1}");
    }

    // Temporal windows through the SQL planner: bucket the trace into
    // 50-timestep windows and ask, per window, how many room-2 sightings
    // we expect and how likely at least five are. The bucket start is the
    // first result column; HAVING reports P(count ≥ 5) per bucket.
    let mut db = tspdb::probdb::Database::new();
    db.register_prob_table(prob_view.clone())
        .expect("register the view");
    let windowed = db
        .query(
            "SELECT COUNT(*) FROM prob_view WHERE room = 2 \
             GROUP BY WINDOW(time, 50) HAVING COUNT(*) >= 5",
        )
        .expect("windowed aggregate");
    println!("\nper-50-step windows, room 2 — E[count] and P(count ≥ 5):");
    print!("{}", windowed.aggregate().expect("aggregate result"));

    // The same buckets under Monte-Carlo evaluation: an independent code
    // path (per-bucket seeded possible-world sampling) that must agree.
    let mc = db
        .query(
            "SELECT COUNT(*) FROM prob_view WHERE room = 2 \
             GROUP BY WINDOW(time, 50) HAVING COUNT(*) >= 5 \
             WITH WORLDS 20000 SEED 1",
        )
        .expect("windowed MC aggregate");
    println!("Monte-Carlo cross-check (20000 worlds per bucket):");
    print!("{}", mc.aggregate().expect("aggregate result"));
}
