//! Concurrent read path: one `SharedEngine`, many query threads.
//!
//! Builds a probabilistic view once, then serves `SELECT`s from eight
//! threads in parallel while a writer registers new relations — the
//! server-shaped workload the lock-free read path exists for.
//!
//! Run with: `cargo run --release --example concurrent_queries`

use std::time::Instant;
use tspdb::timeseries::generate::TemperatureGenerator;
use tspdb::{MetricConfig, SharedEngine, ViewBuilderConfig};

fn main() {
    let series = TemperatureGenerator::default().generate(360);
    let engine = SharedEngine::new(ViewBuilderConfig {
        window: 60,
        metric_config: MetricConfig {
            p: 1,
            ..MetricConfig::default()
        },
        ..ViewBuilderConfig::default()
    });
    engine
        .load_series("raw_values", "r", &series)
        .expect("load raw_values");

    // Build the Ω-view once; the build itself fans out over window
    // segments (ViewBuilderConfig::threads = 0 → one worker per core).
    let built_at = Instant::now();
    engine
        .execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.25, n=12 FROM raw_values")
        .expect("create density view");
    let lb = engine.last_build().expect("build diagnostics");
    println!(
        "built view `pv`: {} model rows, {} tuples, {} worker thread(s), {:?}",
        lb.built.model.len(),
        lb.built.model.len() * 12,
        lb.built.threads_used,
        built_at.elapsed(),
    );

    // Eight readers hammer the view concurrently; a ninth thread mutates
    // the catalog at the same time. Readers share the lock, the writer
    // briefly excludes them — nobody blocks on the σ-cache or the view.
    let started = Instant::now();
    let total: usize = std::thread::scope(|s| {
        let readers: Vec<_> = (0..8)
            .map(|worker| {
                let engine = engine.clone();
                s.spawn(move || {
                    let mut rows_seen = 0usize;
                    for round in 0..50 {
                        let sql = match (worker + round) % 3 {
                            0 => "SELECT * FROM pv WHERE prob >= 0.15",
                            1 => "SELECT t, lambda FROM pv ORDER BY prob DESC LIMIT 25",
                            _ => "SELECT * FROM pv WHERE lambda >= 0 AND prob >= 0.05",
                        };
                        let out = engine.query(sql).expect("select");
                        rows_seen += out.prob_rows().map_or(0, |t| t.len());
                    }
                    rows_seen
                })
            })
            .collect();
        let writer = {
            let engine = engine.clone();
            s.spawn(move || {
                engine
                    .execute("CREATE TABLE audit_log (at INT)")
                    .expect("create table");
                engine
                    .execute("INSERT INTO audit_log VALUES (1), (2), (3)")
                    .expect("insert");
            })
        };
        writer.join().expect("writer thread");
        readers
            .into_iter()
            .map(|r| r.join().expect("reader thread"))
            .sum()
    });
    println!(
        "8 readers × 50 SELECTs returned {total} tuples in {:?} (writer interleaved)",
        started.elapsed()
    );

    let audit = engine
        .query("SELECT * FROM audit_log")
        .expect("read writer's table");
    println!(
        "writer's table visible to readers: {} rows",
        audit.rows().map_or(0, |t| t.len())
    );
}
