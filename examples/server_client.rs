//! The wire protocol end to end: every `QueryOutput` variant over TCP,
//! byte-identical to in-process execution.
//!
//! The example drives one statement script twice — through a
//! [`tspdb_client::Client`] against a running server, and through a local
//! in-process [`tspdb::Engine`] mirror — and asserts that each response
//! crosses the wire **byte for byte** identical to the in-process result
//! (Monte-Carlo results compare by their bit-exact fingerprint, which
//! excludes only wall-clock time). Prepared statements then replay the
//! hot `SELECT`s through the plan-once/execute-many path.
//!
//! By default the example spawns its own server on an ephemeral loopback
//! port. Set `PROBDB_SERVER_ADDR=host:port` to target an external
//! `probdb-server` instead (the CI smoke job does this); the server must
//! run the demo configuration (`tspdb_server::demo_config`) for the
//! density-view builds to match the local mirror.

use tspdb_client::Client;
use tspdb_server::{demo_config, demo_insert_statement, Server, ServerConfig};
use tspdb_wire::canonical_result_bytes;

/// The statement script: DDL + data, then one statement per result shape.
const SETUP: &[&str] = &[
    "CREATE TABLE wire_raw (t INT, r FLOAT)",
    // Rows are inserted as literals below so the server and the local
    // mirror see the exact same values.
    "CREATE VIEW wire_pv AS DENSITY r OVER t OMEGA delta=0.1, n=6 \
     FROM wire_raw WHERE t >= 45 USING METRIC vt WINDOW 40",
];

const QUERIES: &[(&str, &str)] = &[
    (
        "Rows",
        "SELECT t, r FROM wire_raw WHERE t >= 55 ORDER BY r DESC",
    ),
    (
        "ProbRows",
        "SELECT * FROM wire_pv WHERE prob >= 0.05 TOP 10",
    ),
    ("Worlds", "SELECT * FROM wire_pv WITH WORLDS 2000 SEED 42"),
    (
        "Aggregate",
        "SELECT t, COUNT(*), SUM(lambda) FROM wire_pv GROUP BY t HAVING COUNT(*) >= 2",
    ),
    (
        "Explain",
        "EXPLAIN SELECT t, COUNT(*) FROM wire_pv GROUP BY t WITH WORLDS 500 SEED 7",
    ),
];

fn main() {
    // Either an external server (CI smoke) or one spawned right here.
    let external = std::env::var("PROBDB_SERVER_ADDR").ok();
    let handle = if external.is_none() {
        let server = Server::bind(
            "127.0.0.1:0",
            tspdb::SharedEngine::new(demo_config()),
            ServerConfig::default(),
        )
        .expect("bind ephemeral loopback port");
        Some(server.spawn().expect("start server threads"))
    } else {
        None
    };
    let addr = external
        .clone()
        .unwrap_or_else(|| handle.as_ref().unwrap().addr().to_string());

    let mut client = Client::connect(&addr).expect("connect to server");
    println!("connected to {} at {addr}", client.server_info());

    // The in-process mirror executes the identical script locally.
    let mut mirror = tspdb::Engine::new(demo_config());

    let mut script: Vec<String> = vec![
        SETUP[0].to_string(),
        demo_insert_statement("wire_raw"),
        SETUP[1].to_string(),
    ];
    script.extend(QUERIES.iter().map(|(_, sql)| sql.to_string()));

    let mut seen = Vec::new();
    for sql in &script {
        let over_wire = match client.query(sql) {
            Ok(out) => out,
            Err(e) => panic!("server rejected {sql:?}: {e}"),
        };
        let in_process = mirror.execute(sql).expect("mirror executes the script");
        assert_eq!(
            canonical_result_bytes(&over_wire),
            canonical_result_bytes(&in_process),
            "wire and in-process results diverge for {sql:?}"
        );
        seen.push(over_wire.variant_name());
        println!("  ok [{:>9}] {}", over_wire.variant_name(), sql);
    }
    for expected in ["Rows", "ProbRows", "Worlds", "Aggregate", "Explain"] {
        assert!(
            seen.contains(&expected),
            "script never produced a {expected} result"
        );
    }

    // Prepared statements: plan once, execute many — every replay must
    // match the ad-hoc result bit for bit.
    for (name, sql) in QUERIES {
        let ad_hoc = canonical_result_bytes(&client.query(sql).expect("ad-hoc query"));
        let stmt = client.prepare(sql).expect("prepare");
        for _ in 0..3 {
            let replay = canonical_result_bytes(&client.execute(stmt).expect("execute prepared"));
            assert_eq!(replay, ad_hoc, "prepared replay diverged for {name}");
        }
        client.close_statement(stmt).expect("close statement");
    }
    println!("  ok prepared statements replay bit-identically (3× each)");

    // Session-scoped MC parallelism: a different fork-join width must not
    // change a single bit of the estimate.
    let base = canonical_result_bytes(&client.query(QUERIES[2].1).expect("MC query"));
    client.set_worlds_threads(4).expect("set worlds threads");
    let wide = canonical_result_bytes(&client.query(QUERIES[2].1).expect("MC query at width 4"));
    assert_eq!(base, wide, "worlds-thread override changed the estimate");
    println!("  ok session worlds-thread override is latency-only");

    // Leave an external server the way we found it.
    client.query("DROP VIEW wire_pv").expect("drop view");
    client.query("DROP TABLE wire_raw").expect("drop table");
    client.close().expect("clean close");
    if let Some(handle) = handle {
        handle.shutdown();
    }
    println!("all five QueryOutput variants round-tripped byte-identically");
}
