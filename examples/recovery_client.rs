//! The crash-recovery smoke driver: load a deterministic dataset into a
//! persistent `probdb-server`, then fingerprint a fixed query battery.
//!
//! ```text
//! PROBDB_SERVER_ADDR=host:port cargo run --example recovery_client -- load
//! PROBDB_SERVER_ADDR=host:port cargo run --example recovery_client -- probe
//! ```
//!
//! * `load` — create a table, insert deterministic literal rows and build
//!   a density view over them. Idempotent-unsafe by design: loading twice
//!   fails on the duplicate table, which is exactly what the smoke job
//!   wants (a recovered server must already hold the data).
//! * `dirty` — append fresh deterministic rows to the raw table, so the
//!   next boot's checkpoint has append pages to shadow-write (the CI job
//!   kills the server *inside* that checkpoint via
//!   `TSPDB_CHECKPOINT_HOLD_MS`).
//! * `probe` — run the query battery and print one
//!   `<label><TAB><fingerprint>` line per query, where the fingerprint
//!   hashes the canonical wire bytes of the result. The CI recovery-smoke
//!   job probes before a `kill -9` and again after reboot and diffs the
//!   two transcripts — recovery must be **bit-identical**, not merely
//!   row-count-identical.
//!
//! The target server comes from `PROBDB_SERVER_ADDR` (required — this
//! example never spawns its own server; the whole point is that the
//! server process dies and reboots between invocations).

use tspdb_client::Client;
use tspdb_server::demo_insert_statement;
use tspdb_wire::canonical_result_bytes;

/// The query battery: every result shape, including Monte-Carlo with a
/// pinned seed and the synopsis strategy — any nondeterminism across the
/// crash shows up as a fingerprint diff.
const PROBES: &[(&str, &str)] = &[
    ("rows", "SELECT t, r FROM rec_raw ORDER BY r DESC LIMIT 25"),
    (
        "prob-rows",
        "SELECT * FROM rec_pv WHERE prob >= 0.05 ORDER BY prob DESC LIMIT 50",
    ),
    ("threshold", "SELECT t, lambda FROM rec_pv THRESHOLD 0.05"),
    (
        "aggregate",
        "SELECT COUNT(*), SUM(lambda) FROM rec_pv GROUP BY WINDOW(t, 25)",
    ),
    ("worlds", "SELECT * FROM rec_pv WITH WORLDS 600 SEED 42"),
    (
        "worlds-agg",
        "SELECT COUNT(*) FROM rec_pv THRESHOLD 0.02 WITH WORLDS 400 SEED 7",
    ),
    ("explain", "EXPLAIN SELECT * FROM rec_pv WITH WORLDS 100"),
];

/// FNV-1a over the canonical result bytes — a stable, dependency-free
/// fingerprint the smoke job can diff as text.
fn fingerprint(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_default();
    let addr = std::env::var("PROBDB_SERVER_ADDR")
        .expect("set PROBDB_SERVER_ADDR to the target probdb-server");
    let mut client = Client::connect(&addr).expect("connect to server");

    match mode.as_str() {
        "load" => {
            let script = [
                "CREATE TABLE rec_raw (t INT, r FLOAT)".to_string(),
                demo_insert_statement("rec_raw"),
                "CREATE VIEW rec_pv AS DENSITY r OVER t OMEGA delta=0.1, n=6 \
                 FROM rec_raw USING METRIC vt WINDOW 40"
                    .to_string(),
            ];
            for sql in &script {
                if let Err(e) = client.query(sql) {
                    panic!("load failed at {sql:?}: {e}");
                }
            }
            println!("loaded rec_raw + rec_pv into {addr}");
        }
        "dirty" => {
            // Timestamps far past the loaded data: the rows are a pure
            // append and never perturb the view's original window range.
            let values: Vec<String> = (0..64)
                .map(|i| format!("({}, {:.6})", 100_000 + i, 15.0 + i as f64 * 0.125))
                .collect();
            let sql = format!("INSERT INTO rec_raw VALUES {}", values.join(", "));
            client
                .query(&sql)
                .unwrap_or_else(|e| panic!("dirty append failed: {e}"));
            println!("appended 64 rows to rec_raw on {addr}");
        }
        "probe" => {
            for (label, sql) in PROBES {
                let out = client
                    .query(sql)
                    .unwrap_or_else(|e| panic!("probe {label} failed: {e}"));
                println!("{label}\t{}", fingerprint(&canonical_result_bytes(&out)));
            }
        }
        other => {
            eprintln!("usage: recovery_client <load|dirty|probe> (got {other:?})");
            std::process::exit(2);
        }
    }
    client.close().expect("clean close");
}
