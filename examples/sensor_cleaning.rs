//! Sensor cleaning with C-GARCH — the paper's Fig. 5 scenario.
//!
//! A temperature feed is corrupted with spikes (sensor glitches, network
//! failures). Plain ARMA-GARCH's squared terms blow its volatility estimate
//! up after each spike; C-GARCH detects the spikes online, substitutes the
//! inferred value, and keeps σ̂ at the clean-data scale — while still
//! adopting genuine trend changes.
//!
//! Run with: `cargo run --release --example sensor_cleaning`

use tspdb::core::cgarch::{CGarch, CGarchConfig};
use tspdb::core::metrics::{ArmaGarch, DynamicDensityMetric};
use tspdb::timeseries::errors::{inject_spikes, SpikeConfig};
use tspdb::timeseries::generate::TemperatureGenerator;
use tspdb::MetricConfig;

fn main() {
    let h = 60;
    let series = TemperatureGenerator::default().generate(900);
    let injection = inject_spikes(
        &series,
        &SpikeConfig {
            count: 12,
            protect_prefix: h + 10,
            seed: 99,
            ..SpikeConfig::default()
        },
    );
    println!(
        "corrupted {} of {} readings at positions {:?}",
        injection.count(),
        series.len(),
        injection.positions
    );

    // Plain ARMA-GARCH over every sliding window of the corrupted stream.
    let mut plain = ArmaGarch::new(MetricConfig::default()).expect("metric");
    let mut plain_detections = Vec::new();
    let mut plain_max_sigma = 0.0f64;
    let values = injection.series.values();
    for t in h..values.len() {
        if let Ok(inf) = plain.infer(&values[t - h..t]) {
            plain_max_sigma = plain_max_sigma.max(inf.density.std());
            if !inf.contains(values[t]) {
                plain_detections.push(t);
            }
        }
    }

    // C-GARCH over the same stream (SVmax learned from the warm-up window).
    let mut cgarch = CGarch::new(
        CGarchConfig {
            window: h,
            ocmax: 8,
            sv_max: None,
        },
        MetricConfig::default(),
    )
    .expect("cgarch");
    let report = cgarch.process(values).expect("process");
    let cg_max_sigma = report
        .inferences
        .iter()
        .map(|(_, inf)| inf.density.std())
        .fold(0.0f64, f64::max);

    println!("\n                         plain ARMA-GARCH    C-GARCH");
    println!(
        "spikes captured          {:>6.1}%            {:>6.1}%",
        100.0 * injection.capture_rate(&plain_detections),
        100.0 * injection.capture_rate(&report.detections),
    );
    println!("max inferred sigma       {plain_max_sigma:>8.2} degC      {cg_max_sigma:>8.2} degC",);
    println!(
        "trend changes declared   {:>8}            {:>8}",
        "n/a",
        report.trend_changes.len()
    );

    // Show the bound behaviour around the first spike (the Fig. 5 picture).
    if let Some(&first_spike) = injection.positions.first() {
        println!("\nbounds around the first spike (t = {first_spike}):");
        println!(
            "{:>5} {:>10} {:>10} {:>10} {:>10}",
            "t", "raw", "r_hat", "lb", "ub"
        );
        for (idx, inf) in &report.inferences {
            if (*idx as i64 - first_spike as i64).abs() <= 4 {
                println!(
                    "{:>5} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
                    idx, values[*idx], inf.expected, inf.lower, inf.upper
                );
            }
        }
    }

    println!(
        "\nconclusion: C-GARCH kept sigma at {:.2} degC while plain GARCH reached {:.2} degC \
         ({}x inflation) on the same corrupted stream.",
        cg_max_sigma,
        plain_max_sigma,
        (plain_max_sigma / cg_max_sigma).round()
    );
}
