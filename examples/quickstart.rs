//! Quickstart: from an imprecise time series to a queryable probabilistic
//! database in a dozen lines.
//!
//! Run with: `cargo run --release --example quickstart`

use tspdb::timeseries::generate::TemperatureGenerator;
use tspdb::{Engine, MetricConfig, MetricKind, ViewBuilderConfig};

fn main() {
    // 1. An imprecise sensor feed: half a day of 2-minute temperature
    //    readings from the synthetic campus generator.
    let series = TemperatureGenerator::default().generate(360);
    println!("raw series: {series}");

    // 2. An engine with the paper's main metric (ARMA-GARCH) and a σ-cache
    //    with the default Hellinger distance constraint H' = 0.01.
    let mut engine = Engine::new(ViewBuilderConfig {
        metric: MetricKind::ArmaGarch,
        metric_config: MetricConfig::default(),
        window: 60,
        ..ViewBuilderConfig::default()
    });
    engine
        .load_series("raw_values", "r", &series)
        .expect("load raw_values");

    // 3. The probability value generation query (paper Fig. 7): 8 ranges of
    //    0.5 °C around the expected true value, for every timestamp.
    engine
        .execute(
            "CREATE VIEW prob_view AS DENSITY r OVER t \
             OMEGA delta=0.5, n=8 FROM raw_values",
        )
        .expect("create density view");

    let build = engine.last_build().expect("view was just built");
    println!(
        "built prob_view: {} tuples over {} timestamps ({} cached distributions, {:?} inference, {:?} generation)",
        build.built.view.len(),
        build.built.model.len(),
        build.built.cache_len.unwrap_or(0),
        build.built.inference_time,
        build.built.generation_time,
    );

    // 4. Ordinary SQL over the probabilistic view.
    let out = engine
        .execute("SELECT t, lambda, lo, hi FROM prob_view ORDER BY prob DESC LIMIT 8")
        .expect("query view");
    println!("\nmost probable ranges overall:");
    print!("{}", out.prob_rows().unwrap().render(8));

    // 5. Downstream probabilistic reasoning with the query operators.
    let view = engine.db().prob_table("prob_view").unwrap();
    let best = tspdb::probdb::query::most_probable_per_group(view, "t").unwrap();
    println!("\nmost probable range per timestamp (first 5):");
    print!("{}", best.render(5));

    let expected_tuples = view.expected_count();
    println!(
        "\nexpected number of tuples present in a possible world: {expected_tuples:.1} \
         (of {} candidate tuples)",
        view.len()
    );
}
