//! Choosing a dynamic density metric with the density distance.
//!
//! Quality of a probabilistic database is the quality of the densities it
//! was generated from (paper Section II-B). This example scores all four
//! metrics on both datasets with the density distance and prints a
//! ranking, then demonstrates ARMA order selection by information
//! criterion (the extension behind the paper's Fig. 12 discussion).
//!
//! Run with: `cargo run --release --example metric_selection`

use tspdb::core::metrics::{make_metric, MetricKind};
use tspdb::core::quality::evaluate_metric;
use tspdb::models::order::{select_order, Criterion};
use tspdb::timeseries::datasets::{campus_data, car_data, uniform_threshold_for};
use tspdb::MetricConfig;

fn main() {
    let h = 60;
    // Evaluate on a slice of each dataset and subsample windows so the
    // EM-based Kalman metric finishes interactively.
    let datasets = [
        ("campus-data", campus_data().head(2500)),
        ("car-data", car_data().head(2500)),
    ];
    let metrics = [
        MetricKind::UniformThresholding,
        MetricKind::VariableThresholding,
        MetricKind::ArmaGarch,
        MetricKind::KalmanGarch,
    ];

    for (name, series) in &datasets {
        println!("=== {name} (window H = {h}, {} values) ===", series.len());
        println!(
            "{:<14} {:>16} {:>14} {:>10}",
            "metric", "density distance", "avg time", "failures"
        );
        let mut scored = Vec::new();
        for kind in metrics {
            let cfg = MetricConfig {
                p: 2,
                q: 0,
                threshold_u: uniform_threshold_for(name),
                ..MetricConfig::default()
            };
            let mut metric = make_metric(kind, cfg).expect("metric");
            let stride = if kind == MetricKind::KalmanGarch {
                20
            } else {
                4
            };
            let eval = evaluate_metric(metric.as_mut(), series, h, stride).expect("evaluate");
            println!(
                "{:<14} {:>16.3} {:>14?} {:>10}",
                kind.label(),
                eval.density_distance,
                eval.avg_time(),
                eval.failures
            );
            scored.push((kind, eval.density_distance));
        }
        scored.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        println!(
            "--> best calibrated metric for {name}: {}\n",
            scored[0].0.label()
        );
    }

    // ARMA order selection on a campus window: BIC prefers the low orders
    // the paper uses (Fig. 12 shows distance *grows* with order).
    let window = campus_data().head(600);
    println!("=== ARMA order selection on campus-data (BIC, lower is better) ===");
    let scores = select_order(window.values(), 4, 1, Criterion::Bic).expect("order scan");
    println!("{:<10} {:>12} {:>14}", "(p, q)", "BIC", "sigma^2_a");
    for s in scores.iter().take(6) {
        println!(
            "({}, {})     {:>12.1} {:>14.4}",
            s.p, s.q, s.score, s.sigma2
        );
    }
    println!("--> selected order: ({}, {})", scores[0].p, scores[0].q);
}
