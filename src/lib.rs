//! # tspdb — probabilistic databases from imprecise time series
//!
//! A full Rust implementation of *"Creating Probabilistic Databases from
//! Imprecise Time-Series Data"* (Sathe, Jeung, Aberer — ICDE 2011): dynamic
//! density metrics (ARMA-GARCH, Kalman-GARCH, C-GARCH and the naive
//! thresholding baselines), the density-distance quality measure, the
//! Ω-view builder with its SQL-like query syntax, and the σ-cache with
//! provable distance/memory guarantees — plus every substrate they need
//! (numerics, time-series tooling, model estimation, and a
//! tuple-independent probabilistic database).
//!
//! This facade crate re-exports the workspace members under stable paths:
//!
//! * [`stats`] — special functions, distributions, regression, optimisation.
//! * [`timeseries`] — series containers, generators, datasets, CSV I/O.
//! * [`models`] — ARMA / GARCH / Kalman estimation, ARCH-effect test.
//! * [`probdb`] — tuple-independent tables, probabilistic operators, SQL.
//! * [`core`] — the paper's contribution: metrics, Ω-views, σ-cache.
//!
//! ## Quick start
//!
//! ```
//! use tspdb::Engine;
//! use tspdb::timeseries::generate::TemperatureGenerator;
//!
//! let mut engine = Engine::default();
//! let series = TemperatureGenerator::default().generate(200);
//! engine.load_series("raw_values", "r", &series).unwrap();
//!
//! // The paper's Fig. 7 query, verbatim syntax:
//! engine
//!     .execute(
//!         "CREATE VIEW prob_view AS DENSITY r OVER t OMEGA delta=0.5, n=6 \
//!          FROM raw_values",
//!     )
//!     .unwrap();
//!
//! let hot = engine
//!     .execute("SELECT * FROM prob_view WHERE prob >= 0.2 ORDER BY prob DESC LIMIT 5")
//!     .unwrap();
//! assert!(!hot.prob_rows().unwrap().is_empty());
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub use tspdb_core as core;
pub use tspdb_models as models;
pub use tspdb_probdb as probdb;
pub use tspdb_stats as stats;
pub use tspdb_timeseries as timeseries;

pub use tspdb_core::{
    CoreError, DynamicDensityMetric, Engine, Inference, MetricConfig, MetricKind, OmegaSpec,
    SharedEngine, SharedSigmaCache, SigmaCache, SigmaCacheConfig, ViewBuilderConfig,
};
pub use tspdb_probdb::{Database, DbError, ProbTable, QueryOutput, Table, Value};
pub use tspdb_timeseries::TimeSeries;
