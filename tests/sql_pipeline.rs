//! The paper's Fig. 1 worked example, replayed through the SQL surface and
//! the probabilistic query operators.

use tspdb::probdb::query::{
    event_probability, expected_sum, most_probable_per_group, project_prob, threshold, CmpOp,
    Comparison,
};
use tspdb::probdb::{ColumnType, Database, ProbTable, Schema, Value};

/// Builds the Fig. 1 `prob_view` exactly as printed in the paper.
fn fig1_view() -> ProbTable {
    let schema = Schema::of(&[("time", ColumnType::Int), ("room", ColumnType::Int)]);
    let mut v = ProbTable::new("prob_view", schema);
    let rows = [
        (1, 1, 0.5),
        (1, 2, 0.1),
        (1, 3, 0.3),
        (1, 4, 0.1),
        (2, 1, 0.2),
        (2, 2, 0.4),
        (2, 3, 0.1),
        (2, 4, 0.3),
    ];
    for (t, room, p) in rows {
        v.insert(vec![Value::Int(t), Value::Int(room)], p).unwrap();
    }
    v
}

#[test]
fn fig1_probabilities_are_well_formed() {
    let v = fig1_view();
    // Each timestamp's room probabilities form a distribution.
    for t in [1i64, 2] {
        let mass: f64 = v
            .iter()
            .filter(|(row, _)| row[0].as_i64() == Some(t))
            .map(|(_, p)| p)
            .sum();
        assert!((mass - 1.0).abs() < 1e-12, "time {t} mass {mass}");
    }
}

#[test]
fn sql_selects_answer_fig1_questions() {
    let mut db = Database::new();
    db.register_prob_table(fig1_view()).unwrap();

    // "Where is Alice most likely to be at time 1?"
    let out = db
        .execute("SELECT room FROM prob_view WHERE time = 1 ORDER BY prob DESC LIMIT 1")
        .unwrap();
    let rows = out.prob_rows().unwrap();
    assert_eq!(rows.rows()[0][0], Value::Int(1));
    assert!((rows.probs()[0] - 0.5).abs() < 1e-12);

    // "Which placements are at least 30% likely?"
    let out = db
        .execute("SELECT time, room FROM prob_view WHERE prob >= 0.3")
        .unwrap();
    assert_eq!(out.prob_rows().unwrap().len(), 4); // 0.5, 0.3, 0.4, 0.3
}

#[test]
fn operators_compose_on_fig1_view() {
    let v = fig1_view();

    // Most probable room per time: room 1 at t=1, room 2 at t=2.
    let best = most_probable_per_group(&v, "time").unwrap();
    let picks: Vec<(i64, i64)> = best
        .iter()
        .map(|(r, _)| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap()))
        .collect();
    assert!(picks.contains(&(1, 1)));
    assert!(picks.contains(&(2, 2)));

    // P(Alice visits room 3 at some time) = 1 − (1−0.3)(1−0.1) = 0.37.
    let pred = vec![Comparison::new("room", CmpOp::Eq, 3i64)];
    let p = event_probability(&v, &pred).unwrap();
    assert!((p - 0.37).abs() < 1e-12);

    // Projection onto room with probabilistic dedup.
    let rooms = project_prob(&v, &["room".to_string()]).unwrap();
    assert_eq!(rooms.len(), 4);
    let room4 = rooms.iter().find(|(r, _)| r[0] == Value::Int(4)).unwrap().1;
    assert!((room4 - (1.0 - 0.9 * 0.7)).abs() < 1e-12);

    // Expected room number at time 2: 1·0.2 + 2·0.4 + 3·0.1 + 4·0.3 = 2.5.
    let at2 =
        tspdb::probdb::query::select_prob(&v, &vec![Comparison::new("time", CmpOp::Eq, 2i64)])
            .unwrap();
    assert!((expected_sum(&at2, "room").unwrap() - 2.5).abs() < 1e-12);

    // Threshold at 0.4 keeps exactly the two most confident placements.
    let confident = threshold(&v, 0.4).unwrap();
    assert_eq!(confident.len(), 2);
}

#[test]
fn windowed_aggregates_answer_fig1_questions() {
    // "Per 2-timestep window, how many sightings do we expect, and how
    // likely is at least one?" — the temporal window clause end to end.
    let mut db = Database::new();
    db.register_prob_table(fig1_view()).unwrap();
    let agg = db
        .query("SELECT COUNT(*) FROM prob_view GROUP BY WINDOW(time, 2) HAVING COUNT(*) >= 1")
        .unwrap()
        .aggregate()
        .unwrap()
        .clone();
    // Bucket [0, 2) holds t=1, bucket [2, 4) holds t=2; each timestamp's
    // probabilities sum to 1, so both expected counts are 1.
    assert_eq!(agg.groups.len(), 2);
    assert_eq!(agg.groups[0].key, vec![Value::Float(0.0)]);
    assert_eq!(agg.groups[1].key, vec![Value::Float(2.0)]);
    for g in &agg.groups {
        assert!((g.values[0].value - 1.0).abs() < 1e-12);
    }
    // P(count ≥ 1): t=1 → 1 − 0.5·0.9·0.7·0.9; t=2 → 1 − 0.8·0.6·0.9·0.7.
    let p0 = agg.groups[0].event_probability.unwrap();
    let p1 = agg.groups[1].event_probability.unwrap();
    assert!((p0 - 0.7165).abs() < 1e-12, "got {p0}");
    assert!((p1 - 0.6976).abs() < 1e-12, "got {p1}");
}

#[test]
fn raw_values_to_view_round_trip_via_sql_strings() {
    // Full textual pipeline: create the raw table via SQL, insert the
    // Fig. 2 values, build a density view, query it — no Rust-level table
    // construction at all.
    let mut engine = tspdb::Engine::new(tspdb::ViewBuilderConfig {
        window: 40,
        metric_config: tspdb::MetricConfig {
            p: 1,
            q: 0,
            ..tspdb::MetricConfig::default()
        },
        ..tspdb::ViewBuilderConfig::default()
    });
    engine
        .execute("CREATE TABLE raw_values (t INT, r FLOAT)")
        .unwrap();
    // 60 synthetic readings drifting upward, inserted in SQL batches.
    let mut stmt = String::from("INSERT INTO raw_values VALUES ");
    for t in 0..60 {
        if t > 0 {
            stmt.push_str(", ");
        }
        let r = 4.0 + 0.05 * t as f64 + ((t * 7919) % 13) as f64 * 0.01;
        stmt.push_str(&format!("({t}, {r})"));
    }
    engine.execute(&stmt).unwrap();

    engine
        .execute(
            "CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.1, n=6 \
             FROM raw_values WHERE t >= 45 USING METRIC vt WINDOW 40",
        )
        .unwrap();
    let out = engine
        .execute("SELECT * FROM pv ORDER BY prob DESC")
        .unwrap();
    let rows = out.prob_rows().unwrap();
    assert_eq!(rows.len(), 15 * 6); // t = 45..59, 6 cells each
    assert!(rows.probs()[0] > 0.05);
}
