//! Exact-vs-Monte-Carlo-vs-synopsis differential harness.
//!
//! The possible-worlds executor, the exact operators and the histogram
//! synopses answer the same questions through entirely different code
//! paths: closed forms over tuple independence (`event_probability`,
//! `count_distribution`, `count_moments`, `expected_sum`), sampled worlds,
//! and O(B) bucketed moments. This suite pins down three invariants,
//! permanently:
//!
//! 1. **Convergence** — for generated probabilistic tables the MC
//!    estimates land within statistical tolerance of the exact answers
//!    (tolerances are multiples of the estimator's standard error, so they
//!    hold deterministically for the fixed seeds used here);
//! 2. **Thread invariance** — the executor returns *bit-identical*
//!    results at 1 and 8 threads for the same seed, which is what makes
//!    `WITH WORLDS` reproducible on any machine;
//! 3. **Bound soundness** — every `WITH SYNOPSIS` answer carries an error
//!    bound that contains the exact answer, is bit-identical across runs,
//!    and the precomputed catalog synopses equal a from-scratch build
//!    after every write.

use proptest::prelude::*;
use tspdb::probdb::aggregates::{count_distribution, count_moments};
use tspdb::probdb::query::{event_probability, expected_sum, CmpOp, Comparison};
use tspdb::probdb::{
    ColumnType, ProbTable, Schema, Value, WorldsConfig, WorldsExecutor, WorldsResult,
};

const WORLDS: usize = 30_000;

/// `(room, reading)` table with rooms cycling 0..4 and readings tied to
/// the row index, so predicates have something to bite on.
fn table_from(probs: &[f64]) -> ProbTable {
    let schema = Schema::of(&[("room", ColumnType::Int), ("reading", ColumnType::Float)]);
    let mut v = ProbTable::new("v", schema);
    for (i, &p) in probs.iter().enumerate() {
        v.insert(
            vec![Value::Int(i as i64 % 4), Value::Float(i as f64 * 0.5 - 2.0)],
            p,
        )
        .unwrap();
    }
    v
}

fn run(
    table: &ProbTable,
    pred: &[Comparison],
    seed: u64,
    threads: usize,
    sum_column: Option<&str>,
) -> WorldsResult {
    WorldsExecutor::new(WorldsConfig {
        max_worlds: WORLDS,
        seed,
        threads,
        ..WorldsConfig::default()
    })
    .unwrap()
    .run(table, &pred.to_vec(), sum_column)
    .unwrap()
}

/// Runs at 1 and 8 threads, asserts bit-identical estimates, returns one.
fn run_both_widths(
    table: &ProbTable,
    pred: &[Comparison],
    seed: u64,
    sum_column: Option<&str>,
) -> WorldsResult {
    let one = run(table, pred, seed, 1, sum_column);
    let eight = run(table, pred, seed, 8, sum_column);
    assert_eq!(
        one.fingerprint(),
        eight.fingerprint(),
        "1-thread and 8-thread runs diverged (seed {seed})"
    );
    one
}

proptest! {
    #[test]
    fn mc_converges_to_exact_closed_forms(
        probs in proptest::collection::vec(0.0f64..=1.0, 1..25),
        seed in 0u64..1_000_000,
    ) {
        let v = table_from(&probs);
        let pred: Vec<Comparison> = Vec::new();

        let exact_p = event_probability(&v, &pred).unwrap();
        let exact_dist = count_distribution(&v, &pred).unwrap();
        let (exact_mean, exact_var) = count_moments(&v, &pred).unwrap();

        let mc = run_both_widths(&v, &pred, seed, None);
        prop_assert_eq!(mc.worlds, WORLDS);
        prop_assert_eq!(mc.matching_tuples, probs.len());

        // Event probability: within 5 standard errors of the exact value.
        let se_p = (exact_p * (1.0 - exact_p) / WORLDS as f64).sqrt();
        prop_assert!(
            (mc.event_probability - exact_p).abs() <= 5.0 * se_p + 1e-9,
            "event: MC {} vs exact {} (SE {})",
            mc.event_probability, exact_p, se_p
        );

        // Count distribution: every bucket within 5 SEs, plus a few worlds
        // of absolute slack for the far tails where the bucket probability
        // is so small that the normal approximation behind the SE bound
        // breaks down (a single sampled world there is several "SEs").
        prop_assert_eq!(mc.count_distribution.len(), exact_dist.len());
        let slack = 5.0 / WORLDS as f64;
        for (k, (e, m)) in exact_dist.iter().zip(&mc.count_distribution).enumerate() {
            let se = (e * (1.0 - e) / WORLDS as f64).sqrt();
            prop_assert!(
                (e - m).abs() <= 5.0 * se + slack,
                "count bucket {k}: exact {e} vs MC {m}"
            );
        }

        // Count moments: the mean within 5 SEs, the variance loosely.
        let se_mean = (exact_var / WORLDS as f64).sqrt();
        prop_assert!(
            (mc.count_mean - exact_mean).abs() <= 5.0 * se_mean + 1e-9,
            "count mean: MC {} vs exact {}",
            mc.count_mean, exact_mean
        );
        prop_assert!(
            (mc.count_variance - exact_var).abs() <= 0.15 * exact_var + 0.05,
            "count variance: MC {} vs exact {}",
            mc.count_variance, exact_var
        );
    }

    #[test]
    fn mc_sum_converges_to_expected_sum(
        probs in proptest::collection::vec(0.0f64..=1.0, 1..20),
        seed in 0u64..1_000_000,
    ) {
        let v = table_from(&probs);
        let exact = expected_sum(&v, "reading").unwrap();
        let mc = run_both_widths(&v, &[], seed, Some("reading"));
        let sum = mc.sum.as_ref().unwrap();
        let se = (sum.variance / WORLDS as f64).sqrt();
        prop_assert!(
            (sum.mean - exact).abs() <= 5.0 * se + 1e-6,
            "sum: MC {} vs exact {} (SE {})",
            sum.mean, exact, se
        );
    }
}

#[test]
fn predicated_queries_agree_with_exact_path() {
    let probs: Vec<f64> = (0..24).map(|i| ((i * 37) % 97) as f64 / 100.0).collect();
    let v = table_from(&probs);
    for pred in [
        vec![Comparison::new("room", CmpOp::Eq, 1i64)],
        vec![Comparison::new("reading", CmpOp::Ge, 2.0)],
        vec![
            Comparison::new("room", CmpOp::Ne, 0i64),
            Comparison::new("prob", CmpOp::Ge, 0.25),
        ],
    ] {
        let exact = event_probability(&v, &pred).unwrap();
        let mc = run_both_widths(&v, &pred, 2024, None);
        assert!(
            (mc.event_probability - exact).abs() <= 3.0 * mc.event_ci_half_width + 1e-3,
            "pred {pred:?}: MC {} vs exact {exact}",
            mc.event_probability
        );
        let exact_dist = count_distribution(&v, &pred).unwrap();
        assert_eq!(mc.count_distribution.len(), exact_dist.len());
    }
}

#[test]
fn early_termination_is_thread_invariant_and_honours_the_target() {
    let probs: Vec<f64> = (0..12).map(|i| 0.05 + 0.07 * i as f64).collect();
    let v = table_from(&probs);
    let run_ci = |threads: usize| {
        WorldsExecutor::new(WorldsConfig {
            max_worlds: 2_000_000,
            seed: 77,
            target_ci: Some(0.005),
            threads,
            ..WorldsConfig::default()
        })
        .unwrap()
        .run(&v, &Vec::new(), None)
        .unwrap()
    };
    let one = run_ci(1);
    let eight = run_ci(8);
    assert_eq!(one.fingerprint(), eight.fingerprint());
    assert!(one.converged);
    assert!(one.worlds < 2_000_000);
    assert!(one.event_ci_half_width <= 0.005);
}

/// Runs an aggregate SQL query at 1 and 8 worlds-threads, asserts the
/// bit-identical fingerprint, and returns the result.
fn run_aggregate_both_widths(
    db: &mut tspdb::Database,
    sql: &str,
) -> tspdb::probdb::AggregateResult {
    db.set_worlds_threads(1);
    let one = db.query(sql).unwrap().aggregate().unwrap().clone();
    db.set_worlds_threads(8);
    let eight = db.query(sql).unwrap().aggregate().unwrap().clone();
    assert_eq!(
        one.fingerprint(),
        eight.fingerprint(),
        "1-thread and 8-thread aggregate runs diverged for {sql}"
    );
    one
}

#[test]
fn planned_sum_aggregate_agrees_between_strategies() {
    // `SELECT SUM(col)` through the planner: the exact strategy answers
    // with Σ p·v, the worlds strategy with the MC mean of per-world sums —
    // they must agree within standard-error multiples, per group.
    let probs: Vec<f64> = (0..24).map(|i| ((i * 41) % 89) as f64 / 100.0).collect();
    let v = table_from(&probs);
    let mut db = tspdb::Database::new();
    db.register_prob_table(v.clone()).unwrap();

    let exact = db
        .query("SELECT room, SUM(reading) FROM v GROUP BY room")
        .unwrap()
        .aggregate()
        .unwrap()
        .clone();
    assert_eq!(exact.strategy, "exact");
    let mc = run_aggregate_both_widths(
        &mut db,
        "SELECT room, SUM(reading) FROM v GROUP BY room WITH WORLDS 30000 SEED 6",
    );
    assert_eq!(mc.strategy, "worlds");
    assert_eq!(mc.groups.len(), exact.groups.len());
    for (m, e) in mc.groups.iter().zip(&exact.groups) {
        assert_eq!(m.key, e.key, "group keys must align");
        let (ms, es) = (&m.values[0], &e.values[0]);
        assert!(es.ci_half_width.is_none(), "exact values carry no CI");
        let tol = 5.0 * ms.ci_half_width.unwrap() + 1e-6;
        assert!(
            (ms.value - es.value).abs() <= tol,
            "group {:?}: MC sum {} vs exact {} (tol {tol})",
            m.key,
            ms.value,
            es.value
        );
    }

    // Per-group exact cross-check against the standalone closed form.
    for e in &exact.groups {
        let room = e.key[0].as_i64().unwrap();
        let sub =
            tspdb::probdb::query::select_prob(&v, &vec![Comparison::new("room", CmpOp::Eq, room)])
                .unwrap();
        let direct = expected_sum(&sub, "reading").unwrap();
        assert!((e.values[0].value - direct).abs() < 1e-12);
    }
}

#[test]
fn windowed_aggregates_agree_between_strategies() {
    // `GROUP BY WINDOW` through the planner: per-bucket Poisson-binomial /
    // linearity closed forms versus per-bucket MC sampling with
    // bucket-derived seeds. Both strategies must produce the same buckets
    // (same canonical starts), statistically identical answers, and the MC
    // side must stay bit-identical across worlds-thread counts.
    let probs: Vec<f64> = (0..28).map(|i| ((i * 43) % 95) as f64 / 100.0).collect();
    let v = table_from(&probs); // readings span [−2.0, 11.5]
    let mut db = tspdb::Database::new();
    db.register_prob_table(v.clone()).unwrap();

    let sql_exact = "SELECT COUNT(*), SUM(reading) FROM v \
                     GROUP BY WINDOW(reading, 4.0, -2.0) HAVING COUNT(*) >= 2";
    let exact = db.query(sql_exact).unwrap().aggregate().unwrap().clone();
    assert_eq!(exact.strategy, "exact");
    assert_eq!(
        exact.group_columns,
        vec!["WINDOW(reading, 4.0, -2.0)".to_string()]
    );
    // Buckets [−2, 2), [2, 6), [6, 10), [10, 14): starts −2, 2, 6, 10.
    let starts: Vec<f64> = exact
        .groups
        .iter()
        .map(|g| g.key[0].as_f64().unwrap())
        .collect();
    assert_eq!(starts, vec![-2.0, 2.0, 6.0, 10.0]);

    // Per-bucket exact values cross-check against the standalone closed
    // forms over the equivalent WHERE-range restriction.
    for g in &exact.groups {
        let start = g.key[0].as_f64().unwrap();
        let sub = tspdb::probdb::query::select_prob(
            &v,
            &vec![
                Comparison::new("reading", CmpOp::Ge, start),
                Comparison::new("reading", CmpOp::Lt, start + 4.0),
            ],
        )
        .unwrap();
        let direct = expected_sum(&sub, "reading").unwrap();
        assert!((g.values[1].value - direct).abs() < 1e-12);
        let (mean, _) = count_moments(&sub, &Vec::new()).unwrap();
        assert!((g.values[0].value - mean).abs() < 1e-12);
    }

    let mc = run_aggregate_both_widths(
        &mut db,
        &format!("{sql_exact} WITH WORLDS {WORLDS} SEED 19"),
    );
    assert_eq!(mc.strategy, "worlds");
    assert_eq!(mc.groups.len(), exact.groups.len());
    for (m, e) in mc.groups.iter().zip(&exact.groups) {
        assert_eq!(m.key, e.key, "bucket keys must align across strategies");
        for (mv, ev) in m.values.iter().zip(&e.values) {
            let tol = 5.0 * mv.ci_half_width.unwrap() + 1e-6;
            assert!(
                (mv.value - ev.value).abs() <= tol,
                "bucket {:?}: MC {} vs exact {} (tol {tol})",
                m.key,
                mv.value,
                ev.value
            );
        }
        let (mp, ep) = (m.event_probability.unwrap(), e.event_probability.unwrap());
        let se = (ep * (1.0 - ep) / WORLDS as f64).sqrt();
        assert!(
            (mp - ep).abs() <= 5.0 * se + 1e-9,
            "bucket {:?}: MC P(count ≥ 2) {mp} vs exact {ep} (SE {se})",
            m.key
        );
    }
}

#[test]
fn window_composed_with_group_by_matches_manual_two_level_grouping() {
    // WINDOW(reading, w) combined with GROUP BY room must answer exactly
    // like restricting to each (bucket, room) pair by hand.
    let probs: Vec<f64> = (0..24).map(|i| ((i * 31) % 89) as f64 / 100.0).collect();
    let v = table_from(&probs);
    let mut db = tspdb::Database::new();
    db.register_prob_table(v.clone()).unwrap();
    let agg = db
        .query("SELECT room, COUNT(*) FROM v GROUP BY WINDOW(reading, 5.0), room")
        .unwrap()
        .aggregate()
        .unwrap()
        .clone();
    assert!(agg.groups.len() > 2);
    for g in &agg.groups {
        let start = g.key[0].as_f64().unwrap();
        let room = g.key[1].as_i64().unwrap();
        let sub = tspdb::probdb::query::select_prob(
            &v,
            &vec![
                Comparison::new("reading", CmpOp::Ge, start),
                Comparison::new("reading", CmpOp::Lt, start + 5.0),
                Comparison::new("room", CmpOp::Eq, room),
            ],
        )
        .unwrap();
        let (mean, _) = count_moments(&sub, &Vec::new()).unwrap();
        assert!(
            (g.values[0].value - mean).abs() < 1e-12,
            "bucket {start} room {room}"
        );
    }
}

#[test]
fn planned_count_event_agrees_between_strategies() {
    // The `COUNT(*) >= k` event: exact Poisson-binomial tail vs the MC
    // count-histogram tail, through the same SQL plan.
    let probs: Vec<f64> = (0..18)
        .map(|i| 0.04 + ((i * 29) % 83) as f64 / 100.0)
        .collect();
    let v = table_from(&probs);
    let mut db = tspdb::Database::new();
    db.register_prob_table(v.clone()).unwrap();

    for k in [1i64, 3, 6] {
        let exact_sql = format!("SELECT COUNT(*) FROM v HAVING COUNT(*) >= {k}");
        let exact = db.query(&exact_sql).unwrap().aggregate().unwrap().clone();
        let exact_p = exact.groups[0].event_probability.unwrap();
        // Cross-check against the standalone closed form.
        let direct =
            tspdb::probdb::aggregates::prob_count_at_least(&v, &Vec::new(), k as usize).unwrap();
        assert!((exact_p - direct).abs() < 1e-12);

        let mc = run_aggregate_both_widths(
            &mut db,
            &format!("{exact_sql} WITH WORLDS {WORLDS} SEED {k}"),
        );
        let mc_p = mc.groups[0].event_probability.unwrap();
        let se = (exact_p * (1.0 - exact_p) / WORLDS as f64).sqrt();
        assert!(
            (mc_p - exact_p).abs() <= 5.0 * se + 1e-9,
            "k={k}: MC P(count>={k}) {mc_p} vs exact {exact_p} (SE {se})"
        );

        // The MC count mean must also track the exact expected count.
        let (exact_mean, exact_var) = count_moments(&v, &Vec::new()).unwrap();
        let se_mean = (exact_var / WORLDS as f64).sqrt();
        assert!((mc.groups[0].values[0].value - exact_mean).abs() <= 5.0 * se_mean + 1e-9);
    }
}

#[test]
fn explain_names_plan_and_strategy_for_both_backends() {
    let v = table_from(&[0.5, 0.25, 0.75]);
    let mut db = tspdb::Database::new();
    db.register_prob_table(v).unwrap();
    let exact = db
        .query("EXPLAIN SELECT COUNT(*) FROM v WHERE room = 1")
        .unwrap()
        .explain()
        .unwrap()
        .clone();
    assert!(exact.logical.contains("Aggregate [COUNT(*)]"), "{exact:?}");
    assert!(exact.logical.contains("Scan v"), "{exact:?}");
    assert!(exact.strategy.starts_with("exact"), "{exact:?}");
    let mc = db
        .query("EXPLAIN SELECT SUM(reading) FROM v GROUP BY room WITH WORLDS 1000 SEED 9")
        .unwrap()
        .explain()
        .unwrap()
        .clone();
    assert!(mc.logical.contains("GROUP BY room"), "{mc:?}");
    assert!(mc.strategy.contains("worlds"), "{mc:?}");
    assert!(mc.strategy.contains("max_worlds=1000"), "{mc:?}");
    assert!(mc.relation.contains("probabilistic"), "{mc:?}");
}

#[test]
fn sql_with_worlds_matches_direct_executor_calls() {
    // The SQL surface and the Rust API must drive the very same sampler:
    // same seed, same worlds, same estimate.
    let probs: Vec<f64> = (0..10).map(|i| 0.1 + 0.08 * i as f64).collect();
    let v = table_from(&probs);
    let mut db = tspdb::Database::new();
    db.register_prob_table(v.clone()).unwrap();
    for threads in [1, 8] {
        db.set_worlds_threads(threads);
        let via_sql = db
            .query("SELECT * FROM v WHERE room = 2 WITH WORLDS 8000 SEED 31")
            .unwrap();
        let direct = WorldsExecutor::new(WorldsConfig {
            max_worlds: 8_000,
            seed: 31,
            threads,
            ..WorldsConfig::default()
        })
        .unwrap()
        .run(
            &tspdb::probdb::query::select_prob(&v, &vec![Comparison::new("room", CmpOp::Eq, 2i64)])
                .unwrap(),
            &Vec::new(),
            None,
        )
        .unwrap();
        assert_eq!(
            via_sql.worlds().unwrap().fingerprint(),
            direct.fingerprint(),
            "threads = {threads}"
        );
    }
}

// ---------------------------------------------------------------------------
// Multi-column tally (single sampling pass for grouped MC aggregates)
// ---------------------------------------------------------------------------

#[test]
fn multi_column_tally_is_bit_identical_to_per_column_runs() {
    // `run_domain_multi` tallies every SUM column during one pass over the
    // sampled worlds. Presence sampling never consumes RNG for values, so
    // with the same seed each column's estimate must equal a dedicated
    // single-column run **bit for bit** — this is the invariant that let
    // the planner collapse its one-run-per-column MC aggregation into a
    // single pass without moving any fingerprint.
    let probs: Vec<f64> = (0..23).map(|i| ((i * 37) % 97) as f64 / 100.0).collect();
    let reading: Vec<f64> = (0..23).map(|i| i as f64 * 0.5 - 2.0).collect();
    let weight: Vec<f64> = (0..23).map(|i| ((i * 13) % 7) as f64 + 0.25).collect();

    for threads in [1usize, 8] {
        let executor = WorldsExecutor::new(WorldsConfig {
            max_worlds: 10_000,
            seed: 77,
            threads,
            ..WorldsConfig::default()
        })
        .unwrap();

        let (multi_base, sums) =
            executor.run_domain_multi(&probs, &[("reading", &reading), ("weight", &weight)]);
        let solo_reading = executor.run_domain(&probs, Some(("reading", &reading)));
        let solo_weight = executor.run_domain(&probs, Some(("weight", &weight)));
        let bare = executor.run_domain(&probs, None);

        // Count/event estimates are shared and identical across all runs.
        assert_eq!(multi_base.fingerprint(), bare.fingerprint());
        for solo in [&solo_reading, &solo_weight] {
            assert_eq!(solo.count_distribution, multi_base.count_distribution);
            assert_eq!(
                solo.event_probability.to_bits(),
                multi_base.event_probability.to_bits()
            );
        }
        // Each column's SUM estimate matches its dedicated run bit for bit.
        assert_eq!(sums.len(), 2);
        for (from_multi, from_solo) in [(&sums[0], &solo_reading), (&sums[1], &solo_weight)] {
            let solo_sum = from_solo.sum.as_ref().unwrap();
            assert_eq!(from_multi.column, solo_sum.column);
            assert_eq!(from_multi.mean.to_bits(), solo_sum.mean.to_bits());
            assert_eq!(from_multi.variance.to_bits(), solo_sum.variance.to_bits());
            assert_eq!(
                from_multi.ci_half_width.to_bits(),
                solo_sum.ci_half_width.to_bits()
            );
        }
    }
}

#[test]
fn grouped_multi_column_mc_aggregates_are_one_pass_and_stable() {
    // SQL-level witness of the same invariant: a query aggregating two
    // distinct columns per group must report, for each column, exactly the
    // estimate a single-column query with the same seed reports — and stay
    // bit-identical across worlds-thread counts.
    let schema = Schema::of(&[
        ("room", ColumnType::Int),
        ("reading", ColumnType::Float),
        ("weight", ColumnType::Float),
    ]);
    let mut v = ProbTable::new("v2", schema);
    for i in 0..26 {
        v.insert(
            vec![
                Value::Int(i % 3),
                Value::Float(i as f64 * 0.4 - 1.0),
                Value::Float(((i * 11) % 5) as f64 + 0.5),
            ],
            ((i as usize * 53) % 91) as f64 / 100.0,
        )
        .unwrap();
    }
    let mut db = tspdb::Database::new();
    db.register_prob_table(v).unwrap();

    let combined = run_aggregate_both_widths(
        &mut db,
        "SELECT room, COUNT(*), SUM(reading), SUM(weight), AVG(reading) FROM v2 \
         GROUP BY room WITH WORLDS 20000 SEED 12",
    );
    let reading_only = run_aggregate_both_widths(
        &mut db,
        "SELECT room, SUM(reading) FROM v2 GROUP BY room WITH WORLDS 20000 SEED 12",
    );
    let weight_only = run_aggregate_both_widths(
        &mut db,
        "SELECT room, SUM(weight) FROM v2 GROUP BY room WITH WORLDS 20000 SEED 12",
    );
    assert_eq!(combined.groups.len(), 3);
    for (gi, g) in combined.groups.iter().enumerate() {
        // Projection order: COUNT(*), SUM(reading), SUM(weight), AVG(reading).
        let sum_reading = &g.values[1];
        let sum_weight = &g.values[2];
        let solo_r = &reading_only.groups[gi].values[0];
        let solo_w = &weight_only.groups[gi].values[0];
        assert_eq!(sum_reading.value.to_bits(), solo_r.value.to_bits());
        assert_eq!(sum_weight.value.to_bits(), solo_w.value.to_bits());
        assert_eq!(
            sum_reading.ci_half_width.unwrap().to_bits(),
            solo_r.ci_half_width.unwrap().to_bits()
        );
        assert_eq!(
            sum_weight.ci_half_width.unwrap().to_bits(),
            solo_w.ci_half_width.unwrap().to_bits()
        );
        // AVG is the ratio of the two shared-pass expectations.
        let avg = g.values[3].value;
        assert_eq!(
            avg.to_bits(),
            (sum_reading.value / g.values[0].value).to_bits()
        );
    }

    // And the MC answers still converge to the exact strategy's closed
    // forms, per column, per group.
    let exact = db
        .query(
            "SELECT room, COUNT(*), SUM(reading), SUM(weight), AVG(reading) FROM v2 \
             GROUP BY room",
        )
        .unwrap()
        .aggregate()
        .unwrap()
        .clone();
    assert_eq!(exact.strategy, "exact");
    for (m, e) in combined.groups.iter().zip(&exact.groups) {
        assert_eq!(m.key, e.key);
        for col in 0..3 {
            let tol = 5.0 * m.values[col].ci_half_width.unwrap() + 1e-6;
            assert!(
                (m.values[col].value - e.values[col].value).abs() <= tol,
                "group {:?} aggregate {col}: MC {} vs exact {} (tol {tol})",
                m.key,
                m.values[col].value,
                e.values[col].value
            );
        }
    }
}

// ---------------------------------------------------------------------------
// HAVING SUM: sum-distribution DP vs Monte-Carlo event frequency
// ---------------------------------------------------------------------------

#[test]
fn having_sum_event_agrees_between_exact_and_mc() {
    // `HAVING SUM(col) >= s` executes exactly through the sum-distribution
    // DP; the MC lowering tallies the same event over sampled worlds. They
    // must agree within standard-error multiples — and the MC estimates of
    // everything else must be unaffected by tallying the event.
    let probs: Vec<f64> = (0..22).map(|i| ((i * 37) % 97) as f64 / 100.0).collect();
    let v = table_from(&probs); // readings i·0.5 − 2.0: dyadic, so the DP is exact
    let mut db = tspdb::Database::new();
    db.register_prob_table(v).unwrap();

    for s in ["2", "10.25", "-1"] {
        let exact_sql = format!("SELECT COUNT(*), SUM(reading) FROM v HAVING SUM(reading) >= {s}");
        let exact = db.query(&exact_sql).unwrap().aggregate().unwrap().clone();
        assert_eq!(exact.strategy, "exact");
        let exact_p = exact.groups[0].event_probability.unwrap();
        assert!((0.0..=1.0).contains(&exact_p));

        let mc = run_aggregate_both_widths(
            &mut db,
            &format!("{exact_sql} WITH WORLDS {WORLDS} SEED 23"),
        );
        let mc_p = mc.groups[0].event_probability.unwrap();
        let se = (exact_p * (1.0 - exact_p) / WORLDS as f64).sqrt();
        assert!(
            (mc_p - exact_p).abs() <= 5.0 * se + 1e-3,
            "s={s}: MC P(SUM >= {s}) {mc_p} vs exact {exact_p} (SE {se})"
        );

        // The event tally consumes no RNG: the COUNT/SUM estimates match a
        // no-HAVING run of the same seed bit for bit.
        let plain = run_aggregate_both_widths(
            &mut db,
            &format!("SELECT COUNT(*), SUM(reading) FROM v WITH WORLDS {WORLDS} SEED 23"),
        );
        for (with_event, without) in mc.groups[0].values.iter().zip(&plain.groups[0].values) {
            assert_eq!(with_event.value.to_bits(), without.value.to_bits());
        }
    }

    // Grouped HAVING SUM: per-group events against per-group DP tails.
    let exact_sql = "SELECT room, COUNT(*) FROM v GROUP BY room HAVING SUM(reading) >= 1";
    let exact = db.query(exact_sql).unwrap().aggregate().unwrap().clone();
    let mc = run_aggregate_both_widths(
        &mut db,
        &format!("{exact_sql} WITH WORLDS {WORLDS} SEED 29"),
    );
    assert_eq!(exact.groups.len(), mc.groups.len());
    for (e, m) in exact.groups.iter().zip(&mc.groups) {
        assert_eq!(e.key, m.key);
        let (ep, mp) = (e.event_probability.unwrap(), m.event_probability.unwrap());
        let se = (ep * (1.0 - ep) / WORLDS as f64).sqrt();
        assert!(
            (mp - ep).abs() <= 5.0 * se + 1e-3,
            "group {:?}: MC {mp} vs exact {ep}",
            e.key
        );
    }
}

// ---------------------------------------------------------------------------
// Synopsis strategy: bounds contain exact, answers are deterministic
// ---------------------------------------------------------------------------

#[test]
fn synopsis_answers_contain_exact_and_are_bit_identical() {
    let probs: Vec<f64> = (0..180).map(|i| ((i * 37) % 97) as f64 / 100.0).collect();
    let v = table_from(&probs);
    let mut db = tspdb::Database::new();
    db.register_prob_table(v).unwrap();

    for sql in [
        "SELECT COUNT(*), SUM(reading), AVG(reading), EXPECTED(reading) FROM v",
        "SELECT COUNT(*), SUM(reading) FROM v THRESHOLD 0.25",
        "SELECT COUNT(*), SUM(reading) FROM v THRESHOLD 0.37",
        "SELECT COUNT(*), SUM(reading) FROM v GROUP BY WINDOW(reading, 16.0)",
        "SELECT COUNT(*) FROM v HAVING COUNT(*) >= 80",
    ] {
        let exact = db.query(sql).unwrap().aggregate().unwrap().clone();
        let syn_sql = format!("{sql} WITH SYNOPSIS BUCKETS 16");
        let syn = db.query(&syn_sql).unwrap().aggregate().unwrap().clone();
        assert_eq!(syn.strategy, "synopsis", "{sql}");
        // Determinism: repeat runs are bit-identical (the synopsis is a
        // precomputed immutable snapshot; no sampling anywhere).
        let again = db.query(&syn_sql).unwrap().aggregate().unwrap().clone();
        assert_eq!(syn.fingerprint(), again.fingerprint(), "{sql}");

        assert_eq!(
            exact.groups.iter().map(|g| &g.key).collect::<Vec<_>>(),
            syn.groups.iter().map(|g| &g.key).collect::<Vec<_>>(),
            "{sql}: group keys diverged"
        );
        for (e, s) in exact.groups.iter().zip(&syn.groups) {
            for (i, (ev, sv)) in e.values.iter().zip(&s.values).enumerate() {
                let hw = sv.ci_half_width.expect("synopsis values carry bounds");
                assert!(
                    (sv.value - ev.value).abs() <= hw + 1e-9,
                    "{sql} group {:?} aggregate {i}: synopsis {} ± {hw} vs exact {}",
                    e.key,
                    sv.value,
                    ev.value
                );
            }
        }
    }

    // The windowed COUNT query is where the paper's sublinearity shows up:
    // the HAVING COUNT tail must also track the exact Poisson-binomial.
    let sql = "SELECT COUNT(*) FROM v HAVING COUNT(*) >= 80";
    let exact_p = db.query(sql).unwrap().aggregate().unwrap().groups[0]
        .event_probability
        .unwrap();
    let syn_p = db
        .query(&format!("{sql} WITH SYNOPSIS BUCKETS 16"))
        .unwrap()
        .aggregate()
        .unwrap()
        .groups[0]
        .event_probability
        .unwrap();
    assert!(
        (exact_p - syn_p).abs() < 0.05,
        "P(count >= 80): exact {exact_p} vs synopsis {syn_p}"
    );
}

// ---------------------------------------------------------------------------
// Time-sharded scans: sharding is invisible in every answer
// ---------------------------------------------------------------------------

/// Fresh database over `probs`, with the relation sharded on `layout`
/// (`None` = unsharded baseline).
fn sharded_db(probs: &[f64], layout: Option<(&str, usize)>) -> tspdb::Database {
    let mut db = tspdb::Database::new();
    db.register_prob_table(table_from(probs)).unwrap();
    if let Some((column, count)) = layout {
        db.shard_relation("v", column, count).unwrap();
        let map = db.shard_map("v").expect("layout was just installed");
        // `build` clamps to one-tuple shards when the relation is small.
        assert_eq!(
            map.shard_count(),
            count.min(probs.len()).max(1),
            "requested layout must stick"
        );
    }
    db
}

#[test]
fn sharded_scans_are_bit_identical_to_unsharded_for_every_strategy() {
    // The shard-ordered reduction promises that sharding is a pure
    // performance knob: for every strategy — exact closed forms, `WITH
    // WORLDS` sampling, `WITH SYNOPSIS` histograms — and every fan-out
    // width, a sharded scan answers bit-for-bit what the unsharded scan
    // answers. `canonical_result_bytes` is the strictest equality we have
    // (Monte-Carlo results compare by their bit-exact fingerprint).
    let probs: Vec<f64> = (0..120).map(|i| ((i * 37) % 97) as f64 / 100.0).collect();
    const QUERIES: [&str; 6] = [
        // Exact row scan: prunable predicate + THRESHOLD/TOP on the
        // merged index list.
        "SELECT * FROM v WHERE reading >= 1.0 THRESHOLD 0.2 TOP 16",
        // Exact grouped aggregate with a restriction and a HAVING event.
        "SELECT room, COUNT(*), SUM(reading) FROM v WHERE reading >= -1.0 \
         GROUP BY room HAVING COUNT(*) >= 2",
        // MC sampling runs once over the merged shard-ordered domain.
        "SELECT room, COUNT(*), SUM(reading) FROM v GROUP BY room \
         WITH WORLDS 6000 SEED 13",
        "SELECT * FROM v WHERE room = 2 WITH WORLDS 4000 SEED 7",
        // Synopsis answers come from the immutable catalog snapshot.
        "SELECT COUNT(*), SUM(reading) FROM v WITH SYNOPSIS BUCKETS 16",
        // Windowed MC: per-bucket restrictions also fan out over shards.
        "SELECT COUNT(*) FROM v GROUP BY WINDOW(reading, 8.0) \
         WITH WORLDS 2000 SEED 5",
    ];
    const LAYOUTS: [Option<(&str, usize)>; 4] = [
        Some(("reading", 2)),
        Some(("reading", 7)),
        Some(("reading", 64)),
        Some(("room", 3)),
    ];
    for sql in QUERIES {
        // Unsharded baseline at each fan-out width (widths must agree
        // with each other too, but that is the older invariant — here
        // each width gets its own byte-exact baseline).
        let mut baseline = Vec::new();
        let base_db = sharded_db(&probs, None);
        for threads in [1usize, 8] {
            base_db.set_worlds_threads(threads);
            baseline.push(tspdb_wire::canonical_result_bytes(
                &base_db.query(sql).unwrap(),
            ));
        }
        for layout in LAYOUTS {
            let db = sharded_db(&probs, layout);
            for (ti, threads) in [1usize, 8].into_iter().enumerate() {
                db.set_worlds_threads(threads);
                let sharded = tspdb_wire::canonical_result_bytes(&db.query(sql).unwrap());
                assert_eq!(
                    sharded, baseline[ti],
                    "{sql} diverged under layout {layout:?} at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn sharded_scans_reproduce_unsharded_errors() {
    // A shard whose bounds would let it be pruned must still surface the
    // same error an unsharded scan raises — pruning never hides failures.
    let probs: Vec<f64> = (0..64).map(|i| ((i * 29) % 83) as f64 / 100.0).collect();
    let base = sharded_db(&probs, None)
        .query("SELECT * FROM v WHERE missing = 1")
        .unwrap_err();
    let sharded = sharded_db(&probs, Some(("reading", 8)))
        .query("SELECT * FROM v WHERE missing = 1")
        .unwrap_err();
    assert_eq!(format!("{base:?}"), format!("{sharded:?}"));
}

proptest! {
    #[test]
    fn sharded_aggregates_match_unsharded_for_generated_tables(
        probs in proptest::collection::vec(0.0f64..=1.0, 2..60),
        shard_count in 2u32..12,
        seed in 0u64..100_000,
    ) {
        // Property form of the same invariant: any table, any shard
        // count, both strategies, both widths — byte-identical answers.
        let layout = Some(("reading", shard_count as usize));
        let exact_sql = "SELECT room, COUNT(*), SUM(reading) FROM v GROUP BY room";
        let mc_sql = format!("{exact_sql} WITH WORLDS 1500 SEED {seed}");
        let base_db = sharded_db(&probs, None);
        let db = sharded_db(&probs, layout);
        for sql in [exact_sql, mc_sql.as_str()] {
            for threads in [1usize, 8] {
                base_db.set_worlds_threads(threads);
                db.set_worlds_threads(threads);
                prop_assert_eq!(
                    tspdb_wire::canonical_result_bytes(&db.query(sql).unwrap()),
                    tspdb_wire::canonical_result_bytes(&base_db.query(sql).unwrap()),
                    "{} diverged at {} shards, {} threads", sql, shard_count, threads
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Append-incremental maintenance ≡ rebuild from scratch
// ---------------------------------------------------------------------------

/// Engine defaults for the append-differential property: a small AR(1)
/// window keeps per-case model fits cheap, `cache: None` keeps Ω-view
/// maintenance on the direct evaluation path, and one build thread avoids
/// oversubscribing 64 proptest cases (the produced view is identical for
/// every thread count anyway).
fn append_config() -> tspdb::ViewBuilderConfig {
    tspdb::ViewBuilderConfig {
        window: 24,
        metric_config: tspdb::MetricConfig {
            p: 1,
            q: 0,
            ..Default::default()
        },
        cache: None,
        threads: 1,
        ..Default::default()
    }
}

proptest! {
    #[test]
    fn append_incremental_state_equals_rebuild_from_scratch(
        base in proptest::collection::vec(15.0f64..25.0, 26..34),
        batches in proptest::collection::vec(
            proptest::collection::vec(15.0f64..25.0, 1..12),
            1..4,
        ),
    ) {
        // The streaming contract: appending batches to a live engine —
        // incrementally maintaining its Ω-view and catalog synopses —
        // must leave state *bit-identical* to a fresh engine handed the
        // full prefix at once, after every prefix of the append sequence.
        // Checked through every query strategy (exact, Monte-Carlo
        // worlds, histogram synopsis) plus a full view scan, compared as
        // canonical result bytes.
        use tspdb::SharedEngine;
        const TABLE: &str = "CREATE TABLE stream (t INT, r FLOAT)";
        const VIEW: &str =
            "CREATE VIEW sv AS DENSITY r OVER t OMEGA delta=0.5, n=6 FROM stream";
        const CHECKS: [&str; 5] = [
            "SELECT * FROM sv THRESHOLD 0.0",
            "SELECT COUNT(*), SUM(lambda) FROM sv GROUP BY WINDOW(t, 8)",
            "SELECT COUNT(*) FROM sv WITH WORLDS 400 SEED 11",
            "SELECT COUNT(*), SUM(lambda) FROM sv WITH SYNOPSIS BUCKETS 8",
            "SELECT COUNT(*), SUM(r) FROM stream GROUP BY WINDOW(t, 8)",
        ];
        let rows = |from: usize, vals: &[f64]| -> Vec<Vec<Value>> {
            vals.iter()
                .enumerate()
                .map(|(i, &r)| vec![Value::Int((from + i) as i64), Value::Float(r)])
                .collect()
        };

        let live = SharedEngine::new(append_config());
        live.execute(TABLE).unwrap();
        live.append_rows("stream", rows(0, &base)).unwrap();
        live.execute(VIEW).unwrap();

        let mut all = base.clone();
        for batch in &batches {
            live.append_rows("stream", rows(all.len(), batch)).unwrap();
            all.extend_from_slice(batch);

            let rebuilt = SharedEngine::new(append_config());
            rebuilt.execute(TABLE).unwrap();
            rebuilt.append_rows("stream", rows(0, &all)).unwrap();
            rebuilt.execute(VIEW).unwrap();
            for sql in CHECKS {
                prop_assert_eq!(
                    tspdb_wire::canonical_result_bytes(&live.query(sql).unwrap()),
                    tspdb_wire::canonical_result_bytes(&rebuilt.query(sql).unwrap()),
                    "{} diverged after {} appended rows",
                    sql,
                    all.len() - base.len()
                );
            }
        }
    }
}

proptest! {
    #[test]
    fn synopsis_rebuild_after_write_equals_build_from_scratch(
        probs in proptest::collection::vec(0.0f64..=1.0, 1..40),
        extra in proptest::collection::vec(0.0f64..=1.0, 1..10),
    ) {
        use tspdb::probdb::{RelationSynopses, DEFAULT_SYNOPSIS_BUCKETS};

        // Register, then re-register with more tuples (the only write path
        // for probabilistic views): the cached synopses must equal a
        // from-scratch build of the final contents every time.
        let mut db = tspdb::Database::new();
        db.register_prob_table(table_from(&probs)).unwrap();
        let cached = db.synopses("v").expect("registration builds synopses");
        prop_assert_eq!(
            &*cached,
            &RelationSynopses::build(&table_from(&probs), DEFAULT_SYNOPSIS_BUCKETS)
        );

        let mut grown = probs.clone();
        grown.extend_from_slice(&extra);
        db.register_prob_table(table_from(&grown)).unwrap();
        let rebuilt = db.synopses("v").expect("re-registration rebuilds");
        prop_assert_eq!(
            &*rebuilt,
            &RelationSynopses::build(&table_from(&grown), DEFAULT_SYNOPSIS_BUCKETS)
        );
        prop_assert_eq!(rebuilt.tuples(), grown.len());

        // Dropping the relation drops its synopses.
        db.execute("DROP TABLE v").unwrap();
        prop_assert!(db.synopses("v").is_none());
    }
}
