//! Exact-vs-Monte-Carlo differential harness.
//!
//! The possible-worlds executor and the exact operators answer the same
//! questions through entirely different code paths: closed forms over
//! tuple independence (`event_probability`, `count_distribution`,
//! `count_moments`, `expected_sum`) versus sampled worlds. This suite pins
//! down two invariants, permanently:
//!
//! 1. **Convergence** — for generated probabilistic tables the MC
//!    estimates land within statistical tolerance of the exact answers
//!    (tolerances are multiples of the estimator's standard error, so they
//!    hold deterministically for the fixed seeds used here);
//! 2. **Thread invariance** — the executor returns *bit-identical*
//!    results at 1 and 8 threads for the same seed, which is what makes
//!    `WITH WORLDS` reproducible on any machine.

use proptest::prelude::*;
use tspdb::probdb::aggregates::{count_distribution, count_moments};
use tspdb::probdb::query::{event_probability, expected_sum, CmpOp, Comparison};
use tspdb::probdb::{
    ColumnType, ProbTable, Schema, Value, WorldsConfig, WorldsExecutor, WorldsResult,
};

const WORLDS: usize = 30_000;

/// `(room, reading)` table with rooms cycling 0..4 and readings tied to
/// the row index, so predicates have something to bite on.
fn table_from(probs: &[f64]) -> ProbTable {
    let schema = Schema::of(&[("room", ColumnType::Int), ("reading", ColumnType::Float)]);
    let mut v = ProbTable::new("v", schema);
    for (i, &p) in probs.iter().enumerate() {
        v.insert(
            vec![Value::Int(i as i64 % 4), Value::Float(i as f64 * 0.5 - 2.0)],
            p,
        )
        .unwrap();
    }
    v
}

fn run(
    table: &ProbTable,
    pred: &[Comparison],
    seed: u64,
    threads: usize,
    sum_column: Option<&str>,
) -> WorldsResult {
    WorldsExecutor::new(WorldsConfig {
        max_worlds: WORLDS,
        seed,
        threads,
        ..WorldsConfig::default()
    })
    .unwrap()
    .run(table, &pred.to_vec(), sum_column)
    .unwrap()
}

/// Runs at 1 and 8 threads, asserts bit-identical estimates, returns one.
fn run_both_widths(
    table: &ProbTable,
    pred: &[Comparison],
    seed: u64,
    sum_column: Option<&str>,
) -> WorldsResult {
    let one = run(table, pred, seed, 1, sum_column);
    let eight = run(table, pred, seed, 8, sum_column);
    assert_eq!(
        one.fingerprint(),
        eight.fingerprint(),
        "1-thread and 8-thread runs diverged (seed {seed})"
    );
    one
}

proptest! {
    #[test]
    fn mc_converges_to_exact_closed_forms(
        probs in proptest::collection::vec(0.0f64..=1.0, 1..25),
        seed in 0u64..1_000_000,
    ) {
        let v = table_from(&probs);
        let pred: Vec<Comparison> = Vec::new();

        let exact_p = event_probability(&v, &pred).unwrap();
        let exact_dist = count_distribution(&v, &pred).unwrap();
        let (exact_mean, exact_var) = count_moments(&v, &pred).unwrap();

        let mc = run_both_widths(&v, &pred, seed, None);
        prop_assert_eq!(mc.worlds, WORLDS);
        prop_assert_eq!(mc.matching_tuples, probs.len());

        // Event probability: within 5 standard errors of the exact value.
        let se_p = (exact_p * (1.0 - exact_p) / WORLDS as f64).sqrt();
        prop_assert!(
            (mc.event_probability - exact_p).abs() <= 5.0 * se_p + 1e-9,
            "event: MC {} vs exact {} (SE {})",
            mc.event_probability, exact_p, se_p
        );

        // Count distribution: every bucket within 5 SEs, plus a few worlds
        // of absolute slack for the far tails where the bucket probability
        // is so small that the normal approximation behind the SE bound
        // breaks down (a single sampled world there is several "SEs").
        prop_assert_eq!(mc.count_distribution.len(), exact_dist.len());
        let slack = 5.0 / WORLDS as f64;
        for (k, (e, m)) in exact_dist.iter().zip(&mc.count_distribution).enumerate() {
            let se = (e * (1.0 - e) / WORLDS as f64).sqrt();
            prop_assert!(
                (e - m).abs() <= 5.0 * se + slack,
                "count bucket {k}: exact {e} vs MC {m}"
            );
        }

        // Count moments: the mean within 5 SEs, the variance loosely.
        let se_mean = (exact_var / WORLDS as f64).sqrt();
        prop_assert!(
            (mc.count_mean - exact_mean).abs() <= 5.0 * se_mean + 1e-9,
            "count mean: MC {} vs exact {}",
            mc.count_mean, exact_mean
        );
        prop_assert!(
            (mc.count_variance - exact_var).abs() <= 0.15 * exact_var + 0.05,
            "count variance: MC {} vs exact {}",
            mc.count_variance, exact_var
        );
    }

    #[test]
    fn mc_sum_converges_to_expected_sum(
        probs in proptest::collection::vec(0.0f64..=1.0, 1..20),
        seed in 0u64..1_000_000,
    ) {
        let v = table_from(&probs);
        let exact = expected_sum(&v, "reading").unwrap();
        let mc = run_both_widths(&v, &[], seed, Some("reading"));
        let sum = mc.sum.as_ref().unwrap();
        let se = (sum.variance / WORLDS as f64).sqrt();
        prop_assert!(
            (sum.mean - exact).abs() <= 5.0 * se + 1e-6,
            "sum: MC {} vs exact {} (SE {})",
            sum.mean, exact, se
        );
    }
}

#[test]
fn predicated_queries_agree_with_exact_path() {
    let probs: Vec<f64> = (0..24).map(|i| ((i * 37) % 97) as f64 / 100.0).collect();
    let v = table_from(&probs);
    for pred in [
        vec![Comparison::new("room", CmpOp::Eq, 1i64)],
        vec![Comparison::new("reading", CmpOp::Ge, 2.0)],
        vec![
            Comparison::new("room", CmpOp::Ne, 0i64),
            Comparison::new("prob", CmpOp::Ge, 0.25),
        ],
    ] {
        let exact = event_probability(&v, &pred).unwrap();
        let mc = run_both_widths(&v, &pred, 2024, None);
        assert!(
            (mc.event_probability - exact).abs() <= 3.0 * mc.event_ci_half_width + 1e-3,
            "pred {pred:?}: MC {} vs exact {exact}",
            mc.event_probability
        );
        let exact_dist = count_distribution(&v, &pred).unwrap();
        assert_eq!(mc.count_distribution.len(), exact_dist.len());
    }
}

#[test]
fn early_termination_is_thread_invariant_and_honours_the_target() {
    let probs: Vec<f64> = (0..12).map(|i| 0.05 + 0.07 * i as f64).collect();
    let v = table_from(&probs);
    let run_ci = |threads: usize| {
        WorldsExecutor::new(WorldsConfig {
            max_worlds: 2_000_000,
            seed: 77,
            target_ci: Some(0.005),
            threads,
            ..WorldsConfig::default()
        })
        .unwrap()
        .run(&v, &Vec::new(), None)
        .unwrap()
    };
    let one = run_ci(1);
    let eight = run_ci(8);
    assert_eq!(one.fingerprint(), eight.fingerprint());
    assert!(one.converged);
    assert!(one.worlds < 2_000_000);
    assert!(one.event_ci_half_width <= 0.005);
}

#[test]
fn sql_with_worlds_matches_direct_executor_calls() {
    // The SQL surface and the Rust API must drive the very same sampler:
    // same seed, same worlds, same estimate.
    let probs: Vec<f64> = (0..10).map(|i| 0.1 + 0.08 * i as f64).collect();
    let v = table_from(&probs);
    let mut db = tspdb::Database::new();
    db.register_prob_table(v.clone()).unwrap();
    for threads in [1, 8] {
        db.set_worlds_threads(threads);
        let via_sql = db
            .query("SELECT * FROM v WHERE room = 2 WITH WORLDS 8000 SEED 31")
            .unwrap();
        let direct = WorldsExecutor::new(WorldsConfig {
            max_worlds: 8_000,
            seed: 31,
            threads,
            ..WorldsConfig::default()
        })
        .unwrap()
        .run(
            &tspdb::probdb::query::select_prob(&v, &vec![Comparison::new("room", CmpOp::Eq, 2i64)])
                .unwrap(),
            &Vec::new(),
            None,
        )
        .unwrap();
        assert_eq!(
            via_sql.worlds().unwrap().fingerprint(),
            direct.fingerprint(),
            "threads = {threads}"
        );
    }
}
