//! End-to-end wire-protocol tests: a real server on an ephemeral loopback
//! port, the native client, and an in-process mirror executing the exact
//! same statements — results must match byte for byte (Monte-Carlo
//! results by their bit-exact fingerprint, which excludes only wall
//! time).

use tspdb::Engine;
use tspdb_client::{Client, ClientError};
use tspdb_server::{demo_config, demo_insert_statement, Server, ServerConfig, ServerHandle};
use tspdb_wire::canonical_result_bytes;

/// Starts an empty demo-config server.
fn start_server() -> ServerHandle {
    Server::bind(
        "127.0.0.1:0",
        tspdb::SharedEngine::new(demo_config()),
        ServerConfig::default(),
    )
    .expect("bind ephemeral port")
    .spawn()
    .expect("spawn server")
}

/// The `tests/sql_pipeline.rs` statement set: raw table via SQL, the 60
/// synthetic readings, a density view, and the Fig. 1-style questions —
/// plus one statement per remaining result shape.
fn pipeline_statements() -> Vec<String> {
    vec![
        "CREATE TABLE raw_values (t INT, r FLOAT)".to_string(),
        demo_insert_statement("raw_values"),
        "CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.1, n=6 \
         FROM raw_values WHERE t >= 45 USING METRIC vt WINDOW 40"
            .to_string(),
        "SELECT * FROM pv ORDER BY prob DESC".to_string(),
        "SELECT t, r FROM raw_values WHERE t >= 2 AND t <= 10 ORDER BY r DESC LIMIT 4".to_string(),
        "SELECT * FROM pv WHERE prob >= 0.1 THRESHOLD 0.15 TOP 12".to_string(),
        "SELECT lambda FROM pv WHERE t = 50".to_string(),
        "SELECT * FROM pv WHERE t >= 50 WITH WORLDS 3000 SEED 17".to_string(),
        "SELECT t, COUNT(*), SUM(lambda) FROM pv GROUP BY t HAVING COUNT(*) >= 3".to_string(),
        "SELECT t, COUNT(*), SUM(lambda), AVG(lambda) FROM pv GROUP BY t \
         WITH WORLDS 1000 SEED 23"
            .to_string(),
        "EXPLAIN SELECT t, COUNT(*) FROM pv GROUP BY t WITH WORLDS 500 SEED 7".to_string(),
        "SELECT COUNT(*) FROM raw_values".to_string(),
        // Temporal windows — exact and MC per-bucket answers must cross the
        // wire byte-identically, bucket keys (float starts) included.
        "SELECT COUNT(*), SUM(lambda) FROM pv GROUP BY WINDOW(t, 10)".to_string(),
        "SELECT COUNT(*) FROM pv GROUP BY WINDOW(t, 10, 45) HAVING COUNT(*) >= 2 \
         WITH WORLDS 800 SEED 41"
            .to_string(),
        // Synopsis backend: O(B) histogram answers (and their error bounds)
        // must also be byte-identical across the wire.
        "SELECT COUNT(*), SUM(lambda) FROM pv WITH SYNOPSIS BUCKETS 16".to_string(),
        "SELECT COUNT(*), SUM(lambda) FROM pv GROUP BY WINDOW(t, 10) WITH SYNOPSIS BUCKETS 32"
            .to_string(),
        // HAVING SUM event predicates run the exact sum-distribution DP.
        "SELECT COUNT(*) FROM pv HAVING SUM(lambda) >= 1".to_string(),
    ]
}

#[test]
fn pipeline_statement_set_matches_in_process_execution() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    let mut mirror = Engine::new(demo_config());

    let mut variants_seen = std::collections::BTreeSet::new();
    for sql in pipeline_statements() {
        let over_wire = client
            .query(&sql)
            .unwrap_or_else(|e| panic!("server rejected {sql:?}: {e}"));
        let in_process = mirror
            .execute(&sql)
            .unwrap_or_else(|e| panic!("mirror rejected {sql:?}: {e}"));
        assert_eq!(
            canonical_result_bytes(&over_wire),
            canonical_result_bytes(&in_process),
            "wire and in-process results diverge for {sql:?}"
        );
        variants_seen.insert(over_wire.variant_name());
    }
    // None + all five result variants crossed the wire.
    assert_eq!(
        variants_seen.len(),
        6,
        "some QueryOutput variant was never exercised"
    );

    client.close().expect("clean close");
    handle.shutdown();
}

#[test]
fn prepared_statements_survive_catalog_growth_and_close() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    client.query("CREATE TABLE kv (k INT, v FLOAT)").unwrap();
    client
        .query("INSERT INTO kv VALUES (1, 1.5), (2, 2.5), (3, 3.5)")
        .unwrap();

    let stmt = client
        .prepare("SELECT k, v FROM kv WHERE k >= 2 ORDER BY k ASC")
        .unwrap();
    let first = client.execute(stmt).unwrap();
    assert_eq!(first.rows().unwrap().len(), 2);

    // The plan re-executes against current data: growing the table is
    // visible to the next execute.
    client.query("INSERT INTO kv VALUES (4, 4.5)").unwrap();
    let second = client.execute(stmt).unwrap();
    assert_eq!(second.rows().unwrap().len(), 3);

    client.close_statement(stmt).unwrap();
    match client.execute(stmt) {
        Err(ClientError::Server(tspdb::DbError::Unsupported(msg))) => {
            assert!(msg.contains("unknown prepared statement"), "{msg}")
        }
        other => panic!("executing a closed statement produced {other:?}"),
    }

    // Ids are session-scoped: a fresh session does not see them.
    let mut other = Client::connect(handle.addr()).expect("connect second session");
    assert!(other.execute(stmt).is_err());
    other.close().unwrap();

    client.close().unwrap();
    handle.shutdown();
}

#[test]
fn eight_concurrent_connections_get_identical_answers() {
    let handle = start_server();
    let mut seeder = Client::connect(handle.addr()).expect("connect");
    for sql in pipeline_statements().iter().take(3) {
        seeder.query(sql).expect("seed statement");
    }
    const MC_SQL: &str = "SELECT * FROM pv WITH WORLDS 2000 SEED 99";
    const AGG_SQL: &str =
        "SELECT t, COUNT(*), SUM(lambda) FROM pv GROUP BY t WITH WORLDS 800 SEED 3";
    let mc_base = canonical_result_bytes(&seeder.query(MC_SQL).unwrap());
    let agg_base = canonical_result_bytes(&seeder.query(AGG_SQL).unwrap());
    seeder.close().unwrap();

    std::thread::scope(|s| {
        for worker in 0..8 {
            let addr = handle.addr();
            let mc_base = &mc_base;
            let agg_base = &agg_base;
            s.spawn(move || {
                let mut client = Client::connect(addr).expect("worker connects");
                // Half the sessions override MC parallelism — it must not
                // change a single bit of any answer.
                if worker % 2 == 0 {
                    client.set_worlds_threads(2 + worker % 4).unwrap();
                }
                let stmt = client.prepare(MC_SQL).unwrap();
                for _ in 0..4 {
                    assert_eq!(
                        &canonical_result_bytes(&client.query(MC_SQL).unwrap()),
                        mc_base
                    );
                    assert_eq!(
                        &canonical_result_bytes(&client.execute(stmt).unwrap()),
                        mc_base
                    );
                    assert_eq!(
                        &canonical_result_bytes(&client.query(AGG_SQL).unwrap()),
                        agg_base
                    );
                }
                client.close().unwrap();
            });
        }
    });
    handle.shutdown();
}

#[test]
fn cached_plans_never_survive_cross_session_writes_or_ddl() {
    // The plan cache is engine-wide: a statement cached by one session is
    // keyed on the catalog generation, and any write or DDL — from *any*
    // session — bumps it. A stale plan must never answer.
    let handle = start_server();
    let mut a = Client::connect(handle.addr()).expect("connect session a");
    let mut b = Client::connect(handle.addr()).expect("connect session b");

    a.query("CREATE TABLE kv (k INT, v FLOAT)").unwrap();
    a.query("INSERT INTO kv VALUES (1, 1.5), (2, 2.5)").unwrap();

    const SQL: &str = "SELECT k, v FROM kv WHERE k >= 1 ORDER BY k ASC";
    // First query plans and caches; the repeat is the cache hit.
    assert_eq!(a.query(SQL).unwrap().rows().unwrap().len(), 2);
    assert_eq!(a.query(SQL).unwrap().rows().unwrap().len(), 2);

    // An answer-changing write from the *other* session: the next cached
    // execution must see it.
    b.query("INSERT INTO kv VALUES (3, 3.5)").unwrap();
    assert_eq!(a.query(SQL).unwrap().rows().unwrap().len(), 3);

    // Drop and re-create with a narrower schema from the other session:
    // the old plan's column set no longer exists, so serving it stale
    // would fabricate rows. It must be replanned — and fail cleanly.
    b.query("DROP TABLE kv").unwrap();
    b.query("CREATE TABLE kv (k INT)").unwrap();
    b.query("INSERT INTO kv VALUES (7)").unwrap();
    match a.query(SQL) {
        Err(ClientError::Server(e)) => {
            assert!(
                matches!(
                    e,
                    tspdb::DbError::UnknownColumn(_) | tspdb::DbError::Plan(_)
                ),
                "stale plan produced the wrong error: {e:?}"
            )
        }
        other => panic!("stale cached plan produced {other:?}"),
    }
    // The replanned shape of the new table works from both sessions.
    assert_eq!(
        a.query("SELECT k FROM kv").unwrap().rows().unwrap().len(),
        1
    );
    assert_eq!(
        b.query("SELECT k FROM kv").unwrap().rows().unwrap().len(),
        1
    );

    a.close().unwrap();
    b.close().unwrap();
    handle.shutdown();
}

#[test]
fn structured_errors_cross_the_wire() {
    let handle = start_server();
    let mut client = Client::connect(handle.addr()).expect("connect");
    type ErrorCheck = fn(&tspdb::DbError) -> bool;
    let cases: [(&str, ErrorCheck); 4] = [
        (
            "SELECT * FROM missing",
            |e| matches!(e, tspdb::DbError::UnknownTable(t) if t == "missing"),
        ),
        ("SELECT gibberish FROM", |e| {
            matches!(e, tspdb::DbError::Parse(_))
        }),
        ("SELECT room, COUNT(*) FROM pv", |e| {
            matches!(e, tspdb::DbError::Plan(_))
        }),
        ("SELECT * FROM pv ORDER BY prob DESC WITH WORLDS 10", |e| {
            matches!(e, tspdb::DbError::InvalidWorlds(_))
        }),
    ];
    for (sql, check) in cases {
        match client.query(sql) {
            Err(ClientError::Server(e)) => assert!(check(&e), "{sql} produced {e:?}"),
            other => panic!("{sql} produced {other:?}"),
        }
    }
    // The session survives every failure.
    client.query("CREATE TABLE ok (x INT)").unwrap();
    client.close().unwrap();
    handle.shutdown();
}
