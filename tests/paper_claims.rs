//! Shape-level checks of the paper's headline experimental claims, scaled
//! down to test-suite budgets (the full reproductions live in
//! `tspdb-bench`'s `experiments` binary).

use tspdb::core::cgarch::{CGarch, CGarchConfig};
use tspdb::core::metrics::{make_metric, ArmaGarch, DynamicDensityMetric, MetricKind};
use tspdb::core::quality::evaluate_metric;
use tspdb::core::sigma_cache::{direct_probability_values, SigmaCache};
use tspdb::models::archtest::mean_statistic_over_windows;
use tspdb::models::fit_arma;
use tspdb::stats::special::chi_square_quantile;
use tspdb::timeseries::datasets::{campus_data, car_data, uniform_threshold_for};
use tspdb::timeseries::errors::{inject_spikes, SpikeConfig};
use tspdb::{MetricConfig, OmegaSpec, SigmaCacheConfig};

/// Fig. 10: GARCH-family metrics are markedly better calibrated than the
/// naive thresholding metrics.
#[test]
fn fig10_shape_arma_garch_beats_naive_metrics() {
    let series = campus_data().head(2000);
    let h = 60;
    let cfg = MetricConfig {
        p: 2,
        q: 0,
        threshold_u: uniform_threshold_for("campus-data"),
        ..MetricConfig::default()
    };
    let score = |kind: MetricKind| {
        let mut m = make_metric(kind, cfg).unwrap();
        evaluate_metric(m.as_mut(), &series, h, 4)
            .unwrap()
            .density_distance
    };
    let ut = score(MetricKind::UniformThresholding);
    let vt = score(MetricKind::VariableThresholding);
    let ag = score(MetricKind::ArmaGarch);
    assert!(
        ag < ut && ag < vt,
        "ARMA-GARCH {ag} should beat UT {ut} and VT {vt}"
    );
}

/// Fig. 13(a): C-GARCH detects more injected errors than plain ARMA-GARCH
/// when errors are frequent enough to poison the plain model's window.
#[test]
fn fig13_shape_cgarch_captures_more_errors_under_load() {
    let series = campus_data().head(2000);
    let h = 60;
    let inj = inject_spikes(
        &series,
        &SpikeConfig {
            count: 120, // heavy contamination: ~6% of values
            protect_prefix: h + 5,
            seed: 5,
            ..SpikeConfig::default()
        },
    );

    // Plain ARMA-GARCH as detector: a value outside its own κσ̂ bounds.
    let mut plain = ArmaGarch::new(MetricConfig::default()).unwrap();
    let values = inj.series.values();
    let mut plain_detections = Vec::new();
    for t in h..values.len() {
        if let Ok(inf) = plain.infer(&values[t - h..t]) {
            if !inf.contains(values[t]) {
                plain_detections.push(t);
            }
        }
    }
    let plain_rate = inj.capture_rate(&plain_detections);

    let mut cg = CGarch::new(
        CGarchConfig {
            window: h,
            ocmax: 8,
            sv_max: None,
        },
        MetricConfig::default(),
    )
    .unwrap();
    let report = cg.process(values).unwrap();
    let cg_rate = inj.capture_rate(&report.detections);

    assert!(
        cg_rate >= plain_rate,
        "C-GARCH rate {cg_rate} below plain rate {plain_rate}"
    );
    assert!(cg_rate > 0.7, "C-GARCH captured only {cg_rate}");
}

/// Fig. 14(a): the σ-cache accelerates probability-value generation
/// substantially versus direct evaluation.
#[test]
fn fig14a_shape_sigma_cache_speeds_up_generation() {
    // Model rows with realistic σ̂ spread.
    let sigmas: Vec<f64> = (0..4000)
        .map(|i| 0.05 + 2.0 * ((i as f64 * 0.01).sin().abs()))
        .collect();
    let omega = OmegaSpec::new(0.05, 300).unwrap();
    let lo = sigmas.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = sigmas.iter().cloned().fold(0.0f64, f64::max);

    let t_naive = std::time::Instant::now();
    let mut acc = 0.0;
    for &s in &sigmas {
        acc += direct_probability_values(10.0, s, &omega)[150].rho;
    }
    let naive = t_naive.elapsed();

    let cache = SigmaCache::build(lo, hi, omega, SigmaCacheConfig::default()).unwrap();
    let t_cache = std::time::Instant::now();
    let mut acc2 = 0.0;
    for &s in &sigmas {
        acc2 += cache.probability_values(10.0, s)[150].rho;
    }
    let cached = t_cache.elapsed();

    assert!((acc - acc2).abs() / acc < 0.1, "cache changed the answers");
    assert!(
        cached < naive / 2,
        "σ-cache not at least 2x faster: {cached:?} vs {naive:?}"
    );
    assert_eq!(cache.stats().misses, 0);
}

/// Fig. 14(b): cache memory grows logarithmically with the σ spread.
#[test]
fn fig14b_shape_cache_size_grows_logarithmically() {
    let omega = OmegaSpec::new(0.05, 300).unwrap();
    let bytes: Vec<usize> = [2000.0, 4000.0, 8000.0, 16000.0]
        .iter()
        .map(|&spread| {
            SigmaCache::build(0.01, 0.01 * spread, omega, SigmaCacheConfig::default())
                .unwrap()
                .memory_bytes()
        })
        .collect();
    // Doubling the spread adds a near-constant increment.
    let increments: Vec<i64> = bytes
        .windows(2)
        .map(|w| w[1] as i64 - w[0] as i64)
        .collect();
    for w in increments.windows(2) {
        let rel = (w[0] - w[1]).abs() as f64 / w[0].max(1) as f64;
        assert!(rel < 0.2, "increments not constant: {increments:?}");
    }
    // 8x the spread costs well under 2x the memory.
    assert!(bytes[3] < bytes[0] * 2, "{bytes:?}");
}

/// Fig. 15: both datasets exhibit ARCH effects; campus-data more strongly
/// than car-data.
#[test]
fn fig15_shape_volatility_test_rejects_iid() {
    let h = 180;
    let alpha = 0.05;
    let residuals = |series: &tspdb::TimeSeries| {
        fit_arma(series.values(), 2, 0)
            .unwrap()
            .usable_residuals()
            .to_vec()
    };
    let campus = residuals(&campus_data().head(4000));
    let car = residuals(&car_data().head(4000));
    // Rejection at low lag orders (see EXPERIMENTS.md for why a clean
    // synthetic process cannot push the paper's literal Φ(m) statistic
    // past χ²_m at m = 8: the χ²₁ kurtosis of ε² caps the a²
    // autocorrelation, hence Φ ≈ K·R²/m decays below the growing
    // critical value).
    for m in [1usize, 2, 3] {
        let crit = chi_square_quantile(1.0 - alpha, m as f64);
        let (phi_campus, _) = mean_statistic_over_windows(&campus, h, 20, m, alpha).unwrap();
        let (phi_car, _) = mean_statistic_over_windows(&car, h, 20, m, alpha).unwrap();
        assert!(
            phi_campus > crit,
            "m {m}: campus Φ {phi_campus} ≤ χ² {crit}"
        );
        // The synthetic car-data realization sits within a few percent of
        // the critical value already at m = 3 (same Φ-decay as above), so
        // the strict rejection claim is only asserted at m ≤ 2.
        if m <= 2 {
            assert!(phi_car > crit, "m {m}: car Φ {phi_car} ≤ χ² {crit}");
            assert!(
                phi_campus > phi_car,
                "m {m}: campus Φ {phi_campus} not above car Φ {phi_car}"
            );
        }
    }
}

/// Fig. 12 shape: on campus-data the ARMA-GARCH density distance does not
/// improve with higher AR order (the paper's justification for low orders).
#[test]
fn fig12_shape_low_model_order_suffices() {
    let series = campus_data().head(900);
    let h = 60;
    let score = |p: usize| {
        let mut m = ArmaGarch::new(MetricConfig {
            p,
            q: 0,
            ..MetricConfig::default()
        })
        .unwrap();
        evaluate_metric(&mut m, &series, h, 8)
            .unwrap()
            .density_distance
    };
    let d2 = score(2);
    let d8 = score(8);
    assert!(
        d8 > d2 * 0.8,
        "order 8 ({d8}) dramatically better than order 2 ({d2}) — unexpected"
    );
}
