//! The lock-free read path under fire: N threads of `SELECT`s against one
//! `SharedEngine`, cross-checked against a single-threaded `Engine`, plus
//! properties pinning down that parallel and sequential Ω-view builds are
//! identical.

use proptest::prelude::*;
use tspdb::core::builder::OmegaViewBuilder;
use tspdb::core::OmegaSpec;
use tspdb::timeseries::generate::TemperatureGenerator;
use tspdb::{
    Engine, MetricConfig, SharedEngine, SharedSigmaCache, SigmaCacheConfig, ViewBuilderConfig,
};

fn config() -> ViewBuilderConfig {
    ViewBuilderConfig {
        window: 60,
        metric_config: MetricConfig {
            p: 1,
            q: 0,
            ..MetricConfig::default()
        },
        ..ViewBuilderConfig::default()
    }
}

const CREATE_VIEW: &str =
    "CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.25, n=12 FROM raw_values";

/// A mixed bag of SELects exercising predicates, the prob pseudo-column,
/// ordering, projection, limits, the probabilistic THRESHOLD/TOP clauses
/// and Monte-Carlo `WITH WORLDS` evaluation.
const QUERIES: [&str; 11] = [
    "SELECT * FROM pv",
    "SELECT * FROM pv WHERE prob >= 0.15",
    "SELECT t, lambda FROM pv WHERE lambda >= 0 ORDER BY prob DESC LIMIT 40",
    "SELECT * FROM pv WHERE prob >= 0.05 ORDER BY prob DESC LIMIT 100",
    "SELECT lambda FROM pv WHERE t >= 9000 AND t <= 20000",
    "SELECT * FROM raw_values WHERE t >= 12000 ORDER BY t ASC LIMIT 25",
    "SELECT * FROM pv THRESHOLD 0.1 TOP 50",
    "SELECT * FROM pv WHERE prob >= 0.05 WITH WORLDS 512 SEED 1",
    "SELECT t, COUNT(*), SUM(lambda) FROM pv GROUP BY t HAVING COUNT(*) >= 2",
    "SELECT COUNT(*) FROM pv THRESHOLD 0.05 WITH WORLDS 512 SEED 3",
    "EXPLAIN SELECT SUM(lambda) FROM pv GROUP BY t WITH WORLDS 256",
];

/// Renders a query output to comparable text (rows + probabilities).
fn fingerprint(out: &tspdb::probdb::QueryOutput) -> String {
    match out {
        tspdb::probdb::QueryOutput::Rows(t) => t.render(usize::MAX),
        tspdb::probdb::QueryOutput::ProbRows(t) => t.render(usize::MAX),
        tspdb::probdb::QueryOutput::Worlds(w) => w.fingerprint(),
        tspdb::probdb::QueryOutput::Aggregate(a) => a.fingerprint(),
        tspdb::probdb::QueryOutput::Explain(e) => e.to_string(),
        tspdb::probdb::QueryOutput::None => "none".to_string(),
    }
}

#[test]
fn eight_threads_of_selects_match_single_threaded_engine() {
    let series = TemperatureGenerator::default().generate(260);

    // Reference: the plain single-threaded engine.
    let mut reference = Engine::new(config());
    reference.load_series("raw_values", "r", &series).unwrap();
    reference.execute(CREATE_VIEW).unwrap();
    let expected: Vec<String> = QUERIES
        .iter()
        .map(|sql| fingerprint(&reference.query(sql).unwrap()))
        .collect();

    // Shared engine with identical content.
    let shared = SharedEngine::new(config());
    shared.load_series("raw_values", "r", &series).unwrap();
    shared.execute(CREATE_VIEW).unwrap();

    std::thread::scope(|s| {
        for worker in 0..8 {
            let shared = shared.clone();
            let expected = &expected;
            s.spawn(move || {
                // Each worker sweeps all queries repeatedly, phase-shifted
                // so different statements overlap in time.
                for round in 0..30 {
                    let q = (worker + round) % QUERIES.len();
                    let got = fingerprint(&shared.query(QUERIES[q]).unwrap());
                    assert_eq!(
                        got, expected[q],
                        "worker {worker} round {round}: query {q} diverged"
                    );
                }
            });
        }
    });
}

#[test]
fn shared_sigma_cache_stats_are_exact_under_contention() {
    let cache = SharedSigmaCache::build(
        0.1,
        10.0,
        OmegaSpec::new(0.1, 20).unwrap(),
        SigmaCacheConfig::default(),
    )
    .unwrap();
    std::thread::scope(|s| {
        for worker in 0..8 {
            let cache = cache.clone();
            s.spawn(move || {
                for i in 0..500 {
                    // Odd workers probe out of range half the time to
                    // exercise both counters.
                    let sigma = if worker % 2 == 1 && i % 2 == 0 {
                        50.0
                    } else {
                        0.1 + (i % 90) as f64 * 0.1
                    };
                    cache.probability_values(1.0, sigma);
                }
            });
        }
    });
    let stats = cache.stats();
    assert_eq!(stats.hits + stats.misses, 8 * 500);
    assert_eq!(stats.misses, 4 * 250);
}

proptest! {
    #[test]
    fn parallel_and_sequential_builds_are_identical(
        len in 70usize..160,
        threads in 2usize..9,
        delta_steps in 1usize..8,
        half_n in 1usize..7,
        cached in 0usize..2,
    ) {
        let series = TemperatureGenerator::default().generate(len);
        let omega = OmegaSpec::new(delta_steps as f64 * 0.1, half_n * 2).unwrap();
        let cache = if cached == 1 {
            Some(SigmaCacheConfig::default())
        } else {
            None
        };
        let build = |threads: usize| {
            OmegaViewBuilder::new(ViewBuilderConfig {
                threads,
                cache,
                ..config()
            })
            .unwrap()
            .build(&series, omega, "pv", None)
            .unwrap()
        };
        let sequential = build(1);
        let parallel = build(threads);
        prop_assert_eq!(&parallel.view, &sequential.view);
        prop_assert_eq!(&parallel.model, &sequential.model);
        prop_assert_eq!(parallel.failures, sequential.failures);
        // The σ-cache sees the same query stream either way.
        prop_assert_eq!(parallel.cache_stats, sequential.cache_stats);
        prop_assert_eq!(parallel.cache_len, sequential.cache_len);
    }

    #[test]
    fn parallel_builds_respect_time_bounds(
        len in 80usize..140,
        threads in 2usize..9,
        lo_idx in 60usize..70,
        span in 0usize..40,
    ) {
        let series = TemperatureGenerator::default().generate(len);
        let omega = OmegaSpec::new(0.5, 4).unwrap();
        let t_lo = series.timestamps()[lo_idx.min(len - 1)];
        let t_hi = series.timestamps()[(lo_idx + span).min(len - 1)];
        let built = OmegaViewBuilder::new(ViewBuilderConfig {
            threads,
            ..config()
        })
        .unwrap()
        .build(&series, omega, "pv", Some((t_lo, t_hi)))
        .unwrap();
        for row in &built.model {
            prop_assert!(row.time >= t_lo && row.time <= t_hi);
        }
        // Model rows stay in strictly increasing time order even when
        // assembled from per-thread segments.
        for pair in built.model.windows(2) {
            prop_assert!(pair[0].time < pair[1].time);
        }
    }
}
