//! End-to-end integration: SQL in, probabilistic views out, with
//! correctness cross-checked against closed-form Gaussian integrals.

use tspdb::stats::special::std_normal_cdf;
use tspdb::timeseries::generate::TemperatureGenerator;
use tspdb::{Engine, MetricConfig, MetricKind, SigmaCacheConfig, ViewBuilderConfig};

fn engine(cache: Option<SigmaCacheConfig>) -> Engine {
    Engine::new(ViewBuilderConfig {
        metric: MetricKind::ArmaGarch,
        metric_config: MetricConfig {
            p: 1,
            q: 0,
            ..MetricConfig::default()
        },
        window: 60,
        cache,
        ..ViewBuilderConfig::default()
    })
}

#[test]
fn sql_pipeline_produces_consistent_view() {
    let mut e = engine(None);
    let series = TemperatureGenerator::default().generate(200);
    e.load_series("raw_values", "r", &series).unwrap();
    e.execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.4, n=10 FROM raw_values")
        .unwrap();

    let view = e.db().prob_table("pv").unwrap();
    let build = e.last_build().unwrap();
    assert_eq!(view.len(), build.built.model.len() * 10);

    // Cross-check every tuple against the closed-form Gaussian mass from
    // the model table: rho = Phi((hi - r̂)/σ̂) − Phi((lo - r̂)/σ̂).
    let mut checked = 0;
    for m in &build.built.model {
        for (row, p) in view.iter() {
            if row[0].as_i64() != Some(m.time) {
                continue;
            }
            let lo = row[2].as_f64().unwrap();
            let hi = row[3].as_f64().unwrap();
            let expect = std_normal_cdf((hi - m.expected) / m.sigma)
                - std_normal_cdf((lo - m.expected) / m.sigma);
            assert!(
                (p - expect).abs() < 1e-9,
                "t {} λ {:?}: {} vs {}",
                m.time,
                row[1],
                p,
                expect
            );
            checked += 1;
        }
    }
    assert_eq!(checked, view.len());
}

#[test]
fn cached_view_respects_hellinger_tolerance() {
    let series = TemperatureGenerator::default().generate(260);

    let mut naive = engine(None);
    naive.load_series("raw_values", "r", &series).unwrap();
    naive
        .execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.2, n=20 FROM raw_values")
        .unwrap();
    let naive_view = naive.db().prob_table("pv").unwrap().clone();

    let mut cached = engine(Some(SigmaCacheConfig::default()));
    cached.load_series("raw_values", "r", &series).unwrap();
    cached
        .execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.2, n=20 FROM raw_values")
        .unwrap();
    let cached_view = cached.db().prob_table("pv").unwrap().clone();

    assert_eq!(naive_view.len(), cached_view.len());
    let mut max_err = 0.0f64;
    for ((ra, pa), (rb, pb)) in naive_view.iter().zip(cached_view.iter()) {
        assert_eq!(ra, rb, "rows must align");
        max_err = max_err.max((pa - pb).abs());
    }
    assert!(max_err < 0.02, "cache-induced error {max_err}");

    // Cache diagnostics made it through the engine.
    let lb = cached.last_build().unwrap();
    let stats = lb.built.cache_stats.unwrap();
    assert!(stats.hits > 0);
    assert_eq!(stats.misses, 0);
    assert!(lb.built.cache_bytes.unwrap() > 0);
}

#[test]
fn where_clause_and_prob_filters_compose() {
    let mut e = engine(None);
    let series = TemperatureGenerator::default().generate(160);
    e.load_series("raw_values", "r", &series).unwrap();
    let t0 = series.timestamps()[80];
    let t1 = series.timestamps()[99];
    e.execute(&format!(
        "CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.3, n=8 \
         FROM raw_values WHERE t >= {t0} AND t <= {t1}"
    ))
    .unwrap();
    let out = e
        .execute("SELECT t, lambda FROM pv WHERE prob >= 0.3 ORDER BY prob DESC")
        .unwrap();
    let rows = out.prob_rows().unwrap();
    assert!(!rows.is_empty());
    for (row, p) in rows.iter() {
        assert!(p >= 0.3);
        let t = row[0].as_i64().unwrap();
        assert!((t0..=t1).contains(&t));
    }
    // Probabilities are sorted descending.
    for w in rows.probs().windows(2) {
        assert!(w[0] >= w[1]);
    }
}

#[test]
fn views_are_replaceable_and_droppable() {
    let mut e = engine(None);
    let series = TemperatureGenerator::default().generate(120);
    e.load_series("raw_values", "r", &series).unwrap();
    let sql = "CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=4 FROM raw_values";
    e.execute(sql).unwrap();
    let first = e.db().prob_table("pv").unwrap().len();
    // Re-creating the same view succeeds (derived data).
    e.execute(sql).unwrap();
    assert_eq!(e.db().prob_table("pv").unwrap().len(), first);
    e.execute("DROP VIEW pv").unwrap();
    assert!(e.db().prob_table("pv").is_err());
    // The base table survives.
    assert!(e.db().table("raw_values").is_ok());
}

#[test]
fn per_metric_views_differ_in_dispersion() {
    // UT views have hard-edged uniform masses; ARMA-GARCH views track
    // conditional variance. Verify both build through SQL and differ.
    let series = TemperatureGenerator::default().generate(150);
    let mut e = engine(None);
    e.load_series("raw_values", "r", &series).unwrap();
    e.execute(
        "CREATE VIEW v_ut AS DENSITY r OVER t OMEGA delta=0.3, n=8 \
         FROM raw_values USING METRIC ut",
    )
    .unwrap();
    e.execute(
        "CREATE VIEW v_ag AS DENSITY r OVER t OMEGA delta=0.3, n=8 \
         FROM raw_values USING METRIC arma_garch",
    )
    .unwrap();
    let ut = e.db().prob_table("v_ut").unwrap();
    let ag = e.db().prob_table("v_ag").unwrap();
    assert_eq!(ut.len(), ag.len());
    let diff: f64 = ut
        .probs()
        .iter()
        .zip(ag.probs())
        .map(|(a, b)| (a - b).abs())
        .sum();
    assert!(diff > 1.0, "metric choice had no effect on the view");
}
