//! The persistent storage engine end-to-end: WAL crash points, recovery
//! ≡ never-crashed equivalence, and the determinism-across-media contract
//! (bit-identical fingerprints whether a tuple came from RAM, the page
//! cache, a cold disk read, or a post-crash replay).

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use tspdb::core::storage::{CheckpointCrashPoint, CrashPoint};
use tspdb::probdb::{QueryOutput, Value};
use tspdb::timeseries::generate::TemperatureGenerator;
use tspdb::{MetricConfig, SharedEngine, ViewBuilderConfig};

/// Minimal self-cleaning temp dir (no external crates in the offline
/// build).
struct TempDir(PathBuf);

impl TempDir {
    fn new() -> TempDir {
        use std::sync::atomic::{AtomicU64, Ordering};
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "tspdb-persistence-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn config() -> ViewBuilderConfig {
    ViewBuilderConfig {
        window: 60,
        metric_config: MetricConfig {
            p: 1,
            q: 0,
            ..MetricConfig::default()
        },
        ..ViewBuilderConfig::default()
    }
}

fn reopen(dir: &TempDir) -> SharedEngine {
    SharedEngine::open_persistent(dir.path(), config()).unwrap()
}

/// Render-based fingerprint: any drift in values, bits, ordering or
/// probabilities changes the string.
fn fingerprint(out: &QueryOutput) -> String {
    match out {
        QueryOutput::Rows(t) => t.render(usize::MAX),
        QueryOutput::ProbRows(t) => t.render(usize::MAX),
        QueryOutput::Worlds(w) => w.fingerprint(),
        QueryOutput::Aggregate(a) => a.fingerprint(),
        QueryOutput::Explain(e) => e.to_string(),
        QueryOutput::None => "none".to_string(),
    }
}

fn row_count(engine: &SharedEngine, table: &str) -> usize {
    engine
        .query(&format!("SELECT * FROM {table}"))
        .unwrap()
        .rows()
        .unwrap()
        .len()
}

#[test]
fn committed_writes_survive_reopen() {
    let dir = TempDir::new();
    {
        let engine = reopen(&dir);
        engine.execute("CREATE TABLE t (x INT)").unwrap();
        engine
            .execute("INSERT INTO t VALUES (1), (2), (3)")
            .unwrap();
    }
    let engine = reopen(&dir);
    assert_eq!(row_count(&engine, "t"), 3);
    // And the WAL is empty after the boot checkpoint: a second reopen
    // replays nothing and still sees the data.
    drop(engine);
    let engine = reopen(&dir);
    assert_eq!(row_count(&engine, "t"), 3);
}

#[test]
fn wal_crash_points_recover_exactly_the_committed_prefix() {
    let dir = TempDir::new();
    {
        let engine = reopen(&dir);
        engine.execute("CREATE TABLE t (x INT)").unwrap();
        engine.execute("INSERT INTO t VALUES (1)").unwrap();
    }

    // Pre-commit: the dying write never reached the log — it is lost, and
    // the handle is poisoned for everything after it.
    {
        let engine = reopen(&dir);
        engine
            .storage()
            .unwrap()
            .set_crash_point(Some(CrashPoint::PreCommit));
        assert!(engine.execute("INSERT INTO t VALUES (2)").is_err());
        assert!(engine.execute("INSERT INTO t VALUES (3)").is_err());
        // Reads still work on the poisoned engine: the catalog is intact.
        assert_eq!(row_count(&engine, "t"), 1);
    }
    assert_eq!(row_count(&reopen(&dir), "t"), 1);

    // Mid-record: a torn tail on disk. Recovery must detect it via the
    // checksum and discard it.
    {
        let engine = reopen(&dir);
        engine
            .storage()
            .unwrap()
            .set_crash_point(Some(CrashPoint::MidRecord));
        assert!(engine.execute("INSERT INTO t VALUES (2)").is_err());
    }
    assert_eq!(row_count(&reopen(&dir), "t"), 1);

    // Post-commit: the record was written and fsynced before the crash —
    // it is committed, and recovery must redo it even though the dying
    // process never applied it in memory.
    {
        let engine = reopen(&dir);
        engine
            .storage()
            .unwrap()
            .set_crash_point(Some(CrashPoint::PostCommit));
        assert!(engine.execute("INSERT INTO t VALUES (2)").is_err());
        // The dying process never saw the row...
        assert_eq!(row_count(&engine, "t"), 1);
    }
    // ...but recovery replays it.
    assert_eq!(row_count(&reopen(&dir), "t"), 2);
}

#[test]
fn disk_backed_scans_are_bit_identical_to_resident_ones() {
    let dir = TempDir::new();
    let engine = reopen(&dir);
    let series = TemperatureGenerator::default().generate(150);
    engine.load_series("raw_values", "r", &series).unwrap();
    engine
        .execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=6 FROM raw_values")
        .unwrap();

    // Every statement shape, including Monte-Carlo with a pinned seed and
    // the synopsis strategy — the strategies that would expose any drift
    // in tuple bits or ordering.
    let queries = [
        "SELECT * FROM raw_values ORDER BY r DESC LIMIT 20",
        "SELECT * FROM pv WHERE prob >= 0.1 ORDER BY prob DESC",
        "SELECT t, lambda FROM pv THRESHOLD 0.05",
        "SELECT COUNT(*) FROM pv GROUP BY WINDOW(t, 25)",
        "SELECT * FROM pv WITH WORLDS 500 SEED 42",
        "SELECT COUNT(*), SUM(lambda) FROM pv HAVING COUNT(*) >= 2 WITH WORLDS 400 SEED 7",
        "SELECT COUNT(*) FROM pv WITH SYNOPSIS",
    ];
    let resident: Vec<String> = queries
        .iter()
        .map(|q| fingerprint(&engine.query(q).unwrap()))
        .collect();

    // Evict the view: its scans now come from disk through the page
    // cache, behind the same scan leaf. (Evicting checkpoints first, and
    // a checkpoint re-materializes everything — so evict `pv` last.)
    engine.evict_to_disk("raw_values").unwrap();
    engine.evict_to_disk("pv").unwrap();
    let report = engine.query("EXPLAIN SELECT * FROM pv").unwrap();
    let report = fingerprint(&report);
    assert!(
        report.contains("on disk (via scan source)"),
        "explain must show the disk-backed scan: {report}"
    );
    for (q, expected) in queries.iter().zip(&resident) {
        let got = fingerprint(&engine.query(q).unwrap());
        assert_eq!(&got, expected, "evicted scan differs for {q}");
    }

    // Cold reboot: pages come from a fresh file read, then the cache.
    drop(engine);
    let engine = reopen(&dir);
    for (q, expected) in queries.iter().zip(&resident) {
        let got = fingerprint(&engine.query(q).unwrap());
        assert_eq!(&got, expected, "post-reboot scan differs for {q}");
    }

    // And once more evicted after the reboot — cold disk read path.
    engine.evict_to_disk("pv").unwrap();
    for (q, expected) in queries.iter().zip(&resident) {
        let got = fingerprint(&engine.query(q).unwrap());
        assert_eq!(&got, expected, "post-reboot evicted scan differs for {q}");
    }
}

#[test]
fn drop_of_a_checkpointed_relation_stays_dropped() {
    let dir = TempDir::new();
    {
        let engine = reopen(&dir);
        engine.execute("CREATE TABLE t (x INT)").unwrap();
        engine.execute("INSERT INTO t VALUES (1)").unwrap();
        engine.checkpoint().unwrap();
        engine.execute("DROP TABLE t").unwrap();
        // The pages are still in the checkpoint file, but the scan source
        // must not resurrect the relation.
        assert!(engine.query("SELECT * FROM t").is_err());
    }
    let engine = reopen(&dir);
    assert!(
        engine.query("SELECT * FROM t").is_err(),
        "drop must survive recovery"
    );
}

#[test]
fn load_series_is_journaled() {
    let dir = TempDir::new();
    let series = TemperatureGenerator::default().generate(80);
    let expected;
    {
        let engine = reopen(&dir);
        engine.load_series("raw_values", "r", &series).unwrap();
        expected = fingerprint(&engine.query("SELECT * FROM raw_values").unwrap());
    }
    let engine = reopen(&dir);
    let got = fingerprint(&engine.query("SELECT * FROM raw_values").unwrap());
    assert_eq!(
        got, expected,
        "a programmatic load must replay bit-identically"
    );
}

/// Deterministic `(t INT, r FLOAT)` rows continuing a temperature series
/// past its generated prefix — timestamps strictly increase, so appends
/// take the suffix view-maintenance path.
fn synthetic_rows(range: std::ops::Range<i64>) -> Vec<Vec<Value>> {
    range
        .map(|t| {
            vec![
                Value::Int(t),
                Value::Float(20.0 + (t as f64 * 0.37).sin() * 5.0),
            ]
        })
        .collect()
}

/// The crash-point matrix for incremental checkpoints: whichever window of
/// the shadow-write protocol the process dies in — half a data page on
/// disk, all data pages durable but the meta slot not yet committed, or
/// the meta committed but the WAL not yet reset — recovery must equal an
/// engine that never crashed, bit-for-bit, across all three evaluation
/// strategies (exact, Monte-Carlo worlds with a pinned seed, synopsis).
#[test]
fn checkpoint_crash_points_recover_bit_identical_state() {
    let queries = [
        "SELECT * FROM raw_values ORDER BY r DESC LIMIT 20",
        "SELECT * FROM pv WHERE prob >= 0.1 ORDER BY prob DESC",
        "SELECT t, lambda FROM pv THRESHOLD 0.05",
        "SELECT COUNT(*) FROM pv GROUP BY WINDOW(t, 25)",
        "SELECT * FROM pv WITH WORLDS 500 SEED 42",
        "SELECT COUNT(*), SUM(lambda) FROM pv HAVING COUNT(*) >= 2 WITH WORLDS 400 SEED 7",
        "SELECT COUNT(*) FROM pv WITH SYNOPSIS",
    ];
    let series = TemperatureGenerator::default().generate(90);
    for point in [
        CheckpointCrashPoint::MidPage,
        CheckpointCrashPoint::AfterPages,
        CheckpointCrashPoint::AfterMeta,
    ] {
        let dir = TempDir::new();
        {
            let engine = reopen(&dir);
            engine.load_series("raw_values", "r", &series).unwrap();
            engine
                .execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=6 FROM raw_values")
                .unwrap();
            // First checkpoint: full writes, establishes the on-disk base.
            engine.checkpoint().unwrap();
            // Dirty the table again so the dying checkpoint has append
            // pages to write, then die at the injected window.
            engine
                .append_rows("raw_values", synthetic_rows(90..120))
                .unwrap();
            engine
                .storage()
                .unwrap()
                .set_checkpoint_crash_point(Some(point));
            assert!(
                engine.checkpoint().is_err(),
                "{point:?}: the injected crash must surface"
            );
        }
        let recovered = reopen(&dir);
        let twin = SharedEngine::new(config());
        twin.load_series("raw_values", "r", &series).unwrap();
        twin.execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=6 FROM raw_values")
            .unwrap();
        twin.append_rows("raw_values", synthetic_rows(90..120))
            .unwrap();
        for q in &queries {
            assert_eq!(
                fingerprint(&recovered.query(q).unwrap()),
                fingerprint(&twin.query(q).unwrap()),
                "{point:?}: recovery diverged from the never-crashed twin for {q}"
            );
        }
    }
}

/// A checkpointed page whose bytes rot on disk must surface as a
/// checksummed storage error naming the page — never as silently wrong
/// tuples.
#[test]
fn torn_checkpointed_page_is_reported_with_its_page_id() {
    const PAGE_SIZE: usize = 4096;
    const LEAF_TAG: u8 = 4;
    let dir = TempDir::new();
    {
        let engine = reopen(&dir);
        engine.execute("CREATE TABLE t (x INT)").unwrap();
        for chunk in 0..4 {
            let values: Vec<String> = (chunk * 50..(chunk + 1) * 50)
                .map(|v| format!("({v})"))
                .collect();
            engine
                .execute(&format!("INSERT INTO t VALUES {}", values.join(", ")))
                .unwrap();
        }
        engine.checkpoint().unwrap();
    }
    // Flip payload bytes inside the first leaf page of the database file.
    let db_file = dir.path().join(tspdb::core::storage::DB_FILE);
    let mut bytes = std::fs::read(&db_file).unwrap();
    let leaf_off = (0..bytes.len())
        .step_by(PAGE_SIZE)
        .find(|&off| bytes[off] == LEAF_TAG)
        .expect("checkpoint file holds at least one leaf page");
    let page_id = (leaf_off / PAGE_SIZE) as u64;
    for delta in 100..108 {
        bytes[leaf_off + delta] ^= 0xFF;
    }
    std::fs::write(&db_file, &bytes).unwrap();

    let err = SharedEngine::open_persistent(dir.path(), config())
        .expect_err("recovery must refuse the corrupt page");
    let msg = format!("{err}");
    assert!(
        msg.contains(&format!("page {page_id}")) && msg.contains("corrupt"),
        "error must name the corrupt page: {msg}"
    );
}

proptest! {
    /// Random interleavings of append flushes, incremental checkpoints,
    /// evictions and reboots never drift from an in-memory twin that saw
    /// exactly the same appends — the canonical rendering of every query
    /// matches at every step.
    #[test]
    fn interleaved_checkpoints_evictions_and_reboots_track_the_twin(
        steps in proptest::collection::vec(
            (0u32..4, proptest::collection::vec(-100i64..100, 1..6)),
            1..10,
        ),
    ) {
        let dir = TempDir::new();
        let mut engine = reopen(&dir);
        engine.execute("CREATE TABLE t (x INT)").unwrap();
        let twin = SharedEngine::new(config());
        twin.execute("CREATE TABLE t (x INT)").unwrap();
        for (op, vals) in steps {
            match op {
                0 => {
                    let rows: Vec<Vec<Value>> =
                        vals.iter().map(|v| vec![Value::Int(*v)]).collect();
                    engine.append_rows("t", rows.clone()).unwrap();
                    twin.append_rows("t", rows).unwrap();
                }
                1 => engine.checkpoint().unwrap(),
                // Eviction checkpoints first, so later appends resurrect
                // the relation from disk before extending it. Evicting an
                // already-evicted relation reports it unknown (not
                // resident); any other failure is a real bug.
                2 => {
                    if let Err(e) = engine.evict_to_disk("t") {
                        prop_assert!(
                            format!("{e}").contains("unknown table"),
                            "unexpected eviction failure: {}", e
                        );
                    }
                }
                _ => {
                    drop(engine);
                    engine = reopen(&dir);
                }
            }
            for sql in ["SELECT * FROM t", "SELECT COUNT(*) FROM t GROUP BY WINDOW(x, 64)"] {
                prop_assert_eq!(
                    fingerprint(&engine.query(sql).unwrap()),
                    fingerprint(&twin.query(sql).unwrap()),
                    "divergence after op {} at {}", op, sql
                );
            }
        }
    }

    /// Recovery ≡ never-crashed: for any prefix of committed inserts and
    /// any crash point on the next one, the recovered database equals an
    /// in-memory engine that executed exactly the committed prefix and
    /// never crashed.
    #[test]
    fn recovery_equals_never_crashed_state(
        values in proptest::collection::vec(-1_000i64..1_000, 1..16),
        crash_at in 0usize..16,
        point_sel in 0u32..3,
    ) {
        let crash_at = crash_at % values.len();
        let point = match point_sel {
            0 => CrashPoint::PreCommit,
            1 => CrashPoint::MidRecord,
            _ => CrashPoint::PostCommit,
        };

        let dir = TempDir::new();
        {
            let engine = reopen(&dir);
            engine.execute("CREATE TABLE t (x INT)").unwrap();
            for (i, v) in values.iter().enumerate() {
                let stmt = format!("INSERT INTO t VALUES ({v})");
                if i == crash_at {
                    engine.storage().unwrap().set_crash_point(Some(point));
                    prop_assert!(engine.execute(&stmt).is_err());
                    break;
                }
                engine.execute(&stmt).unwrap();
            }
        }
        let recovered = reopen(&dir);
        let got = fingerprint(&recovered.query("SELECT * FROM t").unwrap());

        // The committed prefix: everything before the crash, plus the
        // dying statement itself iff it crashed *after* the WAL fsync.
        let committed = crash_at + usize::from(point == CrashPoint::PostCommit);
        let reference = SharedEngine::new(config());
        reference.execute("CREATE TABLE t (x INT)").unwrap();
        for v in &values[..committed] {
            reference.execute(&format!("INSERT INTO t VALUES ({v})")).unwrap();
        }
        let want = fingerprint(&reference.query("SELECT * FROM t").unwrap());
        prop_assert_eq!(got, want);
    }
}
