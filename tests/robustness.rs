//! Failure-injection and degenerate-input robustness: the engine must
//! degrade gracefully (typed errors, skipped windows), never panic.

use tspdb::core::cgarch::{CGarch, CGarchConfig};
use tspdb::core::metrics::{make_metric, MetricKind};
use tspdb::core::online::OnlineViewBuilder;
use tspdb::timeseries::generate::TemperatureGenerator;
use tspdb::{Engine, MetricConfig, OmegaSpec, TimeSeries, ViewBuilderConfig};

fn all_kinds() -> [MetricKind; 5] {
    MetricKind::all()
}

#[test]
fn metrics_reject_nan_windows_without_panicking() {
    let mut window = TemperatureGenerator::default()
        .generate(80)
        .values()
        .to_vec();
    window[40] = f64::NAN;
    for kind in all_kinds() {
        let mut m = make_metric(kind, MetricConfig::default()).unwrap();
        // Either a typed error or (for the cleaning metric) a sane result —
        // never a panic, never a NaN density.
        match m.infer(&window) {
            Ok(inf) => {
                assert!(inf.expected.is_finite(), "{kind:?} produced NaN r̂");
                assert!(inf.density.var().is_finite());
            }
            Err(e) => {
                let _ = e.to_string(); // error formats cleanly
            }
        }
    }
}

#[test]
fn metrics_reject_infinite_windows_without_panicking() {
    let mut window = TemperatureGenerator::default()
        .generate(80)
        .values()
        .to_vec();
    window[10] = f64::INFINITY;
    window[60] = f64::NEG_INFINITY;
    for kind in all_kinds() {
        let mut m = make_metric(kind, MetricConfig::default()).unwrap();
        match m.infer(&window) {
            Ok(inf) => assert!(inf.expected.is_finite()),
            Err(e) => {
                let _ = e.to_string();
            }
        }
    }
}

#[test]
fn constant_and_near_constant_series_produce_views() {
    // A flat-lined sensor still deserves a (degenerate, tight) view.
    let series = TimeSeries::regular("flat", 0, 1, vec![21.5; 150]);
    let mut engine = Engine::new(ViewBuilderConfig {
        window: 60,
        ..ViewBuilderConfig::default()
    });
    engine.load_series("raw_values", "r", &series).unwrap();
    engine
        .execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.1, n=4 FROM raw_values")
        .unwrap();
    let view = engine.db().prob_table("pv").unwrap();
    assert_eq!(view.len(), 90 * 4);
    // The density collapses around 21.5: central cells carry ~all mass.
    let central_mass: f64 = view
        .iter()
        .filter(|(row, _)| {
            let l = row[1].as_i64().unwrap();
            (-1..=0).contains(&l)
        })
        .map(|(_, p)| p)
        .sum::<f64>()
        / 90.0;
    assert!(central_mass > 0.95, "central mass {central_mass}");
}

#[test]
fn engine_with_poisoned_region_skips_failed_windows() {
    let mut values = TemperatureGenerator::default()
        .generate(200)
        .values()
        .to_vec();
    values[150] = f64::NAN;
    let series = TimeSeries::regular("t", 0, 1, values);
    let mut engine = Engine::new(ViewBuilderConfig {
        window: 60,
        ..ViewBuilderConfig::default()
    });
    engine.load_series("raw_values", "r", &series).unwrap();
    engine
        .execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=4 FROM raw_values")
        .unwrap();
    let build = engine.last_build().unwrap();
    // Windows containing the NaN failed; clean windows produced tuples.
    assert!(build.built.failures > 0, "poisoned windows should fail");
    assert!(
        build.built.model.len() >= 80,
        "clean region should still be served: {} rows",
        build.built.model.len()
    );
    // Every emitted probability is a valid number.
    for (_, p) in engine.db().prob_table("pv").unwrap().iter() {
        assert!(p.is_finite() && (0.0..=1.0).contains(&p));
    }
}

#[test]
fn cgarch_rides_through_sensor_dropouts() {
    let series = TemperatureGenerator::default().generate(300);
    let mut values = series.values().to_vec();
    for i in [80usize, 81, 82, 200] {
        values[i] = f64::NAN;
    }
    let mut cg = CGarch::new(CGarchConfig::default(), MetricConfig::default()).unwrap();
    let report = cg.process(&values).unwrap();
    assert_eq!(report.steps, 300);
    // Dropouts are flagged...
    for i in [80usize, 81, 82, 200] {
        assert!(report.detections.contains(&i), "dropout {i} not flagged");
    }
    // ...and the inferences stay finite throughout.
    for (_, inf) in &report.inferences {
        assert!(inf.expected.is_finite());
        assert!(inf.density.var().is_finite());
    }
}

#[test]
fn online_and_offline_modes_agree() {
    // Same metric, same windows ⇒ identical densities, whether streamed or
    // built offline. (VT is deterministic, making bit-equality checkable.)
    let series = TemperatureGenerator::default().generate(140);
    let omega = OmegaSpec::new(0.3, 6).unwrap();
    let h = 60;

    let offline = tspdb::core::builder::OmegaViewBuilder::new(ViewBuilderConfig {
        metric: MetricKind::VariableThresholding,
        metric_config: MetricConfig::default(),
        window: h,
        cache: None,
        ..ViewBuilderConfig::default()
    })
    .unwrap()
    .build(&series, omega, "pv", None)
    .unwrap();

    let mut online = OnlineViewBuilder::new(
        MetricKind::VariableThresholding,
        MetricConfig::default(),
        h,
        omega,
        None,
    )
    .unwrap();
    let mut streamed = Vec::new();
    for obs in series.iter() {
        if let Some(row) = online.push(obs.time, obs.value).unwrap() {
            streamed.push(row);
        }
    }

    assert_eq!(streamed.len(), offline.model.len());
    for (row, model) in streamed.iter().zip(&offline.model) {
        assert_eq!(row.time, model.time);
        assert!((row.inference.expected - model.expected).abs() < 1e-12);
        assert!((row.inference.density.std() - model.sigma).abs() < 1e-12);
    }
}

#[test]
fn sql_errors_are_typed_not_panics() {
    let mut engine = Engine::default();
    let bad_statements = [
        "SELECT * FROM missing_table",
        "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=4 FROM nowhere",
        "CREATE TABLE t (a NOTATYPE)",
        "INSERT INTO nothing VALUES (1)",
        "DROP TABLE ghost",
        "gibberish statement",
    ];
    for sql in bad_statements {
        let err = engine.execute(sql).unwrap_err();
        assert!(!err.to_string().is_empty(), "{sql}");
    }
}

#[test]
fn window_larger_than_series_is_a_typed_error() {
    let series = TemperatureGenerator::default().generate(50);
    let mut engine = Engine::new(ViewBuilderConfig {
        window: 60,
        ..ViewBuilderConfig::default()
    });
    engine.load_series("raw_values", "r", &series).unwrap();
    // The view builds but is empty (no window ever fills) — not an error,
    // matching SQL semantics of an empty result.
    engine
        .execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=4 FROM raw_values")
        .unwrap();
    assert!(engine.db().prob_table("pv").unwrap().is_empty());

    // An explicitly undersized WINDOW clause, however, is rejected.
    let err = engine
        .execute(
            "CREATE VIEW pv2 AS DENSITY r OVER t OMEGA delta=0.5, n=4 \
             FROM raw_values WINDOW 4",
        )
        .unwrap_err();
    assert!(err.to_string().contains("window"));
}
