//! Incremental checkpoint cost as a function of the dirty fraction.
//!
//! A checkpoint that appends 1% of a 100k-row table must write O(dirty)
//! pages, not O(table): the structural fact is pinned with a hard
//! assertion on the storage engine's pages-written counter (an appended
//! 1% writes under a tenth of a full rewrite's pages) before anything is
//! timed, so the measured latency gap can only come from the shadow-write
//! protocol actually skipping clean pages. The timings land in the
//! `CRITERION_JSON` artifact next to every other bench, alongside
//! explicit page-count lines for the artifact diff.

use criterion::{criterion_group, criterion_main, Criterion};
use std::cell::RefCell;
use std::path::PathBuf;
use tspdb_probdb::{ColumnType, ProbTable, Relation, Schema, Value};
use tspdb_storage::{CheckpointSource, Storage, StorageOptions};

/// Rows in the checkpointed base table.
const BASE_ROWS: usize = 100_000;

/// A self-cleaning scratch directory for one storage engine.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("tspdb-storage-bench-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create bench data dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn open_storage(dir: &TempDir) -> Storage {
    let (storage, _) = Storage::open(&dir.0, StorageOptions::default()).expect("open storage");
    storage
}

/// Appends `n` deterministic synthetic readings starting at row `from`.
fn push_rows(table: &mut ProbTable, from: usize, n: usize) {
    for i in from..from + n {
        table
            .insert(
                vec![Value::Int(i as i64), Value::Float(0.1 + i as f64 * 1e-6)],
                ((i % 97) + 1) as f64 / 100.0,
            )
            .expect("insert bench row");
    }
}

fn base_table() -> ProbTable {
    let schema = Schema::of(&[("t", ColumnType::Int), ("r", ColumnType::Float)]);
    let mut table = ProbTable::new("pv", schema);
    push_rows(&mut table, 0, BASE_ROWS);
    table
}

/// Appends one measurement in the criterion shim's JSON-lines shape.
fn report_json(name: &str, value: f64, iters: usize) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!("{{\"name\":\"{name}\",\"ns_per_iter\":{value},\"iters\":{iters}}}\n");
    if let Err(e) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()))
    {
        eprintln!("storage bench: cannot append to CRITERION_JSON={path}: {e}");
    }
}

fn bench_checkpoint(c: &mut Criterion) {
    // Structural pin: an appended 1% writes under a tenth of the pages a
    // full rewrite writes. Deterministic, so asserted rather than timed.
    {
        let dir = TempDir::new("pin");
        let storage = open_storage(&dir);
        let mut table = base_table();
        let full = storage
            .checkpoint(&[Relation::Probabilistic(table.clone())])
            .expect("full checkpoint");
        push_rows(&mut table, BASE_ROWS, BASE_ROWS / 100);
        let rel = Relation::Probabilistic(table);
        let incr = storage
            .checkpoint_incremental(&[CheckpointSource::Append(&rel)])
            .expect("incremental checkpoint");
        assert!(
            incr.pages_written * 10 < full.pages_written,
            "1% append wrote {} pages against {} for the full rewrite",
            incr.pages_written,
            full.pages_written
        );
        report_json(
            "storage_checkpoint/pages/full_rewrite",
            full.pages_written as f64,
            1,
        );
        report_json(
            "storage_checkpoint/pages/append_1pct",
            incr.pages_written as f64,
            1,
        );
    }

    let mut group = c.benchmark_group("storage_checkpoint");
    for (label, pct) in [("append_1pct", 1usize), ("append_10pct", 10)] {
        let dir = TempDir::new(label);
        let storage = open_storage(&dir);
        let rel = RefCell::new(Relation::Probabilistic(base_table()));
        storage
            .checkpoint_incremental(&[CheckpointSource::Rewrite(&rel.borrow())])
            .expect("base checkpoint");
        let delta = BASE_ROWS * pct / 100;
        group.bench_function(label, |b| {
            b.iter(|| {
                let mut rel = rel.borrow_mut();
                let Relation::Probabilistic(table) = &mut *rel else {
                    unreachable!("bench table is probabilistic");
                };
                let from = table.len();
                push_rows(table, from, delta);
                storage
                    .checkpoint_incremental(&[CheckpointSource::Append(&rel)])
                    .expect("append checkpoint")
            })
        });
    }
    // 100% dirty: everything rewritten, the old whole-file cost.
    {
        let dir = TempDir::new("rewrite");
        let storage = open_storage(&dir);
        let rel = Relation::Probabilistic(base_table());
        group.bench_function("rewrite_100pct", |b| {
            b.iter(|| {
                storage
                    .checkpoint_incremental(&[CheckpointSource::Rewrite(&rel)])
                    .expect("full checkpoint")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_checkpoint);
criterion_main!(benches);
