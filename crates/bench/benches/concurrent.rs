//! Read-path scaling benchmarks: the lock-free σ-cache and `SharedEngine`
//! against Mutex-serialized baselines at 1/2/4/8 threads.
//!
//! The old `SharedSigmaCache` took a `Mutex` on every lookup because
//! `probability_values` needed `&mut self` to bump the hit/miss counters;
//! the refactor made lookups `&self` with atomic counters. These benches
//! measure what that buys: per-lookup latency under contention should stay
//! flat for the lock-free path and degrade for the Mutex baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Mutex;
use std::time::Instant;
use tspdb_core::sigma_cache::{SigmaCache, SigmaCacheConfig};
use tspdb_core::{Engine, MetricConfig, OmegaSpec, SharedEngine, ViewBuilderConfig};
use tspdb_timeseries::generate::TemperatureGenerator;

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Lookups per thread per measurement.
const LOOKUPS: usize = 10_000;
/// SELECTs per thread per measurement.
const SELECTS: usize = 50;

fn cache() -> SigmaCache {
    // The paper's view parameters: Δ = 0.05, n = 300, H′ = 0.01.
    let omega = OmegaSpec::new(0.05, 300).unwrap();
    SigmaCache::build(0.05, 2.61, omega, SigmaCacheConfig::default()).unwrap()
}

/// Runs `work(thread_index)` on `threads` threads at once and returns the
/// wall-clock of the slowest.
fn run_threads(threads: usize, work: impl Fn(usize) + Sync) -> std::time::Duration {
    let started = Instant::now();
    let work = &work;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads).map(|i| s.spawn(move || work(i))).collect();
        for h in handles {
            h.join().unwrap();
        }
    });
    started.elapsed()
}

fn bench_sigma_cache_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sigma_cache_scaling");
    group.sample_size(10);

    // Baseline: every lookup behind one Mutex (the pre-refactor design).
    let locked = Mutex::new(cache());
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("mutex", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    run_threads(threads, |worker| {
                        for i in 0..LOOKUPS {
                            let sigma = 0.05 + ((worker * LOOKUPS + i) % 256) as f64 * 0.01;
                            std::hint::black_box(
                                locked.lock().unwrap().probability_values(10.0, sigma),
                            );
                        }
                    })
                })
            },
        );
    }

    // The lock-free path: shared reference, atomic counters.
    let shared = cache();
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("lock_free", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    run_threads(threads, |worker| {
                        for i in 0..LOOKUPS {
                            let sigma = 0.05 + ((worker * LOOKUPS + i) % 256) as f64 * 0.01;
                            std::hint::black_box(shared.probability_values(10.0, sigma));
                        }
                    })
                })
            },
        );
    }
    group.finish();
}

fn view_config() -> ViewBuilderConfig {
    ViewBuilderConfig {
        window: 60,
        metric_config: MetricConfig {
            p: 1,
            q: 0,
            ..MetricConfig::default()
        },
        ..ViewBuilderConfig::default()
    }
}

const SELECT_SQL: &str = "SELECT * FROM pv WHERE prob >= 0.1 ORDER BY prob DESC LIMIT 20";

fn bench_select_scaling(c: &mut Criterion) {
    let series = TemperatureGenerator::default().generate(360);

    // Baseline: one engine behind a Mutex — SELECTs serialize.
    let mut engine = Engine::new(view_config());
    engine.load_series("raw_values", "r", &series).unwrap();
    engine
        .execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.1, n=20 FROM raw_values")
        .unwrap();
    let locked = Mutex::new(engine);

    // Lock-free read path: SharedEngine, SELECTs share the read lock.
    let shared = SharedEngine::new(view_config());
    shared.load_series("raw_values", "r", &series).unwrap();
    shared
        .execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.1, n=20 FROM raw_values")
        .unwrap();

    let mut group = c.benchmark_group("select_scaling");
    group.sample_size(10);
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("mutex_engine", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    run_threads(threads, |_| {
                        for _ in 0..SELECTS {
                            std::hint::black_box(locked.lock().unwrap().query(SELECT_SQL).unwrap());
                        }
                    })
                })
            },
        );
    }
    for threads in THREAD_COUNTS {
        group.bench_with_input(
            BenchmarkId::new("shared_engine", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    run_threads(threads, |_| {
                        for _ in 0..SELECTS {
                            std::hint::black_box(shared.query(SELECT_SQL).unwrap());
                        }
                    })
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sigma_cache_scaling, bench_select_scaling);
criterion_main!(benches);
