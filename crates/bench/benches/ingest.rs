//! Streaming-append throughput: group commit (one WAL fsync per 64-row
//! batch) against the fsync-per-statement `INSERT` path it replaces.
//!
//! The structural fact behind the speedup is pinned with hard assertions
//! — exactly one fsync per appended batch, exactly one per journaled
//! statement — so the measured ratio can only come from the amortization
//! the ingest subsystem claims, not from a broken counter. The measured
//! numbers land in the `CRITERION_JSON` artifact next to every other
//! bench, plus an explicit `ingest_append/speedup` line with the ratio.

use criterion::{criterion_group, criterion_main, Criterion};
use std::cell::Cell;
use std::path::PathBuf;
use std::time::Instant;
use tspdb_core::{SharedEngine, ViewBuilderConfig};
use tspdb_probdb::Value;

/// Rows per append batch — the issue's pinned comparison point.
const BATCH: usize = 64;

/// A self-cleaning scratch directory for one persistent engine.
struct TempDir(PathBuf);

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let dir =
            std::env::temp_dir().join(format!("tspdb-ingest-bench-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create bench data dir");
        TempDir(dir)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn persistent_engine(dir: &TempDir) -> SharedEngine {
    let engine = SharedEngine::open_persistent(&dir.0, ViewBuilderConfig::default())
        .expect("open persistent engine");
    engine
        .execute("CREATE TABLE s (t INT, r FLOAT)")
        .expect("create append target");
    engine
}

/// `n` synthetic readings starting at time `from` — the same shape both
/// paths ingest, so the comparison is fsync policy and nothing else.
fn rows(from: i64, n: usize) -> Vec<Vec<Value>> {
    (0..n as i64)
        .map(|i| {
            let t = from + i;
            vec![
                Value::Int(t),
                Value::Float(20.0 + 3.0 * (t as f64 * 0.21).sin()),
            ]
        })
        .collect()
}

/// Ingests one batch through per-statement `INSERT`s: parse, journal and
/// fsync once per row.
fn insert_per_statement(engine: &SharedEngine, from: i64) {
    for row in rows(from, BATCH) {
        let (Value::Int(t), Value::Float(r)) = (&row[0], &row[1]) else {
            unreachable!("rows() yields (Int, Float)");
        };
        engine
            .execute(&format!("INSERT INTO s VALUES ({t}, {r})"))
            .expect("statement insert");
    }
}

/// Appends one measurement in the criterion shim's JSON-lines shape.
fn report_json(name: &str, ns_per_iter: f64, iters: usize) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!("{{\"name\":\"{name}\",\"ns_per_iter\":{ns_per_iter},\"iters\":{iters}}}\n");
    if let Err(e) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()))
    {
        eprintln!("ingest bench: cannot append to CRITERION_JSON={path}: {e}");
    }
}

fn bench_group_commit(c: &mut Criterion) {
    // Structural pin: the batch path costs ONE fsync, the statement path
    // costs BATCH of them. Deterministic, so asserted rather than timed.
    {
        let dir = TempDir::new("pin");
        let engine = persistent_engine(&dir);
        let storage = engine.storage().expect("persistent engine").clone();
        let before = storage.wal_fsyncs();
        engine
            .append_rows("s", rows(0, BATCH))
            .expect("batched append");
        assert_eq!(
            storage.wal_fsyncs(),
            before + 1,
            "group commit must amortize the batch into one fsync"
        );
        let before = storage.wal_fsyncs();
        insert_per_statement(&engine, BATCH as i64);
        assert_eq!(
            storage.wal_fsyncs(),
            before + BATCH as u64,
            "the statement path must fsync once per INSERT"
        );
    }

    let mut group = c.benchmark_group("ingest_append");

    let stmt_dir = TempDir::new("per-stmt");
    let stmt_engine = persistent_engine(&stmt_dir);
    let stmt_t = Cell::new(0i64);
    group.bench_function("fsync_per_statement/64", |b| {
        b.iter(|| {
            let from = stmt_t.get();
            stmt_t.set(from + BATCH as i64);
            insert_per_statement(&stmt_engine, from);
        })
    });

    let batch_dir = TempDir::new("group-commit");
    let batch_engine = persistent_engine(&batch_dir);
    let batch_t = Cell::new(0i64);
    group.bench_function("group_commit/64", |b| {
        b.iter(|| {
            let from = batch_t.get();
            batch_t.set(from + BATCH as i64);
            batch_engine
                .append_rows("s", rows(from, BATCH))
                .expect("batched append")
        })
    });
    group.finish();

    // A fixed-work head-to-head for the artifact: the same 20 batches
    // through both paths, reported as an explicit speedup figure.
    const HEAD_TO_HEAD: usize = 20;
    let stmt_base = stmt_t.get();
    let started = Instant::now();
    for i in 0..HEAD_TO_HEAD {
        insert_per_statement(&stmt_engine, stmt_base + (i * BATCH) as i64);
    }
    let per_statement = started.elapsed();
    let batch_base = batch_t.get();
    let started = Instant::now();
    for i in 0..HEAD_TO_HEAD {
        batch_engine
            .append_rows("s", rows(batch_base + (i * BATCH) as i64, BATCH))
            .expect("batched append");
    }
    let grouped = started.elapsed();
    let speedup = per_statement.as_secs_f64() / grouped.as_secs_f64().max(f64::MIN_POSITIVE);
    println!(
        "ingest_append/speedup: group commit {speedup:.1}x faster than \
         fsync-per-statement over {HEAD_TO_HEAD} batches of {BATCH}"
    );
    report_json("ingest_append/speedup", speedup, HEAD_TO_HEAD);
}

criterion_group!(benches, bench_group_commit);
criterion_main!(benches);
