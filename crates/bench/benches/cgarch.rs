//! C-GARCH vs plain ARMA-GARCH per-value cost on a corrupted stream (the
//! micro-benchmark behind Fig. 13b), plus the successive variance
//! reduction filter in isolation.

use criterion::{criterion_group, criterion_main, Criterion};
use tspdb_core::cgarch::{CGarch, CGarchConfig};
use tspdb_core::metrics::{ArmaGarch, DynamicDensityMetric, MetricConfig};
use tspdb_core::svr::svr_filter;
use tspdb_timeseries::datasets::campus_data;
use tspdb_timeseries::errors::{inject_spikes, SpikeConfig};

fn bench_cgarch(c: &mut Criterion) {
    let h = 60;
    let series = campus_data().head(1200);
    let inj = inject_spikes(
        &series,
        &SpikeConfig {
            count: 30,
            protect_prefix: h + 5,
            ..SpikeConfig::default()
        },
    );
    let values = inj.series.values().to_vec();

    let mut group = c.benchmark_group("cgarch_vs_garch");
    group.sample_size(10);

    group.bench_function("plain_garch_full_pass", |b| {
        b.iter(|| {
            let mut m = ArmaGarch::new(MetricConfig::default()).unwrap();
            let mut flags = 0usize;
            for t in h..values.len() {
                if let Ok(inf) = m.infer(&values[t - h..t]) {
                    if !inf.contains(values[t]) {
                        flags += 1;
                    }
                }
            }
            std::hint::black_box(flags)
        })
    });

    group.bench_function("cgarch_full_pass", |b| {
        b.iter(|| {
            let mut cg = CGarch::new(
                CGarchConfig {
                    window: h,
                    ocmax: 8,
                    sv_max: None,
                },
                MetricConfig::default(),
            )
            .unwrap();
            let report = cg.process(&values).unwrap();
            std::hint::black_box(report.detections.len())
        })
    });
    group.finish();

    // SVR filter alone: a spiked 9-point window, the Algorithm 2 hot path.
    let mut window: Vec<f64> = (0..9).map(|i| 20.0 + 0.1 * i as f64).collect();
    window[4] = 500.0;
    c.bench_function("svr_filter_9pt", |b| {
        b.iter(|| std::hint::black_box(svr_filter(std::hint::black_box(&window), 0.5)))
    });
}

criterion_group!(benches, bench_cgarch);
criterion_main!(benches);
