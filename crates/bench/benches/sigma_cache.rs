//! σ-cache micro-benchmarks (the machinery behind Fig. 14): direct eq. 9
//! evaluation vs cached lookup, and cache construction cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tspdb_core::sigma_cache::{direct_probability_values, SigmaCache, SigmaCacheConfig};
use tspdb_core::OmegaSpec;

fn bench_sigma_cache(c: &mut Criterion) {
    // The paper's view parameters: Δ = 0.05, n = 300, H' = 0.01.
    let omega = OmegaSpec::new(0.05, 300).unwrap();
    let sigmas: Vec<f64> = (0..256).map(|i| 0.05 + 0.01 * i as f64).collect();

    let mut group = c.benchmark_group("probability_value_generation");
    group.bench_function("naive_direct", |b| {
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % sigmas.len();
            std::hint::black_box(direct_probability_values(10.0, sigmas[i], &omega))
        })
    });
    group.bench_function("sigma_cache_hit", |b| {
        let cache = SigmaCache::build(0.05, 2.61, omega, SigmaCacheConfig::default()).unwrap();
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % sigmas.len();
            std::hint::black_box(cache.probability_values(10.0, sigmas[i]))
        })
    });
    group.finish();

    let mut build = c.benchmark_group("sigma_cache_build");
    build.sample_size(20);
    for spread in [2_000.0f64, 16_000.0] {
        build.bench_with_input(
            BenchmarkId::from_parameter(spread as u64),
            &spread,
            |b, &spread| {
                b.iter(|| {
                    std::hint::black_box(
                        SigmaCache::build(
                            0.001,
                            0.001 * spread,
                            omega,
                            SigmaCacheConfig::default(),
                        )
                        .unwrap(),
                    )
                })
            },
        );
    }
    build.finish();
}

criterion_group!(benches, bench_sigma_cache);
criterion_main!(benches);
