//! Per-inference cost of each dynamic density metric (the micro-benchmark
//! behind Fig. 11): one `infer` call on a campus-data window.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tspdb_core::metrics::{make_metric, MetricConfig, MetricKind};
use tspdb_timeseries::datasets::campus_data;

fn bench_metrics(c: &mut Criterion) {
    let series = campus_data();
    let mut group = c.benchmark_group("metric_infer");
    for h in [60usize, 180] {
        let window = series.value_slice(1000 - h, 1000).to_vec();
        for kind in [
            MetricKind::UniformThresholding,
            MetricKind::VariableThresholding,
            MetricKind::ArmaGarch,
            MetricKind::KalmanGarch,
        ] {
            let mut metric = make_metric(kind, MetricConfig::default()).unwrap();
            if kind == MetricKind::KalmanGarch {
                group.sample_size(10);
            } else {
                group.sample_size(40);
            }
            group.bench_with_input(BenchmarkId::new(kind.label(), h), &window, |b, w| {
                b.iter(|| metric.infer(std::hint::black_box(w)).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
