//! Possible-worlds sampling throughput: the batched parallel executor at
//! 1/2/4/8 threads against the sequential reference sampler.
//!
//! Each measurement samples [`WORLDS`] worlds of a fixed-size relation, so
//! worlds/sec = `WORLDS / (time per iter)`. On a single-core host the
//! thread sweep only shows fork-join overhead (the executor's estimates
//! are bit-identical at every width, so correctness never depends on it);
//! re-run on a multi-core box for real scaling numbers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tspdb_probdb::worlds::{
    mc_count_distribution, mc_event_probability, WorldsConfig, WorldsExecutor,
};
use tspdb_probdb::{ColumnType, Comparison, ProbTable, Schema, Value};

/// Worlds sampled per measurement.
const WORLDS: usize = 10_000;
/// Tuples in the benchmark relation.
const TUPLES: usize = 200;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn view() -> ProbTable {
    let schema = Schema::of(&[("room", ColumnType::Int)]);
    let mut v = ProbTable::new("v", schema);
    for i in 0..TUPLES {
        let p = ((i * 37) % 97) as f64 / 100.0;
        v.insert(vec![Value::Int(i as i64 % 8)], p).unwrap();
    }
    v
}

fn bench_worlds_scaling(c: &mut Criterion) {
    let v = view();
    let pred: Vec<Comparison> = Vec::new();
    let mut group = c.benchmark_group("worlds_scaling");
    group.sample_size(10);

    // Sequential one-RNG reference samplers. The event sampler
    // short-circuits on the first present tuple, so it answers a much
    // easier question than the executor (which tallies the full count
    // distribution per world); the count sampler does the same per-world
    // work as the executor and is the fair baseline.
    group.bench_function("sequential_event", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            std::hint::black_box(mc_event_probability(&v, &pred, WORLDS, &mut rng).unwrap())
        })
    });
    group.bench_function("sequential_count", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(1);
            std::hint::black_box(mc_count_distribution(&v, &pred, WORLDS, &mut rng).unwrap())
        })
    });

    // The batched executor across fork-join widths.
    for threads in THREAD_COUNTS {
        let executor = WorldsExecutor::new(WorldsConfig {
            max_worlds: WORLDS,
            seed: 1,
            threads,
            ..WorldsConfig::default()
        })
        .unwrap();
        group.bench_with_input(BenchmarkId::new("executor", threads), &threads, |b, _| {
            b.iter(|| std::hint::black_box(executor.run(&v, &pred, None).unwrap()))
        });
    }
    group.finish();
}

fn bench_early_termination(c: &mut Criterion) {
    let v = view();
    let pred: Vec<Comparison> = Vec::new();
    let mut group = c.benchmark_group("worlds_confidence");
    group.sample_size(10);
    for eps in [0.02, 0.01] {
        let executor = WorldsExecutor::new(WorldsConfig {
            max_worlds: 1_000_000,
            seed: 1,
            target_ci: Some(eps),
            threads: 0,
            ..WorldsConfig::default()
        })
        .unwrap();
        group.bench_with_input(BenchmarkId::new("target_ci", eps), &eps, |b, _| {
            b.iter(|| std::hint::black_box(executor.run(&v, &pred, None).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_worlds_scaling, bench_early_termination);
criterion_main!(benches);
