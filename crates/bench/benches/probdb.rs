//! Database-layer benchmarks: SQL parsing, probabilistic operators and the
//! end-to-end Ω-view build.

use criterion::{criterion_group, criterion_main, Criterion};
use tspdb_core::{Engine, MetricConfig, ViewBuilderConfig};
use tspdb_probdb::query::{project_prob, select_prob, top_k, CmpOp, Comparison};
use tspdb_probdb::{parse, ColumnType, ProbTable, Schema, Value};
use tspdb_timeseries::datasets::campus_data;

fn ten_k_view() -> ProbTable {
    let schema = Schema::of(&[("t", ColumnType::Int), ("lambda", ColumnType::Int)]);
    let mut v = ProbTable::new("pv", schema);
    for t in 0..2500i64 {
        for lambda in -2..2i64 {
            let p = ((t * 7 + lambda * 13).rem_euclid(97)) as f64 / 100.0;
            v.insert(vec![Value::Int(t), Value::Int(lambda)], p)
                .unwrap();
        }
    }
    v
}

fn bench_probdb(c: &mut Criterion) {
    c.bench_function("sql_parse_density_view", |b| {
        let sql = "CREATE VIEW prob_view AS DENSITY r OVER t OMEGA delta=0.05, n=300 \
                   FROM raw_values WHERE t >= 1 AND t <= 100000 USING METRIC arma_garch WINDOW 60";
        b.iter(|| parse(std::hint::black_box(sql)).unwrap())
    });

    let view = ten_k_view();
    c.bench_function("select_prob_10k", |b| {
        let pred = vec![
            Comparison::new("t", CmpOp::Ge, 500i64),
            Comparison::new("t", CmpOp::Le, 1500i64),
        ];
        b.iter(|| select_prob(std::hint::black_box(&view), &pred).unwrap())
    });
    c.bench_function("project_prob_10k", |b| {
        b.iter(|| project_prob(std::hint::black_box(&view), &["lambda".to_string()]).unwrap())
    });
    c.bench_function("top_k_10k", |b| {
        b.iter(|| top_k(std::hint::black_box(&view), 100))
    });

    let mut group = c.benchmark_group("omega_view_end_to_end");
    group.sample_size(10);
    group.bench_function("sql_to_view_300_tuples", |b| {
        let series = campus_data().head(360);
        b.iter(|| {
            let mut engine = Engine::new(ViewBuilderConfig {
                window: 60,
                metric_config: MetricConfig {
                    p: 1,
                    q: 0,
                    ..MetricConfig::default()
                },
                ..ViewBuilderConfig::default()
            });
            engine.load_series("raw_values", "r", &series).unwrap();
            engine
                .execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.1, n=20 FROM raw_values")
                .unwrap();
            std::hint::black_box(engine.db().prob_table("pv").unwrap().len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_probdb);
criterion_main!(benches);
