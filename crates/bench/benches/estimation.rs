//! Estimation-layer benchmarks: ARMA fitting (including the Yule-Walker vs
//! Hannan–Rissanen ablation from DESIGN.md), GARCH quasi-MLE and Kalman EM.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tspdb_models::arma::fit_arma;
use tspdb_models::garch::fit_garch11;
use tspdb_models::kalman::{fit_em, EmConfig};
use tspdb_timeseries::datasets::campus_data;
use tspdb_timeseries::generate::ArmaGarchGenerator;

fn bench_estimation(c: &mut Criterion) {
    let series = campus_data();

    let mut arma = c.benchmark_group("arma_fit");
    for h in [60usize, 180] {
        let window = series.value_slice(2000 - h, 2000).to_vec();
        // Pure autoregression: single OLS (the Yule-Walker-class path).
        arma.bench_with_input(BenchmarkId::new("ar2_ols", h), &window, |b, w| {
            b.iter(|| fit_arma(std::hint::black_box(w), 2, 0).unwrap())
        });
        // Hannan–Rissanen two-stage (long AR + regression with MA terms).
        arma.bench_with_input(
            BenchmarkId::new("arma11_hannan_rissanen", h),
            &window,
            |b, w| b.iter(|| fit_arma(std::hint::black_box(w), 1, 1).unwrap()),
        );
    }
    arma.finish();

    let innovations = ArmaGarchGenerator {
        phi: 0.0,
        theta: 0.0,
        c: 0.0,
        ..ArmaGarchGenerator::default()
    }
    .generate(180)
    .values()
    .to_vec();
    let mut garch = c.benchmark_group("garch_fit");
    garch.sample_size(30);
    for h in [60usize, 180] {
        garch.bench_with_input(
            BenchmarkId::new("garch11_qmle", h),
            &innovations[..h].to_vec(),
            |b, w| b.iter(|| fit_garch11(std::hint::black_box(w)).unwrap()),
        );
    }
    garch.finish();

    let mut kalman = c.benchmark_group("kalman_em");
    kalman.sample_size(10);
    for h in [60usize, 180] {
        let window = series.value_slice(2000 - h, 2000).to_vec();
        kalman.bench_with_input(BenchmarkId::from_parameter(h), &window, |b, w| {
            b.iter(|| fit_em(std::hint::black_box(w), &EmConfig::default()).unwrap())
        });
    }
    kalman.finish();
}

criterion_group!(benches, bench_estimation);
criterion_main!(benches);
