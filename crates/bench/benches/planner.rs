//! Query-planner overhead and aggregate throughput.
//!
//! Three questions, answered via the `CRITERION_JSON` shim like every
//! other bench:
//!
//! 1. what does `parse → plan → execute` cost per `SELECT` against
//!    plan-once/execute-many and against calling the row operators
//!    directly (the pre-planner "legacy" shape)?
//! 2. what does an exact grouped aggregate cost as the relation grows?
//! 3. how does the Monte-Carlo aggregate path scale across 1/2/4/8
//!    fork-join threads (single-core hosts only show overhead — the
//!    estimates are bit-identical at every width either way)?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tspdb_probdb::query::{select_prob, top_k};
use tspdb_probdb::{
    parse, CmpOp, ColumnType, Comparison, Database, Planner, ProbTable, Schema, Statement, Value,
};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// `(room, reading)` relation with `n` tuples and mixed probabilities.
fn view(n: usize) -> ProbTable {
    let schema = Schema::of(&[("room", ColumnType::Int), ("reading", ColumnType::Float)]);
    let mut v = ProbTable::new("v", schema);
    for i in 0..n {
        let p = ((i * 37) % 97) as f64 / 100.0;
        v.insert(
            vec![Value::Int(i as i64 % 8), Value::Float(i as f64 * 0.25)],
            p,
        )
        .unwrap();
    }
    v
}

fn database(n: usize) -> Database {
    let mut db = Database::new();
    db.register_prob_table(view(n)).unwrap();
    db
}

fn bench_select_paths(c: &mut Criterion) {
    let db = database(512);
    let sql = "SELECT room FROM v WHERE room = 2 THRESHOLD 0.25 TOP 16";
    let mut group = c.benchmark_group("planner_select");
    group.sample_size(20);

    // Full pipeline: tokenize, parse, plan, execute.
    group.bench_function("parse_plan_execute", |b| {
        b.iter(|| std::hint::black_box(db.query(sql).unwrap()))
    });

    // Plan once, execute many — the prepared-statement shape.
    let planned = match parse(sql).unwrap() {
        Statement::Select(sel) => Planner::plan(&sel).unwrap(),
        other => panic!("not a SELECT: {other:?}"),
    };
    group.bench_function("plan_once_execute", |b| {
        b.iter(|| std::hint::black_box(db.execute_planned(&planned).unwrap()))
    });

    // The pre-planner shape: call the row operators directly.
    let v = view(512);
    let pred = vec![Comparison::new("room", CmpOp::Eq, 2i64)];
    group.bench_function("direct_operators", |b| {
        b.iter(|| {
            let selected = select_prob(&v, &pred).unwrap();
            let thresholded = tspdb_probdb::query::threshold(&selected, 0.25).unwrap();
            std::hint::black_box(top_k(&thresholded, 16))
        })
    });
    group.finish();
}

fn bench_exact_aggregates(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_exact_aggregate");
    group.sample_size(20);
    for n in [128usize, 512, 2048] {
        let db = database(n);
        group.bench_with_input(BenchmarkId::new("grouped_count_sum", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    db.query(
                        "SELECT room, COUNT(*), SUM(reading) FROM v GROUP BY room \
                         HAVING COUNT(*) >= 2",
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_worlds_aggregates(c: &mut Criterion) {
    let db = database(256);
    let mut group = c.benchmark_group("planner_worlds_aggregate");
    group.sample_size(10);
    for threads in THREAD_COUNTS {
        db.set_worlds_threads(threads);
        group.bench_with_input(BenchmarkId::new("grouped_mc", threads), &threads, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    db.query(
                        "SELECT room, COUNT(*), SUM(reading) FROM v GROUP BY room \
                             WITH WORLDS 4096 SEED 1",
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_windowed_aggregates(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_windowed_aggregate");
    group.sample_size(20);
    // Exact per-bucket closed forms as the relation (and bucket count:
    // readings span [0, n/4), so n/64 buckets of width 16) grows.
    for n in [512usize, 2048] {
        let db = database(n);
        group.bench_with_input(BenchmarkId::new("exact_window_count_sum", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    db.query(
                        "SELECT COUNT(*), SUM(reading) FROM v \
                         GROUP BY WINDOW(reading, 16.0) HAVING COUNT(*) >= 2",
                    )
                    .unwrap(),
                )
            })
        });
    }
    // The MC path: one bucket-seeded sampling run per window.
    let db = database(256);
    for threads in THREAD_COUNTS {
        db.set_worlds_threads(threads);
        group.bench_with_input(
            BenchmarkId::new("mc_window_count", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(
                        db.query(
                            "SELECT COUNT(*) FROM v GROUP BY WINDOW(reading, 16.0) \
                         WITH WORLDS 2048 SEED 1",
                        )
                        .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_select_paths,
    bench_exact_aggregates,
    bench_worlds_aggregates,
    bench_windowed_aggregates
);
criterion_main!(benches);
