//! Query-planner overhead and aggregate throughput.
//!
//! Three questions, answered via the `CRITERION_JSON` shim like every
//! other bench:
//!
//! 1. what does `parse → plan → execute` cost per `SELECT` against
//!    plan-once/execute-many and against calling the row operators
//!    directly (the pre-planner "legacy" shape)?
//! 2. what does an exact grouped aggregate cost as the relation grows?
//! 3. how does the Monte-Carlo aggregate path scale across 1/2/4/8
//!    fork-join threads (single-core hosts only show overhead — the
//!    estimates are bit-identical at every width either way)?
//! 4. how do the three backends — exact closed forms, `WITH WORLDS`
//!    sampling, `WITH SYNOPSIS` O(B) histograms — compare on the same
//!    aggregate as the relation grows 1k → 100k, and what does building
//!    (and narrowing) the synopsis itself cost?

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tspdb_probdb::query::{select_prob, top_k};
use tspdb_probdb::{
    parse, CmpOp, ColumnType, Comparison, Database, Planner, ProbTable, RelationSynopses, Schema,
    Statement, Value,
};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// `(room, reading)` relation with `n` tuples and mixed probabilities.
fn view(n: usize) -> ProbTable {
    let schema = Schema::of(&[("room", ColumnType::Int), ("reading", ColumnType::Float)]);
    let mut v = ProbTable::new("v", schema);
    for i in 0..n {
        let p = ((i * 37) % 97) as f64 / 100.0;
        v.insert(
            vec![Value::Int(i as i64 % 8), Value::Float(i as f64 * 0.25)],
            p,
        )
        .unwrap();
    }
    v
}

fn database(n: usize) -> Database {
    let mut db = Database::new();
    db.register_prob_table(view(n)).unwrap();
    db
}

fn bench_select_paths(c: &mut Criterion) {
    let db = database(512);
    let sql = "SELECT room FROM v WHERE room = 2 THRESHOLD 0.25 TOP 16";
    let mut group = c.benchmark_group("planner_select");
    group.sample_size(20);

    // Full pipeline: tokenize, parse, plan, execute.
    group.bench_function("parse_plan_execute", |b| {
        b.iter(|| std::hint::black_box(db.query(sql).unwrap()))
    });

    // Plan once, execute many — the prepared-statement shape.
    let planned = match parse(sql).unwrap() {
        Statement::Select(sel) => Planner::plan(&sel).unwrap(),
        other => panic!("not a SELECT: {other:?}"),
    };
    group.bench_function("plan_once_execute", |b| {
        b.iter(|| std::hint::black_box(db.execute_planned(&planned).unwrap()))
    });

    // The shared plan cache: first call plans and caches, every later
    // call hits the raw-text key and skips parse + plan — the server's
    // hot path for repeated ad-hoc statements.
    db.query_cached(sql).unwrap(); // warm the cache
    group.bench_function("cached_plan_execute", |b| {
        b.iter(|| std::hint::black_box(db.query_cached(sql).unwrap()))
    });

    // The pre-planner shape: call the row operators directly.
    let v = view(512);
    let pred = vec![Comparison::new("room", CmpOp::Eq, 2i64)];
    group.bench_function("direct_operators", |b| {
        b.iter(|| {
            let selected = select_prob(&v, &pred).unwrap();
            let thresholded = tspdb_probdb::query::threshold(&selected, 0.25).unwrap();
            std::hint::black_box(top_k(&thresholded, 16))
        })
    });
    group.finish();
}

fn bench_exact_aggregates(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_exact_aggregate");
    group.sample_size(20);
    for n in [128usize, 512, 2048] {
        let db = database(n);
        group.bench_with_input(BenchmarkId::new("grouped_count_sum", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    db.query(
                        "SELECT room, COUNT(*), SUM(reading) FROM v GROUP BY room \
                         HAVING COUNT(*) >= 2",
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_worlds_aggregates(c: &mut Criterion) {
    let db = database(256);
    let mut group = c.benchmark_group("planner_worlds_aggregate");
    group.sample_size(10);
    for threads in THREAD_COUNTS {
        db.set_worlds_threads(threads);
        group.bench_with_input(BenchmarkId::new("grouped_mc", threads), &threads, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    db.query(
                        "SELECT room, COUNT(*), SUM(reading) FROM v GROUP BY room \
                             WITH WORLDS 4096 SEED 1",
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_windowed_aggregates(c: &mut Criterion) {
    let mut group = c.benchmark_group("planner_windowed_aggregate");
    group.sample_size(20);
    // Exact per-bucket closed forms as the relation (and bucket count:
    // readings span [0, n/4), so n/64 buckets of width 16) grows.
    for n in [512usize, 2048] {
        let db = database(n);
        group.bench_with_input(BenchmarkId::new("exact_window_count_sum", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    db.query(
                        "SELECT COUNT(*), SUM(reading) FROM v \
                         GROUP BY WINDOW(reading, 16.0) HAVING COUNT(*) >= 2",
                    )
                    .unwrap(),
                )
            })
        });
    }
    // The MC path: one bucket-seeded sampling run per window.
    let db = database(256);
    for threads in THREAD_COUNTS {
        db.set_worlds_threads(threads);
        group.bench_with_input(
            BenchmarkId::new("mc_window_count", threads),
            &threads,
            |b, _| {
                b.iter(|| {
                    std::hint::black_box(
                        db.query(
                            "SELECT COUNT(*) FROM v GROUP BY WINDOW(reading, 16.0) \
                         WITH WORLDS 2048 SEED 1",
                        )
                        .unwrap(),
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_strategy_compare(c: &mut Criterion) {
    // The paper's headline trade-off: the same `COUNT(*) + SUM` aggregate
    // through all three backends. Exact runs the O(n²) Poisson-binomial DP,
    // MC samples 1024 worlds over n tuples, the synopsis folds 64 buckets
    // regardless of n — at 100k tuples the gap is ~10⁵×, far past the 10×
    // bar, and it widens with n.
    let mut group = c.benchmark_group("planner_strategy_compare");
    group.sample_size(10);
    const SQL: &str = "SELECT COUNT(*), SUM(reading) FROM v";
    for n in [1_000usize, 10_000, 100_000] {
        let db = database(n);
        group.bench_with_input(BenchmarkId::new("exact_count_sum", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(db.query(SQL).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("mc_count_sum", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(db.query(&format!("{SQL} WITH WORLDS 1024 SEED 1")).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("synopsis_count_sum", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    db.query(&format!("{SQL} WITH SYNOPSIS BUCKETS 64"))
                        .unwrap(),
                )
            })
        });
        // Windowed grouping stays O(B + groups) under the synopsis.
        group.bench_with_input(BenchmarkId::new("synopsis_windowed", n), &n, |b, _| {
            b.iter(|| {
                std::hint::black_box(
                    db.query(
                        "SELECT COUNT(*), SUM(reading) FROM v \
                         GROUP BY WINDOW(reading, 4096.0) WITH SYNOPSIS BUCKETS 64",
                    )
                    .unwrap(),
                )
            })
        });
    }
    group.finish();
}

fn bench_synopsis_build(c: &mut Criterion) {
    // Build cost is what every write pays (the catalog rebuilds on
    // registration); narrowing 256 → 64 buckets is the per-query cost when
    // a `BUCKETS` clause asks for fewer than the catalog holds.
    let mut group = c.benchmark_group("synopsis_build");
    group.sample_size(10);
    for n in [1_000usize, 10_000, 100_000] {
        let v = view(n);
        group.bench_with_input(BenchmarkId::new("build_64", n), &n, |b, _| {
            b.iter(|| std::hint::black_box(RelationSynopses::build(&v, 64)))
        });
    }
    let wide = RelationSynopses::build(&view(10_000), 256);
    group.bench_function("merge_256_to_64", |b| {
        b.iter(|| std::hint::black_box(wide.merge_to(64)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_select_paths,
    bench_exact_aggregates,
    bench_worlds_aggregates,
    bench_windowed_aggregates,
    bench_strategy_compare,
    bench_synopsis_build
);
criterion_main!(benches);
