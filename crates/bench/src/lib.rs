#![allow(
    // `!(x > 0.0)` deliberately catches NaN alongside non-positive values
    // in numeric guards; `partial_cmp` obscures that intent.
    clippy::neg_cmp_op_on_partial_ord,
    // Index-based loops mirror the textbook formulations of the numeric
    // kernels (Cholesky, Levinson-Durbin, filters) they implement.
    clippy::needless_range_loop
)]
//! # tspdb-bench
//!
//! Experiment harness regenerating every table and figure of the paper's
//! evaluation (Section VII), plus shared helpers for the Criterion
//! micro-benchmarks. The `experiments` binary drives the functions in
//! [`experiments`]; each prints the same rows/series the paper reports so
//! the output can be diffed against EXPERIMENTS.md.

pub mod experiments;
pub mod report;

pub use experiments::{run_experiment, ExperimentId, ALL_EXPERIMENTS};
