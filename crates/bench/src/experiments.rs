//! Reproductions of every table and figure in the paper's evaluation
//! (Section VII). Each function prints the same rows/series the paper
//! reports; EXPERIMENTS.md records the output together with the paper's
//! numbers and the shape comparison.
//!
//! Absolute times differ from the paper (MATLAB/Java on a 2 GHz Core Duo
//! vs. Rust); the claims checked here are the *relative* ones: metric
//! orderings, speedup factors, scaling shapes.

use crate::report::{fmt_duration, fmt_kb, TextTable};
use std::fmt::Write as _;
use std::time::{Duration, Instant};
use tspdb_core::cgarch::{CGarch, CGarchConfig};
use tspdb_core::metrics::{make_metric, ArmaGarch, DynamicDensityMetric, MetricConfig, MetricKind};
use tspdb_core::quality::evaluate_metric;
use tspdb_core::sigma_cache::{direct_probability_values, SigmaCache, SigmaCacheConfig};
use tspdb_core::OmegaSpec;
use tspdb_models::archtest::mean_statistic_over_windows;
use tspdb_models::arma::fit_arma;
use tspdb_stats::descriptive::rolling_std;
use tspdb_stats::special::chi_square_quantile;
use tspdb_timeseries::datasets::{campus_data, car_data, table2, uniform_threshold_for};
use tspdb_timeseries::errors::{inject_spikes, SpikeConfig};
use tspdb_timeseries::TimeSeries;

/// Which paper artifact to regenerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExperimentId {
    /// Table II — dataset summary.
    Table2,
    /// Fig. 4 — regions of changing volatility.
    Fig4,
    /// Fig. 5 — GARCH failure vs. C-GARCH recovery on erroneous values.
    Fig5,
    /// Fig. 10 — density distance vs. window size, all metrics, both
    /// datasets.
    Fig10,
    /// Fig. 11 — average inference time vs. window size.
    Fig11,
    /// Fig. 12 — density distance vs. ARMA model order.
    Fig12,
    /// Fig. 13 — C-GARCH vs. GARCH: error capture rate and time per value.
    Fig13,
    /// Fig. 14(a) — σ-cache vs. naive view-generation time.
    Fig14a,
    /// Fig. 14(b) — σ-cache size vs. maximum ratio threshold.
    Fig14b,
    /// Fig. 15 — ARCH-effect hypothesis test.
    Fig15,
    /// Ablation (not in the paper): the Section VI-B distance/memory
    /// trade-off — accuracy, memory and speed across H' settings.
    AblationCache,
}

/// All experiments in paper order.
pub const ALL_EXPERIMENTS: &[(&str, ExperimentId)] = &[
    ("table2", ExperimentId::Table2),
    ("fig4", ExperimentId::Fig4),
    ("fig5", ExperimentId::Fig5),
    ("fig10", ExperimentId::Fig10),
    ("fig11", ExperimentId::Fig11),
    ("fig12", ExperimentId::Fig12),
    ("fig13", ExperimentId::Fig13),
    ("fig14a", ExperimentId::Fig14a),
    ("fig14b", ExperimentId::Fig14b),
    ("fig15", ExperimentId::Fig15),
    ("ablation_cache", ExperimentId::AblationCache),
];

/// Run options.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Shrinks workloads for a fast smoke run (used by CI and the tests).
    pub quick: bool,
}

/// Runs one experiment and returns its printable report.
pub fn run_experiment(id: ExperimentId, opts: Options) -> String {
    match id {
        ExperimentId::Table2 => exp_table2(),
        ExperimentId::Fig4 => exp_fig4(),
        ExperimentId::Fig5 => exp_fig5(),
        ExperimentId::Fig10 => exp_fig10(opts),
        ExperimentId::Fig11 => exp_fig11(opts),
        ExperimentId::Fig12 => exp_fig12(opts),
        ExperimentId::Fig13 => exp_fig13(opts),
        ExperimentId::Fig14a => exp_fig14a(opts),
        ExperimentId::Fig14b => exp_fig14b(),
        ExperimentId::Fig15 => exp_fig15(opts),
        ExperimentId::AblationCache => exp_ablation_cache(),
    }
}

fn shape_line(out: &mut String, ok: bool, claim: &str) {
    let _ = writeln!(out, "shape[{}]: {claim}", if ok { "PASS" } else { "FAIL" });
}

// ---------------------------------------------------------------- Table II

fn exp_table2() -> String {
    let mut out = String::from("=== Table II: summary of datasets ===\n");
    let mut t = TextTable::new(["", "campus-data", "car-data"]);
    let rows = table2();
    t.row([
        "Monitored parameter".to_string(),
        rows[0].monitored.to_string(),
        rows[1].monitored.to_string(),
    ]);
    t.row([
        "Number of data values".to_string(),
        rows[0].count.to_string(),
        rows[1].count.to_string(),
    ]);
    t.row([
        "Sensor accuracy".to_string(),
        rows[0].accuracy.to_string(),
        rows[1].accuracy.to_string(),
    ]);
    t.row([
        "Sampling interval".to_string(),
        rows[0].sampling_interval.to_string(),
        rows[1].sampling_interval.to_string(),
    ]);
    out.push_str(&t.render());
    out.push_str("paper: 18031 / 10473 values, ±0.3 °C / ±10 m, 2 min / 1-2 s\n");
    shape_line(
        &mut out,
        rows[0].count == 18031 && rows[1].count == 10473,
        "dataset cardinalities match Table II exactly",
    );
    out
}

// ------------------------------------------------------------------ Fig. 4

fn exp_fig4() -> String {
    let mut out = String::from("=== Fig. 4: regions of changing volatility ===\n");
    // The paper plots hour-scale windows: one day of campus-data (720
    // two-minute samples), one hour of car-data.
    for (name, series) in [
        ("campus-data (a), one day", campus_data().head(720)),
        ("car-data (b), one hour", car_data().head(2700)),
    ] {
        let window = 60;
        // Residual volatility, not raw dispersion: detrend with AR(2) so
        // the diurnal ramp does not masquerade as volatility.
        let resid = fit_arma(series.values(), 2, 0)
            .map(|f| f.usable_residuals().to_vec())
            .unwrap_or_else(|_| series.values().to_vec());
        let rs = rolling_std(&resid, window);
        let bucket = rs.len() / 12;
        let mut t = TextTable::new(["segment", "avg rolling σ", "max rolling σ"]);
        let mut bucket_means = Vec::new();
        for b in 0..12 {
            let seg = &rs[b * bucket..((b + 1) * bucket).min(rs.len())];
            let mean = tspdb_stats::descriptive::mean(seg);
            let max = seg.iter().cloned().fold(0.0f64, f64::max);
            bucket_means.push(mean);
            t.row([format!("{b:>2}"), format!("{mean:.3}"), format!("{max:.3}")]);
        }
        let hi = bucket_means.iter().cloned().fold(0.0f64, f64::max);
        let lo = bucket_means.iter().cloned().fold(f64::INFINITY, f64::min);
        let _ = writeln!(
            out,
            "\n{name}: rolling residual σ over {window}-sample windows"
        );
        out.push_str(&t.render());
        let _ = writeln!(
            out,
            "volatile/calm ratio (Region A vs Region B): {:.1}x",
            hi / lo
        );
        shape_line(
            &mut out,
            hi / lo > 1.5,
            "distinct volatility regimes exist (Region A ≫ Region B)",
        );
    }
    out
}

// ------------------------------------------------------------------ Fig. 5

fn exp_fig5() -> String {
    let mut out =
        String::from("=== Fig. 5: GARCH failure vs C-GARCH recovery on erroneous values ===\n");
    // A 170-sample campus stretch (the paper plots minutes 40-170) with
    // two spikes at the paper's positions 127 and 132.
    let h = 60;
    let base = campus_data().head(170);
    let mut values = base.values().to_vec();
    let sigma = tspdb_stats::descriptive::sample_std(&values);
    values[127] -= 40.0 * sigma;
    values[132] += 35.0 * sigma;

    // (a) plain ARMA-GARCH on every sliding window.
    let mut plain = ArmaGarch::new(MetricConfig::default()).unwrap();
    let mut plain_max_bound = 0.0f64;
    for t in h..values.len() {
        if let Ok(inf) = plain.infer(&values[t - h..t]) {
            plain_max_bound = plain_max_bound.max(inf.upper.abs().max(inf.lower.abs()));
        }
    }
    let _ = writeln!(
        out,
        "(a) plain ARMA-GARCH: max |inferred bound| = {plain_max_bound:.0} deg C \
         (paper: bound exploded to ~1800 deg C)"
    );

    // (b) C-GARCH with the paper's ocmax = 7.
    let mut cg = CGarch::new(
        CGarchConfig {
            window: h,
            ocmax: 7,
            sv_max: None,
        },
        MetricConfig::default(),
    )
    .unwrap();
    let report = cg.process(&values).unwrap();
    let cg_max_bound = report
        .inferences
        .iter()
        .map(|(_, inf)| inf.upper.abs().max(inf.lower.abs()))
        .fold(0.0f64, f64::max);
    let _ = writeln!(
        out,
        "(b) C-GARCH:          max |inferred bound| = {cg_max_bound:.1} deg C, \
         detections at {:?}, trend changes at {:?}",
        report.detections, report.trend_changes
    );

    let mut t = TextTable::new(["t", "raw", "r_hat", "lb", "ub", "flag"]);
    for (idx, inf) in &report.inferences {
        if (120..=140).contains(idx) {
            t.row([
                idx.to_string(),
                format!("{:.2}", values[*idx]),
                format!("{:.2}", inf.expected),
                format!("{:.2}", inf.lower),
                format!("{:.2}", inf.upper),
                if report.detections.contains(idx) {
                    "ERR"
                } else {
                    ""
                }
                .to_string(),
            ]);
        }
    }
    out.push_str("\nC-GARCH trace around the spikes (t = 120..140):\n");
    out.push_str(&t.render());
    shape_line(
        &mut out,
        plain_max_bound > 10.0 * cg_max_bound,
        "plain GARCH bound explodes; C-GARCH bound stays at the data scale",
    );
    shape_line(
        &mut out,
        report.detections.contains(&127) && report.detections.contains(&132),
        "both injected erroneous values detected",
    );
    out
}

// ------------------------------------------------- Fig. 10 / Fig. 11 sweep

/// One (dataset, metric, H) evaluation outcome.
struct SweepRow {
    dataset: &'static str,
    metric: MetricKind,
    h: usize,
    distance: f64,
    avg_time: Duration,
}

/// Window sizes of the paper's Figs. 10-11 sweep.
const WINDOW_SIZES: [usize; 6] = [30, 60, 90, 120, 150, 180];

/// Runs the Figs. 10/11 sweep. `parallel` fans the jobs out across threads
/// — right for the density-distance figure, wrong for the timing figure
/// (contention would distort per-inference wall times), so Fig. 11 runs
/// sequentially with a smaller evaluation budget.
fn sweep_metrics(opts: Options, parallel: bool) -> Vec<SweepRow> {
    let datasets: Vec<(&'static str, TimeSeries)> = if opts.quick {
        vec![
            ("campus-data", campus_data().head(3000)),
            ("car-data", car_data().head(3000)),
        ]
    } else {
        vec![("campus-data", campus_data()), ("car-data", car_data())]
    };
    let metrics = [
        MetricKind::UniformThresholding,
        MetricKind::VariableThresholding,
        MetricKind::ArmaGarch,
        MetricKind::KalmanGarch,
    ];
    let windows: &[usize] = if opts.quick {
        &[30, 90, 180]
    } else {
        &WINDOW_SIZES
    };

    // One job per (dataset, metric, H).
    let mut jobs = Vec::new();
    for (dname, series) in &datasets {
        for &metric in &metrics {
            for &h in windows {
                jobs.push((*dname, series, metric, h));
            }
        }
    }
    let run_job = |(dname, series, metric, h): &(&'static str, &TimeSeries, MetricKind, usize)| {
        let cfg = MetricConfig {
            p: 2,
            q: 0,
            threshold_u: uniform_threshold_for(dname),
            ..MetricConfig::default()
        };
        // Budget the number of inferences so the Kalman EM sweep stays
        // tractable; sub-sampling windows does not bias PIT. The
        // sequential (timing) sweep uses smaller budgets still — average
        // latency stabilises within tens of calls.
        let budget = match (metric, parallel) {
            (MetricKind::KalmanGarch, true) => {
                if opts.quick {
                    60
                } else {
                    250
                }
            }
            (MetricKind::KalmanGarch, false) => {
                if opts.quick {
                    15
                } else {
                    40
                }
            }
            (_, true) => {
                if opts.quick {
                    250
                } else {
                    900
                }
            }
            (_, false) => {
                if opts.quick {
                    60
                } else {
                    150
                }
            }
        };
        let stride = ((series.len() - h) / budget).max(1);
        let mut m = make_metric(*metric, cfg).expect("metric");
        if !parallel && *metric != MetricKind::KalmanGarch {
            // Timing sweep: one warm-up pass so allocator/cache effects do
            // not pollute the measured average (Kalman is ms-scale and
            // needs no warm-up).
            let _ = evaluate_metric(m.as_mut(), series, *h, stride * 4);
        }
        let eval = evaluate_metric(m.as_mut(), series, *h, stride).expect("evaluation");
        SweepRow {
            dataset: dname,
            metric: *metric,
            h: *h,
            distance: eval.density_distance,
            avg_time: eval.avg_time(),
        }
    };
    if parallel {
        // Fan out across scoped threads so the EM-heavy Kalman sweep uses
        // all cores.
        std::thread::scope(|scope| {
            let handles: Vec<_> = jobs
                .iter()
                .map(|job| scope.spawn(move || run_job(job)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    } else {
        jobs.iter().map(run_job).collect()
    }
}

fn sweep_table(
    rows: &[SweepRow],
    dataset: &str,
    windows: &[usize],
    cell: impl Fn(&SweepRow) -> String,
) -> TextTable {
    let metrics = [
        MetricKind::UniformThresholding,
        MetricKind::VariableThresholding,
        MetricKind::ArmaGarch,
        MetricKind::KalmanGarch,
    ];
    let mut header = vec!["H".to_string()];
    header.extend(metrics.iter().map(|m| m.label().to_string()));
    let mut t = TextTable::new(header);
    for &h in windows {
        let mut cells = vec![h.to_string()];
        for metric in metrics {
            let row = rows
                .iter()
                .find(|r| r.dataset == dataset && r.metric == metric && r.h == h)
                .expect("sweep row present");
            cells.push(cell(row));
        }
        t.row(cells);
    }
    t
}

fn exp_fig10(opts: Options) -> String {
    let rows = sweep_metrics(opts, true);
    let windows: Vec<usize> = rows
        .iter()
        .filter(|r| r.dataset == "campus-data" && r.metric == MetricKind::ArmaGarch)
        .map(|r| r.h)
        .collect();
    let mut out =
        String::from("=== Fig. 10: density distance vs window size (lower = better) ===\n");
    for dataset in ["campus-data", "car-data"] {
        let _ = writeln!(
            out,
            "\n({}) {dataset}",
            if dataset.starts_with("campus") {
                "a"
            } else {
                "b"
            }
        );
        out.push_str(
            &sweep_table(&rows, dataset, &windows, |r| format!("{:.3}", r.distance)).render(),
        );
        // Shape: GARCH-family beats the naive metrics on average across H.
        let avg = |metric: MetricKind| {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| r.dataset == dataset && r.metric == metric)
                .map(|r| r.distance)
                .collect();
            tspdb_stats::descriptive::mean(&v)
        };
        let ut = avg(MetricKind::UniformThresholding);
        let vt = avg(MetricKind::VariableThresholding);
        let ag = avg(MetricKind::ArmaGarch);
        let kg = avg(MetricKind::KalmanGarch);
        let _ = writeln!(
            out,
            "averages: UT {ut:.3}  VT {vt:.3}  ARMA-GARCH {ag:.3}  Kalman-GARCH {kg:.3}"
        );
        shape_line(
            &mut out,
            ag < ut && ag < vt,
            "ARMA-GARCH outperforms both naive metrics",
        );
        shape_line(
            &mut out,
            kg < vt,
            "Kalman-GARCH outperforms variable thresholding",
        );
    }
    out.push_str(
        "paper: GARCH metrics up to 20x (campus) / 12.3x (car) lower distance than naive \
         metrics; ARMA-GARCH best overall\n",
    );
    out
}

fn exp_fig11(opts: Options) -> String {
    let rows = sweep_metrics(opts, false);
    let windows: Vec<usize> = rows
        .iter()
        .filter(|r| r.dataset == "campus-data" && r.metric == MetricKind::ArmaGarch)
        .map(|r| r.h)
        .collect();
    let mut out = String::from(
        "=== Fig. 11: average time per density inference (log-scale in the paper) ===\n",
    );
    for dataset in ["campus-data", "car-data"] {
        let _ = writeln!(
            out,
            "\n({}) {dataset}",
            if dataset.starts_with("campus") {
                "a"
            } else {
                "b"
            }
        );
        out.push_str(&sweep_table(&rows, dataset, &windows, |r| fmt_duration(r.avg_time)).render());
        let ratio_at = |h: usize| {
            let ag = rows
                .iter()
                .find(|r| r.dataset == dataset && r.metric == MetricKind::ArmaGarch && r.h == h)
                .unwrap()
                .avg_time
                .as_secs_f64();
            let kg = rows
                .iter()
                .find(|r| r.dataset == dataset && r.metric == MetricKind::KalmanGarch && r.h == h)
                .unwrap()
                .avg_time
                .as_secs_f64();
            kg / ag
        };
        let first = *windows.first().unwrap();
        let last = *windows.last().unwrap();
        let _ = writeln!(
            out,
            "Kalman-GARCH / ARMA-GARCH time ratio: {:.1}x at H={first}, {:.1}x at H={last}",
            ratio_at(first),
            ratio_at(last)
        );
        shape_line(
            &mut out,
            ratio_at(last) > 1.5,
            "Kalman-GARCH is the slowest accurate metric (EM cost)",
        );
    }
    out.push_str("paper: ARMA-GARCH 5.1-18.6x faster than Kalman-GARCH; naive metrics fastest\n");
    out
}

// ----------------------------------------------------------------- Fig. 12

fn exp_fig12(opts: Options) -> String {
    let mut out = String::from("=== Fig. 12: effect of ARMA model order (campus-data) ===\n");
    let series = if opts.quick {
        campus_data().head(3000)
    } else {
        campus_data()
    };
    let h = 60;
    let orders = [2usize, 4, 6, 8];
    let metrics = [
        MetricKind::UniformThresholding,
        MetricKind::VariableThresholding,
        MetricKind::ArmaGarch,
    ];
    let mut header = vec!["p".to_string()];
    header.extend(metrics.iter().map(|m| m.label().to_string()));
    let mut t = TextTable::new(header);
    let mut ag_by_order = Vec::new();
    for &p in &orders {
        let mut cells = vec![p.to_string()];
        for metric in metrics {
            let cfg = MetricConfig {
                p,
                q: 0,
                threshold_u: uniform_threshold_for("campus-data"),
                ..MetricConfig::default()
            };
            let budget = if opts.quick { 250 } else { 900 };
            let stride = ((series.len() - h) / budget).max(1);
            let mut m = make_metric(metric, cfg).unwrap();
            let eval = evaluate_metric(m.as_mut(), &series, h, stride).unwrap();
            if metric == MetricKind::ArmaGarch {
                ag_by_order.push(eval.density_distance);
            }
            cells.push(format!("{:.3}", eval.density_distance));
        }
        t.row(cells);
    }
    out.push_str(&t.render());
    out.push_str("paper: ARMA-GARCH distance increases with model order (low order justified)\n");
    shape_line(
        &mut out,
        ag_by_order.last().unwrap() >= &(ag_by_order[0] * 0.9),
        "higher order brings no improvement for ARMA-GARCH",
    );
    out
}

// ----------------------------------------------------------------- Fig. 13

fn exp_fig13(opts: Options) -> String {
    let mut out = String::from("=== Fig. 13: C-GARCH vs GARCH on erroneous values ===\n");
    let h = 60;
    let series = if opts.quick {
        campus_data().head(5000)
    } else {
        campus_data()
    };
    let counts: &[usize] = if opts.quick {
        &[5, 25, 125]
    } else {
        &[5, 25, 125, 625]
    };
    let mut t = TextTable::new([
        "errors",
        "C-GARCH %captured",
        "GARCH %captured",
        "C-GARCH time/value",
        "GARCH time/value",
        "C-GARCH max sigma",
        "GARCH max sigma",
    ]);
    let mut ratios = Vec::new();
    let mut sigma_ratios = Vec::new();
    for &count in counts {
        // Moderate spike magnitudes (6-15x the global σ — still "very
        // high (or very low) values" at 25-70 °C off-trend): large enough
        // to be unambiguous errors, small enough that a volatility-inflated
        // plain GARCH stops seeing them, which is precisely the failure
        // mode Fig. 13 demonstrates.
        let inj = inject_spikes(
            &series,
            &SpikeConfig {
                count,
                protect_prefix: h + 5,
                seed: 0xF13 + count as u64,
                magnitude_lo: 6.0,
                magnitude_hi: 15.0,
            },
        );
        let values = inj.series.values();

        // Plain ARMA-GARCH as detector (no cleaning).
        let started = Instant::now();
        let mut plain = ArmaGarch::new(MetricConfig::default()).unwrap();
        let mut plain_detect = Vec::new();
        let mut plain_max_sigma = 0.0f64;
        for t_i in h..values.len() {
            if let Ok(inf) = plain.infer(&values[t_i - h..t_i]) {
                plain_max_sigma = plain_max_sigma.max(inf.density.std());
                if !inf.contains(values[t_i]) {
                    plain_detect.push(t_i);
                }
            }
        }
        let plain_time = started.elapsed() / (values.len() - h) as u32;
        let plain_rate = inj.capture_rate(&plain_detect);

        // C-GARCH with the paper's Fig. 13 setting ocmax = 8; SVmax learned
        // from a clean prefix.
        let sv_max = CGarch::learn_sv_max(&series.values()[..h], 8);
        let started = Instant::now();
        let mut cg = CGarch::new(
            CGarchConfig {
                window: h,
                ocmax: 8,
                sv_max: Some(sv_max),
            },
            MetricConfig::default(),
        )
        .unwrap();
        let report = cg.process(values).unwrap();
        let cg_time = started.elapsed() / values.len() as u32;
        let cg_rate = inj.capture_rate(&report.detections);
        let cg_max_sigma = report
            .inferences
            .iter()
            .map(|(_, inf)| inf.density.std())
            .fold(0.0f64, f64::max);

        ratios.push((cg_rate, plain_rate));
        sigma_ratios.push(plain_max_sigma / cg_max_sigma.max(1e-9));
        t.row([
            count.to_string(),
            format!("{:.1}", cg_rate * 100.0),
            format!("{:.1}", plain_rate * 100.0),
            fmt_duration(cg_time),
            fmt_duration(plain_time),
            format!("{cg_max_sigma:.2}"),
            format!("{plain_max_sigma:.2}"),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "paper: C-GARCH detects >2x more errors than GARCH at high error counts, at \
         comparable per-value cost. note: our plain baseline re-estimates per window \
         and is therefore stronger than the paper's (see EXPERIMENTS.md); the \
         volatility-inflation failure shows up in the max-sigma columns instead\n",
    );
    let (cg_hi, plain_hi) = *ratios.last().unwrap();
    shape_line(
        &mut out,
        cg_hi > plain_hi,
        "C-GARCH captures more errors than plain GARCH at the highest error load",
    );
    shape_line(
        &mut out,
        ratios.iter().all(|(cg, _)| *cg > 0.5),
        "C-GARCH keeps a majority capture rate at every error load",
    );
    shape_line(
        &mut out,
        sigma_ratios.iter().all(|r| *r > 3.0),
        "plain GARCH volatility inflates by >3x over C-GARCH at every error load",
    );
    out
}

// ---------------------------------------------------------------- Fig. 14a

fn exp_fig14a(opts: Options) -> String {
    let mut out =
        String::from("=== Fig. 14(a): probabilistic view generation, naive vs sigma-cache ===\n");
    // The paper's setting: Δ = 0.05, n = 300, H' = 0.01, campus-data, view
    // sizes 6000..18000 tuples. Densities are inferred once with
    // ARMA-GARCH; the timed part is the probability value generation that
    // the σ-cache accelerates.
    let omega = OmegaSpec::new(0.05, 300).unwrap();
    let h = 60;
    let series = campus_data();
    let max_tuples = if opts.quick { 6_000 } else { 18_000 };
    let sizes: &[usize] = if opts.quick {
        &[2_000, 4_000, 6_000]
    } else {
        &[6_000, 10_000, 14_000, 18_000]
    };

    // Inference pass (shared by all sizes).
    let mut metric = ArmaGarch::new(MetricConfig::default()).unwrap();
    let values = series.values();
    let mut params: Vec<(f64, f64)> = Vec::new(); // (r̂, σ̂)
    let mut t_i = h;
    while params.len() < max_tuples && t_i < values.len() {
        if let Ok(inf) = metric.infer(&values[t_i - h..t_i]) {
            params.push((inf.expected, inf.density.std()));
        }
        t_i += 1;
    }

    let mut t = TextTable::new([
        "tuples",
        "naive",
        "sigma-cache",
        "speedup",
        "cache distributions",
        "max cell error",
    ]);
    let runs = 5; // the paper averages over ten executions; five suffices here
    let mut speedups = Vec::new();
    for &size in sizes {
        let slice = &params[..size.min(params.len())];
        // Naive: eq. 9 evaluated directly per tuple.
        let naive_time = {
            let started = Instant::now();
            let mut sink = 0.0;
            for _ in 0..runs {
                for &(r_hat, sigma) in slice {
                    sink += direct_probability_values(r_hat, sigma, &omega)[150].rho;
                }
            }
            std::hint::black_box(sink);
            started.elapsed() / runs
        };
        // σ-cache: build (included in the timing) + lookups.
        let lo = slice.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let hi = slice.iter().map(|p| p.1).fold(0.0f64, f64::max);
        let mut cache_len = 0;
        let cached_time = {
            let started = Instant::now();
            let mut sink = 0.0;
            for _ in 0..runs {
                let cache = SigmaCache::build(lo, hi, omega, SigmaCacheConfig::default()).unwrap();
                for &(r_hat, sigma) in slice {
                    sink += cache.probability_values(r_hat, sigma)[150].rho;
                }
                cache_len = cache.len();
            }
            std::hint::black_box(sink);
            started.elapsed() / runs
        };
        // Validate the approximation while we're here.
        let cache = SigmaCache::build(lo, hi, omega, SigmaCacheConfig::default()).unwrap();
        let max_err = slice
            .iter()
            .take(500)
            .map(|&(r_hat, sigma)| {
                let a = cache.probability_values(r_hat, sigma);
                let b = direct_probability_values(r_hat, sigma, &omega);
                a.iter()
                    .zip(&b)
                    .map(|(x, y)| (x.rho - y.rho).abs())
                    .fold(0.0f64, f64::max)
            })
            .fold(0.0f64, f64::max);
        let speedup = naive_time.as_secs_f64() / cached_time.as_secs_f64();
        speedups.push(speedup);
        t.row([
            size.to_string(),
            fmt_duration(naive_time),
            fmt_duration(cached_time),
            format!("{speedup:.1}x"),
            cache_len.to_string(),
            format!("{max_err:.4}"),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("paper: ~9.6x speedup at 18K tuples, growing with database size\n");
    shape_line(
        &mut out,
        *speedups.last().unwrap() > 3.0,
        "sigma-cache speeds view generation up by a large factor at the largest size",
    );
    shape_line(
        &mut out,
        speedups.windows(2).all(|w| w[1] > w[0] * 0.7),
        "speedup does not degrade with database size",
    );
    out
}

// ---------------------------------------------------------------- Fig. 14b

fn exp_fig14b() -> String {
    let mut out =
        String::from("=== Fig. 14(b): sigma-cache size vs maximum ratio threshold Ds ===\n");
    let omega = OmegaSpec::new(0.05, 300).unwrap();
    let mut t = TextTable::new(["Ds", "distributions", "cache size (KB)"]);
    let mut sizes = Vec::new();
    for spread in [2_000.0, 4_000.0, 8_000.0, 16_000.0] {
        let cache =
            SigmaCache::build(0.001, 0.001 * spread, omega, SigmaCacheConfig::default()).unwrap();
        sizes.push(cache.memory_bytes());
        t.row([
            format!("{spread:.0}"),
            cache.len().to_string(),
            fmt_kb(cache.memory_bytes()),
        ]);
    }
    out.push_str(&t.render());
    out.push_str("paper: ~850-1150 KB over the same Ds range, logarithmic growth\n");
    let increments: Vec<i64> = sizes
        .windows(2)
        .map(|w| w[1] as i64 - w[0] as i64)
        .collect();
    let near_constant = increments
        .windows(2)
        .all(|w| ((w[0] - w[1]).abs() as f64) / (w[0].max(1) as f64) < 0.25);
    shape_line(
        &mut out,
        near_constant,
        "each doubling of Ds adds a near-constant increment (logarithmic growth)",
    );
    shape_line(
        &mut out,
        sizes[3] < sizes[0] * 2,
        "8x the spread costs less than 2x the memory",
    );
    let kb = sizes[3] as f64 / 1024.0;
    shape_line(
        &mut out,
        (500.0..2500.0).contains(&kb),
        "absolute cache size lands at the paper's order of magnitude (~1 MB)",
    );
    out
}

// ----------------------------------------------------------------- Fig. 15

fn exp_fig15(opts: Options) -> String {
    let mut out = String::from("=== Fig. 15: verifying time-varying volatility ===\n");
    let h = 180;
    let alpha = 0.05;
    let step = if opts.quick { 50 } else { 10 };
    let take = if opts.quick { 4_000 } else { usize::MAX };
    let mut cross = Vec::new();
    for (name, series) in [
        ("campus-data (a)", campus_data()),
        ("car-data (b)", car_data()),
    ] {
        let series = series.head(take);
        let resid = fit_arma(series.values(), 2, 0)
            .unwrap()
            .usable_residuals()
            .to_vec();
        let mut t = TextTable::new(["m", "Phi(m)", "chi2_m(0.05)", "reject iid?"]);
        let mut phis = Vec::new();
        for m in 1..=8usize {
            let crit = chi_square_quantile(1.0 - alpha, m as f64);
            let (phi, windows) = mean_statistic_over_windows(&resid, h, step, m, alpha).unwrap();
            phis.push(phi);
            t.row([
                m.to_string(),
                format!("{phi:.2}"),
                format!("{crit:.2}"),
                format!(
                    "{} ({windows} windows)",
                    if phi > crit { "yes" } else { "no" }
                ),
            ]);
        }
        let _ = writeln!(out, "\n{name}");
        out.push_str(&t.render());
        cross.push(phis);
        let crit1 = chi_square_quantile(1.0 - alpha, 1.0);
        shape_line(
            &mut out,
            cross.last().unwrap()[0] > crit1,
            "null hypothesis (iid errors) rejected: volatility varies over time",
        );
    }
    shape_line(
        &mut out,
        cross[0][0] > cross[1][0],
        "campus-data shows stronger time-varying volatility than car-data",
    );
    out.push_str(
        "paper: Phi(m) > chi2 for all m on both datasets; car-data closer to the \
         threshold. note: with clean synthetic data the statistic decays in m (see \
         EXPERIMENTS.md), so rejection holds at low orders and weakens at m near 8\n",
    );
    out
}

// ------------------------------------------------------ σ-cache ablation

/// The Section VI-B trade-off, measured: tighter distance constraints cost
/// memory and (slightly) build time but bound the approximation error;
/// looser ones shrink the ladder at the price of coarser probabilities.
fn exp_ablation_cache() -> String {
    let mut out = String::from(
        "=== Ablation: sigma-cache distance constraint H' (trade-off of Section VI-B) ===\n",
    );
    let omega = OmegaSpec::new(0.05, 300).unwrap();
    let (min_s, max_s) = (0.05, 50.0);
    // A realistic query mix spanning the ladder.
    let sigmas: Vec<f64> = (0..4000)
        .map(|i| min_s + (max_s - min_s) * ((i as f64 * 0.37).sin().abs()))
        .collect();
    let mut t = TextTable::new([
        "H'",
        "guaranteed d_s",
        "distributions",
        "memory (KB)",
        "lookup time (4k queries)",
        "max cell error",
    ]);
    let mut errors = Vec::new();
    let mut mems = Vec::new();
    for h_prime in [0.001, 0.005, 0.01, 0.05, 0.1] {
        let cfg = SigmaCacheConfig {
            distance_constraint: Some(h_prime),
            memory_constraint: None,
        };
        let cache = SigmaCache::build(min_s, max_s, omega, cfg).unwrap();
        let started = Instant::now();
        let mut sink = 0.0;
        for &s in &sigmas {
            sink += cache.probability_values(10.0, s)[150].rho;
        }
        std::hint::black_box(sink);
        let lookup = started.elapsed();
        let max_err = sigmas
            .iter()
            .step_by(16)
            .map(|&s| {
                let a = cache.probability_values(10.0, s);
                let b = direct_probability_values(10.0, s, &omega);
                a.iter()
                    .zip(&b)
                    .map(|(x, y)| (x.rho - y.rho).abs())
                    .fold(0.0f64, f64::max)
            })
            .fold(0.0f64, f64::max);
        errors.push(max_err);
        mems.push(cache.memory_bytes());
        t.row([
            format!("{h_prime}"),
            format!("{:.4}", cache.ratio_threshold()),
            cache.len().to_string(),
            fmt_kb(cache.memory_bytes()),
            fmt_duration(lookup),
            format!("{max_err:.5}"),
        ]);
    }
    out.push_str(&t.render());
    out.push_str(
        "the paper: \"when the distance constraint increases, the amount of memory \
         required by the sigma-cache decreases ... a give-and-take relationship\"\n",
    );
    shape_line(
        &mut out,
        errors.windows(2).all(|w| w[1] >= w[0] * 0.5),
        "approximation error grows as the constraint loosens",
    );
    shape_line(
        &mut out,
        mems.windows(2).all(|w| w[1] <= w[0]),
        "memory shrinks monotonically as the constraint loosens",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const QUICK: Options = Options { quick: true };

    #[test]
    fn table2_reports_exact_cardinalities() {
        let out = exp_table2();
        assert!(out.contains("18031"));
        assert!(out.contains("10473"));
        assert!(out.contains("shape[PASS]"));
    }

    #[test]
    fn fig14b_is_logarithmic() {
        let out = exp_fig14b();
        assert!(
            !out.contains("shape[FAIL]"),
            "fig14b shape check failed:\n{out}"
        );
    }

    #[test]
    fn fig4_finds_regimes() {
        let out = exp_fig4();
        assert!(!out.contains("shape[FAIL]"), "{out}");
    }

    #[test]
    fn quick_fig12_runs_and_orders_do_not_help() {
        let out = exp_fig12(QUICK);
        assert!(out.contains("p"));
        assert!(!out.contains("shape[FAIL]"), "{out}");
    }

    #[test]
    fn ablation_cache_tradeoff_holds() {
        let out = exp_ablation_cache();
        assert!(!out.contains("shape[FAIL]"), "{out}");
    }

    #[test]
    fn experiment_ids_are_exhaustive() {
        assert_eq!(ALL_EXPERIMENTS.len(), 11);
        for (name, id) in ALL_EXPERIMENTS {
            assert!(!name.is_empty());
            // Every id maps to a runnable experiment (spot-check cheap ones
            // only; the expensive sweeps are covered by the binary).
            if matches!(id, ExperimentId::Table2 | ExperimentId::Fig14b) {
                let out = run_experiment(*id, QUICK);
                assert!(out.contains("==="));
            }
        }
    }
}
