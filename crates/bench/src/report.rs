//! Text-table rendering for experiment output.
//!
//! The harness prints aligned plain-text tables — one per paper artifact —
//! so EXPERIMENTS.md can record harness output verbatim and diffs stay
//! readable.

use std::fmt::Write as _;

/// A simple column-aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.header.len(),
            "TextTable: row arity mismatch"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with right-aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |out: &mut String, cells: &[String]| {
            for i in 0..cols {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>w$}", cells[i], w = widths[i]);
            }
            out.push('\n');
        };
        fmt_row(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            fmt_row(&mut out, row);
        }
        out
    }
}

/// Formats a `Duration` in the unit that keeps 3-4 significant digits.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.1} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.1} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Formats a byte count as KB with one decimal (the paper's Fig. 14b unit).
pub fn fmt_kb(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / 1024.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["a", "metric"]);
        t.row(["1", "x"]);
        t.row(["2222", "yy"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines share the same width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()));
        assert!(lines[0].contains("metric"));
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn rejects_ragged_rows() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["only one"]);
    }

    #[test]
    fn duration_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(120)), "120 ns");
        assert_eq!(fmt_duration(Duration::from_micros(35)), "35.0 µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.0 ms");
        assert_eq!(fmt_duration(Duration::from_secs(75)), "75.00 s");
    }

    #[test]
    fn kb_formatting() {
        assert_eq!(fmt_kb(1024), "1.0");
        assert_eq!(fmt_kb(1536), "1.5");
    }
}
