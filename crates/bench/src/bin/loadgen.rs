//! Load generator for the wire-protocol server: drives large sweeps of
//! concurrent connections (default 64/256/1024) through a fixed query mix
//! and reports queries/sec plus p50/p95/p99 latency.
//!
//! The generator is event-driven like the server it exercises: every
//! connection is a nonblocking socket registered with one
//! [`tspdb_server::poller::Poller`], so a thousand concurrent sessions
//! cost one descriptor each rather than a thread each. Each connection
//! walks the same script — handshake, prepare both prepared statements,
//! then `--rounds` repetitions of the mix — with per-request latency
//! measured from enqueue to verified response.
//!
//! Every response is checked against the single-connection baseline —
//! the executor's determinism contract (bit-identical MC estimates at
//! every thread count *and* under concurrency) must hold across the
//! wire, so any divergence fails the run. Results append to the file
//! named by `CRITERION_JSON` in the same JSON-lines shape the criterion
//! shim emits (`{"name":…,"ns_per_iter":…,"iters":…}`), joining the
//! existing bench trajectory.
//!
//! ```text
//! loadgen [--rounds N] [--conns A,B,C]   # defaults: 20 rounds, 64,256,1024
//! ```
//!
//! A second mode drives the **streaming ingestion** subsystem end to end
//! against a persistent data directory: a writer group-commits batched
//! appends through [`tspdb_ingest::Appender`] while reader connections
//! watch the row count grow monotonically over the wire and a TAIL
//! subscriber checks every pushed window frame against the equivalent
//! one-shot query (closed buckets are immutable under monotone appends,
//! so the comparison is exact whenever it runs). `--verify` reopens the
//! directory — typically after a `kill -9` — recovers, and diffs the
//! recovered table and Ω-view fingerprints against a never-crashed
//! in-memory twin fed the same deterministic row prefix.
//!
//! ```text
//! loadgen --mode streaming --data-dir DIR [--appends N] [--batch B] [--readers R]
//! loadgen --mode streaming --data-dir DIR --verify
//! ```

use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::time::{Duration, Instant};
use tspdb_client::Client;
use tspdb_server::poller::{Event, Interest, Poller};
use tspdb_server::{demo_engine, Server, ServerConfig, ServerHandle};
use tspdb_wire::{
    canonical_result_bytes, decode_message, write_frame, Request, Response, StatementId,
    PROTOCOL_VERSION,
};

/// The per-round query mix: the row pipeline, Monte-Carlo sampling and the
/// O(B) synopsis backend (both as prepared statements — plan once, execute
/// many), exact grouped aggregates, EXPLAIN, and a top-k probability sort.
/// Every statement is read-only, so each repetition past the first rides
/// the server's shared plan cache.
const AD_HOC: &[&str] = &[
    "SELECT * FROM pv THRESHOLD 0.2",
    "SELECT t, COUNT(*), SUM(lambda) FROM pv GROUP BY t HAVING COUNT(*) >= 2",
    "EXPLAIN SELECT COUNT(*) FROM pv WITH WORLDS 500 SEED 9",
    "SELECT t FROM pv WHERE prob >= 0.3 ORDER BY prob DESC LIMIT 8",
];
const PREPARED: &[&str] = &[
    "SELECT * FROM pv WITH WORLDS 1000 SEED 5",
    "SELECT COUNT(*), SUM(lambda) FROM pv WITH SYNOPSIS BUCKETS 64",
];

/// `setrlimit(RLIMIT_NOFILE)` via the glibc symbols the standard library
/// already links: a 1k-connection sweep needs ~2 descriptors per
/// connection (client end + server end, both in this process), which
/// overflows the common 1024 soft limit. Best-effort — a refusal just
/// means the sweep runs under whatever limit the kernel grants.
#[allow(unsafe_code)]
mod rlimit {
    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }
    const RLIMIT_NOFILE: i32 = 7;
    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }

    /// Raises the soft fd limit toward `target` (capped by the hard
    /// limit); returns the limit now in force.
    pub fn raise_nofile(target: u64) -> u64 {
        let mut lim = Rlimit { cur: 0, max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return 0;
        }
        if lim.cur < target {
            let want = Rlimit {
                cur: target.min(lim.max),
                max: lim.max,
            };
            unsafe {
                let _ = setrlimit(RLIMIT_NOFILE, &want);
                let _ = getrlimit(RLIMIT_NOFILE, &mut lim);
            }
        }
        lim.cur
    }
}

/// What the script expects back for the request just sent.
#[derive(Debug, Clone, Copy)]
enum Expect {
    Hello,
    Prepared(u64),
    /// A query result to verify against `baseline[index]`.
    Result(usize),
    Bye,
}

/// Yields the script's request at `step`, or `None` past the end:
/// handshake, both prepares, `rounds` repetitions of the mix, close.
fn step_request(step: usize, rounds: usize) -> Option<(Request, Expect)> {
    if step == 0 {
        return Some((
            Request::Hello {
                version: PROTOCOL_VERSION,
            },
            Expect::Hello,
        ));
    }
    let step = step - 1;
    if step < PREPARED.len() {
        return Some((
            Request::Prepare {
                sql: PREPARED[step].to_string(),
            },
            Expect::Prepared(step as u64 + 1),
        ));
    }
    let step = step - PREPARED.len();
    let per_round = AD_HOC.len() + PREPARED.len();
    if step < rounds * per_round {
        let i = step % per_round;
        if i < AD_HOC.len() {
            return Some((
                Request::Query {
                    sql: AD_HOC[i].to_string(),
                },
                Expect::Result(i),
            ));
        }
        let j = i - AD_HOC.len();
        return Some((
            Request::Execute {
                statement: StatementId(j as u64 + 1),
            },
            Expect::Result(AD_HOC.len() + j),
        ));
    }
    if step == rounds * per_round {
        return Some((Request::Close, Expect::Bye));
    }
    None
}

/// One scripted connection: a nonblocking socket plus enough state to
/// resume mid-frame in either direction.
struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    step: usize,
    expect: Expect,
    sent_at: Instant,
    wants_write: bool,
    done: bool,
    /// Nanosecond latency of every verified query result.
    latencies: Vec<u64>,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            step: 0,
            expect: Expect::Hello,
            sent_at: Instant::now(),
            wants_write: false,
            done: false,
            latencies: Vec::new(),
        }
    }

    /// Queues the current step's request frame and arms the clock.
    fn queue_step(&mut self, rounds: usize) {
        let Some((request, expect)) = step_request(self.step, rounds) else {
            self.done = true;
            return;
        };
        self.expect = expect;
        self.sent_at = Instant::now();
        write_frame(&mut self.write_buf, &request).expect("request frames always encode");
    }

    /// Writes until blocked or drained; returns whether bytes remain.
    fn flush(&mut self) -> bool {
        while self.write_pos < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.write_pos..]) {
                Ok(0) => panic!("server closed the connection mid-request"),
                Ok(n) => self.write_pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("loadgen write failed: {e}"),
            }
        }
        self.write_buf.clear();
        self.write_pos = 0;
        false
    }

    /// Reads until blocked; returns whether the peer hung up (which is
    /// only fatal if buffered frames don't finish the script — the `Bye`
    /// frame and the EOF often arrive in the same readiness event).
    fn fill(&mut self) -> bool {
        let mut buf = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => return true,
                Ok(n) => self.read_buf.extend_from_slice(&buf[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return false,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => panic!("loadgen read failed: {e}"),
            }
        }
    }

    /// Cuts one complete response frame out of the read buffer.
    fn next_frame(&mut self) -> Option<Vec<u8>> {
        if self.read_buf.len() < 4 {
            return None;
        }
        let len = u32::from_be_bytes(self.read_buf[..4].try_into().unwrap()) as usize;
        if self.read_buf.len() < 4 + len {
            return None;
        }
        let body = self.read_buf[4..4 + len].to_vec();
        self.read_buf.drain(..4 + len);
        Some(body)
    }

    /// Verifies one response against the script and advances to the next
    /// step. Returns `true` when the script completed.
    fn verify(&mut self, body: &[u8], baseline: &[Vec<u8>], rounds: usize) -> bool {
        let response: Response = decode_message(body).expect("well-formed response frame");
        match (self.expect, response) {
            (Expect::Hello, Response::Hello { version, .. }) => {
                assert_eq!(version, PROTOCOL_VERSION);
            }
            (Expect::Prepared(id), Response::Prepared { statement }) => {
                assert_eq!(statement.0, id, "prepared statement ids are sequential");
            }
            (Expect::Result(index), Response::Result(out)) => {
                self.latencies
                    .push(self.sent_at.elapsed().as_nanos() as u64);
                assert_eq!(
                    canonical_result_bytes(&out),
                    baseline[index],
                    "response diverged from the single-connection baseline (step {})",
                    self.step
                );
            }
            (Expect::Bye, Response::Bye) => {
                self.done = true;
                return true;
            }
            (expect, other) => panic!("expected {expect:?}, got {other:?}"),
        }
        self.step += 1;
        self.queue_step(rounds);
        false
    }
}

/// Outcome of one connection-count sweep.
struct SweepResult {
    queries: usize,
    wall: Duration,
    /// Sorted nanosecond latencies across every connection.
    latencies: Vec<u64>,
}

/// Drives `conns` scripted connections concurrently off one poller.
fn sweep(addr: &str, conns: usize, rounds: usize, baseline: &[Vec<u8>]) -> SweepResult {
    let started = Instant::now();
    let poller = Poller::new().expect("poller");
    let mut table: HashMap<u64, Conn> = HashMap::with_capacity(conns);
    for token in 0..conns as u64 {
        let stream = TcpStream::connect(addr).expect("loadgen connects");
        stream.set_nonblocking(true).expect("nonblocking socket");
        let _ = stream.set_nodelay(true);
        let mut conn = Conn::new(stream);
        conn.queue_step(rounds);
        let blocked = conn.flush();
        let interest = if blocked {
            conn.wants_write = true;
            Interest::READ_WRITE
        } else {
            Interest::READ
        };
        poller
            .register(conn.stream.as_raw_fd(), token, interest)
            .expect("register connection");
        table.insert(token, conn);
    }

    let mut events: Vec<Event> = Vec::new();
    let mut active = table.len();
    let mut last_progress = Instant::now();
    let mut latencies: Vec<u64> = Vec::new();
    while active > 0 {
        poller
            .wait(&mut events, Some(Duration::from_millis(500)))
            .expect("poller wait");
        if events.is_empty() {
            assert!(
                last_progress.elapsed() < Duration::from_secs(60),
                "loadgen stalled: {active} connections made no progress for 60s"
            );
            continue;
        }
        last_progress = Instant::now();
        for event in std::mem::take(&mut events) {
            let Some(conn) = table.get_mut(&event.token) else {
                continue;
            };
            if event.writable {
                let blocked = conn.flush();
                if !blocked && conn.wants_write {
                    conn.wants_write = false;
                    poller
                        .modify(conn.stream.as_raw_fd(), event.token, Interest::READ)
                        .expect("drop write interest");
                }
            }
            if event.readable {
                let eof = conn.fill();
                let mut finished = false;
                while let Some(body) = conn.next_frame() {
                    if conn.verify(&body, baseline, rounds) {
                        finished = true;
                        break;
                    }
                }
                if finished {
                    let mut conn = table.remove(&event.token).expect("finished connection");
                    let _ = poller.deregister(conn.stream.as_raw_fd());
                    latencies.append(&mut conn.latencies);
                    active -= 1;
                    continue;
                }
                assert!(
                    !eof,
                    "server hung up before the script finished (step {})",
                    conn.step
                );
                let blocked = conn.flush();
                if blocked != conn.wants_write {
                    conn.wants_write = blocked;
                    let interest = if blocked {
                        Interest::READ_WRITE
                    } else {
                        Interest::READ
                    };
                    poller
                        .modify(conn.stream.as_raw_fd(), event.token, interest)
                        .expect("update write interest");
                }
            }
        }
    }
    let wall = started.elapsed();
    latencies.sort_unstable();
    SweepResult {
        queries: latencies.len(),
        wall,
        latencies,
    }
}

/// Nearest-rank percentile over a sorted slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn start_server(max_conns: usize) -> ServerHandle {
    let engine = demo_engine().expect("demo dataset builds");
    Server::bind(
        "127.0.0.1:0",
        engine,
        ServerConfig {
            workers: 8,
            max_connections: max_conns + 64,
            // A 1k-connection ramp handshakes sequentially through one
            // loop; give the tail plenty of room.
            handshake_timeout: Duration::from_secs(60),
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
    .spawn()
    .expect("start server threads")
}

/// Appends one measurement in the criterion shim's JSON-lines shape.
fn report_json(name: &str, ns_per_iter: f64, iters: usize) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!("{{\"name\":\"{name}\",\"ns_per_iter\":{ns_per_iter},\"iters\":{iters}}}\n");
    if let Err(e) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()))
    {
        eprintln!("loadgen: cannot append to CRITERION_JSON={path}: {e}");
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: loadgen [--rounds N] [--conns A,B,C]\n       \
         loadgen --mode streaming --data-dir DIR [--appends N] [--batch B] [--readers R]\n       \
         loadgen --mode streaming --data-dir DIR --verify"
    );
    std::process::exit(2);
}

/// Streaming-ingestion exercise: group-committed appends against a
/// persistent directory under concurrent wire readers and an active TAIL
/// subscription, plus a crash-recovery verifier built on the
/// incremental-equals-rebuild invariant.
mod streaming {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::time::{Duration, Instant};
    use tspdb_client::{Client, TailNotice};
    use tspdb_core::{MetricConfig, SharedEngine, ViewBuilderConfig};
    use tspdb_ingest::{Appender, AppenderConfig};
    use tspdb_probdb::{QueryOutput, Value};
    use tspdb_server::{Server, ServerConfig};
    use tspdb_wire::canonical_result_bytes;

    /// CLI options for `--mode streaming`.
    pub struct Options {
        pub data_dir: PathBuf,
        pub appends: usize,
        pub batch: usize,
        pub readers: usize,
    }

    const TABLE_SQL: &str = "CREATE TABLE stream (t INT, r FLOAT)";
    const VIEW_SQL: &str = "CREATE VIEW sv AS DENSITY r OVER t OMEGA delta=0.5, n=6 FROM stream";
    /// The windowed aggregate both the TAIL subscription and its one-shot
    /// verification twin run. Exact evaluation on a deterministic table,
    /// so equality is byte-equality, not approximation.
    const ONESHOT_SQL: &str = "SELECT COUNT(*), SUM(r) FROM stream GROUP BY WINDOW(t, 512)";
    const TAIL_SQL: &str = "TAIL SELECT COUNT(*), SUM(r) FROM stream GROUP BY WINDOW(t, 512)";
    /// Full scan of the Ω-view — every tuple, every probability — for the
    /// recovery diff.
    const VIEW_PROBE_SQL: &str = "SELECT * FROM sv THRESHOLD 0.0";
    /// Rows that must exist before `CREATE VIEW` (the build needs at
    /// least one full model window; 64 also keeps the DDL off the
    /// first group commit).
    const VIEW_MIN_ROWS: u64 = 64;

    /// Engine defaults for the stream: a short AR(1) window keeps the
    /// per-batch incremental Ω-maintenance cheap enough to sustain 100k+
    /// appends, and `cache: None` keeps maintenance on the direct
    /// evaluation path whose incremental-equals-rebuild contract the
    /// differential suite pins.
    fn config() -> ViewBuilderConfig {
        ViewBuilderConfig {
            window: 30,
            metric_config: MetricConfig {
                p: 1,
                q: 0,
                ..MetricConfig::default()
            },
            cache: None,
            ..ViewBuilderConfig::default()
        }
    }

    /// The deterministic reading at time `t`. Every run — first boot,
    /// post-crash resume, in-memory rebuild twin — generates the same
    /// row for the same `t`, which is what makes crash recovery checkable:
    /// WAL replay drops a torn tail, so the recovered table is always the
    /// exact prefix `t = 0..n-1` of this sequence for some `n`.
    fn stream_row(t: i64) -> Vec<Value> {
        vec![
            Value::Int(t),
            Value::Float(20.0 + 3.0 * (t as f64 * 0.21).sin()),
        ]
    }

    /// `COUNT(*)` of the stream table, or `None` when it doesn't exist.
    fn row_count(engine: &SharedEngine) -> Option<u64> {
        let out = engine.query("SELECT COUNT(*) FROM stream").ok()?;
        let agg = out.aggregate()?;
        Some(agg.groups.first()?.values.first()?.value.round() as u64)
    }

    fn has_view(engine: &SharedEngine) -> bool {
        engine.read().all_relation_names().iter().any(|n| n == "sv")
    }

    /// `COUNT(*)` over the wire, as a reader connection sees it.
    fn wire_count(client: &mut Client) -> u64 {
        let out: QueryOutput = client
            .query("SELECT COUNT(*) FROM stream")
            .expect("reader COUNT query");
        let agg = out.aggregate().expect("COUNT(*) aggregates");
        agg.groups
            .first()
            .and_then(|g| g.values.first())
            .map_or(0, |v| v.value.round() as u64)
    }

    /// Checks one pushed TAIL frame against the one-shot windowed query
    /// run *now* on the same connection: the frame's bucket closed before
    /// emission and appends are monotone in `t`, so the bucket is
    /// immutable and the fingerprints must match bit for bit.
    fn verify_frame(client: &mut Client, frame: &tspdb_client::TailFrame) {
        let out = client.query(ONESHOT_SQL).expect("one-shot windowed query");
        let full = out.aggregate().expect("windowed aggregate").clone();
        let mut filtered = full;
        filtered.groups.retain(|g| {
            g.key.first().and_then(Value::as_f64).map(f64::to_bits) == Some(frame.bucket.to_bits())
        });
        assert_eq!(
            frame.result.fingerprint(),
            filtered.fingerprint(),
            "TAIL frame for bucket {} diverged from the one-shot query",
            frame.bucket
        );
    }

    /// The ingest run: writer group-commits `appends` rows while `readers`
    /// wire connections assert the visible row count only ever grows and a
    /// TAIL subscriber verifies every closed-bucket frame. Designed to be
    /// `kill -9`ed at any instant — every durable state is one `--verify`
    /// away from being proven correct.
    pub fn run(opts: Options) {
        let engine =
            SharedEngine::open_persistent(&opts.data_dir, config()).expect("open data dir");
        let recovered = match row_count(&engine) {
            Some(n) => n,
            None => {
                engine.execute(TABLE_SQL).expect("create stream table");
                0
            }
        };
        let handle = Server::bind(
            "127.0.0.1:0",
            engine.clone(),
            ServerConfig {
                workers: 4,
                ..ServerConfig::default()
            },
        )
        .expect("bind ephemeral port")
        .spawn()
        .expect("start server threads");
        let addr = handle.addr().to_string();
        println!(
            "loadgen[streaming]: {} recovered rows in {}, server on {addr}, \
             appending {} more (batch {}, {} readers)",
            recovered,
            opts.data_dir.display(),
            opts.appends,
            opts.batch,
            opts.readers,
        );

        let stop = AtomicBool::new(false);
        let reader_queries = AtomicU64::new(0);
        let frames_checked = AtomicU64::new(0);
        let started = Instant::now();
        std::thread::scope(|scope| {
            // TAIL subscriber: every pushed frame is fingerprint-checked
            // against the one-shot query, buckets must arrive in order,
            // and a lapse is a failure (nothing drops the table here).
            let subscriber = scope.spawn(|| {
                let mut client = Client::connect(&addr).expect("subscriber connects");
                let tail = client.tail(TAIL_SQL).expect("TAIL subscription");
                let mut last_bucket = f64::NEG_INFINITY;
                let mut pump = |client: &mut Client, timeout| match client
                    .tail_next(Some(timeout))
                    .expect("tail_next")
                {
                    Some(TailNotice::Frame(frame)) => {
                        assert!(
                            frame.bucket > last_bucket,
                            "TAIL buckets must close in order: {} after {}",
                            frame.bucket,
                            last_bucket
                        );
                        last_bucket = frame.bucket;
                        verify_frame(client, &frame);
                        frames_checked.fetch_add(1, Ordering::Relaxed);
                        true
                    }
                    Some(TailNotice::Stopped { reason, .. }) => {
                        panic!("TAIL lapsed mid-stream: {reason}")
                    }
                    None => false,
                };
                while !stop.load(Ordering::Relaxed) {
                    pump(&mut client, Duration::from_millis(100));
                }
                // Workers poll the registry after every request, so one
                // more query flushes any frame the final group commit
                // closed; then drain until quiet.
                let _ = wire_count(&mut client);
                while pump(&mut client, Duration::from_millis(300)) {}
                client.tail_stop(tail).expect("clean TAIL stop");
                client.close().expect("clean close");
            });
            let readers: Vec<_> = (0..opts.readers)
                .map(|_| {
                    scope.spawn(|| {
                        let mut client = Client::connect(&addr).expect("reader connects");
                        let mut last = 0u64;
                        while !stop.load(Ordering::Relaxed) {
                            let count = wire_count(&mut client);
                            assert!(
                                count >= last,
                                "visible row count went backwards: {count} < {last}"
                            );
                            last = count;
                            reader_queries.fetch_add(1, Ordering::Relaxed);
                            std::thread::sleep(Duration::from_millis(5));
                        }
                        client.close().expect("clean close");
                    })
                })
                .collect();

            // The writer: one Appender, group commit per `--batch` rows.
            let mut appender = Appender::new(
                engine.clone(),
                AppenderConfig {
                    max_rows: opts.batch,
                    max_delay: Duration::from_millis(50),
                },
            );
            let mut view_ready = has_view(&engine);
            if !view_ready && recovered >= VIEW_MIN_ROWS {
                engine.execute(VIEW_SQL).expect("create Ω-view");
                view_ready = true;
            }
            for i in 0..opts.appends as u64 {
                let t = (recovered + i) as i64;
                appender.append("stream", stream_row(t)).expect("append");
                let total = recovered + i + 1;
                if !view_ready && total >= VIEW_MIN_ROWS {
                    appender.flush().expect("flush before CREATE VIEW");
                    engine.execute(VIEW_SQL).expect("create Ω-view");
                    view_ready = true;
                }
                if total % 20_000 == 0 {
                    println!(
                        "loadgen[streaming]: {total} rows durable \
                         ({:.0} rows/s)",
                        (i + 1) as f64 / started.elapsed().as_secs_f64()
                    );
                }
            }
            appender.flush().expect("final flush");
            let stats = appender.stats();
            let wall = started.elapsed();
            stop.store(true, Ordering::Relaxed);
            for reader in readers {
                reader.join().expect("reader thread");
            }
            subscriber.join().expect("subscriber thread");
            println!(
                "loadgen[streaming]: {} rows in {} group commits over {:.1}s \
                 ({:.0} rows/s), {} reader queries, {} TAIL frames verified",
                stats.rows,
                stats.flushes,
                wall.as_secs_f64(),
                stats.rows as f64 / wall.as_secs_f64(),
                reader_queries.load(Ordering::Relaxed),
                frames_checked.load(Ordering::Relaxed),
            );
            super::report_json(
                "loadgen/streaming/append",
                wall.as_nanos() as f64 / opts.appends.max(1) as f64,
                opts.appends,
            );
        });
        handle.shutdown();
        let final_count = row_count(&engine).expect("stream table exists");
        assert_eq!(final_count, recovered + opts.appends as u64);
        println!("loadgen[streaming]: done, {final_count} rows durable");
    }

    /// The crash-recovery check: reopen the directory (replaying the WAL,
    /// dropping any torn tail), then rebuild a never-crashed in-memory
    /// twin from the recovered row count and demand byte-identical query
    /// results. Two invariants make this exact: recovered rows are always
    /// a strict prefix of the deterministic `stream_row` sequence, and an
    /// incrementally-maintained Ω-view is bit-identical to one rebuilt
    /// from scratch over the same rows.
    pub fn verify(opts: Options) {
        let engine =
            SharedEngine::open_persistent(&opts.data_dir, config()).expect("open data dir");
        let n = row_count(&engine).expect("recovered stream table");
        assert!(n > 0, "nothing recovered from {}", opts.data_dir.display());
        let view_recovered = has_view(&engine);
        println!(
            "loadgen[verify]: recovered {n} rows (Ω-view: {}), rebuilding twin",
            if view_recovered { "present" } else { "absent" }
        );

        let twin = SharedEngine::new(config());
        twin.execute(TABLE_SQL).expect("twin table");
        let mut t = 0i64;
        while (t as u64) < n {
            let chunk = 4096.min(n - t as u64) as i64;
            twin.append_rows("stream", (t..t + chunk).map(stream_row).collect())
                .expect("twin append");
            t += chunk;
        }
        if view_recovered {
            // Built AFTER every append — the recovered view was maintained
            // incrementally, so equality below is the invariant at work.
            twin.execute(VIEW_SQL).expect("twin Ω-view");
        }

        let diff = |sql: &str| {
            let recovered = canonical_result_bytes(&engine.query(sql).expect("recovered query"));
            let rebuilt = canonical_result_bytes(&twin.query(sql).expect("twin query"));
            assert_eq!(
                recovered, rebuilt,
                "recovered state diverged from the never-crashed twin on {sql:?}"
            );
        };
        diff(ONESHOT_SQL);
        if view_recovered {
            diff(VIEW_PROBE_SQL);
        }
        println!(
            "loadgen[verify]: recovered fingerprints byte-identical to the \
             never-crashed twin ({n} rows{})",
            if view_recovered {
                ", Ω-view included"
            } else {
                ""
            }
        );
    }
}

fn main() {
    let mut mode = String::from("sweep");
    let mut rounds = 20usize;
    let mut conn_counts: Vec<usize> = vec![64, 256, 1024];
    let mut data_dir: Option<std::path::PathBuf> = None;
    let mut appends = 120_000usize;
    let mut batch = 64usize;
    let mut readers = 2usize;
    let mut verify = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--mode" => match args.next() {
                Some(m) => mode = m,
                None => usage(),
            },
            "--rounds" => match args.next().and_then(|r| r.parse().ok()) {
                Some(r) => rounds = r,
                None => usage(),
            },
            "--conns" => match args.next().map(|c| {
                c.split(',')
                    .map(|part| part.trim().parse::<usize>())
                    .collect::<Result<Vec<_>, _>>()
            }) {
                Some(Ok(counts)) if !counts.is_empty() => conn_counts = counts,
                _ => usage(),
            },
            "--data-dir" => match args.next() {
                Some(dir) => data_dir = Some(std::path::PathBuf::from(dir)),
                None => usage(),
            },
            "--appends" => match args.next().and_then(|n| n.parse().ok()) {
                Some(n) => appends = n,
                None => usage(),
            },
            "--batch" => match args.next().and_then(|b| b.parse().ok()) {
                Some(b) if b > 0 => batch = b,
                _ => usage(),
            },
            "--readers" => match args.next().and_then(|r| r.parse().ok()) {
                Some(r) => readers = r,
                None => usage(),
            },
            "--verify" => verify = true,
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    match mode.as_str() {
        "sweep" => {}
        "streaming" => {
            let Some(data_dir) = data_dir else {
                eprintln!("--mode streaming requires --data-dir");
                usage();
            };
            let opts = streaming::Options {
                data_dir,
                appends,
                batch,
                readers,
            };
            if verify {
                streaming::verify(opts);
            } else {
                streaming::run(opts);
            }
            return;
        }
        other => {
            eprintln!("unknown mode: {other}");
            usage();
        }
    }

    let max_conns = conn_counts.iter().copied().max().unwrap_or(1);
    let fd_limit = rlimit::raise_nofile((4 * max_conns + 256) as u64);
    let handle = start_server(max_conns);
    let addr = handle.addr().to_string();
    println!(
        "loadgen: server on {addr}, {rounds} mix-rounds per connection, \
         sweep {conn_counts:?}, fd limit {fd_limit}"
    );

    // Single-connection baseline: the canonical response bytes every
    // concurrent connection must reproduce.
    let baseline: Vec<Vec<u8>> = {
        let mut client = Client::connect(&addr).expect("baseline connects");
        let base: Vec<Vec<u8>> = AD_HOC
            .iter()
            .chain(PREPARED.iter())
            .map(|sql| canonical_result_bytes(&client.query(sql).expect("baseline query")))
            .collect();
        client.close().expect("clean close");
        base
    };

    println!(
        "{:>12}  {:>10}  {:>12}  {:>10}  {:>9}  {:>9}  {:>9}",
        "connections", "queries", "wall", "queries/s", "p50", "p95", "p99"
    );
    for &conns in &conn_counts {
        let result = sweep(&addr, conns, rounds, &baseline);
        let qps = result.queries as f64 / result.wall.as_secs_f64();
        let (p50, p95, p99) = (
            percentile(&result.latencies, 0.50),
            percentile(&result.latencies, 0.95),
            percentile(&result.latencies, 0.99),
        );
        println!(
            "{conns:>12}  {:>10}  {:>10.1}ms  {qps:>10.1}  {:>7.2}ms  {:>7.2}ms  {:>7.2}ms",
            result.queries,
            result.wall.as_secs_f64() * 1e3,
            p50 as f64 / 1e6,
            p95 as f64 / 1e6,
            p99 as f64 / 1e6,
        );
        report_json(
            &format!("loadgen/conns={conns}"),
            result.wall.as_nanos() as f64 / result.queries.max(1) as f64,
            result.queries,
        );
        report_json(
            &format!("loadgen/conns={conns}/p50"),
            p50 as f64,
            result.queries,
        );
        report_json(
            &format!("loadgen/conns={conns}/p95"),
            p95 as f64,
            result.queries,
        );
        report_json(
            &format!("loadgen/conns={conns}/p99"),
            p99 as f64,
            result.queries,
        );
    }

    handle.shutdown();
    println!("loadgen: every response matched the single-connection baseline");
}
