//! Load generator for the wire-protocol server: drives 1/2/4/8 concurrent
//! connections through a fixed query mix and reports queries/sec.
//!
//! Every response is checked against the single-connection baseline —
//! the executor's determinism contract (bit-identical MC estimates at
//! every thread count *and* under concurrency) must hold across the
//! wire, so any divergence fails the run. Results append to the file
//! named by `CRITERION_JSON` in the same JSON-lines shape the criterion
//! shim emits (`{"name":…,"ns_per_iter":…,"iters":…}`), joining the
//! existing bench trajectory.
//!
//! ```text
//! loadgen [--rounds N]        # default 20 mix-rounds per connection
//! ```

use std::time::Instant;
use tspdb_client::Client;
use tspdb_server::{demo_engine, Server, ServerConfig, ServerHandle};
use tspdb_wire::canonical_result_bytes;

/// The per-round query mix: the row pipeline, Monte-Carlo sampling and the
/// O(B) synopsis backend (both as prepared statements — plan once, execute
/// many), exact grouped aggregates, EXPLAIN, and a top-k probability sort.
const AD_HOC: &[&str] = &[
    "SELECT * FROM pv THRESHOLD 0.2",
    "SELECT t, COUNT(*), SUM(lambda) FROM pv GROUP BY t HAVING COUNT(*) >= 2",
    "EXPLAIN SELECT COUNT(*) FROM pv WITH WORLDS 500 SEED 9",
    "SELECT t FROM pv WHERE prob >= 0.3 ORDER BY prob DESC LIMIT 8",
];
const PREPARED: &[&str] = &[
    "SELECT * FROM pv WITH WORLDS 1000 SEED 5",
    "SELECT COUNT(*), SUM(lambda) FROM pv WITH SYNOPSIS BUCKETS 64",
];

/// One connection's work: `rounds` runs of the mix, checking every
/// response against the baseline. Returns the number of queries issued.
fn drive(addr: &str, rounds: usize, baseline: &[Vec<u8>]) -> usize {
    let mut client = Client::connect(addr).expect("loadgen connects");
    let stmts: Vec<_> = PREPARED
        .iter()
        .map(|sql| client.prepare(sql).expect("prepare statement"))
        .collect();
    let mut queries = 0usize;
    for _ in 0..rounds {
        for (i, sql) in AD_HOC.iter().enumerate() {
            let out = client.query(sql).expect("ad-hoc query");
            assert_eq!(
                canonical_result_bytes(&out),
                baseline[i],
                "response diverged from the single-connection baseline: {sql}"
            );
            queries += 1;
        }
        for (i, &stmt) in stmts.iter().enumerate() {
            let out = client.execute(stmt).expect("prepared execute");
            assert_eq!(
                canonical_result_bytes(&out),
                baseline[AD_HOC.len() + i],
                "prepared response diverged from the baseline: {}",
                PREPARED[i]
            );
            queries += 1;
        }
    }
    client.close().expect("clean close");
    queries
}

fn start_server() -> ServerHandle {
    let engine = demo_engine().expect("demo dataset builds");
    Server::bind(
        "127.0.0.1:0",
        engine,
        ServerConfig {
            workers: 16,
            queue_depth: 32,
        },
    )
    .expect("bind ephemeral port")
    .spawn()
    .expect("start server threads")
}

/// Appends one measurement in the criterion shim's JSON-lines shape.
fn report_json(name: &str, ns_per_iter: f64, iters: usize) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let line = format!("{{\"name\":\"{name}\",\"ns_per_iter\":{ns_per_iter},\"iters\":{iters}}}\n");
    if let Err(e) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()))
    {
        eprintln!("loadgen: cannot append to CRITERION_JSON={path}: {e}");
    }
}

fn main() {
    let mut rounds = 20usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--rounds" => {
                rounds = args.next().and_then(|r| r.parse().ok()).unwrap_or_else(|| {
                    eprintln!("usage: loadgen [--rounds N]");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("unknown argument: {other}\nusage: loadgen [--rounds N]");
                std::process::exit(2);
            }
        }
    }

    let handle = start_server();
    let addr = handle.addr().to_string();
    println!("loadgen: server on {addr}, {rounds} mix-rounds per connection");

    // Single-connection baseline: the canonical response bytes every
    // concurrent connection must reproduce.
    let baseline: Vec<Vec<u8>> = {
        let mut client = Client::connect(&addr).expect("baseline connects");
        let base: Vec<Vec<u8>> = AD_HOC
            .iter()
            .chain(PREPARED.iter())
            .map(|sql| canonical_result_bytes(&client.query(sql).expect("baseline query")))
            .collect();
        client.close().expect("clean close");
        base
    };

    println!(
        "{:>12}  {:>10}  {:>12}  {:>10}",
        "connections", "queries", "wall", "queries/s"
    );
    for conns in [1usize, 2, 4, 8] {
        let started = Instant::now();
        let totals: Vec<usize> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..conns)
                .map(|_| {
                    let addr = &addr;
                    let baseline = &baseline;
                    s.spawn(move || drive(addr, rounds, baseline))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("loadgen connection thread"))
                .collect()
        });
        let wall = started.elapsed();
        let queries: usize = totals.iter().sum();
        let qps = queries as f64 / wall.as_secs_f64();
        println!(
            "{conns:>12}  {queries:>10}  {:>10.1}ms  {qps:>10.1}",
            wall.as_secs_f64() * 1e3
        );
        report_json(
            &format!("loadgen/conns={conns}"),
            wall.as_nanos() as f64 / queries as f64,
            queries,
        );
    }

    handle.shutdown();
    println!("loadgen: every response matched the single-connection baseline");
}
