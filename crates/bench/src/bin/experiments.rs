//! Experiment driver: regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run --release -p tspdb-bench --bin experiments -- all
//! cargo run --release -p tspdb-bench --bin experiments -- fig10 fig11
//! cargo run --release -p tspdb-bench --bin experiments -- --quick all
//! ```

use std::time::Instant;
use tspdb_bench::experiments::{run_experiment, Options, ALL_EXPERIMENTS};

fn usage() -> ! {
    eprintln!("usage: experiments [--quick] <id>...");
    eprintln!(
        "  ids: all {}",
        ALL_EXPERIMENTS
            .iter()
            .map(|(n, _)| *n)
            .collect::<Vec<_>>()
            .join(" ")
    );
    std::process::exit(2);
}

fn main() {
    let mut quick = false;
    let mut ids = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" | "-q" => quick = true,
            "all" => ids.extend(ALL_EXPERIMENTS.iter().map(|(_, id)| *id)),
            other => match ALL_EXPERIMENTS.iter().find(|(n, _)| *n == other) {
                Some((_, id)) => ids.push(*id),
                None => {
                    eprintln!("unknown experiment: {other}");
                    usage();
                }
            },
        }
    }
    if ids.is_empty() {
        usage();
    }
    let opts = Options { quick };
    for id in ids {
        let started = Instant::now();
        let report = run_experiment(id, opts);
        println!("{report}");
        println!("[{id:?} completed in {:?}]\n", started.elapsed());
    }
}
