//! Error type for the probabilistic database substrate.

use crate::value::ColumnType;
use std::fmt;

/// Errors surfaced by the database layer.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// Referenced column does not exist.
    UnknownColumn(String),
    /// Referenced table/view does not exist.
    UnknownTable(String),
    /// A table/view with this name already exists.
    DuplicateTable(String),
    /// Row arity differs from the schema.
    ArityMismatch {
        /// Schema arity.
        expected: usize,
        /// Row length.
        got: usize,
    },
    /// Value type incompatible with the column type.
    TypeMismatch {
        /// Offending column.
        column: String,
        /// Column type.
        expected: ColumnType,
        /// Value type supplied.
        got: ColumnType,
    },
    /// A probability outside `[0, 1]` was supplied.
    InvalidProbability(f64),
    /// SQL text could not be parsed.
    Parse(String),
    /// Statement is valid but cannot be executed in this context (e.g. a
    /// DENSITY view without a registered density handler).
    Unsupported(String),
    /// A mutating statement was issued on the read-only query path.
    ReadOnly(String),
    /// An invalid possible-worlds sampling request (bad executor
    /// configuration, or a `WITH WORLDS` clause on a relation that cannot
    /// be sampled).
    InvalidWorlds(String),
    /// The statement parsed but no valid query plan exists for it (e.g. a
    /// projection column missing from `GROUP BY`, or `ORDER BY` on an
    /// aggregate query).
    Plan(String),
    /// The density-view handler reported a failure.
    ViewBuild(String),
    /// The persistent storage layer reported a failure (I/O error, corrupt
    /// page, poisoned handle). Carried as text so the substrate stays free
    /// of a storage dependency.
    Storage(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            DbError::UnknownTable(t) => write!(f, "unknown table or view: {t}"),
            DbError::DuplicateTable(t) => write!(f, "table or view already exists: {t}"),
            DbError::ArityMismatch { expected, got } => {
                write!(
                    f,
                    "arity mismatch: schema has {expected} columns, row has {got}"
                )
            }
            DbError::TypeMismatch {
                column,
                expected,
                got,
            } => write!(
                f,
                "type mismatch in column {column}: expected {expected}, got {got}"
            ),
            DbError::InvalidProbability(p) => {
                write!(f, "probability out of range [0,1]: {p}")
            }
            DbError::Parse(msg) => write!(f, "parse error: {msg}"),
            DbError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
            DbError::ReadOnly(msg) => {
                write!(
                    f,
                    "statement mutates the database, use the write path: {msg}"
                )
            }
            DbError::InvalidWorlds(msg) => {
                write!(f, "invalid possible-worlds request: {msg}")
            }
            DbError::Plan(msg) => write!(f, "cannot plan query: {msg}"),
            DbError::ViewBuild(msg) => write!(f, "view build failed: {msg}"),
            DbError::Storage(msg) => write!(f, "storage error: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_offender() {
        assert!(DbError::UnknownTable("raw".into())
            .to_string()
            .contains("raw"));
        assert!(DbError::InvalidProbability(1.5).to_string().contains("1.5"));
        let e = DbError::TypeMismatch {
            column: "r".into(),
            expected: ColumnType::Float,
            got: ColumnType::Text,
        };
        let s = e.to_string();
        assert!(s.contains('r') && s.contains("FLOAT") && s.contains("TEXT"));
    }
}
