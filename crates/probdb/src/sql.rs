//! SQL-like query language: tokenizer, AST and parser.
//!
//! Implements the paper's offline query-provisioning syntax (Fig. 7):
//!
//! ```sql
//! CREATE VIEW prob_view AS DENSITY r
//! OVER t OMEGA delta=2, n=2
//! FROM raw_values WHERE t >= 1 AND t <= 3
//! ```
//!
//! plus the surrounding statements a usable system needs (`CREATE TABLE`,
//! `INSERT`, `SELECT`, `DROP`) and two documented extensions on the view
//! statement: `USING METRIC <name>` selects the dynamic density metric and
//! `WINDOW <H>` sets the sliding-window length (both default to the
//! engine's configuration when omitted).
//!
//! `SELECT` carries the probabilistic extensions:
//!
//! * an **aggregate grammar** — `SELECT COUNT(*) | SUM(col) | AVG(col) |
//!   EXPECTED(col)`, optionally `GROUP BY col, …`, optionally a `HAVING`
//!   event predicate such as `HAVING COUNT(*) >= 2` (the probability that
//!   the group's tuple count is at least 2). Aggregate queries are planned
//!   and evaluated by [`crate::plan`];
//! * **temporal windows** — `GROUP BY WINDOW(<col>, <width> [, <origin>])`
//!   buckets tuples by a numeric column into half-open intervals
//!   `[origin + k·width, origin + (k+1)·width)` and aggregates per bucket
//!   (`origin` defaults to 0). The window composes with further `GROUP BY`
//!   columns and with `HAVING`/`WITH WORLDS`; see [`WindowSpec`];
//! * `THRESHOLD <tau>` — keep only tuples with probability ≥ τ
//!   ([`crate::query::threshold`]);
//! * `TOP <k>` — the k most probable tuples ([`crate::query::top_k`]);
//! * `WITH WORLDS <n> [SEED <s>] [CONFIDENCE <eps>]` — evaluate the query
//!   by Monte-Carlo possible-world sampling
//!   ([`crate::worlds::WorldsExecutor`]) over at most `n` worlds, seeded
//!   with `s` (default 0), optionally stopping early once the 95% CI
//!   half-width of the event-probability estimate is ≤ `eps`;
//! * `WITH SYNOPSIS [BUCKETS <b>] [MAXERROR <e>]` — answer aggregate
//!   queries in O(B) from the relation's precomputed probabilistic
//!   histogram synopsis ([`crate::plan::SynopsisStrategy`]) instead of
//!   scanning tuples, reporting a guaranteed error bound per value and
//!   falling back to exact evaluation when the bound would exceed `e`.
//!   At most one `WITH` clause per statement.
//!
//! `EXPLAIN <select>` wraps any `SELECT` and, instead of executing it,
//! reports the logical plan, the lowered physical plan and the chosen
//! evaluation strategy (see [`crate::plan`]).
//!
//! Every statement implements `Display` with the guarantee that
//! `parse(stmt.to_string())` reproduces the statement exactly (the
//! round-trip property the SQL proptests pin down).

use crate::error::DbError;
use crate::query::{CmpOp, Comparison, Conjunction};
use crate::value::{ColumnType, Value};
use std::fmt;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col TYPE, …)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, ColumnType)>,
    },
    /// `INSERT INTO name VALUES (…), (…)`
    Insert {
        /// Target table.
        table: String,
        /// Literal rows.
        rows: Vec<Vec<Value>>,
    },
    /// `SELECT … FROM … [WHERE …] [ORDER BY …] [LIMIT …]`
    Select(SelectStmt),
    /// `EXPLAIN SELECT …` — plan the query and report the plan instead of
    /// executing it.
    Explain(SelectStmt),
    /// The paper's probabilistic view generation query.
    CreateDensityView(DensityViewSpec),
    /// `DROP TABLE name` / `DROP VIEW name`
    Drop {
        /// Table or view name.
        name: String,
    },
    /// `TAIL SELECT … GROUP BY WINDOW(…)` — registers the wrapped windowed
    /// query as a standing continuous query. The catalog cannot execute it
    /// (there is nothing to return yet); the server surface owns the
    /// subscription lifecycle and emits a frame each time a window bucket
    /// closes.
    Tail(SelectStmt),
}

impl Statement {
    /// Whether executing the statement leaves the database unchanged.
    ///
    /// Read-only statements are served by [`crate::Database::query`] with a
    /// shared `&self` borrow; everything else needs the exclusive write
    /// path.
    pub fn is_read_only(&self) -> bool {
        matches!(self, Statement::Select(_) | Statement::Explain(_))
    }
}

/// An aggregate function name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFunc {
    /// `COUNT(*)` — the (distribution of the) number of tuples.
    Count,
    /// `SUM(col)` — the sum of a numeric column over present tuples.
    Sum,
    /// `AVG(col)` — `E[SUM(col)] / E[COUNT(*)]` (ratio of expectations).
    Avg,
    /// `EXPECTED(col)` — `E[SUM(col)]`, the paper-style expected aggregate.
    Expected,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Expected => "EXPECTED",
        })
    }
}

/// An aggregate expression in a projection: `COUNT(*)` or `FUNC(col)`.
#[derive(Debug, Clone, PartialEq)]
pub struct AggExpr {
    /// The aggregate function.
    pub func: AggFunc,
    /// The aggregated column; `None` only for `COUNT(*)`.
    pub column: Option<String>,
}

impl AggExpr {
    /// `COUNT(*)`.
    pub fn count() -> Self {
        AggExpr {
            func: AggFunc::Count,
            column: None,
        }
    }

    /// `FUNC(col)` for the column-taking aggregates.
    pub fn over(func: AggFunc, column: impl Into<String>) -> Self {
        AggExpr {
            func,
            column: Some(column.into()),
        }
    }
}

impl fmt::Display for AggExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.column {
            Some(col) => write!(f, "{}({col})", self.func),
            None => write!(f, "{}(*)", self.func),
        }
    }
}

/// One item of a `SELECT` projection.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// A plain column reference.
    Column(String),
    /// An aggregate expression.
    Aggregate(AggExpr),
}

impl fmt::Display for SelectItem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectItem::Column(c) => f.write_str(c),
            SelectItem::Aggregate(a) => a.fmt(f),
        }
    }
}

/// A `HAVING <agg> <op> <literal>` event predicate over an aggregate
/// query. On probabilistic relations it is *not* a filter: each group
/// reports the probability that the predicate holds (e.g.
/// `HAVING COUNT(*) >= 2` yields `P(count ≥ 2)` per group). On
/// deterministic tables it filters groups, SQL-classic.
#[derive(Debug, Clone, PartialEq)]
pub struct HavingClause {
    /// The aggregate on the left-hand side (currently only `COUNT(*)` is
    /// executable; the grammar is kept general).
    pub agg: AggExpr,
    /// The comparison operator.
    pub op: CmpOp,
    /// The literal right-hand side.
    pub value: Value,
}

impl fmt::Display for HavingClause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} ", self.agg, self.op)?;
        fmt_literal(&self.value, f)
    }
}

/// A temporal window bucketing: `WINDOW(<col>, <width> [, <origin>])`
/// inside a `GROUP BY` list.
///
/// Tuples are assigned to half-open buckets
/// `[origin + k·width, origin + (k+1)·width)` by the **canonical bucket
/// index** `k = ⌊(value − origin) / width⌋` over the numeric window column;
/// each bucket becomes one aggregation group keyed by its bucket *start*
/// `origin + k·width` (a float), ahead of any further `GROUP BY` columns.
/// `origin` defaults to 0 when omitted.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowSpec {
    /// The bucketed (numeric) column — typically the time column.
    pub column: String,
    /// Bucket width; must be positive and finite.
    pub width: f64,
    /// Bucket alignment origin (`None` = 0).
    pub origin: Option<f64>,
}

impl WindowSpec {
    /// The effective alignment origin (0 when omitted).
    pub fn origin(&self) -> f64 {
        self.origin.unwrap_or(0.0)
    }

    /// The start of the bucket containing `value`: `origin + k·width` with
    /// the canonical index `k = ⌊(value − origin) / width⌋`. Every strategy
    /// derives bucket keys through this one function, so exact and
    /// Monte-Carlo evaluation agree on bucket boundaries bit for bit.
    pub fn bucket_start(&self, value: f64) -> f64 {
        let origin = self.origin();
        origin + ((value - origin) / self.width).floor() * self.width
    }
}

impl fmt::Display for WindowSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "WINDOW({}, {:?}", self.column, self.width)?;
        if let Some(o) = self.origin {
            write!(f, ", {o:?}")?;
        }
        f.write_str(")")
    }
}

/// A `SELECT` statement over a deterministic table or probabilistic view.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Projected items; empty means `*`.
    pub projection: Vec<SelectItem>,
    /// Source table or view.
    pub table: String,
    /// Conjunctive predicate (may reference the `prob` pseudo-column on
    /// probabilistic views).
    pub predicate: Conjunction,
    /// Optional temporal window bucketing (`GROUP BY WINDOW(…)`; aggregate
    /// queries only). At most one window per statement; it composes with
    /// plain `group_by` columns.
    pub window: Option<WindowSpec>,
    /// `GROUP BY` columns (aggregate queries only).
    pub group_by: Vec<String>,
    /// Optional `HAVING` event predicate (aggregate queries only).
    pub having: Option<HavingClause>,
    /// Optional `THRESHOLD <tau>`: minimum tuple probability (probabilistic
    /// relations only).
    pub threshold: Option<f64>,
    /// Optional `TOP <k>`: the k most probable tuples (probabilistic
    /// relations only).
    pub top: Option<usize>,
    /// Optional `(column, ascending)` ordering.
    pub order_by: Option<(String, bool)>,
    /// Optional row limit.
    pub limit: Option<usize>,
    /// Optional `WITH WORLDS …`: answer by Monte-Carlo possible-world
    /// sampling instead of exact evaluation.
    pub worlds: Option<WorldsClause>,
    /// Optional `WITH SYNOPSIS …`: answer from the relation's precomputed
    /// probabilistic histogram synopsis instead of scanning tuples.
    pub synopsis: Option<SynopsisClause>,
}

impl SelectStmt {
    /// Whether the projection contains at least one aggregate expression.
    pub fn has_aggregates(&self) -> bool {
        self.projection
            .iter()
            .any(|item| matches!(item, SelectItem::Aggregate(_)))
    }
}

/// The `WITH WORLDS <n> [SEED <s>] [CONFIDENCE <eps>]` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldsClause {
    /// Maximum number of worlds to sample.
    pub worlds: usize,
    /// RNG seed (`SEED <s>`); the executor defaults to 0 when omitted.
    pub seed: Option<u64>,
    /// Early-termination CI half-width target (`CONFIDENCE <eps>`).
    pub confidence: Option<f64>,
}

/// The `WITH SYNOPSIS [BUCKETS <b>] [MAXERROR <e>]` clause.
#[derive(Debug, Clone, PartialEq)]
pub struct SynopsisClause {
    /// Histogram bucket budget B (`BUCKETS <b>`); the catalog default is
    /// used when omitted.
    pub buckets: Option<usize>,
    /// Largest acceptable absolute error bound (`MAXERROR <e>`); answers
    /// whose guaranteed bound exceeds it fall back to exact evaluation.
    pub max_error: Option<f64>,
}

/// The probability value generation query (paper Definition 2 / Fig. 7).
#[derive(Debug, Clone, PartialEq)]
pub struct DensityViewSpec {
    /// Name of the probabilistic view to create.
    pub view_name: String,
    /// Column carrying the raw values (`DENSITY r`).
    pub value_column: String,
    /// Column carrying time (`OVER t`).
    pub time_column: String,
    /// Ω lattice cell width Δ (`OMEGA delta=…`).
    pub delta: f64,
    /// Ω lattice cell count n (`OMEGA …, n=…`); the paper requires n even.
    pub n: usize,
    /// Source table (`FROM raw_values`).
    pub source_table: String,
    /// Time predicate (`WHERE t >= 1 AND t <= 3`).
    pub predicate: Conjunction,
    /// Extension: `USING METRIC <name>` — dynamic density metric to use.
    pub metric: Option<String>,
    /// Extension: `WINDOW <H>` — sliding-window length.
    pub window: Option<usize>,
}

/// Lexical token.
#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Star,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Tokenizes SQL text.
fn tokenize(input: &str) -> Result<Vec<Token>, DbError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0;
    let err = |msg: String| DbError::Parse(msg);
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' | '\n' | '\r' | ';' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(err("expected '=' after '!'".into()));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::Le);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&'>') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => return Err(err("unterminated string literal".into())),
                    }
                }
                out.push(Token::Str(s));
            }
            _ if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                i += 1; // consume digit or '-'
                let mut is_float = false;
                while let Some(&d) = bytes.get(i) {
                    if d.is_ascii_digit() {
                        i += 1;
                    } else if d == '.' && !is_float {
                        is_float = true;
                        i += 1;
                    } else if (d == 'e' || d == 'E')
                        && bytes
                            .get(i + 1)
                            .is_some_and(|n| n.is_ascii_digit() || *n == '-' || *n == '+')
                    {
                        is_float = true;
                        i += 2;
                    } else {
                        break;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| err(format!("bad float literal {text:?}")))?;
                    out.push(Token::Float(v));
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| err(format!("bad integer literal {text:?}")))?;
                    out.push(Token::Int(v));
                }
            }
            _ if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(bytes[start..i].iter().collect()));
            }
            _ => return Err(err(format!("unexpected character {c:?}"))),
        }
    }
    Ok(out)
}

/// Recursive-descent parser state.
struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> DbError {
        DbError::Parse(format!("{} (at token {})", msg.into(), self.pos))
    }

    /// Consumes a keyword (case-insensitive identifier match).
    fn expect_kw(&mut self, kw: &str) -> Result<(), DbError> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.error(format!("expected keyword {kw}, found {other:?}"))),
        }
    }

    /// Peeks whether the next token is the given keyword.
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_ident(&mut self) -> Result<String, DbError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_token(&mut self, t: Token) -> Result<(), DbError> {
        match self.next() {
            Some(found) if found == t => Ok(()),
            other => Err(self.error(format!("expected {t:?}, found {other:?}"))),
        }
    }

    fn expect_number(&mut self) -> Result<f64, DbError> {
        match self.next() {
            Some(Token::Int(v)) => Ok(v as f64),
            Some(Token::Float(v)) => Ok(v),
            other => Err(self.error(format!("expected number, found {other:?}"))),
        }
    }

    fn expect_usize(&mut self) -> Result<usize, DbError> {
        match self.next() {
            Some(Token::Int(v)) if v >= 0 => Ok(v as usize),
            other => Err(self.error(format!("expected non-negative integer, found {other:?}"))),
        }
    }

    fn literal(&mut self) -> Result<Value, DbError> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Value::Int(v)),
            Some(Token::Float(v)) => Ok(Value::Float(v)),
            Some(Token::Str(s)) => Ok(Value::Text(s)),
            other => Err(self.error(format!("expected literal, found {other:?}"))),
        }
    }

    fn comparison_op(&mut self) -> Result<CmpOp, DbError> {
        match self.next() {
            Some(Token::Eq) => Ok(CmpOp::Eq),
            Some(Token::Ne) => Ok(CmpOp::Ne),
            Some(Token::Lt) => Ok(CmpOp::Lt),
            Some(Token::Le) => Ok(CmpOp::Le),
            Some(Token::Gt) => Ok(CmpOp::Gt),
            Some(Token::Ge) => Ok(CmpOp::Ge),
            other => Err(self.error(format!("expected comparison operator, found {other:?}"))),
        }
    }

    /// `WHERE col op literal (AND col op literal)*`
    fn conjunction(&mut self) -> Result<Conjunction, DbError> {
        let mut out = Vec::new();
        loop {
            let column = self.expect_ident()?;
            let op = self.comparison_op()?;
            let value = self.literal()?;
            out.push(Comparison { column, op, value });
            if self.peek_kw("AND") {
                self.next();
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn column_type(&mut self) -> Result<ColumnType, DbError> {
        let t = self.expect_ident()?;
        match t.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" => Ok(ColumnType::Int),
            "FLOAT" | "DOUBLE" | "REAL" => Ok(ColumnType::Float),
            "TEXT" | "VARCHAR" | "STRING" => Ok(ColumnType::Text),
            other => Err(self.error(format!("unknown column type {other}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement, DbError> {
        if self.peek_kw("CREATE") {
            self.next();
            if self.peek_kw("TABLE") {
                self.next();
                self.create_table()
            } else if self.peek_kw("VIEW") {
                self.next();
                self.create_view()
            } else {
                Err(self.error("expected TABLE or VIEW after CREATE"))
            }
        } else if self.peek_kw("INSERT") {
            self.next();
            self.insert()
        } else if self.peek_kw("SELECT") {
            self.next();
            self.select()
        } else if self.peek_kw("EXPLAIN") {
            self.next();
            self.expect_kw("SELECT")?;
            match self.select()? {
                Statement::Select(sel) => Ok(Statement::Explain(sel)),
                _ => unreachable!("select() only builds SELECTs"),
            }
        } else if self.peek_kw("TAIL") {
            self.next();
            self.expect_kw("SELECT")?;
            match self.select()? {
                Statement::Select(sel) => {
                    if sel.window.is_none() {
                        return Err(self.error("TAIL requires GROUP BY WINDOW(…)"));
                    }
                    Ok(Statement::Tail(sel))
                }
                _ => unreachable!("select() only builds SELECTs"),
            }
        } else if self.peek_kw("DROP") {
            self.next();
            if self.peek_kw("TABLE") || self.peek_kw("VIEW") {
                self.next();
            }
            Ok(Statement::Drop {
                name: self.expect_ident()?,
            })
        } else {
            Err(self.error("expected CREATE, INSERT, SELECT, EXPLAIN, TAIL or DROP"))
        }
    }

    /// Parses the aggregate function name the parser is peeking at, if any
    /// — an identifier is only an aggregate when followed by `(`.
    fn peek_agg_func(&self) -> Option<AggFunc> {
        let Some(Token::Ident(name)) = self.peek() else {
            return None;
        };
        if self.tokens.get(self.pos + 1) != Some(&Token::LParen) {
            return None;
        }
        match name.to_ascii_uppercase().as_str() {
            "COUNT" => Some(AggFunc::Count),
            "SUM" => Some(AggFunc::Sum),
            "AVG" => Some(AggFunc::Avg),
            "EXPECTED" => Some(AggFunc::Expected),
            _ => None,
        }
    }

    /// `COUNT(*)` / `SUM(col)` / `AVG(col)` / `EXPECTED(col)`; the caller
    /// has already identified the function via [`Parser::peek_agg_func`].
    fn aggregate(&mut self, func: AggFunc) -> Result<AggExpr, DbError> {
        self.next(); // function name
        self.expect_token(Token::LParen)?;
        let agg = if func == AggFunc::Count {
            self.expect_token(Token::Star)
                .map_err(|_| self.error("COUNT takes '*' (tuple counts have no column)"))?;
            AggExpr::count()
        } else {
            AggExpr::over(func, self.expect_ident()?)
        };
        self.expect_token(Token::RParen)?;
        Ok(agg)
    }

    fn create_table(&mut self) -> Result<Statement, DbError> {
        let name = self.expect_ident()?;
        self.expect_token(Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.expect_ident()?;
            let ty = self.column_type()?;
            columns.push((col, ty));
            match self.next() {
                Some(Token::Comma) => continue,
                Some(Token::RParen) => break,
                other => return Err(self.error(format!("expected ',' or ')', found {other:?}"))),
            }
        }
        Ok(Statement::CreateTable { name, columns })
    }

    fn insert(&mut self) -> Result<Statement, DbError> {
        self.expect_kw("INTO")?;
        let table = self.expect_ident()?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_token(Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                match self.next() {
                    Some(Token::Comma) => continue,
                    Some(Token::RParen) => break,
                    other => {
                        return Err(self.error(format!("expected ',' or ')', found {other:?}")))
                    }
                }
            }
            rows.push(row);
            if self.peek() == Some(&Token::Comma) {
                self.next();
            } else {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn select(&mut self) -> Result<Statement, DbError> {
        let mut projection = Vec::new();
        if self.peek() == Some(&Token::Star) {
            self.next();
        } else {
            loop {
                let item = match self.peek_agg_func() {
                    Some(func) => SelectItem::Aggregate(self.aggregate(func)?),
                    None => SelectItem::Column(self.expect_ident()?),
                };
                projection.push(item);
                if self.peek() == Some(&Token::Comma) {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.expect_kw("FROM")?;
        let table = self.expect_ident()?;
        let mut predicate = Vec::new();
        if self.peek_kw("WHERE") {
            self.next();
            predicate = self.conjunction()?;
        }
        let mut group_by = Vec::new();
        let mut window = None;
        if self.peek_kw("GROUP") {
            self.next();
            self.expect_kw("BY")?;
            loop {
                // `WINDOW` is only the bucketing form when followed by `(`;
                // otherwise it is an ordinary grouping column name.
                if self.peek_kw("WINDOW") && self.tokens.get(self.pos + 1) == Some(&Token::LParen) {
                    if window.is_some() {
                        return Err(self.error("GROUP BY allows at most one WINDOW bucketing"));
                    }
                    window = Some(self.window_spec()?);
                } else {
                    group_by.push(self.expect_ident()?);
                }
                if self.peek() == Some(&Token::Comma) {
                    self.next();
                } else {
                    break;
                }
            }
        }
        let mut having = None;
        if self.peek_kw("HAVING") {
            self.next();
            let func = self
                .peek_agg_func()
                .ok_or_else(|| self.error("HAVING needs an aggregate left-hand side"))?;
            let agg = self.aggregate(func)?;
            let op = self.comparison_op()?;
            let value = self.literal()?;
            having = Some(HavingClause { agg, op, value });
        }
        let mut threshold = None;
        if self.peek_kw("THRESHOLD") {
            self.next();
            let tau = self.expect_number()?;
            if !(0.0..=1.0).contains(&tau) {
                return Err(self.error(format!("THRESHOLD must lie in [0, 1], got {tau}")));
            }
            threshold = Some(tau);
        }
        let mut top = None;
        if self.peek_kw("TOP") {
            self.next();
            top = Some(self.expect_usize()?);
        }
        let mut order_by = None;
        if self.peek_kw("ORDER") {
            self.next();
            self.expect_kw("BY")?;
            let col = self.expect_ident()?;
            let asc = if self.peek_kw("DESC") {
                self.next();
                false
            } else {
                if self.peek_kw("ASC") {
                    self.next();
                }
                true
            };
            order_by = Some((col, asc));
        }
        let mut limit = None;
        if self.peek_kw("LIMIT") {
            self.next();
            limit = Some(self.expect_usize()?);
        }
        let mut worlds = None;
        let mut synopsis = None;
        if self.peek_kw("WITH") {
            self.next();
            if self.peek_kw("SYNOPSIS") {
                self.next();
                let mut buckets = None;
                if self.peek_kw("BUCKETS") {
                    self.next();
                    let b = self.expect_usize()?;
                    if b == 0 {
                        return Err(self.error("SYNOPSIS BUCKETS needs at least one bucket"));
                    }
                    buckets = Some(b);
                }
                let mut max_error = None;
                if self.peek_kw("MAXERROR") {
                    self.next();
                    let e = self.expect_number()?;
                    if !(e > 0.0) {
                        return Err(self.error(format!("MAXERROR bound must be positive, got {e}")));
                    }
                    max_error = Some(e);
                }
                synopsis = Some(SynopsisClause { buckets, max_error });
            } else {
                self.expect_kw("WORLDS")?;
                let n = self.expect_usize()?;
                if n == 0 {
                    return Err(self.error("WITH WORLDS needs at least one world"));
                }
                let mut seed = None;
                if self.peek_kw("SEED") {
                    self.next();
                    seed = Some(self.expect_usize()? as u64);
                }
                let mut confidence = None;
                if self.peek_kw("CONFIDENCE") {
                    self.next();
                    let eps = self.expect_number()?;
                    if !(eps > 0.0) {
                        return Err(
                            self.error(format!("CONFIDENCE target must be positive, got {eps}"))
                        );
                    }
                    confidence = Some(eps);
                }
                worlds = Some(WorldsClause {
                    worlds: n,
                    seed,
                    confidence,
                });
            }
        }
        Ok(Statement::Select(SelectStmt {
            projection,
            table,
            predicate,
            window,
            group_by,
            having,
            threshold,
            top,
            order_by,
            limit,
            worlds,
            synopsis,
        }))
    }

    /// `WINDOW(col, width [, origin])` inside a `GROUP BY` list; the caller
    /// has already seen the keyword and the `(`.
    fn window_spec(&mut self) -> Result<WindowSpec, DbError> {
        self.next(); // WINDOW
        self.expect_token(Token::LParen)?;
        let column = self.expect_ident()?;
        self.expect_token(Token::Comma)?;
        let width = self.expect_number()?;
        if !(width > 0.0) || !width.is_finite() {
            return Err(self.error(format!("WINDOW width must be positive, got {width}")));
        }
        let origin = if self.peek() == Some(&Token::Comma) {
            self.next();
            let o = self.expect_number()?;
            // Like the width, a non-finite origin (e.g. the overflowing
            // literal 1e999) would break the parse→format→parse identity.
            if !o.is_finite() {
                return Err(self.error(format!("WINDOW origin must be finite, got {o}")));
            }
            Some(o)
        } else {
            None
        };
        self.expect_token(Token::RParen)?;
        Ok(WindowSpec {
            column,
            width,
            origin,
        })
    }

    /// `VIEW name AS DENSITY col OVER col OMEGA delta=…, n=… FROM table
    ///  [WHERE …] [USING METRIC m] [WINDOW h]`
    fn create_view(&mut self) -> Result<Statement, DbError> {
        let view_name = self.expect_ident()?;
        self.expect_kw("AS")?;
        self.expect_kw("DENSITY")?;
        let value_column = self.expect_ident()?;
        self.expect_kw("OVER")?;
        let time_column = self.expect_ident()?;
        self.expect_kw("OMEGA")?;
        let mut delta = None;
        let mut n = None;
        loop {
            let key = self.expect_ident()?;
            self.expect_token(Token::Eq)?;
            match key.to_ascii_lowercase().as_str() {
                "delta" => delta = Some(self.expect_number()?),
                "n" => n = Some(self.expect_usize()?),
                other => return Err(self.error(format!("unknown OMEGA parameter {other}"))),
            }
            if self.peek() == Some(&Token::Comma) {
                self.next();
            } else {
                break;
            }
        }
        let delta = delta.ok_or_else(|| self.error("OMEGA clause must set delta"))?;
        let n = n.ok_or_else(|| self.error("OMEGA clause must set n"))?;
        if n == 0 || n % 2 != 0 {
            return Err(self.error(format!("OMEGA n must be a positive even integer, got {n}")));
        }
        if !(delta > 0.0) {
            return Err(self.error(format!("OMEGA delta must be positive, got {delta}")));
        }
        self.expect_kw("FROM")?;
        let source_table = self.expect_ident()?;
        let mut predicate = Vec::new();
        if self.peek_kw("WHERE") {
            self.next();
            predicate = self.conjunction()?;
        }
        let mut metric = None;
        if self.peek_kw("USING") {
            self.next();
            self.expect_kw("METRIC")?;
            metric = Some(self.expect_ident()?);
        }
        let mut window = None;
        if self.peek_kw("WINDOW") {
            self.next();
            window = Some(self.expect_usize()?);
        }
        Ok(Statement::CreateDensityView(DensityViewSpec {
            view_name,
            value_column,
            time_column,
            delta,
            n,
            source_table,
            predicate,
            metric,
            window,
        }))
    }
}

/// Formats a literal so that the tokenizer reads back the same [`Value`]:
/// floats use the shortest round-trip representation (which always keeps a
/// fractional or exponent part), text is single-quoted.
///
/// Round-tripping is guaranteed for finite floats and for text containing
/// no `'` — exactly the values the parser itself can produce.
fn fmt_literal(v: &Value, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    match v {
        Value::Int(i) => write!(f, "{i}"),
        Value::Float(x) => write!(f, "{x:?}"),
        Value::Text(s) => write!(f, "'{s}'"),
    }
}

/// Formats a conjunction as `a = 1 AND b >= 2.5`.
fn fmt_conjunction(pred: &Conjunction, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    for (i, cmp) in pred.iter().enumerate() {
        if i > 0 {
            f.write_str(" AND ")?;
        }
        write!(f, "{} {} ", cmp.column, cmp.op)?;
        fmt_literal(&cmp.value, f)?;
    }
    Ok(())
}

impl fmt::Display for SelectStmt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        if self.projection.is_empty() {
            f.write_str("*")?;
        } else {
            for (i, item) in self.projection.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                item.fmt(f)?;
            }
        }
        write!(f, " FROM {}", self.table)?;
        if !self.predicate.is_empty() {
            f.write_str(" WHERE ")?;
            fmt_conjunction(&self.predicate, f)?;
        }
        if self.window.is_some() || !self.group_by.is_empty() {
            f.write_str(" GROUP BY ")?;
            let mut first = true;
            if let Some(w) = &self.window {
                w.fmt(f)?;
                first = false;
            }
            for col in &self.group_by {
                if !first {
                    f.write_str(", ")?;
                }
                f.write_str(col)?;
                first = false;
            }
        }
        if let Some(h) = &self.having {
            write!(f, " HAVING {h}")?;
        }
        if let Some(tau) = self.threshold {
            write!(f, " THRESHOLD {tau:?}")?;
        }
        if let Some(k) = self.top {
            write!(f, " TOP {k}")?;
        }
        if let Some((col, asc)) = &self.order_by {
            write!(f, " ORDER BY {col} {}", if *asc { "ASC" } else { "DESC" })?;
        }
        if let Some(l) = self.limit {
            write!(f, " LIMIT {l}")?;
        }
        if let Some(w) = &self.worlds {
            write!(f, " WITH WORLDS {}", w.worlds)?;
            if let Some(s) = w.seed {
                write!(f, " SEED {s}")?;
            }
            if let Some(eps) = w.confidence {
                write!(f, " CONFIDENCE {eps:?}")?;
            }
        }
        if let Some(s) = &self.synopsis {
            f.write_str(" WITH SYNOPSIS")?;
            if let Some(b) = s.buckets {
                write!(f, " BUCKETS {b}")?;
            }
            if let Some(e) = s.max_error {
                write!(f, " MAXERROR {e:?}")?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for DensityViewSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CREATE VIEW {} AS DENSITY {} OVER {} OMEGA delta={:?}, n={} FROM {}",
            self.view_name,
            self.value_column,
            self.time_column,
            self.delta,
            self.n,
            self.source_table
        )?;
        if !self.predicate.is_empty() {
            f.write_str(" WHERE ")?;
            fmt_conjunction(&self.predicate, f)?;
        }
        if let Some(m) = &self.metric {
            write!(f, " USING METRIC {m}")?;
        }
        if let Some(h) = self.window {
            write!(f, " WINDOW {h}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::CreateTable { name, columns } => {
                write!(f, "CREATE TABLE {name} (")?;
                for (i, (col, ty)) in columns.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{col} {ty}")?;
                }
                f.write_str(")")
            }
            Statement::Insert { table, rows } => {
                write!(f, "INSERT INTO {table} VALUES ")?;
                for (i, row) in rows.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    f.write_str("(")?;
                    for (j, v) in row.iter().enumerate() {
                        if j > 0 {
                            f.write_str(", ")?;
                        }
                        fmt_literal(v, f)?;
                    }
                    f.write_str(")")?;
                }
                Ok(())
            }
            Statement::Select(sel) => sel.fmt(f),
            Statement::Explain(sel) => write!(f, "EXPLAIN {sel}"),
            Statement::CreateDensityView(spec) => spec.fmt(f),
            Statement::Drop { name } => write!(f, "DROP TABLE {name}"),
            Statement::Tail(sel) => write!(f, "TAIL {sel}"),
        }
    }
}

/// Parses one SQL statement.
pub fn parse(sql: &str) -> Result<Statement, DbError> {
    let tokens = tokenize(sql)?;
    if tokens.is_empty() {
        return Err(DbError::Parse("empty statement".into()));
    }
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    if p.pos != p.tokens.len() {
        return Err(p.error("trailing tokens after statement"));
    }
    Ok(stmt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_fig7_query_verbatim() {
        let sql = "CREATE VIEW prob_view AS DENSITY r \
                   OVER t OMEGA delta=2, n=2 \
                   FROM raw_values WHERE t >= 1 AND t <= 3";
        let stmt = parse(sql).unwrap();
        match stmt {
            Statement::CreateDensityView(spec) => {
                assert_eq!(spec.view_name, "prob_view");
                assert_eq!(spec.value_column, "r");
                assert_eq!(spec.time_column, "t");
                assert_eq!(spec.delta, 2.0);
                assert_eq!(spec.n, 2);
                assert_eq!(spec.source_table, "raw_values");
                assert_eq!(spec.predicate.len(), 2);
                assert_eq!(spec.predicate[0].op, CmpOp::Ge);
                assert_eq!(spec.predicate[1].op, CmpOp::Le);
                assert_eq!(spec.metric, None);
                assert_eq!(spec.window, None);
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parses_view_extensions() {
        let sql = "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=0.05, n=300 \
                   FROM raw USING METRIC arma_garch WINDOW 60";
        match parse(sql).unwrap() {
            Statement::CreateDensityView(spec) => {
                assert_eq!(spec.delta, 0.05);
                assert_eq!(spec.n, 300);
                assert_eq!(spec.metric.as_deref(), Some("arma_garch"));
                assert_eq!(spec.window, Some(60));
                assert!(spec.predicate.is_empty());
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn rejects_odd_or_zero_n() {
        let bad = "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=3 FROM raw";
        assert!(matches!(parse(bad), Err(DbError::Parse(_))));
        let zero = "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=0 FROM raw";
        assert!(matches!(parse(zero), Err(DbError::Parse(_))));
    }

    #[test]
    fn parses_create_table_and_insert() {
        let create = parse("CREATE TABLE raw_values (t INT, r FLOAT, tag TEXT)").unwrap();
        assert_eq!(
            create,
            Statement::CreateTable {
                name: "raw_values".into(),
                columns: vec![
                    ("t".into(), ColumnType::Int),
                    ("r".into(), ColumnType::Float),
                    ("tag".into(), ColumnType::Text),
                ],
            }
        );
        let insert = parse("INSERT INTO raw_values VALUES (1, 4.2, 'a'), (2, -5.9, 'b')").unwrap();
        match insert {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "raw_values");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[1][1], Value::Float(-5.9));
                assert_eq!(rows[0][2], Value::Text("a".into()));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parses_select_with_all_clauses() {
        let sql = "SELECT room, prob FROM prob_view WHERE time = 1 AND prob >= 0.25 \
                   ORDER BY prob DESC LIMIT 2";
        match parse(sql).unwrap() {
            Statement::Select(s) => {
                assert_eq!(
                    s.projection,
                    vec![
                        SelectItem::Column("room".into()),
                        SelectItem::Column("prob".into())
                    ]
                );
                assert_eq!(s.predicate.len(), 2);
                assert_eq!(s.order_by, Some(("prob".into(), false)));
                assert_eq!(s.limit, Some(2));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn select_star_yields_empty_projection() {
        match parse("SELECT * FROM t").unwrap() {
            Statement::Select(s) => assert!(s.projection.is_empty()),
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parses_aggregates_group_by_and_having() {
        let sql = "SELECT g, COUNT(*), SUM(r), AVG(r), EXPECTED(r) FROM pv \
                   WHERE t >= 1 GROUP BY g, h HAVING COUNT(*) >= 2";
        match parse(sql).unwrap() {
            Statement::Select(s) => {
                assert_eq!(s.projection.len(), 5);
                assert_eq!(s.projection[0], SelectItem::Column("g".into()));
                assert_eq!(s.projection[1], SelectItem::Aggregate(AggExpr::count()));
                assert_eq!(
                    s.projection[2],
                    SelectItem::Aggregate(AggExpr::over(AggFunc::Sum, "r"))
                );
                assert_eq!(
                    s.projection[3],
                    SelectItem::Aggregate(AggExpr::over(AggFunc::Avg, "r"))
                );
                assert_eq!(
                    s.projection[4],
                    SelectItem::Aggregate(AggExpr::over(AggFunc::Expected, "r"))
                );
                assert_eq!(s.group_by, vec!["g".to_string(), "h".to_string()]);
                let having = s.having.clone().unwrap();
                assert_eq!(having.agg, AggExpr::count());
                assert_eq!(having.op, CmpOp::Ge);
                assert_eq!(having.value, Value::Int(2));
                assert!(s.has_aggregates());
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parses_group_by_window() {
        let sql =
            "SELECT COUNT(*), SUM(r) FROM pv GROUP BY WINDOW(t, 3600), room HAVING COUNT(*) >= 2";
        match parse(sql).unwrap() {
            Statement::Select(s) => {
                let w = s.window.unwrap();
                assert_eq!(w.column, "t");
                assert_eq!(w.width, 3600.0);
                assert_eq!(w.origin, None);
                assert_eq!(s.group_by, vec!["room".to_string()]);
                assert!(s.having.is_some());
            }
            other => panic!("wrong statement: {other:?}"),
        }
        // The window may appear anywhere in the GROUP BY list, with a
        // fractional width and a negative origin.
        match parse("SELECT COUNT(*) FROM pv GROUP BY room, WINDOW(t, 0.5, -2.25)").unwrap() {
            Statement::Select(s) => {
                let w = s.window.unwrap();
                assert_eq!(w.width, 0.5);
                assert_eq!(w.origin, Some(-2.25));
                assert_eq!(w.origin(), -2.25);
                assert_eq!(s.group_by, vec!["room".to_string()]);
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parses_tail_of_windowed_select() {
        let sql = "TAIL SELECT COUNT(*) FROM pv GROUP BY WINDOW(t, 60)";
        match parse(sql).unwrap() {
            Statement::Tail(s) => {
                let w = s.window.unwrap();
                assert_eq!(w.column, "t");
                assert_eq!(w.width, 60.0);
            }
            other => panic!("wrong statement: {other:?}"),
        }
        // TAIL without a window has no bucket to close on: rejected.
        assert!(parse("TAIL SELECT COUNT(*) FROM pv").is_err());
        // And TAIL is not read-only — the shared query path must refuse it.
        assert!(!parse(sql).unwrap().is_read_only());
    }

    #[test]
    fn window_keyword_without_parens_stays_a_column() {
        // Like the aggregate names, `window` is only special when followed
        // by '(' inside GROUP BY.
        match parse("SELECT window, COUNT(*) FROM t GROUP BY window").unwrap() {
            Statement::Select(s) => {
                assert_eq!(s.window, None);
                assert_eq!(s.group_by, vec!["window".to_string()]);
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_windows() {
        for bad in [
            "SELECT COUNT(*) FROM pv GROUP BY WINDOW(t, 0)", // zero width
            "SELECT COUNT(*) FROM pv GROUP BY WINDOW(t, -5)", // negative
            "SELECT COUNT(*) FROM pv GROUP BY WINDOW(t)",    // no width
            "SELECT COUNT(*) FROM pv GROUP BY WINDOW(t, 1, 2, 3)", // extra arg
            "SELECT COUNT(*) FROM pv GROUP BY WINDOW(t, 1), WINDOW(r, 2)", // two windows
            "SELECT COUNT(*) FROM pv GROUP BY WINDOW(, 1)",  // no column
            "SELECT COUNT(*) FROM pv GROUP BY WINDOW(t, 1e999)", // overflow → inf width
            "SELECT COUNT(*) FROM pv GROUP BY WINDOW(t, 1, 1e999)", // overflow → inf origin
        ] {
            assert!(
                matches!(parse(bad), Err(DbError::Parse(_))),
                "should fail: {bad:?}"
            );
        }
    }

    #[test]
    fn bucket_start_uses_floor_semantics() {
        let w = WindowSpec {
            column: "t".into(),
            width: 2.0,
            origin: None,
        };
        assert_eq!(w.bucket_start(3.0), 2.0);
        assert_eq!(w.bucket_start(4.0), 4.0);
        assert_eq!(w.bucket_start(-0.5), -2.0);
        let o = WindowSpec {
            column: "t".into(),
            width: 2.0,
            origin: Some(1.0),
        };
        assert_eq!(o.bucket_start(3.0), 3.0);
        assert_eq!(o.bucket_start(0.5), -1.0);
    }

    #[test]
    fn aggregate_names_without_parens_stay_plain_columns() {
        // `count`, `sum` etc. are only aggregate keywords when followed by
        // '('; otherwise they are ordinary identifiers.
        match parse("SELECT count, sum FROM t WHERE avg = 1").unwrap() {
            Statement::Select(s) => {
                assert!(!s.has_aggregates());
                assert_eq!(
                    s.projection,
                    vec![
                        SelectItem::Column("count".into()),
                        SelectItem::Column("sum".into())
                    ]
                );
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parses_explain() {
        match parse("EXPLAIN SELECT COUNT(*) FROM pv WITH WORLDS 100").unwrap() {
            Statement::Explain(s) => {
                assert_eq!(s.projection, vec![SelectItem::Aggregate(AggExpr::count())]);
                assert!(s.worlds.is_some());
            }
            other => panic!("wrong statement: {other:?}"),
        }
        assert!(parse("EXPLAIN SELECT * FROM pv").unwrap().is_read_only());
        // Only SELECTs can be explained.
        assert!(matches!(
            parse("EXPLAIN DROP TABLE t"),
            Err(DbError::Parse(_))
        ));
    }

    #[test]
    fn rejects_malformed_aggregates() {
        for bad in [
            "SELECT COUNT(r) FROM t",                    // COUNT takes *
            "SELECT SUM(*) FROM t",                      // SUM takes a column
            "SELECT COUNT(* FROM t",                     // unclosed
            "SELECT SUM() FROM t",                       // missing column
            "SELECT * FROM t GROUP BY",                  // missing columns
            "SELECT COUNT(*) FROM t HAVING x >= 2",      // non-aggregate HAVING lhs
            "SELECT COUNT(*) FROM t HAVING COUNT(*) >=", // missing literal
        ] {
            assert!(
                matches!(parse(bad), Err(DbError::Parse(_))),
                "should fail: {bad:?}"
            );
        }
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse("select * from t where x <> 3").is_ok());
        assert!(parse("CREATE table T (a int)").is_ok());
    }

    #[test]
    fn drop_statement() {
        assert_eq!(
            parse("DROP VIEW prob_view").unwrap(),
            Statement::Drop {
                name: "prob_view".into()
            }
        );
        assert_eq!(
            parse("DROP TABLE raw").unwrap(),
            Statement::Drop { name: "raw".into() }
        );
    }

    #[test]
    fn reports_parse_errors() {
        for bad in [
            "",
            "FOO BAR",
            "SELECT FROM t",
            "CREATE TABLE t (a NOPE)",
            "INSERT INTO t VALUES (1", // unterminated tuple
            "SELECT * FROM t WHERE x ! 3",
            "SELECT * FROM t extra",
            "SELECT * FROM t WHERE s = 'unterminated",
        ] {
            assert!(
                matches!(parse(bad), Err(DbError::Parse(_))),
                "should fail: {bad:?}"
            );
        }
    }

    #[test]
    fn scientific_notation_floats() {
        match parse("INSERT INTO t VALUES (1e-3, -2.5E+2)").unwrap() {
            Statement::Insert { rows, .. } => {
                assert_eq!(rows[0][0], Value::Float(1e-3));
                assert_eq!(rows[0][1], Value::Float(-250.0));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parses_threshold_top_and_worlds_clauses() {
        let sql = "SELECT room FROM pv WHERE time = 1 THRESHOLD 0.25 TOP 3 \
                   ORDER BY prob DESC LIMIT 2 WITH WORLDS 5000 SEED 42 CONFIDENCE 0.01";
        match parse(sql).unwrap() {
            Statement::Select(s) => {
                assert_eq!(s.threshold, Some(0.25));
                assert_eq!(s.top, Some(3));
                assert_eq!(s.order_by, Some(("prob".into(), false)));
                assert_eq!(s.limit, Some(2));
                assert_eq!(
                    s.worlds,
                    Some(WorldsClause {
                        worlds: 5000,
                        seed: Some(42),
                        confidence: Some(0.01),
                    })
                );
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn worlds_clause_parts_are_optional() {
        match parse("SELECT * FROM pv WITH WORLDS 100").unwrap() {
            Statement::Select(s) => {
                assert_eq!(
                    s.worlds,
                    Some(WorldsClause {
                        worlds: 100,
                        seed: None,
                        confidence: None,
                    })
                );
                assert_eq!(s.threshold, None);
                assert_eq!(s.top, None);
            }
            other => panic!("wrong statement: {other:?}"),
        }
        match parse("SELECT * FROM pv WITH WORLDS 100 SEED 7").unwrap() {
            Statement::Select(s) => {
                assert_eq!(s.worlds.unwrap().seed, Some(7));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parses_synopsis_clause_parts() {
        match parse("SELECT COUNT(*) FROM pv WITH SYNOPSIS BUCKETS 64 MAXERROR 0.5").unwrap() {
            Statement::Select(s) => {
                assert_eq!(
                    s.synopsis,
                    Some(SynopsisClause {
                        buckets: Some(64),
                        max_error: Some(0.5),
                    })
                );
                assert_eq!(s.worlds, None);
            }
            other => panic!("wrong statement: {other:?}"),
        }
        // Both parts are optional.
        match parse("SELECT COUNT(*) FROM pv WITH SYNOPSIS").unwrap() {
            Statement::Select(s) => {
                assert_eq!(
                    s.synopsis,
                    Some(SynopsisClause {
                        buckets: None,
                        max_error: None,
                    })
                );
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn rejects_invalid_probabilistic_clauses() {
        for bad in [
            "SELECT * FROM pv THRESHOLD 1.5",
            "SELECT * FROM pv THRESHOLD -0.1",
            "SELECT * FROM pv WITH WORLDS 0",
            "SELECT * FROM pv WITH WORLDS 100 CONFIDENCE 0",
            "SELECT * FROM pv WITH WORLDS 100 CONFIDENCE -0.5",
            "SELECT * FROM pv WITH WORLDS",
            "SELECT * FROM pv WITH TABLES 3",
            "SELECT * FROM pv TOP x",
            "SELECT COUNT(*) FROM pv WITH SYNOPSIS BUCKETS 0",
            "SELECT COUNT(*) FROM pv WITH SYNOPSIS MAXERROR 0",
            "SELECT COUNT(*) FROM pv WITH SYNOPSIS MAXERROR -1.5",
            "SELECT COUNT(*) FROM pv WITH SYNOPSIS BUCKETS",
            // One WITH clause per statement.
            "SELECT COUNT(*) FROM pv WITH WORLDS 100 WITH SYNOPSIS",
            "SELECT COUNT(*) FROM pv WITH SYNOPSIS WITH WORLDS 100",
        ] {
            assert!(
                matches!(parse(bad), Err(DbError::Parse(_))),
                "should fail: {bad:?}"
            );
        }
    }

    #[test]
    fn statements_round_trip_through_display() {
        for sql in [
            "CREATE TABLE raw_values (t INT, r FLOAT, tag TEXT)",
            "INSERT INTO raw_values VALUES (1, 4.2, 'a'), (2, -5.9, 'b')",
            "SELECT room, prob FROM pv WHERE time = 1 AND prob >= 0.25 ORDER BY prob DESC LIMIT 2",
            "SELECT * FROM pv THRESHOLD 0.5 TOP 4 WITH WORLDS 1000 SEED 3 CONFIDENCE 0.05",
            "SELECT COUNT(*) FROM pv WHERE room = 2",
            "SELECT g, COUNT(*), SUM(r) FROM pv GROUP BY g HAVING COUNT(*) >= 2",
            "SELECT COUNT(*), SUM(r) FROM pv GROUP BY WINDOW(t, 3600.0) HAVING COUNT(*) >= 2",
            "SELECT g, COUNT(*) FROM pv GROUP BY WINDOW(t, 0.5, -2.25), g WITH WORLDS 100 SEED 2",
            "SELECT AVG(r), EXPECTED(r) FROM pv GROUP BY g THRESHOLD 0.25 WITH WORLDS 500 SEED 1",
            "EXPLAIN SELECT SUM(r) FROM pv GROUP BY g WITH WORLDS 100",
            "SELECT COUNT(*) FROM pv WITH SYNOPSIS BUCKETS 64 MAXERROR 0.25",
            "SELECT COUNT(*), SUM(r) FROM pv GROUP BY WINDOW(t, 10.0) WITH SYNOPSIS",
            "EXPLAIN SELECT AVG(r) FROM pv THRESHOLD 0.25 WITH SYNOPSIS BUCKETS 32",
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=0.05, n=300 \
             FROM raw WHERE t >= 1 AND t <= 3 USING METRIC arma_garch WINDOW 60",
            "DROP TABLE raw",
        ] {
            let stmt = parse(sql).unwrap();
            let formatted = stmt.to_string();
            let reparsed = parse(&formatted)
                .unwrap_or_else(|e| panic!("{sql:?} formatted to unparseable {formatted:?}: {e}"));
            assert_eq!(reparsed, stmt, "round trip changed {sql:?} → {formatted:?}");
        }
    }
}

#[cfg(test)]
mod roundtrip_props {
    use super::*;
    use proptest::prelude::*;

    const COLS: [&str; 5] = ["t", "room", "lambda", "val", "prob"];
    const TABLES: [&str; 3] = ["pv", "raw_values", "sensor7"];
    const TEXTS: [&str; 3] = ["a", "room b", "x_y"];
    const OPS: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    /// A literal the formatter round-trips: ints, "nice" finite floats, or
    /// quote-free text.
    fn literal(kind: usize, i: i64) -> Value {
        match kind {
            0 => Value::Int(i),
            1 => Value::Float(i as f64 / 8.0),
            _ => Value::Text(TEXTS[i.unsigned_abs() as usize % TEXTS.len()].to_string()),
        }
    }

    const AGG_FUNCS: [AggFunc; 4] = [
        AggFunc::Count,
        AggFunc::Sum,
        AggFunc::Avg,
        AggFunc::Expected,
    ];

    /// A projection item: plain column, or an aggregate over one.
    fn item(kind: usize, col: usize) -> SelectItem {
        let func = AGG_FUNCS[kind % AGG_FUNCS.len()];
        if kind == 0 {
            SelectItem::Column(COLS[col].to_string())
        } else if func == AggFunc::Count {
            SelectItem::Aggregate(AggExpr::count())
        } else {
            SelectItem::Aggregate(AggExpr::over(func, COLS[col]))
        }
    }

    fn arb_select() -> impl Strategy<Value = SelectStmt> {
        (
            (
                proptest::collection::vec((0usize..5, 0usize..COLS.len()), 0..4),
                0usize..TABLES.len(),
            ),
            proptest::collection::vec((0usize..COLS.len(), 0usize..6, 0usize..3, -50i64..50), 0..3),
            // GROUP BY columns, HAVING (op index; 0 = none, k) and the
            // window (kind; 0 = none, otherwise column + origin presence,
            // and the width/origin scale).
            (
                proptest::collection::vec(0usize..COLS.len(), 0..3),
                0usize..7,
                0i64..6,
                0usize..(2 * COLS.len() + 1),
                1usize..9,
            ),
            // threshold quarters (0 = none), TOP k (0 = none), ORDER BY
            // (0 = none, then column+direction), LIMIT (0 = none).
            (0usize..6, 0usize..4, 0usize..11, 0usize..4),
            // The WITH clause: WORLDS (presence, n, seed presence, seed,
            // confidence %) and SYNOPSIS (presence, buckets presence,
            // buckets, maxerror eighths; 0 = none). The grammar allows a
            // single WITH clause, so SYNOPSIS is only generated when
            // WORLDS is absent.
            (
                (
                    0usize..2,
                    1usize..5000,
                    0usize..2,
                    0usize..1000,
                    0usize..100,
                ),
                (0usize..2, 0usize..2, 1usize..300, 0usize..40),
            ),
        )
            .prop_map(
                |(
                    (items, table),
                    preds,
                    (groups, having_op, having_k, win, win_scale),
                    clauses,
                    (worlds, syn),
                )| {
                    let mut group_by: Vec<String> =
                        groups.into_iter().map(|c| COLS[c].to_string()).collect();
                    group_by.dedup();
                    SelectStmt {
                        projection: items.into_iter().map(|(k, c)| item(k, c)).collect(),
                        table: TABLES[table].to_string(),
                        predicate: preds
                            .into_iter()
                            .map(|(c, op, kind, i)| Comparison {
                                column: COLS[c].to_string(),
                                op: OPS[op],
                                value: literal(kind, i),
                            })
                            .collect(),
                        window: (win > 0).then(|| WindowSpec {
                            column: COLS[(win - 1) % COLS.len()].to_string(),
                            width: win_scale as f64 / 4.0,
                            origin: (win > COLS.len()).then(|| win_scale as f64 / 2.0 - 1.5),
                        }),
                        group_by,
                        having: (having_op > 0).then(|| HavingClause {
                            agg: AggExpr::count(),
                            op: OPS[having_op - 1],
                            value: Value::Int(having_k),
                        }),
                        threshold: (clauses.0 > 0).then(|| (clauses.0 - 1) as f64 / 4.0),
                        top: (clauses.1 > 0).then(|| clauses.1 - 1),
                        order_by: (clauses.2 > 0)
                            .then(|| (COLS[(clauses.2 - 1) / 2].to_string(), clauses.2 % 2 == 1)),
                        limit: (clauses.3 > 0).then(|| (clauses.3 - 1) * 10),
                        worlds: (worlds.0 > 0).then(|| WorldsClause {
                            worlds: worlds.1,
                            seed: (worlds.2 > 0).then_some(worlds.3 as u64),
                            confidence: (worlds.4 > 0).then(|| worlds.4 as f64 / 100.0),
                        }),
                        synopsis: (worlds.0 == 0 && syn.0 > 0).then(|| SynopsisClause {
                            buckets: (syn.1 > 0).then_some(syn.2),
                            max_error: (syn.3 > 0).then(|| syn.3 as f64 / 8.0),
                        }),
                    }
                },
            )
    }

    proptest! {
        #[test]
        fn select_statements_round_trip(sel in arb_select(), wrap in 0usize..3) {
            // Every SELECT the generator produces must survive
            // parse(format(…)) — and so must its EXPLAIN wrapping and (for
            // windowed statements) its TAIL wrapping.
            let stmt = match wrap {
                1 => Statement::Explain(sel),
                2 if sel.window.is_some() => Statement::Tail(sel),
                _ => Statement::Select(sel),
            };
            let formatted = stmt.to_string();
            let reparsed = parse(&formatted);
            prop_assert!(
                reparsed.is_ok(),
                "formatted SQL failed to parse: {formatted:?} → {reparsed:?}"
            );
            prop_assert_eq!(reparsed.unwrap(), stmt, "round trip via {}", formatted);
        }

        #[test]
        fn density_views_round_trip(
            delta_i in 1usize..40,
            n_half in 1usize..20,
            window in 0usize..100,
            metric in 0usize..3,
            bounds in (0i64..50, 0i64..50),
        ) {
            let spec = DensityViewSpec {
                view_name: "pv".into(),
                value_column: "r".into(),
                time_column: "t".into(),
                delta: delta_i as f64 / 8.0,
                n: n_half * 2,
                source_table: "raw_values".into(),
                predicate: vec![
                    Comparison::new("t", CmpOp::Ge, bounds.0),
                    Comparison::new("t", CmpOp::Le, bounds.0 + bounds.1),
                ],
                metric: (metric > 0).then(|| ["vt", "arma_garch"][metric - 1].to_string()),
                window: (window > 0).then_some(window),
            };
            let stmt = Statement::CreateDensityView(spec);
            let formatted = stmt.to_string();
            prop_assert_eq!(parse(&formatted).unwrap(), stmt, "round trip via {}", formatted);
        }
    }
}
