//! SQL-like query language: tokenizer, AST and parser.
//!
//! Implements the paper's offline query-provisioning syntax (Fig. 7):
//!
//! ```sql
//! CREATE VIEW prob_view AS DENSITY r
//! OVER t OMEGA delta=2, n=2
//! FROM raw_values WHERE t >= 1 AND t <= 3
//! ```
//!
//! plus the surrounding statements a usable system needs (`CREATE TABLE`,
//! `INSERT`, `SELECT`, `DROP`) and two documented extensions on the view
//! statement: `USING METRIC <name>` selects the dynamic density metric and
//! `WINDOW <H>` sets the sliding-window length (both default to the
//! engine's configuration when omitted).

use crate::error::DbError;
use crate::query::{CmpOp, Comparison, Conjunction};
use crate::value::{ColumnType, Value};

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `CREATE TABLE name (col TYPE, …)`
    CreateTable {
        /// Table name.
        name: String,
        /// Column definitions.
        columns: Vec<(String, ColumnType)>,
    },
    /// `INSERT INTO name VALUES (…), (…)`
    Insert {
        /// Target table.
        table: String,
        /// Literal rows.
        rows: Vec<Vec<Value>>,
    },
    /// `SELECT … FROM … [WHERE …] [ORDER BY …] [LIMIT …]`
    Select(SelectStmt),
    /// The paper's probabilistic view generation query.
    CreateDensityView(DensityViewSpec),
    /// `DROP TABLE name` / `DROP VIEW name`
    Drop {
        /// Table or view name.
        name: String,
    },
}

impl Statement {
    /// Whether executing the statement leaves the database unchanged.
    ///
    /// Read-only statements are served by [`crate::Database::query`] with a
    /// shared `&self` borrow; everything else needs the exclusive write
    /// path.
    pub fn is_read_only(&self) -> bool {
        matches!(self, Statement::Select(_))
    }
}

/// A `SELECT` statement over a deterministic table or probabilistic view.
#[derive(Debug, Clone, PartialEq)]
pub struct SelectStmt {
    /// Projected columns; empty means `*`.
    pub columns: Vec<String>,
    /// Source table or view.
    pub table: String,
    /// Conjunctive predicate (may reference the `prob` pseudo-column on
    /// probabilistic views).
    pub predicate: Conjunction,
    /// Optional `(column, ascending)` ordering.
    pub order_by: Option<(String, bool)>,
    /// Optional row limit.
    pub limit: Option<usize>,
}

/// The probability value generation query (paper Definition 2 / Fig. 7).
#[derive(Debug, Clone, PartialEq)]
pub struct DensityViewSpec {
    /// Name of the probabilistic view to create.
    pub view_name: String,
    /// Column carrying the raw values (`DENSITY r`).
    pub value_column: String,
    /// Column carrying time (`OVER t`).
    pub time_column: String,
    /// Ω lattice cell width Δ (`OMEGA delta=…`).
    pub delta: f64,
    /// Ω lattice cell count n (`OMEGA …, n=…`); the paper requires n even.
    pub n: usize,
    /// Source table (`FROM raw_values`).
    pub source_table: String,
    /// Time predicate (`WHERE t >= 1 AND t <= 3`).
    pub predicate: Conjunction,
    /// Extension: `USING METRIC <name>` — dynamic density metric to use.
    pub metric: Option<String>,
    /// Extension: `WINDOW <H>` — sliding-window length.
    pub window: Option<usize>,
}

/// Lexical token.
#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    LParen,
    RParen,
    Comma,
    Star,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// Tokenizes SQL text.
fn tokenize(input: &str) -> Result<Vec<Token>, DbError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0;
    let err = |msg: String| DbError::Parse(msg);
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            ' ' | '\t' | '\n' | '\r' | ';' => i += 1,
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    return Err(err("expected '=' after '!'".into()));
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::Le);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&'>') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                        None => return Err(err("unterminated string literal".into())),
                    }
                }
                out.push(Token::Str(s));
            }
            _ if c.is_ascii_digit()
                || (c == '-' && bytes.get(i + 1).is_some_and(|d| d.is_ascii_digit())) =>
            {
                let start = i;
                i += 1; // consume digit or '-'
                let mut is_float = false;
                while let Some(&d) = bytes.get(i) {
                    if d.is_ascii_digit() {
                        i += 1;
                    } else if d == '.' && !is_float {
                        is_float = true;
                        i += 1;
                    } else if (d == 'e' || d == 'E')
                        && bytes
                            .get(i + 1)
                            .is_some_and(|n| n.is_ascii_digit() || *n == '-' || *n == '+')
                    {
                        is_float = true;
                        i += 2;
                    } else {
                        break;
                    }
                }
                let text: String = bytes[start..i].iter().collect();
                if is_float {
                    let v: f64 = text
                        .parse()
                        .map_err(|_| err(format!("bad float literal {text:?}")))?;
                    out.push(Token::Float(v));
                } else {
                    let v: i64 = text
                        .parse()
                        .map_err(|_| err(format!("bad integer literal {text:?}")))?;
                    out.push(Token::Int(v));
                }
            }
            _ if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                out.push(Token::Ident(bytes[start..i].iter().collect()));
            }
            _ => return Err(err(format!("unexpected character {c:?}"))),
        }
    }
    Ok(out)
}

/// Recursive-descent parser state.
struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn error(&self, msg: impl Into<String>) -> DbError {
        DbError::Parse(format!("{} (at token {})", msg.into(), self.pos))
    }

    /// Consumes a keyword (case-insensitive identifier match).
    fn expect_kw(&mut self, kw: &str) -> Result<(), DbError> {
        match self.next() {
            Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw) => Ok(()),
            other => Err(self.error(format!("expected keyword {kw}, found {other:?}"))),
        }
    }

    /// Peeks whether the next token is the given keyword.
    fn peek_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_ident(&mut self) -> Result<String, DbError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(self.error(format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_token(&mut self, t: Token) -> Result<(), DbError> {
        match self.next() {
            Some(found) if found == t => Ok(()),
            other => Err(self.error(format!("expected {t:?}, found {other:?}"))),
        }
    }

    fn expect_number(&mut self) -> Result<f64, DbError> {
        match self.next() {
            Some(Token::Int(v)) => Ok(v as f64),
            Some(Token::Float(v)) => Ok(v),
            other => Err(self.error(format!("expected number, found {other:?}"))),
        }
    }

    fn expect_usize(&mut self) -> Result<usize, DbError> {
        match self.next() {
            Some(Token::Int(v)) if v >= 0 => Ok(v as usize),
            other => Err(self.error(format!("expected non-negative integer, found {other:?}"))),
        }
    }

    fn literal(&mut self) -> Result<Value, DbError> {
        match self.next() {
            Some(Token::Int(v)) => Ok(Value::Int(v)),
            Some(Token::Float(v)) => Ok(Value::Float(v)),
            Some(Token::Str(s)) => Ok(Value::Text(s)),
            other => Err(self.error(format!("expected literal, found {other:?}"))),
        }
    }

    fn comparison_op(&mut self) -> Result<CmpOp, DbError> {
        match self.next() {
            Some(Token::Eq) => Ok(CmpOp::Eq),
            Some(Token::Ne) => Ok(CmpOp::Ne),
            Some(Token::Lt) => Ok(CmpOp::Lt),
            Some(Token::Le) => Ok(CmpOp::Le),
            Some(Token::Gt) => Ok(CmpOp::Gt),
            Some(Token::Ge) => Ok(CmpOp::Ge),
            other => Err(self.error(format!("expected comparison operator, found {other:?}"))),
        }
    }

    /// `WHERE col op literal (AND col op literal)*`
    fn conjunction(&mut self) -> Result<Conjunction, DbError> {
        let mut out = Vec::new();
        loop {
            let column = self.expect_ident()?;
            let op = self.comparison_op()?;
            let value = self.literal()?;
            out.push(Comparison { column, op, value });
            if self.peek_kw("AND") {
                self.next();
            } else {
                break;
            }
        }
        Ok(out)
    }

    fn column_type(&mut self) -> Result<ColumnType, DbError> {
        let t = self.expect_ident()?;
        match t.to_ascii_uppercase().as_str() {
            "INT" | "INTEGER" | "BIGINT" => Ok(ColumnType::Int),
            "FLOAT" | "DOUBLE" | "REAL" => Ok(ColumnType::Float),
            "TEXT" | "VARCHAR" | "STRING" => Ok(ColumnType::Text),
            other => Err(self.error(format!("unknown column type {other}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement, DbError> {
        if self.peek_kw("CREATE") {
            self.next();
            if self.peek_kw("TABLE") {
                self.next();
                self.create_table()
            } else if self.peek_kw("VIEW") {
                self.next();
                self.create_view()
            } else {
                Err(self.error("expected TABLE or VIEW after CREATE"))
            }
        } else if self.peek_kw("INSERT") {
            self.next();
            self.insert()
        } else if self.peek_kw("SELECT") {
            self.next();
            self.select()
        } else if self.peek_kw("DROP") {
            self.next();
            if self.peek_kw("TABLE") || self.peek_kw("VIEW") {
                self.next();
            }
            Ok(Statement::Drop {
                name: self.expect_ident()?,
            })
        } else {
            Err(self.error("expected CREATE, INSERT, SELECT or DROP"))
        }
    }

    fn create_table(&mut self) -> Result<Statement, DbError> {
        let name = self.expect_ident()?;
        self.expect_token(Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            let col = self.expect_ident()?;
            let ty = self.column_type()?;
            columns.push((col, ty));
            match self.next() {
                Some(Token::Comma) => continue,
                Some(Token::RParen) => break,
                other => return Err(self.error(format!("expected ',' or ')', found {other:?}"))),
            }
        }
        Ok(Statement::CreateTable { name, columns })
    }

    fn insert(&mut self) -> Result<Statement, DbError> {
        self.expect_kw("INTO")?;
        let table = self.expect_ident()?;
        self.expect_kw("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_token(Token::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                match self.next() {
                    Some(Token::Comma) => continue,
                    Some(Token::RParen) => break,
                    other => {
                        return Err(self.error(format!("expected ',' or ')', found {other:?}")))
                    }
                }
            }
            rows.push(row);
            if self.peek() == Some(&Token::Comma) {
                self.next();
            } else {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn select(&mut self) -> Result<Statement, DbError> {
        let mut columns = Vec::new();
        if self.peek() == Some(&Token::Star) {
            self.next();
        } else {
            loop {
                columns.push(self.expect_ident()?);
                if self.peek() == Some(&Token::Comma) {
                    self.next();
                } else {
                    break;
                }
            }
        }
        self.expect_kw("FROM")?;
        let table = self.expect_ident()?;
        let mut predicate = Vec::new();
        if self.peek_kw("WHERE") {
            self.next();
            predicate = self.conjunction()?;
        }
        let mut order_by = None;
        if self.peek_kw("ORDER") {
            self.next();
            self.expect_kw("BY")?;
            let col = self.expect_ident()?;
            let asc = if self.peek_kw("DESC") {
                self.next();
                false
            } else {
                if self.peek_kw("ASC") {
                    self.next();
                }
                true
            };
            order_by = Some((col, asc));
        }
        let mut limit = None;
        if self.peek_kw("LIMIT") {
            self.next();
            limit = Some(self.expect_usize()?);
        }
        Ok(Statement::Select(SelectStmt {
            columns,
            table,
            predicate,
            order_by,
            limit,
        }))
    }

    /// `VIEW name AS DENSITY col OVER col OMEGA delta=…, n=… FROM table
    ///  [WHERE …] [USING METRIC m] [WINDOW h]`
    fn create_view(&mut self) -> Result<Statement, DbError> {
        let view_name = self.expect_ident()?;
        self.expect_kw("AS")?;
        self.expect_kw("DENSITY")?;
        let value_column = self.expect_ident()?;
        self.expect_kw("OVER")?;
        let time_column = self.expect_ident()?;
        self.expect_kw("OMEGA")?;
        let mut delta = None;
        let mut n = None;
        loop {
            let key = self.expect_ident()?;
            self.expect_token(Token::Eq)?;
            match key.to_ascii_lowercase().as_str() {
                "delta" => delta = Some(self.expect_number()?),
                "n" => n = Some(self.expect_usize()?),
                other => return Err(self.error(format!("unknown OMEGA parameter {other}"))),
            }
            if self.peek() == Some(&Token::Comma) {
                self.next();
            } else {
                break;
            }
        }
        let delta = delta.ok_or_else(|| self.error("OMEGA clause must set delta"))?;
        let n = n.ok_or_else(|| self.error("OMEGA clause must set n"))?;
        if n == 0 || n % 2 != 0 {
            return Err(self.error(format!("OMEGA n must be a positive even integer, got {n}")));
        }
        if !(delta > 0.0) {
            return Err(self.error(format!("OMEGA delta must be positive, got {delta}")));
        }
        self.expect_kw("FROM")?;
        let source_table = self.expect_ident()?;
        let mut predicate = Vec::new();
        if self.peek_kw("WHERE") {
            self.next();
            predicate = self.conjunction()?;
        }
        let mut metric = None;
        if self.peek_kw("USING") {
            self.next();
            self.expect_kw("METRIC")?;
            metric = Some(self.expect_ident()?);
        }
        let mut window = None;
        if self.peek_kw("WINDOW") {
            self.next();
            window = Some(self.expect_usize()?);
        }
        Ok(Statement::CreateDensityView(DensityViewSpec {
            view_name,
            value_column,
            time_column,
            delta,
            n,
            source_table,
            predicate,
            metric,
            window,
        }))
    }
}

/// Parses one SQL statement.
pub fn parse(sql: &str) -> Result<Statement, DbError> {
    let tokens = tokenize(sql)?;
    if tokens.is_empty() {
        return Err(DbError::Parse("empty statement".into()));
    }
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    if p.pos != p.tokens.len() {
        return Err(p.error("trailing tokens after statement"));
    }
    Ok(stmt)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_fig7_query_verbatim() {
        let sql = "CREATE VIEW prob_view AS DENSITY r \
                   OVER t OMEGA delta=2, n=2 \
                   FROM raw_values WHERE t >= 1 AND t <= 3";
        let stmt = parse(sql).unwrap();
        match stmt {
            Statement::CreateDensityView(spec) => {
                assert_eq!(spec.view_name, "prob_view");
                assert_eq!(spec.value_column, "r");
                assert_eq!(spec.time_column, "t");
                assert_eq!(spec.delta, 2.0);
                assert_eq!(spec.n, 2);
                assert_eq!(spec.source_table, "raw_values");
                assert_eq!(spec.predicate.len(), 2);
                assert_eq!(spec.predicate[0].op, CmpOp::Ge);
                assert_eq!(spec.predicate[1].op, CmpOp::Le);
                assert_eq!(spec.metric, None);
                assert_eq!(spec.window, None);
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parses_view_extensions() {
        let sql = "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=0.05, n=300 \
                   FROM raw USING METRIC arma_garch WINDOW 60";
        match parse(sql).unwrap() {
            Statement::CreateDensityView(spec) => {
                assert_eq!(spec.delta, 0.05);
                assert_eq!(spec.n, 300);
                assert_eq!(spec.metric.as_deref(), Some("arma_garch"));
                assert_eq!(spec.window, Some(60));
                assert!(spec.predicate.is_empty());
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn rejects_odd_or_zero_n() {
        let bad = "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=3 FROM raw";
        assert!(matches!(parse(bad), Err(DbError::Parse(_))));
        let zero = "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=0 FROM raw";
        assert!(matches!(parse(zero), Err(DbError::Parse(_))));
    }

    #[test]
    fn parses_create_table_and_insert() {
        let create = parse("CREATE TABLE raw_values (t INT, r FLOAT, tag TEXT)").unwrap();
        assert_eq!(
            create,
            Statement::CreateTable {
                name: "raw_values".into(),
                columns: vec![
                    ("t".into(), ColumnType::Int),
                    ("r".into(), ColumnType::Float),
                    ("tag".into(), ColumnType::Text),
                ],
            }
        );
        let insert = parse("INSERT INTO raw_values VALUES (1, 4.2, 'a'), (2, -5.9, 'b')").unwrap();
        match insert {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "raw_values");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[1][1], Value::Float(-5.9));
                assert_eq!(rows[0][2], Value::Text("a".into()));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parses_select_with_all_clauses() {
        let sql = "SELECT room, prob FROM prob_view WHERE time = 1 AND prob >= 0.25 \
                   ORDER BY prob DESC LIMIT 2";
        match parse(sql).unwrap() {
            Statement::Select(s) => {
                assert_eq!(s.columns, vec!["room".to_string(), "prob".to_string()]);
                assert_eq!(s.predicate.len(), 2);
                assert_eq!(s.order_by, Some(("prob".into(), false)));
                assert_eq!(s.limit, Some(2));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn select_star_yields_empty_projection() {
        match parse("SELECT * FROM t").unwrap() {
            Statement::Select(s) => assert!(s.columns.is_empty()),
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert!(parse("select * from t where x <> 3").is_ok());
        assert!(parse("CREATE table T (a int)").is_ok());
    }

    #[test]
    fn drop_statement() {
        assert_eq!(
            parse("DROP VIEW prob_view").unwrap(),
            Statement::Drop {
                name: "prob_view".into()
            }
        );
        assert_eq!(
            parse("DROP TABLE raw").unwrap(),
            Statement::Drop { name: "raw".into() }
        );
    }

    #[test]
    fn reports_parse_errors() {
        for bad in [
            "",
            "FOO BAR",
            "SELECT FROM t",
            "CREATE TABLE t (a NOPE)",
            "INSERT INTO t VALUES (1", // unterminated tuple
            "SELECT * FROM t WHERE x ! 3",
            "SELECT * FROM t extra",
            "SELECT * FROM t WHERE s = 'unterminated",
        ] {
            assert!(
                matches!(parse(bad), Err(DbError::Parse(_))),
                "should fail: {bad:?}"
            );
        }
    }

    #[test]
    fn scientific_notation_floats() {
        match parse("INSERT INTO t VALUES (1e-3, -2.5E+2)").unwrap() {
            Statement::Insert { rows, .. } => {
                assert_eq!(rows[0][0], Value::Float(1e-3));
                assert_eq!(rows[0][1], Value::Float(-250.0));
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }
}
