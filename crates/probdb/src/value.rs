//! Cell values and column types for the probabilistic database substrate.

use std::cmp::Ordering;
use std::fmt;

/// A single cell value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// 64-bit signed integer (timestamps, counters, room ids, …).
    Int(i64),
    /// 64-bit float (sensor readings, range bounds, probabilities).
    Float(f64),
    /// UTF-8 text.
    Text(String),
}

/// Type tag of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// [`Value::Int`].
    Int,
    /// [`Value::Float`].
    Float,
    /// [`Value::Text`].
    Text,
}

impl Value {
    /// The type tag of this value.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Value::Int(_) => ColumnType::Int,
            Value::Float(_) => ColumnType::Float,
            Value::Text(_) => ColumnType::Text,
        }
    }

    /// Numeric view (ints widen to float); `None` for text.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            Value::Text(_) => None,
        }
    }

    /// Integer view; `None` for float/text.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Text view; `None` for numerics.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// SQL-style comparison: numerics compare numerically across Int/Float;
    /// text compares lexicographically; mixed text/numeric comparisons are
    /// undefined (`None`).
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Text(a), Value::Text(b)) => Some(a.cmp(b)),
            (Value::Text(_), _) | (_, Value::Text(_)) => None,
            _ => {
                let a = self.as_f64()?;
                let b = other.as_f64()?;
                a.partial_cmp(&b)
            }
        }
    }

    /// Whether a value can be stored in a column of type `ty` (ints coerce
    /// into float columns).
    pub fn fits(&self, ty: ColumnType) -> bool {
        matches!(
            (self, ty),
            (Value::Int(_), ColumnType::Int)
                | (Value::Int(_), ColumnType::Float)
                | (Value::Float(_), ColumnType::Float)
                | (Value::Text(_), ColumnType::Text)
        )
    }

    /// Coerces into the given column type when [`Value::fits`] allows it.
    pub fn coerce(self, ty: ColumnType) -> Option<Value> {
        match (self, ty) {
            (Value::Int(i), ColumnType::Float) => Some(Value::Float(i as f64)),
            (v, ty) if v.column_type() == ty => Some(v),
            _ => None,
        }
    }
}

/// A canonical, totally ordered grouping key borrowed from a [`Value`].
///
/// Deduplication and `GROUP BY` evaluation need a key that is `Ord` +
/// `Eq`, which `Value` cannot be (floats). Formatting every cell into a
/// string gives such a key but allocates per row on the dedup hot path;
/// `ValueKey` instead wraps the value with a total order (floats via
/// `f64::total_cmp`, cross-type comparisons by the variant rank
/// `Int < Float < Text`) and borrows text instead of cloning it.
///
/// The grouping semantics match the old format-based keys: values of
/// different variants are always distinct (`Int(3)` ≠ `Float(3.0)`), and
/// equal-bit floats (including NaN of the same sign) coincide.
#[derive(Debug, Clone, Copy)]
pub enum ValueKey<'a> {
    /// Key of an [`Value::Int`].
    Int(i64),
    /// Key of a [`Value::Float`]; ordered by `f64::total_cmp`.
    Float(f64),
    /// Key of a [`Value::Text`], borrowed from the source value.
    Text(&'a str),
}

impl ValueKey<'_> {
    /// Variant rank for cross-type ordering.
    fn rank(&self) -> u8 {
        match self {
            ValueKey::Int(_) => 0,
            ValueKey::Float(_) => 1,
            ValueKey::Text(_) => 2,
        }
    }
}

impl Ord for ValueKey<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (ValueKey::Int(a), ValueKey::Int(b)) => a.cmp(b),
            (ValueKey::Float(a), ValueKey::Float(b)) => a.total_cmp(b),
            (ValueKey::Text(a), ValueKey::Text(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl PartialOrd for ValueKey<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl PartialEq for ValueKey<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for ValueKey<'_> {}

impl Value {
    /// The canonical grouping key of this value (see [`ValueKey`]).
    pub fn key(&self) -> ValueKey<'_> {
        match self {
            Value::Int(i) => ValueKey::Int(*i),
            Value::Float(f) => ValueKey::Float(*f),
            Value::Text(s) => ValueKey::Text(s),
        }
    }
}

/// The canonical grouping key of a whole row restricted to the given
/// column indices — the shared key-extraction helper of the dedup and
/// `GROUP BY` paths (allocates one small `Vec` per row, never a string).
pub fn row_key<'a>(row: &'a [Value], idx: &[usize]) -> Vec<ValueKey<'a>> {
    idx.iter().map(|&i| row[i].key()).collect()
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => write!(f, "{s}"),
        }
    }
}

impl fmt::Display for ColumnType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnType::Int => write!(f, "INT"),
            ColumnType::Float => write!(f, "FLOAT"),
            ColumnType::Text => write!(f, "TEXT"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_comparison_crosses_types() {
        assert_eq!(
            Value::Int(3).compare(&Value::Float(3.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::Float(2.0).compare(&Value::Int(2)),
            Some(Ordering::Equal)
        );
    }

    #[test]
    fn text_comparison_is_lexicographic() {
        assert_eq!(
            Value::from("abc").compare(&Value::from("abd")),
            Some(Ordering::Less)
        );
        assert_eq!(Value::from("x").compare(&Value::Int(1)), None);
    }

    #[test]
    fn coercion_widens_int_to_float() {
        assert_eq!(
            Value::Int(4).coerce(ColumnType::Float),
            Some(Value::Float(4.0))
        );
        assert_eq!(Value::Float(1.5).coerce(ColumnType::Int), None);
        assert_eq!(
            Value::from("a").coerce(ColumnType::Text),
            Some(Value::from("a"))
        );
    }

    #[test]
    fn fits_matches_coerce() {
        let cases = [
            (Value::Int(1), ColumnType::Int, true),
            (Value::Int(1), ColumnType::Float, true),
            (Value::Int(1), ColumnType::Text, false),
            (Value::Float(1.0), ColumnType::Int, false),
            (Value::from("s"), ColumnType::Text, true),
        ];
        for (v, t, expect) in cases {
            assert_eq!(v.fits(t), expect, "{v:?} fits {t:?}");
            assert_eq!(v.clone().coerce(t).is_some(), expect);
        }
    }

    #[test]
    fn value_keys_order_and_group_like_the_values() {
        // Same variant: numeric / lexicographic order.
        assert!(Value::Int(1).key() < Value::Int(2).key());
        assert!(Value::Float(1.5).key() < Value::Float(2.0).key());
        assert!(Value::from("a").key() < Value::from("b").key());
        // Cross-variant: distinct, ranked Int < Float < Text.
        assert_ne!(Value::Int(3).key(), Value::Float(3.0).key());
        assert!(Value::Int(3).key() < Value::Float(3.0).key());
        assert!(Value::Float(9.0).key() < Value::from("0").key());
        // NaN keys are equal to themselves so NaN rows group together.
        assert_eq!(Value::Float(f64::NAN).key(), Value::Float(f64::NAN).key());
    }

    #[test]
    fn row_key_projects_in_index_order() {
        let row = vec![Value::Int(1), Value::from("x"), Value::Float(2.0)];
        let key = row_key(&row, &[2, 0]);
        assert_eq!(key, vec![ValueKey::Float(2.0), ValueKey::Int(1)]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::Float(2.5).to_string(), "2.5");
        assert_eq!(Value::from("hi").to_string(), "hi");
        assert_eq!(ColumnType::Float.to_string(), "FLOAT");
    }
}
