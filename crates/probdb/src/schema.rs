//! Relation schemas.

use crate::error::DbError;
use crate::value::{ColumnType, Value};
use std::fmt;

/// An ordered list of named, typed columns.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<(String, ColumnType)>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    ///
    /// # Panics
    /// Panics on duplicate column names (schemas are small and static; a
    /// duplicate is a programming error, not a runtime condition).
    pub fn new(columns: Vec<(String, ColumnType)>) -> Self {
        for i in 0..columns.len() {
            for j in i + 1..columns.len() {
                assert_ne!(
                    columns[i].0, columns[j].0,
                    "Schema: duplicate column {:?}",
                    columns[i].0
                );
            }
        }
        Schema { columns }
    }

    /// Convenience constructor from `&str` names.
    pub fn of(columns: &[(&str, ColumnType)]) -> Self {
        Schema::new(columns.iter().map(|(n, t)| (n.to_string(), *t)).collect())
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Column names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|(n, _)| n.as_str())
    }

    /// Position of a column by name.
    pub fn index_of(&self, name: &str) -> Result<usize, DbError> {
        self.columns
            .iter()
            .position(|(n, _)| n == name)
            .ok_or_else(|| DbError::UnknownColumn(name.to_string()))
    }

    /// `(name, type)` of column `i`.
    pub fn column(&self, i: usize) -> (&str, ColumnType) {
        let (n, t) = &self.columns[i];
        (n.as_str(), *t)
    }

    /// Type of a column by name.
    pub fn type_of(&self, name: &str) -> Result<ColumnType, DbError> {
        Ok(self.columns[self.index_of(name)?].1)
    }

    /// Validates and coerces a row against the schema (ints widen into
    /// float columns).
    pub fn check_row(&self, row: Vec<Value>) -> Result<Vec<Value>, DbError> {
        if row.len() != self.arity() {
            return Err(DbError::ArityMismatch {
                expected: self.arity(),
                got: row.len(),
            });
        }
        row.into_iter()
            .zip(&self.columns)
            .map(|(v, (name, ty))| {
                let vt = v.column_type();
                v.coerce(*ty).ok_or_else(|| DbError::TypeMismatch {
                    column: name.clone(),
                    expected: *ty,
                    got: vt,
                })
            })
            .collect()
    }

    /// Projects this schema onto the named columns (preserving the given
    /// order); returns the new schema and the source indices.
    pub fn project(&self, names: &[String]) -> Result<(Schema, Vec<usize>), DbError> {
        let mut cols = Vec::with_capacity(names.len());
        let mut idx = Vec::with_capacity(names.len());
        for n in names {
            let i = self.index_of(n)?;
            idx.push(i);
            cols.push(self.columns[i].clone());
        }
        Ok((Schema { columns: cols }, idx))
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (n, t)) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{n} {t}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::of(&[
            ("time", ColumnType::Int),
            ("r", ColumnType::Float),
            ("tag", ColumnType::Text),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.index_of("r").unwrap(), 1);
        assert_eq!(s.type_of("tag").unwrap(), ColumnType::Text);
        assert!(matches!(
            s.index_of("missing"),
            Err(DbError::UnknownColumn(_))
        ));
    }

    #[test]
    fn check_row_coerces_and_validates() {
        let s = sample();
        let row = s
            .check_row(vec![Value::Int(1), Value::Int(2), Value::from("a")])
            .unwrap();
        assert_eq!(row[1], Value::Float(2.0));
        assert!(matches!(
            s.check_row(vec![Value::Int(1), Value::from("x"), Value::from("a")]),
            Err(DbError::TypeMismatch { .. })
        ));
        assert!(matches!(
            s.check_row(vec![Value::Int(1)]),
            Err(DbError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn projection_reorders() {
        let s = sample();
        let (proj, idx) = s.project(&["tag".into(), "time".into()]).unwrap();
        assert_eq!(idx, vec![2, 0]);
        assert_eq!(proj.column(0).0, "tag");
        assert_eq!(proj.column(1).1, ColumnType::Int);
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_columns_rejected() {
        Schema::of(&[("a", ColumnType::Int), ("a", ColumnType::Float)]);
    }

    #[test]
    fn display_format() {
        assert_eq!(sample().to_string(), "(time INT, r FLOAT, tag TEXT)");
    }
}
