//! Shared, generation-keyed plan cache.
//!
//! Planning is a pure function of the `SELECT` statement, so one planned
//! query can serve every session that submits the same statement. The
//! catalog owns one `PlanCache` and keys it two ways:
//!
//! * the **raw statement text**, so an exact textual repeat skips the
//!   parser entirely, and
//! * the **normalized text** (`SelectStmt`'s `Display`, which the parser
//!   round-trips), so textual variants of one statement — spacing, case
//!   of keywords — share a single cached plan across sessions.
//!
//! Entries hold immutable [`Arc<PlannedQuery>`] snapshots in the σ-cache
//! idiom: the mutex only guards the index, never a plan, and a hit is an
//! `Arc` clone executed entirely outside the lock. Every entry records
//! the catalog **DDL generation** it was planned under; any DDL bumps the
//! generation, and lookups lazily evict entries from older generations.
//! Tuple-only writes (INSERT, the streaming append path) bump a separate
//! *data* generation instead, so a hot statement stays planned across a
//! stream of appends — today's planner never reads the catalog, so a plan
//! over new tuples is exactly the plan over the old ones.
//!
//! At capacity the cache evicts per entry rather than clearing whole: the
//! victim is the entry with the fewest recorded hits (breaking ties
//! towards the least-recently-used), so a one-off statement storm cannot
//! wash out the standing hot set the way the old clear-on-full policy did.

use crate::plan::PlannedQuery;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Entry cap; reaching it evicts the coldest entry (fewest hits, then
/// least recently used) to make room.
const PLAN_CACHE_CAPACITY: usize = 1024;

/// Counters describing plan-cache effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Statements that had to be planned fresh.
    pub misses: u64,
    /// Entries evicted because the catalog generation moved on.
    pub invalidations: u64,
    /// Entries evicted at capacity to make room (coldest-first).
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
}

#[derive(Debug)]
struct CachedPlan {
    plan: Arc<PlannedQuery>,
    generation: u64,
    /// Hits this entry has served — the primary eviction key.
    hits: u64,
    /// Logical clock tick of the last touch — the LRU tie-break.
    last_used: u64,
}

/// The cache itself. Interior-mutable so read-locked catalog handles can
/// record hits and insert fresh plans.
#[derive(Debug, Default)]
pub(crate) struct PlanCache {
    inner: Mutex<HashMap<String, CachedPlan>>,
    /// Logical clock: bumped on every touch, stamped into entries.
    clock: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    evictions: AtomicU64,
}

impl PlanCache {
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Returns the plan cached under `key` if it was planned at
    /// `generation`; lazily evicts (and counts) stale entries. A hit
    /// bumps the entry's hit count and recency stamp.
    pub(crate) fn lookup(&self, key: &str, generation: u64) -> Option<Arc<PlannedQuery>> {
        let now = self.tick();
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        match inner.get_mut(key) {
            Some(cached) if cached.generation == generation => {
                cached.hits += 1;
                cached.last_used = now;
                let plan = Arc::clone(&cached.plan);
                drop(inner);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(plan)
            }
            Some(_) => {
                inner.remove(key);
                drop(inner);
                self.invalidations.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => None,
        }
    }

    /// Records that a statement had to be planned fresh.
    pub(crate) fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Stores `plan` under every key in `keys` at `generation`, evicting
    /// the coldest entries first when the cache is full. The O(n) victim
    /// scan only runs on the miss path, which already paid for a parse
    /// and a plan; hits never touch it.
    pub(crate) fn insert(&self, keys: &[&str], plan: &Arc<PlannedQuery>, generation: u64) {
        let now = self.tick();
        let mut evicted = 0u64;
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for key in keys {
            while inner.len() >= PLAN_CACHE_CAPACITY && !inner.contains_key(*key) {
                let victim = inner
                    .iter()
                    .min_by_key(|(_, e)| (e.hits, e.last_used))
                    .map(|(k, _)| k.clone());
                match victim {
                    Some(k) => {
                        inner.remove(&k);
                        evicted += 1;
                    }
                    None => break,
                }
            }
            inner.insert(
                (*key).to_string(),
                CachedPlan {
                    plan: Arc::clone(plan),
                    generation,
                    hits: 0,
                    last_used: now,
                },
            );
        }
        drop(inner);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
        }
    }

    /// Effectiveness counters plus the current entry count.
    pub(crate) fn stats(&self) -> PlanCacheStats {
        let entries = self.inner.lock().unwrap_or_else(|e| e.into_inner()).len();
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::catalog::Database;
    use crate::error::DbError;

    fn db_with_table() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE kv (k INT, v FLOAT)").unwrap();
        db.execute("INSERT INTO kv VALUES (1, 1.5), (2, 2.5)")
            .unwrap();
        db
    }

    #[test]
    fn textual_variants_share_one_plan() {
        let db = db_with_table();
        let a = "SELECT k FROM kv WHERE k >= 1";
        let b = "select   k from kv where k >= 1";
        db.query_cached(a).unwrap();
        let stats = db.plan_cache_stats();
        assert_eq!((stats.hits, stats.misses), (0, 1));
        // The variant parses to the same normalized statement: a hit, and
        // its raw text is aliased for next time.
        db.query_cached(b).unwrap();
        let stats = db.plan_cache_stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        // Exact repeats of either spelling skip the parser (raw-key hit).
        db.query_cached(a).unwrap();
        db.query_cached(b).unwrap();
        assert_eq!(db.plan_cache_stats().hits, 3);
    }

    #[test]
    fn appends_keep_cached_plans_but_bump_the_data_generation() {
        let mut db = db_with_table();
        let sql = "SELECT k FROM kv";
        db.query_cached(sql).unwrap();
        let (g, dg) = (db.generation(), db.data_generation());
        db.execute("INSERT INTO kv VALUES (3, 3.5)").unwrap();
        assert_eq!(
            db.generation(),
            g,
            "a tuple-only write must not move the DDL generation"
        );
        assert!(
            db.data_generation() > dg,
            "a tuple-only write must move the data generation"
        );
        // The plan survived — and it serves the post-append answer,
        // because execution resolves the relation at run time.
        assert!(db.cached_plan(sql).is_some(), "append evicted the plan");
        let out = db.query_cached(sql).unwrap();
        assert_eq!(out.rows().unwrap().len(), 3);
        let stats = db.plan_cache_stats();
        assert_eq!((stats.misses, stats.invalidations), (1, 0));
    }

    #[test]
    fn drop_table_invalidates_and_errors_resurface() {
        let mut db = db_with_table();
        let sql = "SELECT k FROM kv";
        db.query_cached(sql).unwrap();
        db.execute("DROP TABLE kv").unwrap();
        assert!(db.cached_plan(sql).is_none());
        assert!(matches!(
            db.query_cached(sql),
            Err(DbError::UnknownTable(_))
        ));
        // Re-created with a different schema: the cached SELECT must plan
        // fresh and see the new shape, not replay the old answer.
        db.execute("CREATE TABLE kv (kk INT)").unwrap();
        db.execute("INSERT INTO kv VALUES (7)").unwrap();
        assert!(matches!(
            db.query_cached(sql),
            Err(DbError::UnknownColumn(_))
        ));
    }

    #[test]
    fn eviction_is_coldest_first_and_capacity_bounded() {
        let db = db_with_table();
        let hot = "SELECT k FROM kv WHERE k >= 0";
        db.query_cached(hot).unwrap();
        // Keep the hot statement warm while a storm of one-off statements
        // churns through every cache slot many times over.
        for i in 0..4_000 {
            db.query_cached(&format!("SELECT k FROM kv WHERE k = {i}"))
                .unwrap();
            if i % 16 == 0 {
                db.query_cached(hot).unwrap();
            }
        }
        let stats = db.plan_cache_stats();
        assert!(stats.entries <= 1024, "{} entries", stats.entries);
        assert!(stats.evictions > 0, "the storm must have forced evictions");
        // The hot entry outlived thousands of cold insertions.
        assert!(
            db.cached_plan(hot).is_some(),
            "hot statement was evicted by one-off statements"
        );
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        /// One step of an interleaved read/write workload.
        fn apply(db: &mut Database, cached: bool, op: u32, x: i64) -> Result<String, String> {
            let sql = match op {
                0 => format!("INSERT INTO kv VALUES ({x}, {}.5)", x % 7),
                1 => "DROP TABLE kv".to_string(),
                2 => "CREATE TABLE kv (k INT, v FLOAT)".to_string(),
                3 => format!("SELECT k, v FROM kv WHERE k >= {} ORDER BY k ASC", x % 5),
                4 => "SELECT COUNT(*), SUM(v) FROM kv".to_string(),
                _ => format!("SELECT v FROM kv WHERE k = {}", x % 5),
            };
            let out = if op <= 2 {
                db.execute(&sql).map(|o| format!("{o:?}"))
            } else if cached {
                db.query_cached(&sql).map(|o| format!("{o:?}"))
            } else {
                db.query(&sql).map(|o| format!("{o:?}"))
            };
            out.map_err(|e| format!("{e:?}"))
        }

        proptest! {
            #[test]
            fn cached_answers_match_fresh_answers_under_interleaved_writes(
                ops in proptest::collection::vec((0u32..6, 0i64..40), 0..60)
            ) {
                let mut cached_db = db_with_table();
                let mut fresh_db = db_with_table();
                for (op, x) in ops {
                    let a = apply(&mut cached_db, true, op, x);
                    let b = apply(&mut fresh_db, false, op, x);
                    prop_assert_eq!(a, b);
                }
            }
        }
    }
}
