//! Possible-world semantics: sampling and Monte-Carlo estimation.
//!
//! A tuple-independent probabilistic relation denotes a distribution over
//! *possible worlds* — deterministic relations in which each tuple appears
//! independently with its probability. Sampling worlds gives both a
//! validation harness for the exact operators (Monte-Carlo frequencies must
//! converge to computed probabilities) and an escape hatch for queries with
//! no closed form, in the spirit of MCDB (Jampani et al.), which the paper
//! cites as the ancestor of its parameter-storing design.
//!
//! The module has two layers:
//!
//! * the free functions [`sample_world`], [`mc_event_probability`] and
//!   [`mc_count_distribution`] — the minimal sequential sampler, kept as
//!   the reference implementation and benchmark baseline;
//! * [`WorldsExecutor`] — the production path: world sampling fanned out
//!   over [`tspdb_stats::parallel`] in fixed-size *batches*, each batch
//!   seeded deterministically from `(seed, batch index)` so the estimate is
//!   **bit-identical at every thread count**, with per-batch aggregation of
//!   the event probability, the COUNT distribution (histogram, moments,
//!   quantiles), an optional SUM aggregate, 95% confidence intervals, and
//!   early termination once the event-probability CI half-width drops below
//!   a target.

use crate::error::DbError;
use crate::query::{eval_conjunction, CmpOp, Conjunction};
use crate::table::{ProbTable, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::time::{Duration, Instant};
use tspdb_stats::parallel::{effective_threads, map_segments};

/// Draws one possible world: a deterministic table containing each tuple
/// independently with its probability.
pub fn sample_world<R: Rng + ?Sized>(table: &ProbTable, rng: &mut R) -> Table {
    let mut world = Table::new(table.name().to_string(), table.schema().clone());
    for (row, p) in table.iter() {
        if rng.gen_bool(p.clamp(0.0, 1.0)) {
            world
                .insert(row.to_vec())
                .expect("row satisfied the same schema in the source");
        }
    }
    world
}

/// Monte-Carlo estimate of `P(at least one tuple matching `pred` exists)`
/// over `worlds` sampled worlds. Converges to
/// [`crate::query::event_probability`] by the law of large numbers.
pub fn mc_event_probability<R: Rng + ?Sized>(
    table: &ProbTable,
    pred: &Conjunction,
    worlds: usize,
    rng: &mut R,
) -> Result<f64, DbError> {
    assert!(worlds > 0, "mc_event_probability: need at least one world");
    // Pre-filter matching tuples once; sampling then only needs their
    // probabilities.
    let mut match_probs = Vec::new();
    for (row, p) in table.iter() {
        if eval_conjunction(table.schema(), row, Some(p), pred)? {
            match_probs.push(p);
        }
    }
    let mut hits = 0usize;
    for _ in 0..worlds {
        if match_probs.iter().any(|&p| rng.gen_bool(p.clamp(0.0, 1.0))) {
            hits += 1;
        }
    }
    Ok(hits as f64 / worlds as f64)
}

/// Monte-Carlo estimate of the full count distribution (histogram of the
/// number of matching tuples across worlds). Converges to
/// [`crate::aggregates::count_distribution`].
pub fn mc_count_distribution<R: Rng + ?Sized>(
    table: &ProbTable,
    pred: &Conjunction,
    worlds: usize,
    rng: &mut R,
) -> Result<Vec<f64>, DbError> {
    assert!(worlds > 0, "mc_count_distribution: need at least one world");
    let mut match_probs = Vec::new();
    for (row, p) in table.iter() {
        if eval_conjunction(table.schema(), row, Some(p), pred)? {
            match_probs.push(p);
        }
    }
    let mut counts = vec![0usize; match_probs.len() + 1];
    for _ in 0..worlds {
        let k = match_probs
            .iter()
            .filter(|&&p| rng.gen_bool(p.clamp(0.0, 1.0)))
            .count();
        counts[k] += 1;
    }
    Ok(counts
        .into_iter()
        .map(|c| c as f64 / worlds as f64)
        .collect())
}

/// Worlds per deterministic batch: the RNG granularity of the executor.
///
/// Each batch consumes its own seeded generator, so the batch size is part
/// of the reproducibility contract — changing it changes the stream (but
/// never the thread count's influence, which is zero).
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// Batches evaluated between two convergence checks. A round is the unit of
/// parallel fan-out *and* of early termination, so it is a constant rather
/// than a function of the thread count — otherwise the stopping point (and
/// with it the estimate) would depend on the machine.
const BATCHES_PER_ROUND: usize = 8;

/// Two-sided 95% standard-normal quantile used for all intervals.
const Z_95: f64 = 1.959_963_984_540_054;

/// Configuration of a [`WorldsExecutor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorldsConfig {
    /// Upper bound on the number of worlds to sample.
    pub max_worlds: usize,
    /// Base seed; combined with each batch index to seed that batch's RNG.
    pub seed: u64,
    /// Early-termination target: stop as soon as the 95% CI half-width of
    /// the event-probability estimate is at most this value (checked once
    /// per round). `None` always samples `max_worlds` worlds.
    pub target_ci: Option<f64>,
    /// Fork-join width (`0` = one per core); never affects the estimate.
    pub threads: usize,
    /// Worlds per deterministic batch; see [`DEFAULT_BATCH_SIZE`].
    pub batch_size: usize,
}

impl Default for WorldsConfig {
    fn default() -> Self {
        WorldsConfig {
            max_worlds: 10_000,
            seed: 0,
            target_ci: None,
            threads: 0,
            batch_size: DEFAULT_BATCH_SIZE,
        }
    }
}

/// SUM-aggregate estimate over one numeric column (`Σ v_i` over tuples
/// present in a world).
#[derive(Debug, Clone, PartialEq)]
pub struct SumEstimate {
    /// Summed column.
    pub column: String,
    /// Monte-Carlo mean of the per-world sum (converges to
    /// [`crate::query::expected_sum`]).
    pub mean: f64,
    /// Sample variance of the per-world sum.
    pub variance: f64,
    /// 95% CI half-width of the mean.
    pub ci_half_width: f64,
}

/// Everything one [`WorldsExecutor::run`] produces: the estimates plus the
/// per-query sampling statistics the SQL layer surfaces.
#[derive(Debug, Clone, PartialEq)]
pub struct WorldsResult {
    /// Worlds actually sampled (≤ `max_worlds`; less on early termination).
    pub worlds: usize,
    /// Tuples matching the predicate (the sampling domain).
    pub matching_tuples: usize,
    /// Seed the run was keyed on.
    pub seed: u64,
    /// Effective fork-join width used (diagnostic only — the estimate is
    /// identical at every width).
    pub threads: usize,
    /// Whether the CI target stopped sampling before `max_worlds`.
    pub converged: bool,
    /// MC estimate of `P(at least one matching tuple exists)`; converges to
    /// [`crate::query::event_probability`].
    pub event_probability: f64,
    /// 95% CI half-width for the event probability — the *Wilson-score*
    /// width, which stays positive even at empirical frequencies of
    /// exactly 0 or 1 (where the naive Wald width collapses to zero).
    ///
    /// Note the deliberate pairing: `event_probability` itself remains the
    /// unbiased empirical frequency (not the Wilson-adjusted midpoint, so
    /// that MC estimates converge to the exact operators without bias),
    /// while this width is the Wilson one. Near the boundaries read it as
    /// an uncertainty scale — the actual 95% interval is clipped to
    /// `[0, 1]` and one-sided at an estimate of exactly 0 or 1.
    pub event_ci_half_width: f64,
    /// MC estimate of the matching-tuple count distribution; entry `k` is
    /// `P(count = k)`. Converges to
    /// [`crate::aggregates::count_distribution`].
    pub count_distribution: Vec<f64>,
    /// Mean of the sampled counts.
    pub count_mean: f64,
    /// Sample variance of the sampled counts.
    pub count_variance: f64,
    /// 95% CI half-width of `count_mean`.
    pub count_ci_half_width: f64,
    /// SUM aggregate, when a numeric column was requested.
    pub sum: Option<SumEstimate>,
    /// Wall-clock time of the run.
    pub wall: Duration,
}

impl WorldsResult {
    /// Quantile of the sampled count distribution: the smallest count `k`
    /// with `P(count ≤ k) ≥ q` (`q` clamped to `[0, 1]`).
    pub fn count_quantile(&self, q: f64) -> usize {
        let q = q.clamp(0.0, 1.0);
        let mut cdf = 0.0;
        for (k, &mass) in self.count_distribution.iter().enumerate() {
            cdf += mass;
            if cdf >= q - 1e-12 {
                return k;
            }
        }
        self.count_distribution.len().saturating_sub(1)
    }

    /// Bit-exact fingerprint of every estimate (wall time and thread count
    /// excluded): two runs with equal fingerprints produced identical
    /// numbers. This is what the differential tests compare across thread
    /// counts.
    pub fn fingerprint(&self) -> String {
        use fmt::Write;
        let mut s = String::new();
        write!(
            s,
            "w={} m={} seed={} conv={} p={:016x} pci={:016x} cm={:016x} cv={:016x} cci={:016x}",
            self.worlds,
            self.matching_tuples,
            self.seed,
            self.converged,
            self.event_probability.to_bits(),
            self.event_ci_half_width.to_bits(),
            self.count_mean.to_bits(),
            self.count_variance.to_bits(),
            self.count_ci_half_width.to_bits(),
        )
        .expect("write to String cannot fail");
        for d in &self.count_distribution {
            write!(s, " {:016x}", d.to_bits()).expect("write to String cannot fail");
        }
        if let Some(sum) = &self.sum {
            write!(
                s,
                " sum[{}]={:016x}/{:016x}/{:016x}",
                sum.column,
                sum.mean.to_bits(),
                sum.variance.to_bits(),
                sum.ci_half_width.to_bits(),
            )
            .expect("write to String cannot fail");
        }
        s
    }
}

impl fmt::Display for WorldsResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "worlds: {} sampled (seed {}, {} thread{}, {}converged, {:.3} ms)",
            self.worlds,
            self.seed,
            self.threads,
            if self.threads == 1 { "" } else { "s" },
            if self.converged { "" } else { "not " },
            self.wall.as_secs_f64() * 1e3,
        )?;
        writeln!(
            f,
            "event probability: {:.6} ± {:.6}",
            self.event_probability, self.event_ci_half_width
        )?;
        writeln!(
            f,
            "count: mean {:.4} ± {:.4}, variance {:.4}, p50 {}, p95 {}",
            self.count_mean,
            self.count_ci_half_width,
            self.count_variance,
            self.count_quantile(0.5),
            self.count_quantile(0.95),
        )?;
        if let Some(sum) = &self.sum {
            writeln!(
                f,
                "sum({}): mean {:.4} ± {:.4}, variance {:.4}",
                sum.column, sum.mean, sum.ci_half_width, sum.variance
            )?;
        }
        Ok(())
    }
}

/// A `HAVING SUM(col) ⟨op⟩ s` event checked inside the sampling loop:
/// each world's sum over [`SumEventSpec::column`] (an index into the
/// tallied columns) is compared against the threshold, and the hit
/// frequency estimates the event probability. Checking piggybacks on the
/// per-world sum the tally already computes — no extra RNG is consumed,
/// so adding an event never changes any other estimate's bits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct SumEventSpec {
    /// Index into the tallied `columns` slice whose per-world sum is
    /// tested.
    pub column: usize,
    /// Comparison operator.
    pub op: CmpOp,
    /// Right-hand side of the comparison.
    pub threshold: f64,
}

impl SumEventSpec {
    fn holds(&self, world_sum: f64) -> bool {
        self.op.eval(world_sum.partial_cmp(&self.threshold))
    }
}

/// Per-batch accumulator. Batches are folded into the global tally **in
/// batch order**, so the floating-point reduction tree is independent of
/// how batches were distributed over threads. The SUM accumulators are
/// per requested column (the multi-column tally): presence sampling never
/// consumes RNG for values, so tallying any number of columns in one pass
/// over the worlds produces bit-identical sums to one pass per column.
struct BatchTally {
    worlds: u64,
    event_hits: u64,
    hist: Vec<u64>,
    /// `Σ_worlds (per-world sum)`, one entry per tallied column.
    sums: Vec<f64>,
    /// `Σ_worlds (per-world sum)²`, parallel to `sums`.
    sums_sq: Vec<f64>,
    /// Worlds whose tested column sum satisfied the [`SumEventSpec`]
    /// (always 0 when no event was requested).
    sum_event_hits: u64,
}

impl BatchTally {
    fn zero(buckets: usize, columns: usize) -> Self {
        BatchTally {
            worlds: 0,
            event_hits: 0,
            hist: vec![0; buckets],
            sums: vec![0.0; columns],
            sums_sq: vec![0.0; columns],
            sum_event_hits: 0,
        }
    }

    /// Books one sampled world's matching-tuple count.
    fn record_world(&mut self, count: usize) {
        self.worlds += 1;
        if count > 0 {
            self.event_hits += 1;
        }
        self.hist[count] += 1;
    }

    fn absorb(&mut self, other: &BatchTally) {
        self.worlds += other.worlds;
        self.event_hits += other.event_hits;
        for (a, b) in self.hist.iter_mut().zip(&other.hist) {
            *a += b;
        }
        for (a, b) in self.sums.iter_mut().zip(&other.sums) {
            *a += b;
        }
        for (a, b) in self.sums_sq.iter_mut().zip(&other.sums_sq) {
            *a += b;
        }
        self.sum_event_hits += other.sum_event_hits;
    }
}

/// 95% Wilson-score half-width for a binomial proportion.
///
/// Unlike the Wald interval (`z·√(p̂(1−p̂)/n)`), the Wilson interval keeps
/// a positive width at `p̂ = 0` or `p̂ = 1` — essential for the
/// `CONFIDENCE` stopping rule, which would otherwise fire on the very
/// first round of a rare (or near-certain) event with a falsely claimed
/// ±0 interval. Only the *width* is used; the reported point estimate
/// stays the unbiased empirical frequency (see
/// [`WorldsResult::event_ci_half_width`] for how to read the pair).
fn wilson_half_width(hits: u64, worlds: u64) -> f64 {
    let n = worlds as f64;
    let p = hits as f64 / n;
    let z2 = Z_95 * Z_95;
    Z_95 * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / (1.0 + z2 / n)
}

/// Derives a sub-seed from a base seed and a salt (SplitMix64-style mix) —
/// used for per-batch RNGs here and per-group runs in the planner's MC
/// aggregate evaluation.
pub(crate) fn mix_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The parallel possible-worlds executor.
///
/// ## Determinism contract
///
/// For a fixed `(table, predicate, sum column, max_worlds, seed,
/// batch_size, target_ci)` the result is **bit-identical** at every
/// `threads` setting: worlds are drawn in batches whose RNGs are seeded
/// from the batch *index*, threads only decide which core evaluates which
/// batch, and batch tallies are reduced in index order. Early termination
/// is checked once per fixed-size round of batches, so the stopping point
/// cannot depend on scheduling either.
#[derive(Debug, Clone)]
pub struct WorldsExecutor {
    config: WorldsConfig,
}

impl WorldsExecutor {
    /// Validates the configuration and builds an executor.
    pub fn new(config: WorldsConfig) -> Result<Self, DbError> {
        if config.max_worlds == 0 {
            return Err(DbError::InvalidWorlds(
                "need at least one world (max_worlds = 0)".into(),
            ));
        }
        if config.batch_size == 0 {
            return Err(DbError::InvalidWorlds("batch_size must be positive".into()));
        }
        if let Some(eps) = config.target_ci {
            if !(eps > 0.0) {
                return Err(DbError::InvalidWorlds(format!(
                    "CI target must be positive, got {eps}"
                )));
            }
        }
        Ok(WorldsExecutor { config })
    }

    /// The executor's configuration.
    pub fn config(&self) -> &WorldsConfig {
        &self.config
    }

    /// Samples worlds of `table` restricted to tuples matching `pred` and
    /// estimates the event probability, the COUNT distribution, and (when
    /// `sum_column` names a numeric column) the SUM aggregate.
    pub fn run(
        &self,
        table: &ProbTable,
        pred: &Conjunction,
        sum_column: Option<&str>,
    ) -> Result<WorldsResult, DbError> {
        // Pre-filter matching tuples once; sampling then touches only their
        // probabilities (and summed values).
        let mut probs = Vec::new();
        let mut values = Vec::new();
        let sum_idx = match sum_column {
            Some(col) => Some(table.schema().index_of(col)?),
            None => None,
        };
        for (row, p) in table.iter() {
            if !eval_conjunction(table.schema(), row, Some(p), pred)? {
                continue;
            }
            if let Some(c) = sum_idx {
                let v = row[c].as_f64().ok_or_else(|| DbError::TypeMismatch {
                    column: sum_column.expect("sum_idx implies sum_column").to_string(),
                    expected: crate::value::ColumnType::Float,
                    got: row[c].column_type(),
                })?;
                values.push(v);
            }
            probs.push(p);
        }
        Ok(self.run_domain(&probs, sum_column.map(|col| (col, values.as_slice()))))
    }

    /// Samples worlds of an already-restricted domain: tuple `i` exists
    /// independently with probability `probs[i]`, and when `sum` supplies
    /// `(column name, per-tuple values)` the SUM aggregate over present
    /// tuples is estimated too (`sum.1` must be parallel to `probs`).
    ///
    /// This is the allocation-free entry point the SQL layer uses after it
    /// has already computed the surviving tuples — no scratch `ProbTable`
    /// needs to be materialised just to be torn apart again. For several
    /// SUM columns over the same domain, use
    /// [`WorldsExecutor::run_domain_multi`], which tallies them all in one
    /// sampling pass.
    ///
    /// # Examples
    ///
    /// ```
    /// use tspdb_probdb::{WorldsConfig, WorldsExecutor};
    ///
    /// let executor = WorldsExecutor::new(WorldsConfig {
    ///     max_worlds: 4096,
    ///     seed: 7,
    ///     ..WorldsConfig::default()
    /// })
    /// .unwrap();
    /// // Two tuples with P = 0.5 and 0.25: P(at least one) = 0.625.
    /// let result = executor.run_domain(&[0.5, 0.25], None);
    /// assert_eq!(result.worlds, 4096);
    /// assert!((result.event_probability - 0.625).abs() < 0.05);
    /// ```
    pub fn run_domain(&self, probs: &[f64], sum: Option<(&str, &[f64])>) -> WorldsResult {
        match sum {
            None => self.run_domain_multi(probs, &[]).0,
            Some(cv) => {
                let (mut result, mut sums) = self.run_domain_multi(probs, &[cv]);
                result.sum = sums.pop();
                result
            }
        }
    }

    /// [`WorldsExecutor::run_domain`] for any number of SUM columns over
    /// one shared sampling pass — the multi-column tally.
    ///
    /// Each `columns` entry is `(column name, per-tuple values)` with the
    /// values parallel to `probs`. Returns the count/event estimates (with
    /// [`WorldsResult::sum`] left empty) plus one [`SumEstimate`] per
    /// requested column, in request order.
    ///
    /// Presence sampling never consumes RNG for values, and each column's
    /// accumulator sees the same additions in the same order as a
    /// dedicated single-column run would, so every estimate is
    /// **bit-identical** to running `run_domain` once per column with the
    /// same seed — while sampling the worlds only once.
    pub fn run_domain_multi(
        &self,
        probs: &[f64],
        columns: &[(&str, &[f64])],
    ) -> (WorldsResult, Vec<SumEstimate>) {
        let (result, sums, _) = self.run_domain_multi_event(probs, columns, None);
        (result, sums)
    }

    /// [`WorldsExecutor::run_domain_multi`] plus an optional
    /// [`SumEventSpec`] evaluated inside the sampling loop. The third
    /// return value is the event's `(probability, Wilson 95% half-width)`
    /// when an event was requested.
    ///
    /// The event check reuses the per-world column sums the tally already
    /// computes and consumes no RNG, so every other estimate stays
    /// bit-identical to an event-free run with the same seed.
    pub(crate) fn run_domain_multi_event(
        &self,
        probs: &[f64],
        columns: &[(&str, &[f64])],
        event: Option<SumEventSpec>,
    ) -> (WorldsResult, Vec<SumEstimate>, Option<(f64, f64)>) {
        let started = Instant::now();
        for (col, vals) in columns {
            assert_eq!(
                vals.len(),
                probs.len(),
                "run_domain_multi: values of column {col} must be parallel to probs"
            );
        }
        if let Some(ev) = event {
            assert!(
                ev.column < columns.len(),
                "run_domain_multi_event: event column {} is not tallied",
                ev.column
            );
        }
        let values: Vec<&[f64]> = columns.iter().map(|&(_, vals)| vals).collect();
        let cfg = &self.config;
        let buckets = probs.len() + 1;
        let total_batches = cfg.max_worlds.div_ceil(cfg.batch_size);
        let threads = effective_threads(cfg.threads, total_batches.min(BATCHES_PER_ROUND));

        let mut tally = BatchTally::zero(buckets, columns.len());
        let mut converged = false;
        let mut next_batch = 0usize;
        while next_batch < total_batches && !converged {
            let round = (total_batches - next_batch).min(BATCHES_PER_ROUND);
            // One tally per batch, returned per segment in segment order;
            // flattening restores exact batch order.
            let segments = map_segments(round, cfg.threads, |range| {
                range
                    .map(|i| {
                        let b = next_batch + i;
                        let worlds_in_batch =
                            cfg.batch_size.min(cfg.max_worlds - b * cfg.batch_size);
                        self.sample_batch(b as u64, worlds_in_batch, probs, &values, event)
                    })
                    .collect::<Vec<_>>()
            });
            for batch in segments.iter().flatten() {
                tally.absorb(batch);
            }
            next_batch += round;
            if let Some(eps) = cfg.target_ci {
                if wilson_half_width(tally.event_hits, tally.worlds) <= eps {
                    converged = true;
                }
            }
        }

        let sum_event = event.map(|_| {
            (
                tally.sum_event_hits as f64 / tally.worlds as f64,
                wilson_half_width(tally.sum_event_hits, tally.worlds),
            )
        });
        let (result, sums) = self.summarize(
            tally,
            probs.len(),
            columns,
            threads,
            converged,
            started.elapsed(),
        );
        (result, sums, sum_event)
    }

    /// Draws one batch of worlds with the batch's own deterministic RNG.
    ///
    /// The presence loop is specialized by column count — the 0- and
    /// 1-column shapes dominate (plain `WITH WORLDS` queries and
    /// single-aggregate plans) and a generic accumulator loop costs ~4×
    /// on them. All shapes consume the RNG identically (one `gen_bool`
    /// per tuple) and add per-column values in tuple order, so the
    /// estimates are bit-identical regardless of which shape ran.
    fn sample_batch(
        &self,
        batch: u64,
        worlds: usize,
        probs: &[f64],
        values: &[&[f64]],
        event: Option<SumEventSpec>,
    ) -> BatchTally {
        let mut rng = StdRng::seed_from_u64(mix_seed(self.config.seed, batch));
        let mut tally = BatchTally::zero(probs.len() + 1, values.len());
        match values {
            [] => {
                debug_assert!(event.is_none(), "sum event needs a tallied column");
                for _ in 0..worlds {
                    let mut count = 0usize;
                    for &p in probs {
                        if rng.gen_bool(p.clamp(0.0, 1.0)) {
                            count += 1;
                        }
                    }
                    tally.record_world(count);
                }
            }
            [vals] => {
                for _ in 0..worlds {
                    let mut count = 0usize;
                    let mut world_sum = 0.0f64;
                    for (i, &p) in probs.iter().enumerate() {
                        if rng.gen_bool(p.clamp(0.0, 1.0)) {
                            count += 1;
                            world_sum += vals[i];
                        }
                    }
                    tally.record_world(count);
                    tally.sums[0] += world_sum;
                    tally.sums_sq[0] += world_sum * world_sum;
                    if let Some(ev) = event {
                        if ev.holds(world_sum) {
                            tally.sum_event_hits += 1;
                        }
                    }
                }
            }
            _ => {
                // One per-world accumulator per tallied column, reused
                // across worlds so the inner loop never allocates.
                let mut world_sums = vec![0.0f64; values.len()];
                for _ in 0..worlds {
                    let mut count = 0usize;
                    world_sums.fill(0.0);
                    for (i, &p) in probs.iter().enumerate() {
                        if rng.gen_bool(p.clamp(0.0, 1.0)) {
                            count += 1;
                            for (acc, vals) in world_sums.iter_mut().zip(values) {
                                *acc += vals[i];
                            }
                        }
                    }
                    tally.record_world(count);
                    for (j, &ws) in world_sums.iter().enumerate() {
                        tally.sums[j] += ws;
                        tally.sums_sq[j] += ws * ws;
                    }
                    if let Some(ev) = event {
                        if ev.holds(world_sums[ev.column]) {
                            tally.sum_event_hits += 1;
                        }
                    }
                }
            }
        }
        tally
    }

    /// Turns the final tally into the reported estimates.
    fn summarize(
        &self,
        tally: BatchTally,
        matching: usize,
        columns: &[(&str, &[f64])],
        threads: usize,
        converged: bool,
        wall: Duration,
    ) -> (WorldsResult, Vec<SumEstimate>) {
        let n = tally.worlds as f64;
        let event_probability = tally.event_hits as f64 / n;
        let event_ci_half_width = wilson_half_width(tally.event_hits, tally.worlds);

        let count_distribution: Vec<f64> = tally.hist.iter().map(|&c| c as f64 / n).collect();
        let count_mean = tally
            .hist
            .iter()
            .enumerate()
            .map(|(k, &c)| k as f64 * c as f64)
            .sum::<f64>()
            / n;
        let count_sq = tally
            .hist
            .iter()
            .enumerate()
            .map(|(k, &c)| (k as f64) * (k as f64) * c as f64)
            .sum::<f64>();
        let count_variance = if tally.worlds > 1 {
            ((count_sq - n * count_mean * count_mean) / (n - 1.0)).max(0.0)
        } else {
            0.0
        };
        let count_ci_half_width = Z_95 * (count_variance / n).sqrt();

        let sums: Vec<SumEstimate> = columns
            .iter()
            .enumerate()
            .map(|(j, &(column, _))| {
                let mean = tally.sums[j] / n;
                let variance = if tally.worlds > 1 {
                    ((tally.sums_sq[j] - n * mean * mean) / (n - 1.0)).max(0.0)
                } else {
                    0.0
                };
                SumEstimate {
                    column: column.to_string(),
                    mean,
                    variance,
                    ci_half_width: Z_95 * (variance / n).sqrt(),
                }
            })
            .collect();

        let result = WorldsResult {
            worlds: tally.worlds as usize,
            matching_tuples: matching,
            seed: self.config.seed,
            threads,
            converged,
            event_probability,
            event_ci_half_width,
            count_distribution,
            count_mean,
            count_variance,
            count_ci_half_width,
            sum: None,
            wall,
        };
        (result, sums)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregates::count_distribution;
    use crate::query::{event_probability, CmpOp, Comparison};
    use crate::schema::Schema;
    use crate::value::{ColumnType, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn view() -> ProbTable {
        let schema = Schema::of(&[("room", ColumnType::Int)]);
        let mut v = ProbTable::new("v", schema);
        for (room, p) in [(1, 0.5), (2, 0.25), (1, 0.4), (3, 0.9), (2, 0.05)] {
            v.insert(vec![Value::Int(room)], p).unwrap();
        }
        v
    }

    #[test]
    fn sampled_world_respects_schema_and_bounds() {
        let v = view();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let w = sample_world(&v, &mut rng);
            assert!(w.len() <= v.len());
            assert_eq!(w.schema(), v.schema());
        }
    }

    #[test]
    fn certain_tuples_always_appear_impossible_never() {
        let schema = Schema::of(&[("x", ColumnType::Int)]);
        let mut v = ProbTable::new("v", schema);
        v.insert(vec![Value::Int(1)], 1.0).unwrap();
        v.insert(vec![Value::Int(2)], 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let w = sample_world(&v, &mut rng);
            assert_eq!(w.len(), 1);
            assert_eq!(w.row(0)[0], Value::Int(1));
        }
    }

    #[test]
    fn mc_event_probability_converges_to_exact() {
        let v = view();
        let pred = vec![Comparison::new("room", CmpOp::Eq, 1i64)];
        let exact = event_probability(&v, &pred).unwrap(); // 1 − 0.5·0.6 = 0.7
        assert!((exact - 0.7).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(3);
        let mc = mc_event_probability(&v, &pred, 40_000, &mut rng).unwrap();
        assert!(
            (mc - exact).abs() < 0.01,
            "MC {mc} diverges from exact {exact}"
        );
    }

    #[test]
    fn mc_count_distribution_converges_to_dp() {
        let v = view();
        let exact = count_distribution(&v, &vec![]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mc = mc_count_distribution(&v, &vec![], 60_000, &mut rng).unwrap();
        assert_eq!(mc.len(), exact.len());
        for (k, (a, b)) in exact.iter().zip(&mc).enumerate() {
            assert!((a - b).abs() < 0.012, "count {k}: exact {a} vs MC {b}");
        }
    }

    #[test]
    fn empty_predicate_on_empty_table() {
        let schema = Schema::of(&[("x", ColumnType::Int)]);
        let v = ProbTable::new("v", schema);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(
            mc_event_probability(&v, &vec![], 100, &mut rng).unwrap(),
            0.0
        );
        let dist = mc_count_distribution(&v, &vec![], 100, &mut rng).unwrap();
        assert_eq!(dist, vec![1.0]);
    }

    fn executor(worlds: usize, seed: u64, threads: usize) -> WorldsExecutor {
        WorldsExecutor::new(WorldsConfig {
            max_worlds: worlds,
            seed,
            threads,
            ..WorldsConfig::default()
        })
        .unwrap()
    }

    #[test]
    fn executor_is_bit_identical_across_thread_counts() {
        let v = view();
        let pred = vec![Comparison::new("room", CmpOp::Eq, 1i64)];
        let reference = executor(20_000, 99, 1).run(&v, &pred, None).unwrap();
        for threads in [2, 3, 4, 8] {
            let got = executor(20_000, 99, threads).run(&v, &pred, None).unwrap();
            assert_eq!(
                got.fingerprint(),
                reference.fingerprint(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn executor_estimates_converge_to_exact() {
        let v = view();
        let pred = vec![Comparison::new("room", CmpOp::Eq, 1i64)];
        let exact = event_probability(&v, &pred).unwrap();
        let got = executor(40_000, 7, 0).run(&v, &pred, None).unwrap();
        assert_eq!(got.worlds, 40_000);
        assert_eq!(got.matching_tuples, 2);
        assert!(
            (got.event_probability - exact).abs() < 3.0 * got.event_ci_half_width + 1e-3,
            "MC {} vs exact {exact} (CI ±{})",
            got.event_probability,
            got.event_ci_half_width
        );
        let exact_dist = count_distribution(&v, &pred).unwrap();
        assert_eq!(got.count_distribution.len(), exact_dist.len());
        for (k, (a, b)) in exact_dist.iter().zip(&got.count_distribution).enumerate() {
            assert!((a - b).abs() < 0.02, "count {k}: exact {a} vs MC {b}");
        }
    }

    #[test]
    fn executor_sum_matches_expected_sum() {
        let v = view();
        let exact = crate::query::expected_sum(&v, "room").unwrap();
        let got = executor(40_000, 3, 0)
            .run(&v, &vec![], Some("room"))
            .unwrap();
        let sum = got.sum.as_ref().unwrap();
        assert_eq!(sum.column, "room");
        assert!(
            (sum.mean - exact).abs() < 3.0 * sum.ci_half_width + 1e-3,
            "MC sum {} vs exact {exact}",
            sum.mean
        );
    }

    #[test]
    fn sum_event_converges_and_keeps_other_estimates_bit_identical() {
        let probs = [0.5, 0.25, 0.4, 0.9, 0.05];
        let values = [1.5, -2.0, 0.5, 3.0, 1.0];
        let exec = executor(40_000, 21, 0);
        let spec = SumEventSpec {
            column: 0,
            op: CmpOp::Ge,
            threshold: 2.0,
        };
        let (with_event, sums_a, event) =
            exec.run_domain_multi_event(&probs, &[("v", &values)], Some(spec));
        let (without, sums_b) = exec.run_domain_multi(&probs, &[("v", &values)]);
        // The event check consumes no RNG: every other estimate is
        // bit-identical with and without it.
        assert_eq!(with_event.fingerprint(), without.fingerprint());
        assert_eq!(sums_a, sums_b);
        let (p_hat, hw) = event.expect("event was requested");
        let exact = crate::aggregates::sum_distribution_of(&probs, &values)
            .unwrap()
            .tail(CmpOp::Ge, 2.0);
        assert!(
            (p_hat - exact).abs() < 3.0 * hw + 1e-3,
            "MC sum event {p_hat} ± {hw} vs exact {exact}"
        );
    }

    #[test]
    fn executor_early_termination_is_deterministic() {
        let v = view();
        let run = |threads| {
            WorldsExecutor::new(WorldsConfig {
                max_worlds: 1_000_000,
                seed: 11,
                target_ci: Some(0.01),
                threads,
                ..WorldsConfig::default()
            })
            .unwrap()
            .run(&v, &vec![], None)
            .unwrap()
        };
        let a = run(1);
        let b = run(8);
        assert!(a.converged);
        assert!(a.worlds < 1_000_000, "CI target should stop early");
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(a.event_ci_half_width <= 0.01);
    }

    #[test]
    fn degenerate_proportions_keep_a_positive_ci() {
        // A certain event: the empirical hit rate is exactly 1, where the
        // Wald interval collapses to ±0 and would satisfy any CONFIDENCE
        // target after the first round. The Wilson interval stays open and
        // keeps sampling until it genuinely shrinks below the target.
        let schema = Schema::of(&[("x", ColumnType::Int)]);
        let mut v = ProbTable::new("v", schema);
        v.insert(vec![Value::Int(1)], 1.0).unwrap();
        let run = |eps: f64, cap: usize| {
            WorldsExecutor::new(WorldsConfig {
                max_worlds: cap,
                seed: 4,
                target_ci: Some(eps),
                threads: 1,
                ..WorldsConfig::default()
            })
            .unwrap()
            .run(&v, &vec![], None)
            .unwrap()
        };
        // Too tight for 50k worlds: must exhaust the budget, not "converge".
        let tight = run(1e-5, 50_000);
        assert!(!tight.converged, "±0 Wald interval leaked through");
        assert_eq!(tight.worlds, 50_000);
        assert!(tight.event_ci_half_width > 0.0);
        // Achievable target: converges once the Wilson width reaches it.
        let loose = run(1e-4, 50_000);
        assert!(loose.converged);
        assert!(loose.worlds < 50_000);
        assert!(loose.event_ci_half_width > 0.0);
        assert!(loose.event_ci_half_width <= 1e-4);
    }

    #[test]
    fn count_quantiles_walk_the_cdf() {
        let v = view();
        let got = executor(20_000, 5, 0).run(&v, &vec![], None).unwrap();
        assert!(got.count_quantile(0.0) <= got.count_quantile(0.5));
        assert!(got.count_quantile(0.5) <= got.count_quantile(1.0));
        assert!(got.count_quantile(1.0) <= 5);
        // Exact median of the Poisson-binomial over the 5 view tuples is 2.
        assert_eq!(got.count_quantile(0.5), 2);
    }

    #[test]
    fn executor_on_empty_domain() {
        let schema = Schema::of(&[("x", ColumnType::Int)]);
        let v = ProbTable::new("v", schema);
        let got = executor(1_000, 1, 0).run(&v, &vec![], None).unwrap();
        assert_eq!(got.matching_tuples, 0);
        assert_eq!(got.event_probability, 0.0);
        assert_eq!(got.count_distribution, vec![1.0]);
        assert_eq!(got.count_mean, 0.0);
    }

    #[test]
    fn executor_rejects_bad_configs() {
        for cfg in [
            WorldsConfig {
                max_worlds: 0,
                ..WorldsConfig::default()
            },
            WorldsConfig {
                batch_size: 0,
                ..WorldsConfig::default()
            },
            WorldsConfig {
                target_ci: Some(0.0),
                ..WorldsConfig::default()
            },
            WorldsConfig {
                target_ci: Some(-1.0),
                ..WorldsConfig::default()
            },
        ] {
            assert!(matches!(
                WorldsExecutor::new(cfg),
                Err(DbError::InvalidWorlds(_))
            ));
        }
    }

    #[test]
    fn executor_sum_on_text_column_errors() {
        let schema = Schema::of(&[("tag", ColumnType::Text)]);
        let mut v = ProbTable::new("v", schema);
        v.insert(vec![Value::Text("a".into())], 0.5).unwrap();
        let err = executor(100, 1, 0)
            .run(&v, &vec![], Some("tag"))
            .unwrap_err();
        assert!(matches!(err, DbError::TypeMismatch { .. }));
    }

    #[test]
    fn display_summarizes_the_run() {
        let v = view();
        let got = executor(2_000, 1, 1)
            .run(&v, &vec![], Some("room"))
            .unwrap();
        let text = got.to_string();
        assert!(text.contains("worlds: 2000 sampled"));
        assert!(text.contains("event probability"));
        assert!(text.contains("sum(room)"));
    }
}
