//! Possible-world semantics: sampling and Monte-Carlo estimation.
//!
//! A tuple-independent probabilistic relation denotes a distribution over
//! *possible worlds* — deterministic relations in which each tuple appears
//! independently with its probability. Sampling worlds gives both a
//! validation harness for the exact operators (Monte-Carlo frequencies must
//! converge to computed probabilities) and an escape hatch for queries with
//! no closed form, in the spirit of MCDB (Jampani et al.), which the paper
//! cites as the ancestor of its parameter-storing design.

use crate::error::DbError;
use crate::query::{eval_conjunction, Conjunction};
use crate::table::{ProbTable, Table};
use rand::Rng;

/// Draws one possible world: a deterministic table containing each tuple
/// independently with its probability.
pub fn sample_world<R: Rng + ?Sized>(table: &ProbTable, rng: &mut R) -> Table {
    let mut world = Table::new(table.name().to_string(), table.schema().clone());
    for (row, p) in table.iter() {
        if rng.gen_bool(p.clamp(0.0, 1.0)) {
            world
                .insert(row.to_vec())
                .expect("row satisfied the same schema in the source");
        }
    }
    world
}

/// Monte-Carlo estimate of `P(at least one tuple matching `pred` exists)`
/// over `worlds` sampled worlds. Converges to
/// [`crate::query::event_probability`] by the law of large numbers.
pub fn mc_event_probability<R: Rng + ?Sized>(
    table: &ProbTable,
    pred: &Conjunction,
    worlds: usize,
    rng: &mut R,
) -> Result<f64, DbError> {
    assert!(worlds > 0, "mc_event_probability: need at least one world");
    // Pre-filter matching tuples once; sampling then only needs their
    // probabilities.
    let mut match_probs = Vec::new();
    for (row, p) in table.iter() {
        if eval_conjunction(table.schema(), row, Some(p), pred)? {
            match_probs.push(p);
        }
    }
    let mut hits = 0usize;
    for _ in 0..worlds {
        if match_probs.iter().any(|&p| rng.gen_bool(p.clamp(0.0, 1.0))) {
            hits += 1;
        }
    }
    Ok(hits as f64 / worlds as f64)
}

/// Monte-Carlo estimate of the full count distribution (histogram of the
/// number of matching tuples across worlds). Converges to
/// [`crate::aggregates::count_distribution`].
pub fn mc_count_distribution<R: Rng + ?Sized>(
    table: &ProbTable,
    pred: &Conjunction,
    worlds: usize,
    rng: &mut R,
) -> Result<Vec<f64>, DbError> {
    assert!(worlds > 0, "mc_count_distribution: need at least one world");
    let mut match_probs = Vec::new();
    for (row, p) in table.iter() {
        if eval_conjunction(table.schema(), row, Some(p), pred)? {
            match_probs.push(p);
        }
    }
    let mut counts = vec![0usize; match_probs.len() + 1];
    for _ in 0..worlds {
        let k = match_probs
            .iter()
            .filter(|&&p| rng.gen_bool(p.clamp(0.0, 1.0)))
            .count();
        counts[k] += 1;
    }
    Ok(counts
        .into_iter()
        .map(|c| c as f64 / worlds as f64)
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregates::count_distribution;
    use crate::query::{event_probability, CmpOp, Comparison};
    use crate::schema::Schema;
    use crate::value::{ColumnType, Value};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn view() -> ProbTable {
        let schema = Schema::of(&[("room", ColumnType::Int)]);
        let mut v = ProbTable::new("v", schema);
        for (room, p) in [(1, 0.5), (2, 0.25), (1, 0.4), (3, 0.9), (2, 0.05)] {
            v.insert(vec![Value::Int(room)], p).unwrap();
        }
        v
    }

    #[test]
    fn sampled_world_respects_schema_and_bounds() {
        let v = view();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let w = sample_world(&v, &mut rng);
            assert!(w.len() <= v.len());
            assert_eq!(w.schema(), v.schema());
        }
    }

    #[test]
    fn certain_tuples_always_appear_impossible_never() {
        let schema = Schema::of(&[("x", ColumnType::Int)]);
        let mut v = ProbTable::new("v", schema);
        v.insert(vec![Value::Int(1)], 1.0).unwrap();
        v.insert(vec![Value::Int(2)], 0.0).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let w = sample_world(&v, &mut rng);
            assert_eq!(w.len(), 1);
            assert_eq!(w.row(0)[0], Value::Int(1));
        }
    }

    #[test]
    fn mc_event_probability_converges_to_exact() {
        let v = view();
        let pred = vec![Comparison::new("room", CmpOp::Eq, 1i64)];
        let exact = event_probability(&v, &pred).unwrap(); // 1 − 0.5·0.6 = 0.7
        assert!((exact - 0.7).abs() < 1e-12);
        let mut rng = StdRng::seed_from_u64(3);
        let mc = mc_event_probability(&v, &pred, 40_000, &mut rng).unwrap();
        assert!(
            (mc - exact).abs() < 0.01,
            "MC {mc} diverges from exact {exact}"
        );
    }

    #[test]
    fn mc_count_distribution_converges_to_dp() {
        let v = view();
        let exact = count_distribution(&v, &vec![]).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mc = mc_count_distribution(&v, &vec![], 60_000, &mut rng).unwrap();
        assert_eq!(mc.len(), exact.len());
        for (k, (a, b)) in exact.iter().zip(&mc).enumerate() {
            assert!((a - b).abs() < 0.012, "count {k}: exact {a} vs MC {b}");
        }
    }

    #[test]
    fn empty_predicate_on_empty_table() {
        let schema = Schema::of(&[("x", ColumnType::Int)]);
        let v = ProbTable::new("v", schema);
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(
            mc_event_probability(&v, &vec![], 100, &mut rng).unwrap(),
            0.0
        );
        let dist = mc_count_distribution(&v, &vec![], 100, &mut rng).unwrap();
        assert_eq!(dist, vec![1.0]);
    }
}
