//! Time-range sharding of probabilistic relations.
//!
//! A [`ShardMap`] splits one relation's tuple index space `0..n` into
//! contiguous shards and records, per shard, the min/max of every numeric
//! column plus the tuple-probability range. Scans fan out across shards
//! through the fork-join helpers and concatenate their surviving indices
//! **in shard order**, so the merged restriction is bit-identical to the
//! sequential one — the same batch-ordered-reduction determinism pattern
//! the possible-worlds executor uses. Shards whose recorded bounds cannot
//! intersect the query's predicate (or its `THRESHOLD`) are pruned
//! without touching a single tuple.
//!
//! Shards are contiguous *index* ranges, never a reordering: tuple order
//! is part of the engine's determinism contract (`TOP` ties, MC sampling
//! order, wire encoding all depend on it). For time-series views — whose
//! tuples are materialised in time order — contiguous index ranges *are*
//! time ranges, which is what makes pruning on the time column effective.

use crate::error::DbError;
use crate::plan::PhysicalPlan;
use crate::query::{CmpOp, Comparison, PROB_PSEUDO_COLUMN};
use crate::schema::Schema;
use crate::table::ProbTable;
use crate::value::ColumnType;
use std::collections::BTreeMap;
use std::ops::Range;

/// Largest magnitude for which pruning arithmetic is trusted: every
/// integer below 2⁵³ is exactly representable as an `f64`, so interval
/// analysis agrees with the engine's value comparisons. Bounds or
/// literals at or beyond this magnitude disable pruning (never
/// correctness — pruning is an optimisation).
const EXACT_F64: f64 = 9_007_199_254_740_992.0; // 2^53

/// Inclusive value range of one column within one shard, over the
/// non-NaN values (a NaN attribute never satisfies any comparison, so
/// excluding it from the bounds keeps pruning sound).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ColumnBounds {
    /// Smallest value in the shard.
    pub min: f64,
    /// Largest value in the shard.
    pub max: f64,
}

impl ColumnBounds {
    fn of(values: impl Iterator<Item = f64>) -> ColumnBounds {
        let mut b = ColumnBounds {
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        };
        for v in values {
            // f64::min/max ignore NaN operands, which is exactly the
            // soundness we want (see the type doc).
            b.min = b.min.min(v);
            b.max = b.max.max(v);
        }
        b
    }

    /// Whether `value CMP literal` is unsatisfiable for every value in
    /// this range. Conservative: answers `false` whenever the bounds or
    /// the literal leave exact `f64` territory.
    fn unsatisfiable(&self, op: CmpOp, lit: f64) -> bool {
        if !(self.min.is_finite() && self.max.is_finite() && lit.is_finite()) {
            return false;
        }
        if self.min.abs() >= EXACT_F64 || self.max.abs() >= EXACT_F64 || lit.abs() >= EXACT_F64 {
            return false;
        }
        match op {
            CmpOp::Eq => lit < self.min || lit > self.max,
            CmpOp::Ne => self.min == self.max && self.min == lit,
            CmpOp::Lt => !(self.min < lit),
            CmpOp::Le => !(self.min <= lit),
            CmpOp::Gt => !(self.max > lit),
            CmpOp::Ge => !(self.max >= lit),
        }
    }
}

/// One shard: a contiguous tuple-index range plus the per-column bounds
/// a scan uses to decide whether the shard can be skipped.
#[derive(Debug, Clone, PartialEq)]
pub struct Shard {
    rows: Range<usize>,
    columns: BTreeMap<String, ColumnBounds>,
    prob: ColumnBounds,
}

impl Shard {
    /// The tuple indices this shard covers.
    pub fn rows(&self) -> Range<usize> {
        self.rows.clone()
    }

    /// Value bounds of one numeric column (`None` for text or unknown
    /// columns).
    pub fn bounds(&self, column: &str) -> Option<&ColumnBounds> {
        self.columns.get(column)
    }

    /// Bounds of the tuple probabilities in this shard.
    pub fn prob_bounds(&self) -> &ColumnBounds {
        &self.prob
    }

    /// Whether the whole shard can be skipped for this plan: no tuple in
    /// it can survive the `WHERE` conjunction and `THRESHOLD`.
    ///
    /// Soundness hinges on matching the sequential evaluator's *error*
    /// behaviour, not just its accept set: a row is rejected at the first
    /// failing comparison, and later comparisons — including ones whose
    /// column would fail to resolve — are never evaluated. So this only
    /// prunes by comparison *i* when every comparison before *i*
    /// resolves, and only prunes by `THRESHOLD` when the whole
    /// conjunction resolves (an unresolvable column would have errored
    /// during the filter the threshold runs after).
    pub(crate) fn is_prunable(&self, schema: &Schema, plan: &PhysicalPlan) -> bool {
        let resolves = |cmp: &Comparison| {
            cmp.column == PROB_PSEUDO_COLUMN || schema.index_of(&cmp.column).is_ok()
        };
        if let Some(tau) = plan.threshold {
            if (0.0..=1.0).contains(&tau)
                && plan.predicate.iter().all(resolves)
                && self.prob.max < tau
            {
                return true;
            }
        }
        for cmp in &plan.predicate {
            if !resolves(cmp) {
                return false;
            }
            let bounds = if cmp.column == PROB_PSEUDO_COLUMN {
                Some(&self.prob)
            } else {
                self.columns.get(&cmp.column)
            };
            let (Some(bounds), Some(lit)) = (bounds, cmp.value.as_f64()) else {
                continue;
            };
            if bounds.unsatisfiable(cmp.op, lit) {
                return true;
            }
        }
        false
    }
}

/// The shard layout of one probabilistic relation: contiguous index
/// ranges split along (and carrying bounds for) the relation's time
/// column, plus bounds for every other numeric column and the tuple
/// probabilities.
///
/// Built whole on every write (relations are registered whole) and held
/// behind an `Arc` by the catalog, σ-cache style: readers clone the
/// snapshot lock-free and never observe a half-rebuilt map.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMap {
    column: String,
    relation_rows: usize,
    shards: Vec<Shard>,
}

impl ShardMap {
    /// Splits `t` into at most `count` contiguous near-equal shards
    /// (sizes differ by at most one tuple — the fork-join helpers' split
    /// recipe) keyed on `column`, recording per-shard bounds for every
    /// numeric column. Errors when the column is unknown or text, or
    /// when `count` is zero.
    pub fn build(t: &ProbTable, column: &str, count: usize) -> Result<ShardMap, DbError> {
        if count == 0 {
            return Err(DbError::Plan("shard count must be at least 1".into()));
        }
        if t.schema().type_of(column)? == ColumnType::Text {
            return Err(DbError::Plan(format!(
                "cannot shard {:?} by text column {column:?}; sharding needs a numeric \
                 (time) column",
                t.name()
            )));
        }
        let numeric: Vec<(usize, String)> = (0..t.schema().arity())
            .filter_map(|c| {
                let (name, ty) = t.schema().column(c);
                (ty != ColumnType::Text).then(|| (c, name.to_string()))
            })
            .collect();
        let n = t.len();
        let shard_count = count.min(n).max(1);
        let base = n / shard_count;
        let rem = n % shard_count;
        let mut shards = Vec::with_capacity(shard_count);
        let mut start = 0usize;
        for i in 0..shard_count {
            let len = base + usize::from(i < rem);
            let rows = start..start + len;
            start += len;
            let columns = numeric
                .iter()
                .map(|(c, name)| {
                    let bounds = ColumnBounds::of(
                        t.rows()[rows.clone()]
                            .iter()
                            .filter_map(|row| row[*c].as_f64()),
                    );
                    (name.clone(), bounds)
                })
                .collect();
            let prob = ColumnBounds::of(t.probs()[rows.clone()].iter().copied());
            shards.push(Shard {
                rows,
                columns,
                prob,
            });
        }
        Ok(ShardMap {
            column: column.to_string(),
            relation_rows: n,
            shards,
        })
    }

    /// The column the relation is sharded along.
    pub fn column(&self) -> &str {
        &self.column
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in index (= time, for time-ordered views) order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Whether this map still describes `t` (relations are replaced
    /// whole, so a length match means the map was built from these
    /// tuples). A stale map is simply ignored by the scan.
    pub fn covers(&self, t: &ProbTable) -> bool {
        self.relation_rows == t.len()
    }

    /// The deterministic Monte-Carlo seed of one shard, derived from a
    /// clause seed with the same SplitMix64 mixer the executor uses for
    /// per-group/per-bucket seeds. Today's scatter-gather runs sampling
    /// once over the merged (shard-ordered) domain, so results stay
    /// bit-identical to unsharded execution; this hook is what a future
    /// per-shard sampling fan-out would key its streams on.
    pub fn shard_seed(&self, clause_seed: u64, shard: usize) -> u64 {
        crate::worlds::mix_seed(clause_seed, shard as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PhysicalAction, PhysicalPlan};
    use crate::schema::Schema;
    use crate::value::Value;

    fn view(n: usize) -> ProbTable {
        let schema = Schema::of(&[("t", ColumnType::Int), ("r", ColumnType::Float)]);
        let mut v = ProbTable::new("v", schema);
        for i in 0..n {
            v.insert(
                vec![Value::Int(i as i64), Value::Float(i as f64 * 0.5)],
                ((i % 10) as f64 + 0.5) / 11.0,
            )
            .unwrap();
        }
        v
    }

    fn scan_plan(pred: Vec<Comparison>, threshold: Option<f64>) -> PhysicalPlan {
        PhysicalPlan {
            table: "v".into(),
            predicate: pred,
            threshold,
            top: None,
            action: PhysicalAction::Rows {
                columns: vec![],
                order_by: None,
                limit: None,
            },
        }
    }

    #[test]
    fn shards_cover_the_index_space_in_order() {
        let v = view(103);
        let map = ShardMap::build(&v, "t", 8).unwrap();
        assert_eq!(map.shard_count(), 8);
        let mut next = 0usize;
        for s in map.shards() {
            assert_eq!(s.rows().start, next);
            next = s.rows().end;
        }
        assert_eq!(next, 103);
        assert!(map.covers(&v));
    }

    #[test]
    fn bounds_track_time_ranges() {
        let v = view(100);
        let map = ShardMap::build(&v, "t", 4).unwrap();
        let first = map.shards()[0].bounds("t").unwrap();
        assert_eq!((first.min, first.max), (0.0, 24.0));
        let last = map.shards()[3].bounds("t").unwrap();
        assert_eq!((last.min, last.max), (75.0, 99.0));
    }

    #[test]
    fn pruning_respects_predicate_and_threshold() {
        let v = view(100);
        let map = ShardMap::build(&v, "t", 4).unwrap();
        let schema = v.schema();
        // t >= 80 only intersects the last shard.
        let plan = scan_plan(vec![Comparison::new("t", CmpOp::Ge, 80i64)], None);
        let pruned: Vec<bool> = map
            .shards()
            .iter()
            .map(|s| s.is_prunable(schema, &plan))
            .collect();
        assert_eq!(pruned, vec![true, true, true, false]);
        // Probabilities cycle within each shard, so a THRESHOLD above
        // every shard's max prunes everything.
        let plan = scan_plan(vec![], Some(0.99));
        assert!(map.shards().iter().all(|s| s.is_prunable(schema, &plan)));
        // An unresolvable column disables pruning entirely (the filter
        // must run and raise the same error the sequential path would).
        let plan = scan_plan(
            vec![
                Comparison::new("bogus", CmpOp::Ge, 0i64),
                Comparison::new("t", CmpOp::Ge, 1_000i64),
            ],
            None,
        );
        assert!(map.shards().iter().all(|s| !s.is_prunable(schema, &plan)));
    }

    #[test]
    fn build_rejects_bad_inputs() {
        let v = view(10);
        assert!(ShardMap::build(&v, "t", 0).is_err());
        assert!(ShardMap::build(&v, "missing", 4).is_err());
        let schema = Schema::of(&[("tag", ColumnType::Text)]);
        let mut text = ProbTable::new("txt", schema);
        text.insert(vec![Value::Text("a".into())], 0.5).unwrap();
        assert!(ShardMap::build(&text, "tag", 2).is_err());
    }

    #[test]
    fn shard_seeds_are_deterministic_and_distinct() {
        let v = view(64);
        let map = ShardMap::build(&v, "t", 8).unwrap();
        let seeds: Vec<u64> = (0..8).map(|i| map.shard_seed(7, i)).collect();
        assert_eq!(
            seeds,
            (0..8).map(|i| map.shard_seed(7, i)).collect::<Vec<_>>()
        );
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len());
    }
}
