//! The query planner: logical plans, physical plans, and pluggable
//! evaluation strategies.
//!
//! Query execution used to be ad-hoc dispatch inside the catalog — one
//! hard-coded execution shape per SQL clause. This module replaces that
//! with the classical pipeline
//!
//! ```text
//! parse  →  LogicalPlan  →  PhysicalPlan  →  EvalStrategy
//! ```
//!
//! * [`LogicalPlan`] is an operator tree (scan / filter / threshold /
//!   top-k / sort / limit / project / aggregate) built from a parsed
//!   [`SelectStmt`] by [`Planner::plan`]; it is what `EXPLAIN` prints.
//! * [`PhysicalPlan`] is the lowered, flat form every strategy consumes: a
//!   named scan, the tuple-domain restriction (`WHERE` / `THRESHOLD` /
//!   `TOP`), and one terminal [`PhysicalAction`] (return rows, or compute
//!   aggregates).
//! * [`EvalStrategy`] is the pluggable evaluation backend.
//!   [`ExactStrategy`] answers with closed forms over tuple independence
//!   (Poisson-binomial `COUNT`, linearity-of-expectation `SUM`, the
//!   sum-distribution DP for `HAVING SUM`); [`WorldsStrategy`] answers by
//!   Monte-Carlo possible-world sampling (selected by `WITH WORLDS`),
//!   inheriting the executor's bit-identical determinism at every thread
//!   count; [`SynopsisStrategy`] (selected by `WITH SYNOPSIS`) answers in
//!   O(B) from the relation's precomputed B-bucket probabilistic
//!   histogram synopsis with a guaranteed error bound per value, falling
//!   back to [`ExactStrategy`] — with the reason surfaced in `EXPLAIN` —
//!   when a plan shape has no synopsis answer.
//!
//! All strategies evaluate the *same* plans, so every aggregate admits an
//! exact-vs-MC-vs-synopsis differential test, and every future operator
//! (joins, windows, sharded scans) becomes a plan node instead of another
//! `match` arm in the catalog.

use crate::aggregates::{count_distribution_of, sum_distribution_of, sum_moments_of};
use crate::catalog::{QueryOutput, Relation, RelationSynopses, DEFAULT_SYNOPSIS_BUCKETS};
use crate::error::DbError;
use crate::query::{eval_conjunction, CmpOp, Conjunction, PROB_PSEUDO_COLUMN};
use crate::schema::Schema;
use crate::shard::ShardMap;
use crate::sql::{
    AggExpr, AggFunc, HavingClause, SelectItem, SelectStmt, SynopsisClause, WindowSpec,
    WorldsClause,
};
use crate::table::{ProbTable, Table};
use crate::value::{row_key, Value, ValueKey};
use crate::worlds::{mix_seed, SumEstimate, SumEventSpec, WorldsConfig, WorldsExecutor};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;
use tspdb_stats::synopsis::{Estimate, PROB_BANDS};

// ---------------------------------------------------------------------------
// Logical plans
// ---------------------------------------------------------------------------

/// A node of the logical operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Read a named relation.
    Scan {
        /// Table or view name.
        table: String,
    },
    /// Keep tuples satisfying a conjunctive predicate.
    Filter {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// The predicate.
        predicate: Conjunction,
    },
    /// Keep tuples with probability ≥ τ (`THRESHOLD`).
    Threshold {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Minimum tuple probability.
        tau: f64,
    },
    /// Keep the k most probable tuples (`TOP`).
    TopK {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Number of tuples to keep.
        k: usize,
    },
    /// Order tuples by a column (or the `prob` pseudo-column).
    Sort {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Sort column.
        column: String,
        /// Ascending?
        ascending: bool,
    },
    /// Keep the first n tuples (`LIMIT`).
    Limit {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Row cap.
        n: usize,
    },
    /// Project onto named columns.
    Project {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Projected columns, in order.
        columns: Vec<String>,
    },
    /// Bucket tuples into temporal windows (`GROUP BY WINDOW(…)`): each
    /// tuple joins the half-open bucket containing its window-column value
    /// (canonical index `⌊(value − origin) / width⌋`), and every bucket
    /// becomes one aggregation group keyed by its bucket start.
    Window {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// The window specification.
        spec: WindowSpec,
    },
    /// Grouped aggregation with an optional `HAVING` event predicate.
    Aggregate {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// `GROUP BY` columns (empty = one global group).
        group_by: Vec<String>,
        /// Aggregate expressions, in projection order.
        aggregates: Vec<AggExpr>,
        /// Optional event predicate.
        having: Option<HavingClause>,
    },
}

impl LogicalPlan {
    /// One-line description of this node (children excluded).
    fn describe(&self) -> String {
        match self {
            LogicalPlan::Scan { table } => format!("Scan {table}"),
            LogicalPlan::Filter { predicate, .. } => {
                let preds: Vec<String> = predicate
                    .iter()
                    .map(|c| format!("{} {} {}", c.column, c.op, c.value))
                    .collect();
                format!("Filter {}", preds.join(" AND "))
            }
            LogicalPlan::Threshold { tau, .. } => format!("Threshold τ={tau}"),
            LogicalPlan::TopK { k, .. } => format!("TopK k={k}"),
            LogicalPlan::Sort {
                column, ascending, ..
            } => format!("Sort {column} {}", if *ascending { "ASC" } else { "DESC" }),
            LogicalPlan::Limit { n, .. } => format!("Limit {n}"),
            LogicalPlan::Project { columns, .. } => format!("Project [{}]", columns.join(", ")),
            LogicalPlan::Window { spec, .. } => format!(
                "Window {} width={} origin={}",
                spec.column,
                spec.width,
                spec.origin()
            ),
            LogicalPlan::Aggregate {
                group_by,
                aggregates,
                having,
                ..
            } => {
                let aggs: Vec<String> = aggregates.iter().map(|a| a.to_string()).collect();
                let mut s = format!("Aggregate [{}]", aggs.join(", "));
                if !group_by.is_empty() {
                    s.push_str(&format!(" GROUP BY {}", group_by.join(", ")));
                }
                if let Some(h) = having {
                    s.push_str(&format!(" HAVING {h}"));
                }
                s
            }
        }
    }

    /// The node's single input, if it has one.
    fn input(&self) -> Option<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => None,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Threshold { input, .. }
            | LogicalPlan::TopK { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Window { input, .. }
            | LogicalPlan::Aggregate { input, .. } => Some(input),
        }
    }
}

impl fmt::Display for LogicalPlan {
    /// Renders the tree root-first with two-space indentation per level.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut node = Some(self);
        let mut depth = 0usize;
        while let Some(n) = node {
            if depth > 0 {
                f.write_str("\n")?;
            }
            write!(f, "{:indent$}{}", "", n.describe(), indent = depth * 2)?;
            node = n.input();
            depth += 1;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Physical plans
// ---------------------------------------------------------------------------

/// The lowered plan every [`EvalStrategy`] consumes: scan + restriction +
/// one terminal action.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// Source relation name.
    pub table: String,
    /// `WHERE` conjunction (may reference the `prob` pseudo-column).
    pub predicate: Conjunction,
    /// `THRESHOLD` minimum tuple probability.
    pub threshold: Option<f64>,
    /// `TOP` k most probable tuples.
    pub top: Option<usize>,
    /// What to compute over the restricted domain.
    pub action: PhysicalAction,
}

/// Terminal operator of a [`PhysicalPlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalAction {
    /// Return (projected, ordered, limited) tuples. Under the worlds
    /// strategy this is the row-domain sampling estimate instead (`ORDER
    /// BY` / `LIMIT` are rejected at plan time for that combination).
    Rows {
        /// Projected columns (empty = all).
        columns: Vec<String>,
        /// Optional ordering.
        order_by: Option<(String, bool)>,
        /// Optional row cap.
        limit: Option<usize>,
    },
    /// Compute grouped aggregates.
    Aggregate(AggregatePlan),
}

/// The aggregate part of a physical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregatePlan {
    /// Optional temporal window bucketing; when present, every bucket is
    /// one group keyed by its bucket start, ahead of the `group_by` values.
    pub window: Option<WindowSpec>,
    /// Grouping columns (empty = one global group).
    pub group_by: Vec<String>,
    /// Aggregate expressions in projection order.
    pub aggregates: Vec<AggExpr>,
    /// Optional `HAVING` event predicate.
    pub having: Option<HavingClause>,
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scan({})", self.table)?;
        if !self.predicate.is_empty() {
            write!(f, " → filter({} comparisons)", self.predicate.len())?;
        }
        if let Some(tau) = self.threshold {
            write!(f, " → threshold({tau})")?;
        }
        if let Some(k) = self.top {
            write!(f, " → top({k})")?;
        }
        match &self.action {
            PhysicalAction::Rows {
                columns,
                order_by,
                limit,
            } => {
                if let Some((col, asc)) = order_by {
                    write!(f, " → sort({col} {})", if *asc { "ASC" } else { "DESC" })?;
                }
                if let Some(n) = limit {
                    write!(f, " → limit({n})")?;
                }
                if columns.is_empty() {
                    write!(f, " → rows(*)")
                } else {
                    write!(f, " → rows({})", columns.join(", "))
                }
            }
            PhysicalAction::Aggregate(agg) => {
                let aggs: Vec<String> = agg.aggregates.iter().map(|a| a.to_string()).collect();
                write!(f, " → aggregate([{}]", aggs.join(", "))?;
                if let Some(w) = &agg.window {
                    write!(f, ", window={w}")?;
                }
                if !agg.group_by.is_empty() {
                    write!(f, ", group_by=[{}]", agg.group_by.join(", "))?;
                }
                if let Some(h) = &agg.having {
                    write!(f, ", having={h}")?;
                }
                write!(f, ")")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The planner
// ---------------------------------------------------------------------------

/// Which evaluation backend a plan runs on.
#[derive(Debug, Clone, PartialEq)]
pub enum StrategyKind {
    /// Closed forms ([`ExactStrategy`]).
    Exact,
    /// Monte-Carlo possible-world sampling ([`WorldsStrategy`]), carrying
    /// the `WITH WORLDS` clause that selected it.
    Worlds(WorldsClause),
    /// Precomputed probabilistic-histogram synopses ([`SynopsisStrategy`]),
    /// carrying the `WITH SYNOPSIS` clause that selected it.
    Synopsis(SynopsisClause),
}

/// A fully planned query: logical tree, lowered physical plan, and the
/// chosen strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedQuery {
    /// The logical operator tree (what `EXPLAIN` prints).
    pub logical: LogicalPlan,
    /// The lowered plan the strategies execute.
    pub physical: PhysicalPlan,
    /// The chosen evaluation strategy.
    pub strategy: StrategyKind,
}

impl PlannedQuery {
    /// Instantiates the chosen strategy (`worlds_threads` is the engine's
    /// fork-join width for sampling; it never changes MC estimates).
    ///
    /// [`SynopsisStrategy`] is instantiated without precomputed synopses
    /// and builds them on demand; the catalog injects its cached ones via
    /// [`PlannedQuery::strategy_with_synopses`].
    pub fn strategy(&self, worlds_threads: usize) -> Box<dyn EvalStrategy> {
        self.strategy_with_synopses(worlds_threads, None)
    }

    /// Like [`PlannedQuery::strategy`], but hands the synopsis backend the
    /// relation's precomputed [`RelationSynopses`] snapshot (if any) so it
    /// answers in O(B) instead of rebuilding histograms per query.
    pub fn strategy_with_synopses(
        &self,
        worlds_threads: usize,
        synopses: Option<Arc<RelationSynopses>>,
    ) -> Box<dyn EvalStrategy> {
        self.strategy_with_context(worlds_threads, synopses, None)
    }

    /// Like [`PlannedQuery::strategy_with_synopses`], additionally handing
    /// every strategy the scanned relation's [`ShardMap`] (if the catalog
    /// sharded it) so tuple restriction can prune and fan out across
    /// shards. Sharding is a pure performance knob: the shard-ordered
    /// reduction keeps every answer bit-identical to unsharded execution.
    pub fn strategy_with_context(
        &self,
        threads: usize,
        synopses: Option<Arc<RelationSynopses>>,
        shards: Option<Arc<ShardMap>>,
    ) -> Box<dyn EvalStrategy> {
        let scan = ScanContext { threads, shards };
        match &self.strategy {
            StrategyKind::Exact => Box::new(ExactStrategy { scan }),
            StrategyKind::Worlds(clause) => Box::new(WorldsStrategy {
                clause: clause.clone(),
                threads,
                scan,
            }),
            StrategyKind::Synopsis(clause) => Box::new(SynopsisStrategy::new_with_context(
                clause.clone(),
                &self.physical,
                synopses,
                scan,
            )),
        }
    }

    /// Whether this plan runs `WITH SYNOPSIS` *without* a plan-shape
    /// fallback — i.e. it will answer from bucketed moments over the
    /// **whole** relation. The lazy scan path must not pre-filter the
    /// stream for such a plan: the synopsis needs the unrestricted
    /// relation (and its cached synopses) to stay bit-identical to the
    /// materialised path.
    pub(crate) fn synopsis_answers_whole_relation(&self) -> bool {
        matches!(&self.strategy, StrategyKind::Synopsis(_))
            && synopsis_support(&self.physical).is_ok()
    }
}

/// Catalog-resolved inputs every strategy's scan phase shares: the
/// fork-join width and the scanned relation's shard layout (if any).
/// `Default` means "flat sequential scan" — exactly the historical
/// behaviour, which sharded execution reproduces bit-for-bit.
#[derive(Debug, Clone, Default)]
pub struct ScanContext {
    /// Fork-join width for the shard fan-out (0 = one thread per core);
    /// affects latency only.
    pub threads: usize,
    /// Shard layout of the scanned relation (`None` = unsharded).
    pub shards: Option<Arc<ShardMap>>,
}

/// Builds [`PlannedQuery`]s from parsed statements. Stateless — planning
/// is a pure function of the statement; relation-dependent validation
/// (unknown tables/columns, deterministic-vs-probabilistic rules) stays
/// with execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct Planner;

impl Planner {
    /// Plans a `SELECT`.
    ///
    /// Validation performed here (all [`DbError::Plan`] unless noted):
    /// * plain projected columns must appear in `GROUP BY` when the
    ///   projection carries aggregates (the result is keyed by the full
    ///   `GROUP BY` list in `GROUP BY` order — see [`AggregateResult`]);
    /// * `GROUP BY` (windowed or not) / `HAVING` require an aggregate
    ///   projection;
    /// * aggregate queries reject `ORDER BY` / `LIMIT` (groups are
    ///   returned in canonical key order);
    /// * `GROUP BY WINDOW(…)` needs a positive, finite width (and a finite
    ///   origin when given); buckets become ordinary groups keyed by their
    ///   bucket start, ahead of the plain `GROUP BY` values;
    /// * `HAVING` must compare `COUNT(*)` or `SUM(col)` against a numeric
    ///   literal (`COUNT` tails come from the Poisson-binomial DP,
    ///   `SUM` tails from the sum-distribution DP; `AVG`/`EXPECTED` event
    ///   predicates have no closed form and are rejected);
    /// * `WITH WORLDS` rejects `ORDER BY` / `LIMIT`
    ///   ([`DbError::InvalidWorlds`], as before the planner existed).
    pub fn plan(sel: &SelectStmt) -> Result<PlannedQuery, DbError> {
        let aggregates: Vec<AggExpr> = sel
            .projection
            .iter()
            .filter_map(|item| match item {
                SelectItem::Aggregate(a) => Some(a.clone()),
                SelectItem::Column(_) => None,
            })
            .collect();
        let plain: Vec<String> = sel
            .projection
            .iter()
            .filter_map(|item| match item {
                SelectItem::Column(c) => Some(c.clone()),
                SelectItem::Aggregate(_) => None,
            })
            .collect();

        if aggregates.is_empty() {
            if !sel.group_by.is_empty() || sel.window.is_some() {
                return Err(DbError::Plan(
                    "GROUP BY requires at least one aggregate in the projection".into(),
                ));
            }
            if sel.having.is_some() {
                return Err(DbError::Plan(
                    "HAVING requires an aggregate projection".into(),
                ));
            }
        } else {
            for col in &plain {
                if !sel.group_by.contains(col) {
                    return Err(DbError::Plan(format!(
                        "projected column {col} must appear in GROUP BY"
                    )));
                }
            }
            if sel.order_by.is_some() || sel.limit.is_some() {
                return Err(DbError::Plan(
                    "ORDER BY/LIMIT do not apply to aggregate queries; groups are \
                     returned in canonical key order"
                        .into(),
                ));
            }
            if let Some(w) = &sel.window {
                validate_window(w)?;
            }
            if let Some(h) = &sel.having {
                validate_having(h)?;
            }
        }
        if sel.worlds.is_some() && (sel.order_by.is_some() || sel.limit.is_some()) {
            return Err(DbError::InvalidWorlds(
                "ORDER BY/LIMIT do not apply to WITH WORLDS estimates; restrict the \
                 sampling domain with WHERE, THRESHOLD or TOP instead"
                    .into(),
            ));
        }

        // Logical tree, bottom-up: scan → filter → threshold → top-k, then
        // either the aggregate terminal or sort → limit → project.
        let mut logical = LogicalPlan::Scan {
            table: sel.table.clone(),
        };
        if !sel.predicate.is_empty() {
            logical = LogicalPlan::Filter {
                input: Box::new(logical),
                predicate: sel.predicate.clone(),
            };
        }
        if let Some(tau) = sel.threshold {
            logical = LogicalPlan::Threshold {
                input: Box::new(logical),
                tau,
            };
        }
        if let Some(k) = sel.top {
            logical = LogicalPlan::TopK {
                input: Box::new(logical),
                k,
            };
        }
        let action = if aggregates.is_empty() {
            if let Some((column, ascending)) = &sel.order_by {
                logical = LogicalPlan::Sort {
                    input: Box::new(logical),
                    column: column.clone(),
                    ascending: *ascending,
                };
            }
            if let Some(n) = sel.limit {
                logical = LogicalPlan::Limit {
                    input: Box::new(logical),
                    n,
                };
            }
            if !plain.is_empty() {
                logical = LogicalPlan::Project {
                    input: Box::new(logical),
                    columns: plain.clone(),
                };
            }
            PhysicalAction::Rows {
                columns: plain,
                order_by: sel.order_by.clone(),
                limit: sel.limit,
            }
        } else {
            if let Some(w) = &sel.window {
                logical = LogicalPlan::Window {
                    input: Box::new(logical),
                    spec: w.clone(),
                };
            }
            let agg_plan = AggregatePlan {
                window: sel.window.clone(),
                group_by: sel.group_by.clone(),
                aggregates: aggregates.clone(),
                having: sel.having.clone(),
            };
            logical = LogicalPlan::Aggregate {
                input: Box::new(logical),
                group_by: sel.group_by.clone(),
                aggregates,
                having: sel.having.clone(),
            };
            PhysicalAction::Aggregate(agg_plan)
        };

        Ok(PlannedQuery {
            logical,
            physical: PhysicalPlan {
                table: sel.table.clone(),
                predicate: sel.predicate.clone(),
                threshold: sel.threshold,
                top: sel.top,
                action,
            },
            strategy: match (&sel.worlds, &sel.synopsis) {
                (Some(_), Some(_)) => {
                    return Err(DbError::Plan(
                        "a statement selects at most one evaluation clause: \
                         WITH WORLDS or WITH SYNOPSIS"
                            .into(),
                    ));
                }
                (Some(clause), None) => StrategyKind::Worlds(clause.clone()),
                (None, Some(clause)) => StrategyKind::Synopsis(clause.clone()),
                (None, None) => StrategyKind::Exact,
            },
        })
    }
}

// ---------------------------------------------------------------------------
// Aggregate results
// ---------------------------------------------------------------------------

/// One aggregate estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct AggValue {
    /// The point value: the exact closed form, the MC mean, or the
    /// synopsis midpoint estimate.
    pub value: f64,
    /// Uncertainty half-width: the 95% CI of an MC estimate, or the
    /// guaranteed error bound of a synopsis answer (`None` under exact
    /// evaluation, and for MC `AVG`, which is reported as a ratio of
    /// expectations without its own interval).
    pub ci_half_width: Option<f64>,
}

/// One group of an [`AggregateResult`].
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateGroup {
    /// The `GROUP BY` column values (empty for the global group).
    pub key: Vec<Value>,
    /// One estimate per aggregate expression, in projection order.
    pub values: Vec<AggValue>,
    /// The tuple-count distribution (exact Poisson-binomial or MC
    /// histogram) when `COUNT(*)` or `HAVING` asked for counts.
    pub count_distribution: Option<Vec<f64>>,
    /// `P(HAVING predicate)` on probabilistic inputs (on deterministic
    /// tables `HAVING` filters groups instead and this stays `None`).
    pub event_probability: Option<f64>,
    /// Worlds sampled for this group (`None` under exact evaluation).
    pub worlds: Option<usize>,
}

/// Result of an aggregate query: one row per group, in canonical group-key
/// order.
///
/// Groups are keyed by the **full `GROUP BY` list, in `GROUP BY` order**,
/// regardless of how many of those columns the projection repeated or in
/// what order — plain projected columns only have to *appear* in
/// `GROUP BY` (the planner checks that); they do not reorder or narrow
/// the group key. A `GROUP BY WINDOW(…)` bucketing contributes the bucket
/// start as the **first** key value (a float), with the window's canonical
/// rendering as the matching first entry of `group_columns` — so windowed
/// results reuse this struct unchanged and cross the wire without any new
/// frame shape.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateResult {
    /// `GROUP BY` column names (empty = single global group).
    pub group_columns: Vec<String>,
    /// The aggregate expressions, in projection order.
    pub aggregates: Vec<AggExpr>,
    /// The `HAVING` event predicate, if any.
    pub having: Option<HavingClause>,
    /// Name of the strategy that produced the result.
    pub strategy: &'static str,
    /// The groups.
    pub groups: Vec<AggregateGroup>,
}

impl AggregateResult {
    /// Bit-exact fingerprint of every estimate — the cross-thread-count
    /// determinism witness for MC aggregates (wall-clock excluded; there
    /// is none to exclude).
    pub fn fingerprint(&self) -> String {
        use fmt::Write;
        let mut s = format!("strategy={} groups={}", self.strategy, self.groups.len());
        for g in &self.groups {
            write!(s, " |").expect("write to String cannot fail");
            for k in &g.key {
                write!(s, " {k}").expect("write to String cannot fail");
            }
            for v in &g.values {
                write!(s, " {:016x}", v.value.to_bits()).expect("write to String cannot fail");
                if let Some(ci) = v.ci_half_width {
                    write!(s, "±{:016x}", ci.to_bits()).expect("write to String cannot fail");
                }
            }
            if let Some(p) = g.event_probability {
                write!(s, " ev={:016x}", p.to_bits()).expect("write to String cannot fail");
            }
            if let Some(dist) = &g.count_distribution {
                for d in dist {
                    write!(s, " d{:016x}", d.to_bits()).expect("write to String cannot fail");
                }
            }
        }
        s
    }
}

impl fmt::Display for AggregateResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Header: group columns, aggregates, then the event column — the
        // latter only when groups actually carry event probabilities (on
        // deterministic inputs HAVING filters groups instead, so the rows
        // would have no cell under that header).
        let mut header: Vec<String> = self.group_columns.clone();
        header.extend(self.aggregates.iter().map(|a| a.to_string()));
        if let (Some(h), true) = (
            &self.having,
            self.groups.iter().any(|g| g.event_probability.is_some()),
        ) {
            header.push(format!("P({h})"));
        }
        writeln!(f, "{} [{}]", header.join("  "), self.strategy)?;
        for g in &self.groups {
            let mut cells: Vec<String> = g.key.iter().map(|v| v.to_string()).collect();
            for v in &g.values {
                match v.ci_half_width {
                    Some(ci) => cells.push(format!("{:.4} ± {:.4}", v.value, ci)),
                    None => cells.push(format!("{:.4}", v.value)),
                }
            }
            if let Some(p) = g.event_probability {
                cells.push(format!("{p:.4}"));
            }
            writeln!(f, "{}", cells.join("  "))?;
        }
        Ok(())
    }
}

/// What `EXPLAIN` returns: the plans and the strategy, pre-rendered.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainReport {
    /// The source relation, annotated with its kind when it exists.
    pub relation: String,
    /// The logical operator tree.
    pub logical: String,
    /// The lowered physical pipeline.
    pub physical: String,
    /// The chosen strategy with its parameters.
    pub strategy: String,
}

impl fmt::Display for ExplainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "relation: {}", self.relation)?;
        writeln!(f, "logical plan:")?;
        for line in self.logical.lines() {
            writeln!(f, "  {line}")?;
        }
        writeln!(f, "physical plan:\n  {}", self.physical)?;
        writeln!(f, "strategy: {}", self.strategy)
    }
}

// ---------------------------------------------------------------------------
// Evaluation strategies
// ---------------------------------------------------------------------------

/// A pluggable evaluation backend executing physical plans.
pub trait EvalStrategy {
    /// Short name (`"exact"` / `"worlds"` / `"synopsis"`).
    fn name(&self) -> &'static str;

    /// Parameter description for `EXPLAIN`.
    fn describe(&self) -> String;

    /// Executes a physical plan against the resolved source relation.
    fn execute(&self, relation: &Relation, plan: &PhysicalPlan) -> Result<QueryOutput, DbError>;
}

/// Closed-form evaluation over tuple independence.
#[derive(Debug, Clone, Default)]
pub struct ExactStrategy {
    /// Scan-phase context (shard layout + fan-out width). The default is
    /// a flat sequential scan.
    pub scan: ScanContext,
}

impl EvalStrategy for ExactStrategy {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn describe(&self) -> String {
        "exact (closed forms: Poisson-binomial COUNT, linearity-of-expectation SUM)".into()
    }

    fn execute(&self, relation: &Relation, plan: &PhysicalPlan) -> Result<QueryOutput, DbError> {
        match relation {
            Relation::Deterministic(t) => {
                if plan.threshold.is_some() || plan.top.is_some() {
                    return Err(DbError::InvalidWorlds(format!(
                        "THRESHOLD/TOP require a probabilistic relation; \
                         {} is deterministic",
                        plan.table
                    )));
                }
                match &plan.action {
                    PhysicalAction::Rows {
                        columns,
                        order_by,
                        limit,
                    } => Ok(QueryOutput::Rows(select_deterministic(
                        t,
                        &plan.predicate,
                        columns,
                        order_by.as_ref(),
                        *limit,
                    )?)),
                    PhysicalAction::Aggregate(agg) => Ok(QueryOutput::Aggregate(
                        aggregate_deterministic(t, &plan.predicate, agg)?,
                    )),
                }
            }
            Relation::Probabilistic(t) => match &plan.action {
                PhysicalAction::Rows {
                    columns,
                    order_by,
                    limit,
                } => {
                    let keep = restrict_prob_indices(t, plan, &self.scan)?;
                    Ok(QueryOutput::ProbRows(select_probabilistic(
                        t,
                        &keep,
                        columns,
                        order_by.as_ref(),
                        *limit,
                    )?))
                }
                PhysicalAction::Aggregate(agg) => {
                    let keep = restrict_prob_indices(t, plan, &self.scan)?;
                    Ok(QueryOutput::Aggregate(aggregate_exact(t, &keep, agg)?))
                }
            },
        }
    }
}

/// Monte-Carlo possible-world evaluation (`WITH WORLDS`).
///
/// Group seeds derive deterministically from the clause seed and the
/// group's canonical-order index (the global group keeps the clause seed
/// itself), and each group runs the batched executor — so results stay
/// bit-identical at every thread count, groups included.
#[derive(Debug, Clone)]
pub struct WorldsStrategy {
    /// The selecting `WITH WORLDS` clause.
    pub clause: WorldsClause,
    /// Fork-join width (0 = one thread per core); latency only.
    pub threads: usize,
    /// Scan-phase context (shard layout + fan-out width). Sampling always
    /// runs once over the merged, shard-ordered domain, so estimates are
    /// bit-identical with and without shards.
    pub scan: ScanContext,
}

impl WorldsStrategy {
    fn executor(&self, seed: u64) -> Result<WorldsExecutor, DbError> {
        WorldsExecutor::new(WorldsConfig {
            max_worlds: self.clause.worlds,
            seed,
            target_ci: self.clause.confidence,
            threads: self.threads,
            ..WorldsConfig::default()
        })
    }
}

impl EvalStrategy for WorldsStrategy {
    fn name(&self) -> &'static str {
        "worlds"
    }

    fn describe(&self) -> String {
        let mut s = format!(
            "worlds (Monte-Carlo, max_worlds={}, seed={}",
            self.clause.worlds,
            self.clause.seed.unwrap_or(0)
        );
        if let Some(eps) = self.clause.confidence {
            s.push_str(&format!(", confidence={eps}"));
        }
        s.push(')');
        s
    }

    fn execute(&self, relation: &Relation, plan: &PhysicalPlan) -> Result<QueryOutput, DbError> {
        let t = match relation {
            Relation::Probabilistic(t) => t,
            Relation::Deterministic(_) => {
                return Err(DbError::InvalidWorlds(format!(
                    "THRESHOLD/TOP/WITH WORLDS require a probabilistic relation; \
                     {} is deterministic",
                    plan.table
                )));
            }
        };
        let seed = self.clause.seed.unwrap_or(0);
        match &plan.action {
            PhysicalAction::Rows { columns, .. } => {
                // Validate the projection exactly like the exact path —
                // unknown columns error no matter how many are listed.
                for col in columns {
                    t.schema().index_of(col)?;
                }
                let keep = restrict_prob_indices(t, plan, &self.scan)?;
                let probs: Vec<f64> = keep.iter().map(|&i| t.probs()[i]).collect();
                // A single projected *numeric* column additionally requests
                // the SUM aggregate over that column (the pre-planner
                // heuristic, kept for compatibility; `SELECT SUM(col) …` is
                // the first-class spelling).
                let sum = match columns.as_slice() {
                    [col] => match t.schema().type_of(col)? {
                        crate::value::ColumnType::Text => None,
                        _ => Some((
                            col.as_str(),
                            numeric_column(t.schema(), t.rows(), &keep, col)?,
                        )),
                    },
                    _ => None,
                };
                let executor = self.executor(seed)?;
                Ok(QueryOutput::Worlds(executor.run_domain(
                    &probs,
                    sum.as_ref().map(|(c, v)| (*c, v.as_slice())),
                )))
            }
            PhysicalAction::Aggregate(agg) => {
                let keep = restrict_prob_indices(t, plan, &self.scan)?;
                Ok(QueryOutput::Aggregate(
                    self.aggregate_worlds(t, &keep, agg, seed)?,
                ))
            }
        }
    }
}

impl WorldsStrategy {
    /// MC aggregate evaluation: per group, **one** sampling pass tallies
    /// every distinct aggregated column at once
    /// ([`WorldsExecutor::run_domain_multi`]); presence sampling never
    /// consumes RNG for values, so the estimates are bit-identical to the
    /// historical one-run-per-column evaluation with the same seed.
    fn aggregate_worlds(
        &self,
        t: &ProbTable,
        keep: &[usize],
        plan: &AggregatePlan,
        seed: u64,
    ) -> Result<AggregateResult, DbError> {
        validate_aggregate_plan(plan)?;
        let groups = group_rows(
            t.schema(),
            t.rows(),
            keep,
            plan.window.as_ref(),
            &plan.group_by,
        )?;
        let single_group = plan.window.is_none() && plan.group_by.is_empty();
        let mut out = Vec::with_capacity(groups.len());
        for (gi, (key, indices)) in groups.into_iter().enumerate() {
            let group_seed = if single_group {
                seed
            } else {
                mix_seed(seed, gi as u64)
            };
            let probs: Vec<f64> = indices.iter().map(|&i| t.probs()[i]).collect();
            let columns = aggregated_columns(plan, t.schema(), t.rows(), &indices)?;
            let specs: Vec<(&str, &[f64])> = columns
                .iter()
                .map(|(&col, values)| (col, values.as_slice()))
                .collect();
            // `HAVING SUM(col)` piggybacks on the tallied per-world sums as
            // an event indicator; it consumes no RNG, so every other
            // estimate stays bit-identical with or without it.
            let event = match &plan.having {
                Some(h) if h.agg.func == AggFunc::Sum => {
                    let col = h
                        .agg
                        .column
                        .as_ref()
                        .expect("validate_having checked the column");
                    let column = specs
                        .iter()
                        .position(|&(c, _)| c == col)
                        .expect("aggregated_columns includes the HAVING SUM column");
                    Some(SumEventSpec {
                        column,
                        op: h.op,
                        threshold: h
                            .value
                            .as_f64()
                            .expect("validate_having checked the literal"),
                    })
                }
                _ => None,
            };
            let executor = self.executor(group_seed)?;
            let (base, sum_estimates, sum_event) =
                executor.run_domain_multi_event(&probs, &specs, event);
            let sums: BTreeMap<&str, &SumEstimate> = specs
                .iter()
                .map(|&(col, _)| col)
                .zip(sum_estimates.iter())
                .collect();
            let values: Vec<AggValue> = plan
                .aggregates
                .iter()
                .map(|agg| match agg.func {
                    AggFunc::Count => AggValue {
                        value: base.count_mean,
                        ci_half_width: Some(base.count_ci_half_width),
                    },
                    AggFunc::Sum | AggFunc::Expected => {
                        let col = agg
                            .column
                            .as_ref()
                            .expect("validate_aggregate_plan checked the column");
                        let sum = sums[col.as_str()];
                        AggValue {
                            value: sum.mean,
                            ci_half_width: Some(sum.ci_half_width),
                        }
                    }
                    AggFunc::Avg => {
                        let col = agg
                            .column
                            .as_ref()
                            .expect("validate_aggregate_plan checked the column");
                        let sum = sums[col.as_str()];
                        AggValue {
                            value: ratio_of_expectations(sum.mean, base.count_mean),
                            ci_half_width: None,
                        }
                    }
                })
                .collect();
            let event_probability = match &plan.having {
                Some(h) if h.agg.func == AggFunc::Sum => {
                    sum_event.map(|(frequency, _half_width)| frequency)
                }
                Some(h) => Some(tail_probability(
                    &base.count_distribution,
                    h.op,
                    h.value
                        .as_f64()
                        .expect("validate_aggregate_plan checked the literal"),
                )),
                None => None,
            };
            out.push(AggregateGroup {
                key,
                values,
                count_distribution: Some(base.count_distribution.clone()),
                event_probability,
                worlds: Some(base.worlds),
            });
        }
        Ok(AggregateResult {
            group_columns: group_columns_of(plan),
            aggregates: plan.aggregates.clone(),
            having: plan.having.clone(),
            strategy: "worlds",
            groups: out,
        })
    }
}

/// Windowed synopsis answers enumerate candidate buckets over the value
/// range; past this many the enumeration would dominate the O(B) win, so
/// the query falls back to exact evaluation instead.
const MAX_SYNOPSIS_WINDOW_GROUPS: usize = 4096;

/// Berry–Esseen constant bounding the normal-approximation error of a
/// Poisson-binomial CDF: `|F(x) − Φ(x)| ≤ 0.56·ρ/σ³` (Shevtsova's bound
/// for non-identically distributed summands).
const BERRY_ESSEEN_C: f64 = 0.56;

/// Sublinear aggregate evaluation from precomputed probabilistic-histogram
/// synopses (`WITH SYNOPSIS`).
///
/// Answers `COUNT(*)`/`SUM`/`AVG`/`EXPECTED` aggregates — globally or per
/// `GROUP BY WINDOW` bucket — in O(B) per group from the relation's
/// B-bucket [`ProbHistogram`](tspdb_stats::synopsis::ProbHistogram)s
/// instead of scanning tuples, reporting a
/// guaranteed error bound in each value's `ci_half_width`. `THRESHOLD τ`
/// resolves through the per-bucket probability bands (exact for τ on a
/// band edge, bounded otherwise) and `HAVING COUNT` through a
/// Berry–Esseen-backed normal tail of the bucketed count moments.
///
/// Plan shapes a synopsis cannot answer (row queries, `WHERE`, `TOP`,
/// plain `GROUP BY` columns, `HAVING SUM`, windowed aggregates over a
/// column other than the window column) fall back to [`ExactStrategy`]
/// automatically; `EXPLAIN` surfaces the reason. A `MAXERROR e` clause
/// additionally falls back whenever any reported bound would exceed `e`.
#[derive(Debug, Clone)]
pub struct SynopsisStrategy {
    /// The selecting `WITH SYNOPSIS` clause.
    pub clause: SynopsisClause,
    /// The catalog's precomputed synopsis snapshot for the scanned
    /// relation (`None` = build on demand from the tuples).
    synopses: Option<Arc<RelationSynopses>>,
    /// Why this plan shape has no synopsis answer (delegates to exact).
    fallback: Option<DbError>,
    /// Scan-phase context handed to the exact fallback.
    scan: ScanContext,
}

impl SynopsisStrategy {
    /// Builds the strategy for a plan, deciding up front — from the plan
    /// shape alone — whether it must fall back to exact evaluation.
    pub fn new(
        clause: SynopsisClause,
        plan: &PhysicalPlan,
        synopses: Option<Arc<RelationSynopses>>,
    ) -> Self {
        SynopsisStrategy::new_with_context(clause, plan, synopses, ScanContext::default())
    }

    /// [`SynopsisStrategy::new`] with a [`ScanContext`] for the exact
    /// fallback path (so sharded relations keep their fan-out when the
    /// synopsis cannot answer).
    pub fn new_with_context(
        clause: SynopsisClause,
        plan: &PhysicalPlan,
        synopses: Option<Arc<RelationSynopses>>,
        scan: ScanContext,
    ) -> Self {
        let fallback = synopsis_support(plan).err();
        SynopsisStrategy {
            clause,
            synopses,
            fallback,
            scan,
        }
    }

    /// The exact strategy this one falls back to, sharing the scan context.
    fn exact(&self) -> ExactStrategy {
        ExactStrategy {
            scan: self.scan.clone(),
        }
    }

    /// The reason this plan falls back to exact evaluation, if any.
    pub fn fallback_reason(&self) -> Option<&DbError> {
        self.fallback.as_ref()
    }

    /// The synopsis snapshot answering this query at the requested bucket
    /// count: the catalog's cached one when it matches, a merged view when
    /// the request is coarser, a fresh build otherwise (finer than cached,
    /// stale tuple count, or nothing cached).
    fn resolve_synopses(&self, t: &ProbTable, requested: usize) -> Arc<RelationSynopses> {
        match &self.synopses {
            Some(s) if s.tuples() == t.len() => {
                if requested == s.buckets() {
                    Arc::clone(s)
                } else if requested < s.buckets() {
                    Arc::new(s.merge_to(requested))
                } else {
                    Arc::new(RelationSynopses::build(t, requested))
                }
            }
            _ => Arc::new(RelationSynopses::build(t, requested)),
        }
    }

    /// The O(B) synopsis answer, or `None` when runtime conditions force
    /// the exact path (a needed column has no histogram, the window
    /// enumeration is too wide, or a bound exceeds `MAXERROR`).
    fn try_synopsis(
        &self,
        t: &ProbTable,
        plan: &PhysicalPlan,
        agg: &AggregatePlan,
    ) -> Result<Option<AggregateResult>, DbError> {
        validate_aggregate_plan(agg)?;
        let min_prob = match plan.threshold {
            Some(tau) => {
                if !(0.0..=1.0).contains(&tau) {
                    return Err(DbError::InvalidProbability(tau));
                }
                tau
            }
            None => 0.0,
        };
        let requested = self.clause.buckets.unwrap_or_else(|| {
            self.synopses
                .as_ref()
                .map_or(DEFAULT_SYNOPSIS_BUCKETS, |s| s.buckets())
        });
        let syn = self.resolve_synopses(t, requested);

        // Every aggregated column needs a histogram; a miss (Text column,
        // unknown name) routes through exact, which reports the right
        // error — or the right answer, if the synopsis simply skipped it.
        for agg_expr in &agg.aggregates {
            if let Some(col) = &agg_expr.column {
                if syn.column(col).is_none() {
                    return Ok(None);
                }
            }
        }
        // The anchor histogram answers COUNT and HAVING COUNT; any column
        // works for full-domain counts (every histogram summarises all
        // tuples), but windowed groups must anchor on the window column.
        let anchor = match &agg.window {
            Some(w) => w.column.as_str(),
            None => match agg
                .aggregates
                .iter()
                .find_map(|a| a.column.as_deref())
                .or_else(|| syn.first_column())
            {
                Some(col) => col,
                None => return Ok(None),
            },
        };
        let anchor_hist = match syn.column(anchor) {
            Some(h) => h,
            None => return Ok(None),
        };

        // Candidate groups: the single global group, or one window bucket
        // per candidate bucket start across the anchor's value range. Each
        // entry pairs the group key with its optional value range.
        type GroupCandidate = (Vec<Value>, Option<(f64, f64)>);
        let groups: Vec<GroupCandidate> = match &agg.window {
            None => vec![(Vec::new(), None)],
            Some(w) => match anchor_hist.value_range() {
                None => Vec::new(),
                Some((vmin, vmax)) => {
                    let origin = w.origin();
                    let k_lo = ((vmin - origin) / w.width).floor();
                    let k_hi = ((vmax - origin) / w.width).floor();
                    let span = k_hi - k_lo;
                    if !span.is_finite() || span >= MAX_SYNOPSIS_WINDOW_GROUPS as f64 {
                        return Ok(None);
                    }
                    let mut gs = Vec::new();
                    let mut k = k_lo;
                    while k <= k_hi {
                        // Bit-identical to `WindowSpec::bucket_start` for
                        // every tuple in the bucket: same `origin + k·width`
                        // expression over the same integral `k`.
                        let start = origin + k * w.width;
                        gs.push((vec![Value::Float(start)], Some((start, start + w.width))));
                        k += 1.0;
                    }
                    gs
                }
            },
        };

        let mut worst: f64 = 0.0;
        let mut out = Vec::with_capacity(groups.len());
        for (key, range) in groups {
            let count = match range {
                None => anchor_hist.count(min_prob),
                Some((lo, hi)) => anchor_hist.count_in(lo, hi, min_prob),
            };
            // A window bucket whose count upper bound is 0 certainly holds
            // no qualifying tuples — it is not a group.
            if range.is_some() && count.value + count.half_width <= 0.0 {
                continue;
            }
            let sum_of = |col: &str| {
                let hist = syn.column(col).expect("checked above");
                match range {
                    None => hist.sum(min_prob),
                    Some((lo, hi)) => hist.sum_in(lo, hi, min_prob),
                }
            };
            let values: Vec<AggValue> = agg
                .aggregates
                .iter()
                .map(|agg_expr| {
                    let (value, half_width) = match agg_expr.func {
                        AggFunc::Count => (count.value, count.half_width),
                        AggFunc::Sum | AggFunc::Expected => {
                            let col = agg_expr
                                .column
                                .as_ref()
                                .expect("validate_aggregate_plan checked the column");
                            let est = sum_of(col);
                            (est.value, est.half_width)
                        }
                        AggFunc::Avg => {
                            let col = agg_expr
                                .column
                                .as_ref()
                                .expect("validate_aggregate_plan checked the column");
                            ratio_estimate(sum_of(col), count)
                        }
                    };
                    worst = worst.max(half_width);
                    AggValue {
                        value,
                        ci_half_width: Some(half_width),
                    }
                })
                .collect();
            let event_probability = match &agg.having {
                None => None,
                Some(h) => {
                    let k = h
                        .value
                        .as_f64()
                        .expect("validate_aggregate_plan checked the literal");
                    let moments = anchor_hist.count_moments(range, min_prob);
                    let (p, bound) = having_count_probability(h.op, k, &moments);
                    worst = worst.max(bound);
                    Some(p)
                }
            };
            out.push(AggregateGroup {
                key,
                values,
                count_distribution: None,
                event_probability,
                worlds: None,
            });
        }
        if let Some(e) = self.clause.max_error {
            // NaN or infinite bounds fail the gate too: `!(worst <= e)`.
            if !(worst <= e) {
                return Ok(None);
            }
        }
        Ok(Some(AggregateResult {
            group_columns: group_columns_of(agg),
            aggregates: agg.aggregates.clone(),
            having: agg.having.clone(),
            strategy: "synopsis",
            groups: out,
        }))
    }
}

impl EvalStrategy for SynopsisStrategy {
    fn name(&self) -> &'static str {
        "synopsis"
    }

    fn describe(&self) -> String {
        let mut s = format!(
            "synopsis (probabilistic histogram, buckets={}, bands={PROB_BANDS}",
            self.clause.buckets.unwrap_or(DEFAULT_SYNOPSIS_BUCKETS)
        );
        if let Some(e) = self.clause.max_error {
            s.push_str(&format!(", maxerror={e}"));
        }
        s.push(')');
        if let Some(DbError::Plan(reason)) = &self.fallback {
            s.push_str(&format!(" → falls back to exact: {reason}"));
        }
        s
    }

    fn execute(&self, relation: &Relation, plan: &PhysicalPlan) -> Result<QueryOutput, DbError> {
        if self.fallback.is_some() {
            return self.exact().execute(relation, plan);
        }
        let t = match relation {
            Relation::Probabilistic(t) => t,
            // Deterministic tables have no tuple probabilities to
            // summarise; exact answers them directly (and owns the
            // THRESHOLD/TOP rejection).
            Relation::Deterministic(_) => return self.exact().execute(relation, plan),
        };
        let agg = match &plan.action {
            PhysicalAction::Aggregate(agg) => agg,
            // Unreachable through the planner (synopsis_support rejects row
            // queries), kept total for hand-built plans.
            PhysicalAction::Rows { .. } => return self.exact().execute(relation, plan),
        };
        match self.try_synopsis(t, plan, agg)? {
            Some(result) => Ok(QueryOutput::Aggregate(result)),
            None => self.exact().execute(relation, plan),
        }
    }
}

/// Decides whether a plan shape has a synopsis answer; the error names the
/// reason it does not (surfaced by `EXPLAIN` and the exact fallback).
fn synopsis_support(plan: &PhysicalPlan) -> Result<(), DbError> {
    let agg = match &plan.action {
        PhysicalAction::Rows { .. } => {
            return Err(DbError::Plan(
                "row-returning queries need the tuples themselves; a synopsis \
                 only carries bucketed moments"
                    .into(),
            ));
        }
        PhysicalAction::Aggregate(agg) => agg,
    };
    if !plan.predicate.is_empty() {
        return Err(DbError::Plan(
            "WHERE predicates filter individual tuples, which a synopsis \
             cannot re-derive from bucketed moments"
                .into(),
        ));
    }
    if plan.top.is_some() {
        return Err(DbError::Plan(
            "TOP ranks individual tuple probabilities, which a synopsis \
             does not retain"
                .into(),
        ));
    }
    if !agg.group_by.is_empty() {
        return Err(DbError::Plan(
            "plain GROUP BY keys groups by exact column values; the synopsis \
             has no per-value index (GROUP BY WINDOW is supported)"
                .into(),
        ));
    }
    if let Some(h) = &agg.having {
        if h.agg.func == AggFunc::Sum {
            return Err(DbError::Plan(
                "HAVING SUM needs the sum distribution; a synopsis carries \
                 only per-bucket count and sum moments"
                    .into(),
            ));
        }
    }
    if let Some(w) = &agg.window {
        for agg_expr in &agg.aggregates {
            if let Some(col) = &agg_expr.column {
                if *col != w.column {
                    return Err(DbError::Plan(format!(
                        "windowed {}({col}) needs a joint synopsis over \
                         ({col}, {}); only per-column histograms are kept",
                        agg_expr.func, w.column
                    )));
                }
            }
        }
    }
    Ok(())
}

/// `AVG` interval from the `SUM` and `COUNT` estimates: the point is the
/// ratio of expectations (matching exact/MC), the half-width spans the
/// ratio over the corner extremes of both intervals. Unbounded (infinite)
/// when the count interval reaches 0, since the ratio then has no finite
/// range.
fn ratio_estimate(sum: Estimate, count: Estimate) -> (f64, f64) {
    let value = ratio_of_expectations(sum.value, count.value);
    let c_lo = count.value - count.half_width;
    if c_lo <= 0.0 {
        return (value, f64::INFINITY);
    }
    let c_hi = count.value + count.half_width;
    let s_lo = sum.value - sum.half_width;
    let s_hi = sum.value + sum.half_width;
    let corners = [s_lo / c_lo, s_lo / c_hi, s_hi / c_lo, s_hi / c_hi];
    let lo = corners.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = corners.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (value, (value - lo).max(hi - value).max(0.0))
}

/// `P(COUNT op k)` from bucketed count moments via a continuity-corrected
/// normal tail, with an error bound combining the moment-interval corner
/// spread and the Berry–Esseen normal-approximation term.
fn having_count_probability(
    op: CmpOp,
    k: f64,
    m: &tspdb_stats::synopsis::CountMoments,
) -> (f64, f64) {
    let point = normal_count_tail(op, k, m.mean.value, m.variance.value);
    let mut lo = point;
    let mut hi = point;
    for mean in [
        m.mean.value - m.mean.half_width,
        m.mean.value + m.mean.half_width,
    ] {
        for var in [
            (m.variance.value - m.variance.half_width).max(0.0),
            m.variance.value + m.variance.half_width,
        ] {
            let p = normal_count_tail(op, k, mean, var);
            lo = lo.min(p);
            hi = hi.max(p);
        }
    }
    let sigma_lo = (m.variance.value - m.variance.half_width).max(0.0).sqrt();
    let rho_hi = (m.rho.value + m.rho.half_width).max(0.0);
    let be = if sigma_lo > 0.0 {
        BERRY_ESSEEN_C * rho_hi / (sigma_lo * sigma_lo * sigma_lo)
    } else if rho_hi > 0.0 {
        1.0
    } else {
        // A certainly-degenerate count (ρ = 0): the point-mass tail is
        // exact up to the mean interval, no normal error to add.
        0.0
    };
    // Eq/Ne difference two CDF evaluations, doubling the approximation
    // error.
    let factor = match op {
        CmpOp::Eq | CmpOp::Ne => 2.0,
        _ => 1.0,
    };
    let bound = ((point - lo).max(hi - point) + factor * be).min(1.0);
    (point, bound)
}

/// Continuity-corrected normal tail of an integer count with the given
/// mean and variance: `P(count ≤ x) ≈ Φ((x + ½ − μ)/σ)` for integral `x`.
/// A (near-)zero variance degenerates to a point mass at `round(μ)`.
fn normal_count_tail(op: CmpOp, k: f64, mean: f64, variance: f64) -> f64 {
    let sigma = variance.max(0.0).sqrt();
    if sigma < 1e-9 {
        let c = mean.round();
        let holds = match op {
            CmpOp::Eq => (c - k).abs() < 1e-9,
            CmpOp::Ne => (c - k).abs() >= 1e-9,
            _ => op.eval(c.partial_cmp(&k)),
        };
        return if holds { 1.0 } else { 0.0 };
    }
    let cdf = |x: f64| tspdb_stats::special::std_normal_cdf((x + 0.5 - mean) / sigma);
    let p = match op {
        CmpOp::Ge => 1.0 - cdf(k.ceil() - 1.0),
        CmpOp::Gt => 1.0 - cdf(k.floor()),
        CmpOp::Le => cdf(k.floor()),
        CmpOp::Lt => cdf(k.ceil() - 1.0),
        CmpOp::Eq => {
            if (k - k.round()).abs() < 1e-9 {
                cdf(k.round()) - cdf(k.round() - 1.0)
            } else {
                0.0
            }
        }
        CmpOp::Ne => {
            if (k - k.round()).abs() < 1e-9 {
                1.0 - (cdf(k.round()) - cdf(k.round() - 1.0))
            } else {
                1.0
            }
        }
    };
    p.clamp(0.0, 1.0)
}

// ---------------------------------------------------------------------------
// Shared physical operators (row pipeline)
// ---------------------------------------------------------------------------

/// Indices of rows satisfying the conjunction.
fn filter_rows(
    schema: &Schema,
    rows: &[Vec<Value>],
    probs: Option<&[f64]>,
    pred: &Conjunction,
) -> Result<Vec<usize>, DbError> {
    let mut out = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let p = probs.map(|ps| ps[i]);
        if eval_conjunction(schema, row, p, pred)? {
            out.push(i);
        }
    }
    Ok(out)
}

/// Shard-parallel [`filter_rows`]: prunable shards are skipped whole,
/// the rest are filtered concurrently through the fork-join helpers, and
/// the surviving indices are concatenated **in shard order** — shards are
/// contiguous ascending index ranges, so the result is bit-identical to
/// the sequential scan (the first error in row order wins there too:
/// `try_map_segments` reports the first failing segment in order, and
/// pruning only fires when the sequential evaluator provably could not
/// have raised an error inside the pruned shard — see
/// [`crate::shard::Shard`]).
fn filter_rows_sharded(
    t: &ProbTable,
    plan: &PhysicalPlan,
    shards: &ShardMap,
    threads: usize,
) -> Result<Vec<usize>, DbError> {
    let schema = t.schema();
    let segments = tspdb_stats::parallel::try_map_segments(
        shards.shard_count(),
        threads,
        |range: std::ops::Range<usize>| {
            let mut keep = Vec::new();
            for shard in &shards.shards()[range] {
                if shard.is_prunable(schema, plan) {
                    continue;
                }
                for i in shard.rows() {
                    let p = t.probs()[i];
                    if eval_conjunction(schema, &t.rows()[i], Some(p), &plan.predicate)? {
                        keep.push(i);
                    }
                }
            }
            Ok(keep)
        },
    )?;
    Ok(segments.concat())
}

/// Indices of the tuples a probabilistic query works on: the `WHERE`
/// filter, then `THRESHOLD` (minimum probability), then `TOP` (the k most
/// probable, NaN-free total order, ties to the earlier row, returned in
/// descending probability). Shared by every strategy so all evaluate the
/// same sub-relation. When the scan context carries a [`ShardMap`] that
/// still matches the relation, the filter step prunes and fans out across
/// shards; `THRESHOLD`/`TOP` always run on the merged index list, so the
/// result is identical either way.
pub(crate) fn restrict_prob_indices(
    t: &ProbTable,
    plan: &PhysicalPlan,
    scan: &ScanContext,
) -> Result<Vec<usize>, DbError> {
    let shards = scan
        .shards
        .as_deref()
        .filter(|s| s.covers(t) && s.shard_count() > 1);
    let mut keep = match shards {
        Some(shards) => filter_rows_sharded(t, plan, shards, scan.threads)?,
        None => filter_rows(t.schema(), t.rows(), Some(t.probs()), &plan.predicate)?,
    };
    if let Some(tau) = plan.threshold {
        if !(0.0..=1.0).contains(&tau) {
            return Err(DbError::InvalidProbability(tau));
        }
        keep.retain(|&i| t.probs()[i] >= tau);
    }
    if let Some(k) = plan.top {
        crate::query::sort_indices_desc_by_prob(&mut keep, t.probs());
        keep.truncate(k);
    }
    Ok(keep)
}

/// Ordering key extraction shared by both row paths; `prob` addresses the
/// tuple probability when one is available.
fn sort_indices(
    schema: &Schema,
    rows: &[Vec<Value>],
    probs: Option<&[f64]>,
    order: &(String, bool),
) -> Result<Vec<usize>, DbError> {
    let (col, asc) = order;
    let mut idx: Vec<usize> = (0..rows.len()).collect();
    if let (PROB_PSEUDO_COLUMN, Some(p)) = (col.as_str(), probs) {
        idx.sort_by(|&a, &b| {
            let ord = p[a].partial_cmp(&p[b]).unwrap_or(Ordering::Equal);
            if *asc {
                ord.then(a.cmp(&b))
            } else {
                ord.reverse().then(a.cmp(&b))
            }
        });
    } else {
        let c = schema.index_of(col)?;
        idx.sort_by(|&a, &b| {
            let ord = rows[a][c].compare(&rows[b][c]).unwrap_or(Ordering::Equal);
            if *asc {
                ord.then(a.cmp(&b))
            } else {
                ord.reverse().then(a.cmp(&b))
            }
        });
    }
    Ok(idx)
}

/// Row-returning execution over a deterministic table.
fn select_deterministic(
    t: &Table,
    pred: &Conjunction,
    columns: &[String],
    order_by: Option<&(String, bool)>,
    limit: Option<usize>,
) -> Result<Table, DbError> {
    let filtered = filter_rows(t.schema(), t.rows(), None, pred)?;
    let rows: Vec<Vec<Value>> = filtered.iter().map(|&i| t.rows()[i].clone()).collect();
    let mut order: Vec<usize> = (0..rows.len()).collect();
    if let Some(ob) = order_by {
        order = sort_indices(t.schema(), &rows, None, ob)?;
    }
    if let Some(l) = limit {
        order.truncate(l);
    }
    let (schema, idx) = if columns.is_empty() {
        (
            t.schema().clone(),
            (0..t.schema().arity()).collect::<Vec<_>>(),
        )
    } else {
        t.schema().project(columns)?
    };
    let mut out = Table::new(t.name().to_string(), schema);
    for &i in &order {
        out.insert(idx.iter().map(|&c| rows[i][c].clone()).collect())?;
    }
    Ok(out)
}

/// Row-returning execution over an already-restricted probabilistic
/// relation.
fn select_probabilistic(
    t: &ProbTable,
    keep: &[usize],
    columns: &[String],
    order_by: Option<&(String, bool)>,
    limit: Option<usize>,
) -> Result<ProbTable, DbError> {
    let rows: Vec<Vec<Value>> = keep.iter().map(|&i| t.rows()[i].clone()).collect();
    let probs: Vec<f64> = keep.iter().map(|&i| t.probs()[i]).collect();
    let mut order: Vec<usize> = (0..rows.len()).collect();
    if let Some(ob) = order_by {
        order = sort_indices(t.schema(), &rows, Some(&probs), ob)?;
    }
    if let Some(l) = limit {
        order.truncate(l);
    }
    let (schema, idx) = if columns.is_empty() {
        (
            t.schema().clone(),
            (0..t.schema().arity()).collect::<Vec<_>>(),
        )
    } else {
        t.schema().project(columns)?
    };
    let mut out = ProbTable::new(t.name().to_string(), schema);
    for &i in &order {
        out.insert(idx.iter().map(|&c| rows[i][c].clone()).collect(), probs[i])?;
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Shared physical operators (aggregation)
// ---------------------------------------------------------------------------

/// One aggregation group: its key values and its member row indices.
type Group = (Vec<Value>, Vec<usize>);

/// Splits the kept row indices into groups by the optional temporal
/// window and the `GROUP BY` columns, returned in canonical group-key
/// order ([`ValueKey`] order — the deterministic order both strategies
/// and `GROUP BY` output share). A windowed plan keys each group by the
/// bucket start ([`WindowSpec::bucket_start`], always a float) ahead of
/// the `GROUP BY` values; no window and an empty `group_by` yield one
/// global group with an empty key. Works over any relation kind —
/// callers pass the schema and row storage.
fn group_rows(
    schema: &Schema,
    rows: &[Vec<Value>],
    keep: &[usize],
    window: Option<&WindowSpec>,
    group_by: &[String],
) -> Result<Vec<Group>, DbError> {
    if window.is_none() && group_by.is_empty() {
        return Ok(vec![(Vec::new(), keep.to_vec())]);
    }
    let mut idx = Vec::with_capacity(group_by.len());
    for col in group_by {
        idx.push(schema.index_of(col)?);
    }
    // Per-kept-row bucket starts (windowed plans only), computed once so
    // the canonical bucket index is derived exactly one way everywhere.
    let starts: Vec<f64> = match window {
        Some(w) => {
            let c = schema.index_of(&w.column)?;
            keep.iter()
                .map(|&i| {
                    let v = rows[i][c].as_f64().ok_or_else(|| DbError::TypeMismatch {
                        column: w.column.clone(),
                        expected: crate::value::ColumnType::Float,
                        got: rows[i][c].column_type(),
                    })?;
                    Ok(w.bucket_start(v))
                })
                .collect::<Result<_, DbError>>()?
        }
        None => Vec::new(),
    };
    let mut groups: BTreeMap<Vec<ValueKey<'_>>, Vec<usize>> = BTreeMap::new();
    for (ki, &i) in keep.iter().enumerate() {
        let mut key = Vec::with_capacity(idx.len() + usize::from(window.is_some()));
        if window.is_some() {
            key.push(ValueKey::Float(starts[ki]));
        }
        key.extend(row_key(&rows[i], &idx));
        groups.entry(key).or_default().push(i);
    }
    Ok(groups
        .into_iter()
        .map(|(group_key, indices)| {
            let mut key: Vec<Value> = Vec::with_capacity(group_key.len());
            if window.is_some() {
                match group_key[0] {
                    ValueKey::Float(start) => key.push(Value::Float(start)),
                    _ => unreachable!("window keys are always floats"),
                }
            }
            key.extend(idx.iter().map(|&c| rows[indices[0]][c].clone()));
            (key, indices)
        })
        .collect())
}

/// The result's group-column names: the window label (its canonical
/// `WINDOW(col, width[, origin])` rendering) ahead of the `GROUP BY`
/// columns — matching the key layout [`group_rows`] produces.
fn group_columns_of(plan: &AggregatePlan) -> Vec<String> {
    let mut cols = Vec::with_capacity(plan.group_by.len() + usize::from(plan.window.is_some()));
    if let Some(w) = &plan.window {
        cols.push(w.to_string());
    }
    cols.extend(plan.group_by.iter().cloned());
    cols
}

/// Extracts a numeric column over the given row indices (errors on text
/// columns, like the exact aggregates do).
fn numeric_column(
    schema: &Schema,
    rows: &[Vec<Value>],
    indices: &[usize],
    column: &str,
) -> Result<Vec<f64>, DbError> {
    let c = schema.index_of(column)?;
    indices
        .iter()
        .map(|&i| {
            rows[i][c].as_f64().ok_or_else(|| DbError::TypeMismatch {
                column: column.to_string(),
                expected: crate::value::ColumnType::Float,
                got: rows[i][c].column_type(),
            })
        })
        .collect()
}

/// Checks the invariants [`Planner::plan`] guarantees for plans it built —
/// every column-taking aggregate names a column, and `HAVING` compares
/// `COUNT(*)` against a number. Re-checked at the entry of every aggregate
/// evaluator because the plan structs have public fields: a hand-built
/// [`PhysicalPlan`] fed to [`crate::Database::execute_planned`] must
/// surface [`DbError::Plan`], not panic on the evaluators' internal
/// `expect`s.
fn validate_aggregate_plan(plan: &AggregatePlan) -> Result<(), DbError> {
    for agg in &plan.aggregates {
        match agg.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg | AggFunc::Expected if agg.column.is_none() => {
                return Err(DbError::Plan(format!("{} requires a column", agg.func)));
            }
            _ => {}
        }
    }
    if let Some(w) = &plan.window {
        validate_window(w)?;
    }
    if let Some(h) = &plan.having {
        validate_having(h)?;
    }
    Ok(())
}

/// Validates a `GROUP BY WINDOW(…)` specification: the width must be a
/// positive, finite float (the canonical bucket index divides by it), and
/// an explicit origin must be finite.
fn validate_window(w: &WindowSpec) -> Result<(), DbError> {
    if !(w.width > 0.0) || !w.width.is_finite() {
        return Err(DbError::Plan(format!(
            "WINDOW width must be positive and finite, got {}",
            w.width
        )));
    }
    if let Some(o) = w.origin {
        if !o.is_finite() {
            return Err(DbError::Plan(format!(
                "WINDOW origin must be finite, got {o}"
            )));
        }
    }
    Ok(())
}

/// Validates a `HAVING` event predicate. `COUNT(*)` events evaluate
/// through the Poisson-binomial DP and `SUM(col)` events through the
/// sum-distribution DP ([`sum_distribution_of`]); `AVG`/`EXPECTED` events
/// are ratios without a closed-form distribution and are rejected.
fn validate_having(h: &HavingClause) -> Result<(), DbError> {
    let supported =
        h.agg == AggExpr::count() || (h.agg.func == AggFunc::Sum && h.agg.column.is_some());
    if !supported {
        return Err(DbError::Plan(format!(
            "HAVING supports COUNT(*) and SUM(col) event predicates, got {}",
            h.agg
        )));
    }
    if h.value.as_f64().is_none() {
        return Err(DbError::Plan(format!(
            "HAVING compares {} against a number, got {:?}",
            h.agg, h.value
        )));
    }
    Ok(())
}

/// The distinct aggregated columns of a plan — including a `HAVING
/// SUM(col)` column that appears nowhere in the projection — extracted
/// once per group so `SUM(r), AVG(r), EXPECTED(r)` shares one column scan
/// instead of three.
fn aggregated_columns<'a>(
    plan: &'a AggregatePlan,
    schema: &Schema,
    rows: &[Vec<Value>],
    indices: &[usize],
) -> Result<BTreeMap<&'a str, Vec<f64>>, DbError> {
    let mut columns: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    let having_sum_column = plan.having.as_ref().and_then(|h| {
        (h.agg.func == AggFunc::Sum)
            .then_some(h.agg.column.as_deref())
            .flatten()
    });
    let wanted = plan
        .aggregates
        .iter()
        .filter_map(|agg| agg.column.as_deref())
        .chain(having_sum_column);
    for col in wanted {
        if !columns.contains_key(col) {
            columns.insert(col, numeric_column(schema, rows, indices, col)?);
        }
    }
    Ok(columns)
}

/// `E[SUM] / E[COUNT]`, defined as 0 when the expected count is 0.
fn ratio_of_expectations(sum_mean: f64, count_mean: f64) -> f64 {
    if count_mean == 0.0 {
        0.0
    } else {
        sum_mean / count_mean
    }
}

/// `P(count op k)` over a count distribution: sums the mass of every
/// count value satisfying the comparison.
fn tail_probability(dist: &[f64], op: crate::query::CmpOp, k: f64) -> f64 {
    let mut p = 0.0;
    for (c, &mass) in dist.iter().enumerate() {
        let holds = op.eval((c as f64).partial_cmp(&k));
        if holds {
            p += mass;
        }
    }
    p.clamp(0.0, 1.0)
}

/// Exact aggregate evaluation over a restricted probabilistic relation:
/// Poisson-binomial counts, linearity-of-expectation sums, and the
/// sum-distribution DP for `HAVING SUM` events, per group.
fn aggregate_exact(
    t: &ProbTable,
    keep: &[usize],
    plan: &AggregatePlan,
) -> Result<AggregateResult, DbError> {
    validate_aggregate_plan(plan)?;
    // `HAVING SUM` needs the sum distribution, not the count distribution,
    // so it does not force the O(n²) count DP on its own.
    let needs_distribution = plan.aggregates.iter().any(|a| a.func == AggFunc::Count)
        || plan
            .having
            .as_ref()
            .is_some_and(|h| h.agg.func != AggFunc::Sum);
    let groups = group_rows(
        t.schema(),
        t.rows(),
        keep,
        plan.window.as_ref(),
        &plan.group_by,
    )?;
    let mut out = Vec::with_capacity(groups.len());
    for (key, indices) in groups {
        let probs: Vec<f64> = indices.iter().map(|&i| t.probs()[i]).collect();
        let count_mean: f64 = probs.iter().sum();
        let dist = needs_distribution.then(|| count_distribution_of(&probs));
        let columns = aggregated_columns(plan, t.schema(), t.rows(), &indices)?;
        let values: Vec<AggValue> = plan
            .aggregates
            .iter()
            .map(|agg| {
                let value = match agg.func {
                    AggFunc::Count => count_mean,
                    AggFunc::Sum | AggFunc::Expected => {
                        let col = agg
                            .column
                            .as_ref()
                            .expect("validate_aggregate_plan checked the column");
                        sum_moments_of(&probs, &columns[col.as_str()]).0
                    }
                    AggFunc::Avg => {
                        let col = agg
                            .column
                            .as_ref()
                            .expect("validate_aggregate_plan checked the column");
                        let (sum_mean, _) = sum_moments_of(&probs, &columns[col.as_str()]);
                        ratio_of_expectations(sum_mean, count_mean)
                    }
                };
                AggValue {
                    value,
                    ci_half_width: None,
                }
            })
            .collect();
        let event_probability = match &plan.having {
            None => None,
            Some(h) => {
                let k = h
                    .value
                    .as_f64()
                    .expect("validate_aggregate_plan checked the literal");
                if h.agg.func == AggFunc::Sum {
                    let col = h
                        .agg
                        .column
                        .as_ref()
                        .expect("validate_having checked the column");
                    let sum_dist = sum_distribution_of(&probs, &columns[col.as_str()])?;
                    Some(sum_dist.tail(h.op, k))
                } else {
                    Some(tail_probability(
                        dist.as_ref().expect("distribution computed for HAVING"),
                        h.op,
                        k,
                    ))
                }
            }
        };
        out.push(AggregateGroup {
            key,
            values,
            count_distribution: dist,
            event_probability,
            worlds: None,
        });
    }
    Ok(AggregateResult {
        group_columns: group_columns_of(plan),
        aggregates: plan.aggregates.clone(),
        having: plan.having.clone(),
        strategy: "exact",
        groups: out,
    })
}

/// Classic SQL aggregation over a deterministic table; `HAVING` filters
/// groups (every world is the same world, so the event either holds or
/// does not).
fn aggregate_deterministic(
    t: &Table,
    pred: &Conjunction,
    plan: &AggregatePlan,
) -> Result<AggregateResult, DbError> {
    validate_aggregate_plan(plan)?;
    let keep = filter_rows(t.schema(), t.rows(), None, pred)?;
    let groups = group_rows(
        t.schema(),
        t.rows(),
        &keep,
        plan.window.as_ref(),
        &plan.group_by,
    )?;
    let mut out = Vec::new();
    for (key, indices) in groups {
        let count = indices.len() as f64;
        let columns = aggregated_columns(plan, t.schema(), t.rows(), &indices)?;
        // HAVING filters deterministic groups (every world is the same
        // world): the comparand is the group's actual COUNT or SUM.
        if let Some(h) = &plan.having {
            let k = h
                .value
                .as_f64()
                .expect("validate_aggregate_plan checked the literal");
            let comparand = if h.agg.func == AggFunc::Sum {
                let col = h
                    .agg
                    .column
                    .as_ref()
                    .expect("validate_having checked the column");
                columns[col.as_str()].iter().sum()
            } else {
                count
            };
            if !h.op.eval(comparand.partial_cmp(&k)) {
                continue;
            }
        }
        let values: Vec<AggValue> = plan
            .aggregates
            .iter()
            .map(|agg| {
                let value = match agg.func {
                    AggFunc::Count => count,
                    AggFunc::Sum | AggFunc::Expected => {
                        let col = agg
                            .column
                            .as_ref()
                            .expect("validate_aggregate_plan checked the column");
                        columns[col.as_str()].iter().sum()
                    }
                    AggFunc::Avg => {
                        let col = agg
                            .column
                            .as_ref()
                            .expect("validate_aggregate_plan checked the column");
                        let sum: f64 = columns[col.as_str()].iter().sum();
                        ratio_of_expectations(sum, count)
                    }
                };
                AggValue {
                    value,
                    ci_half_width: None,
                }
            })
            .collect();
        out.push(AggregateGroup {
            key,
            values,
            count_distribution: None,
            event_probability: None,
            worlds: None,
        });
    }
    Ok(AggregateResult {
        group_columns: group_columns_of(plan),
        aggregates: plan.aggregates.clone(),
        having: plan.having.clone(),
        strategy: "exact",
        groups: out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::CmpOp;
    use crate::sql::parse;
    use crate::value::ColumnType;

    fn plan_sql(sql: &str) -> PlannedQuery {
        match parse(sql).unwrap() {
            crate::sql::Statement::Select(sel) => Planner::plan(&sel).unwrap(),
            other => panic!("not a SELECT: {other:?}"),
        }
    }

    fn plan_err(sql: &str) -> DbError {
        match parse(sql).unwrap() {
            crate::sql::Statement::Select(sel) => Planner::plan(&sel).unwrap_err(),
            other => panic!("not a SELECT: {other:?}"),
        }
    }

    #[test]
    fn row_query_plans_the_full_pipeline() {
        let planned = plan_sql(
            "SELECT room FROM pv WHERE time = 1 THRESHOLD 0.25 TOP 3 \
             ORDER BY prob DESC LIMIT 2",
        );
        let rendered = planned.logical.to_string();
        assert!(rendered.starts_with("Project [room]"), "{rendered}");
        for node in ["Limit 2", "Sort prob DESC", "TopK k=3", "Threshold τ=0.25"] {
            assert!(rendered.contains(node), "{rendered} missing {node}");
        }
        assert!(rendered.trim_end().ends_with("Scan pv"), "{rendered}");
        assert_eq!(planned.strategy, StrategyKind::Exact);
        match &planned.physical.action {
            PhysicalAction::Rows { columns, .. } => assert_eq!(columns, &["room".to_string()]),
            other => panic!("wrong action: {other:?}"),
        }
    }

    #[test]
    fn aggregate_query_plans_an_aggregate_node() {
        let planned =
            plan_sql("SELECT g, COUNT(*), SUM(r) FROM pv GROUP BY g HAVING COUNT(*) >= 2 WITH WORLDS 100 SEED 4");
        let rendered = planned.logical.to_string();
        assert!(
            rendered.starts_with("Aggregate [COUNT(*), SUM(r)] GROUP BY g HAVING COUNT(*) >= 2"),
            "{rendered}"
        );
        assert!(matches!(planned.strategy, StrategyKind::Worlds(_)));
        let physical = planned.physical.to_string();
        assert!(physical.contains("aggregate("), "{physical}");
    }

    #[test]
    fn planner_rejects_invalid_shapes() {
        // Plain projected column not in GROUP BY.
        assert!(matches!(
            plan_err("SELECT room, COUNT(*) FROM pv"),
            DbError::Plan(_)
        ));
        // GROUP BY without aggregates.
        assert!(matches!(
            plan_err("SELECT room FROM pv GROUP BY room"),
            DbError::Plan(_)
        ));
        // HAVING without aggregates.
        assert!(matches!(
            plan_err("SELECT room FROM pv HAVING COUNT(*) >= 1"),
            DbError::Plan(_)
        ));
        // ORDER BY on an aggregate query.
        assert!(matches!(
            plan_err("SELECT COUNT(*) FROM pv ORDER BY room"),
            DbError::Plan(_)
        ));
        // HAVING over an aggregate without a count/sum distribution.
        assert!(matches!(
            plan_err("SELECT COUNT(*) FROM pv HAVING AVG(r) >= 1"),
            DbError::Plan(_)
        ));
        // WITH WORLDS and WITH SYNOPSIS cannot combine (hand-built; the
        // parser already rejects a second WITH clause).
        let mut sel = match parse("SELECT COUNT(*) FROM pv WITH WORLDS 10").unwrap() {
            crate::sql::Statement::Select(sel) => sel,
            other => panic!("not a SELECT: {other:?}"),
        };
        sel.synopsis = Some(crate::sql::SynopsisClause {
            buckets: None,
            max_error: None,
        });
        assert!(matches!(Planner::plan(&sel), Err(DbError::Plan(_))));
        // HAVING against text.
        assert!(matches!(
            plan_err("SELECT COUNT(*) FROM pv HAVING COUNT(*) >= 'two'"),
            DbError::Plan(_)
        ));
        // ORDER BY with WITH WORLDS keeps its historical error type.
        assert!(matches!(
            plan_err("SELECT * FROM pv ORDER BY prob WITH WORLDS 10"),
            DbError::InvalidWorlds(_)
        ));
    }

    fn fig1() -> ProbTable {
        let schema = Schema::of(&[("time", ColumnType::Int), ("room", ColumnType::Int)]);
        let mut v = ProbTable::new("pv", schema);
        for (t, room, p) in [
            (1, 1, 0.5),
            (1, 2, 0.1),
            (1, 3, 0.3),
            (1, 4, 0.1),
            (2, 1, 0.2),
            (2, 2, 0.4),
        ] {
            v.insert(vec![Value::Int(t), Value::Int(room)], p).unwrap();
        }
        v
    }

    fn run(sql: &str, rel: &Relation) -> QueryOutput {
        let planned = plan_sql(sql);
        planned.strategy(1).execute(rel, &planned.physical).unwrap()
    }

    #[test]
    fn exact_count_and_grouped_sum() {
        let rel = Relation::Probabilistic(fig1());
        // Global expected count: Σp = 1.6.
        let out = run("SELECT COUNT(*) FROM pv", &rel);
        let agg = match &out {
            QueryOutput::Aggregate(a) => a,
            other => panic!("wrong output: {other:?}"),
        };
        assert_eq!(agg.strategy, "exact");
        assert_eq!(agg.groups.len(), 1);
        assert!((agg.groups[0].values[0].value - 1.6).abs() < 1e-12);
        let dist = agg.groups[0].count_distribution.as_ref().unwrap();
        assert_eq!(dist.len(), 7);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);

        // Grouped by time: E[Σ room | t=1] = 2.0, E[Σ room | t=2] = 1.0.
        let out = run("SELECT time, SUM(room) FROM pv GROUP BY time", &rel);
        let agg = match &out {
            QueryOutput::Aggregate(a) => a,
            other => panic!("wrong output: {other:?}"),
        };
        assert_eq!(agg.groups.len(), 2);
        assert_eq!(agg.groups[0].key, vec![Value::Int(1)]);
        assert!((agg.groups[0].values[0].value - 2.0).abs() < 1e-12);
        assert_eq!(agg.groups[1].key, vec![Value::Int(2)]);
        assert!((agg.groups[1].values[0].value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_having_reports_event_probability() {
        let rel = Relation::Probabilistic(fig1());
        let out = run(
            "SELECT COUNT(*) FROM pv WHERE time = 1 HAVING COUNT(*) >= 1",
            &rel,
        );
        let agg = match &out {
            QueryOutput::Aggregate(a) => a,
            other => panic!("wrong output: {other:?}"),
        };
        // P(count ≥ 1) = 1 − 0.5·0.9·0.7·0.9 = 0.7165.
        let p = agg.groups[0].event_probability.unwrap();
        assert!((p - 0.7165).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn windowed_exact_aggregates_bucket_canonically() {
        let rel = Relation::Probabilistic(fig1());
        // Width 2 from origin 0 over time ∈ {1, 2}: bucket [0, 2) holds the
        // four t=1 tuples, bucket [2, 4) the two t=2 tuples.
        let out = run(
            "SELECT COUNT(*), SUM(room) FROM pv GROUP BY WINDOW(time, 2)",
            &rel,
        );
        let agg = out.aggregate().unwrap();
        assert_eq!(agg.group_columns, vec!["WINDOW(time, 2.0)".to_string()]);
        assert_eq!(agg.groups.len(), 2);
        assert_eq!(agg.groups[0].key, vec![Value::Float(0.0)]);
        assert!((agg.groups[0].values[0].value - 1.0).abs() < 1e-12); // Σp at t=1
        assert!((agg.groups[0].values[1].value - 2.0).abs() < 1e-12); // E[Σ room | t=1]
        assert_eq!(agg.groups[1].key, vec![Value::Float(2.0)]);
        assert!((agg.groups[1].values[0].value - 0.6).abs() < 1e-12);
        assert!((agg.groups[1].values[1].value - 1.0).abs() < 1e-12);

        // An origin shifts the alignment: width 2 from origin 1 puts both
        // timestamps into the single bucket [1, 3).
        let out = run("SELECT COUNT(*) FROM pv GROUP BY WINDOW(time, 2, 1)", &rel);
        let agg = out.aggregate().unwrap();
        assert_eq!(agg.groups.len(), 1);
        assert_eq!(agg.groups[0].key, vec![Value::Float(1.0)]);
        assert!((agg.groups[0].values[0].value - 1.6).abs() < 1e-12);
    }

    #[test]
    fn window_composes_with_group_by_columns() {
        let rel = Relation::Probabilistic(fig1());
        let out = run(
            "SELECT room, COUNT(*) FROM pv GROUP BY WINDOW(time, 2), room",
            &rel,
        );
        let agg = out.aggregate().unwrap();
        assert_eq!(
            agg.group_columns,
            vec!["WINDOW(time, 2.0)".to_string(), "room".to_string()]
        );
        // Bucket [0, 2) has rooms 1–4, bucket [2, 4) rooms 1–2: 6 groups in
        // canonical (bucket, room) order.
        assert_eq!(agg.groups.len(), 6);
        assert_eq!(agg.groups[0].key, vec![Value::Float(0.0), Value::Int(1)]);
        assert_eq!(
            agg.groups.last().unwrap().key,
            vec![Value::Float(2.0), Value::Int(2)]
        );
    }

    #[test]
    fn windowed_having_reports_per_bucket_event_probability() {
        let rel = Relation::Probabilistic(fig1());
        let out = run(
            "SELECT COUNT(*) FROM pv GROUP BY WINDOW(time, 2) HAVING COUNT(*) >= 1",
            &rel,
        );
        let agg = out.aggregate().unwrap();
        assert_eq!(agg.groups.len(), 2);
        // Bucket [0, 2): 1 − 0.5·0.9·0.7·0.9 = 0.7165; bucket [2, 4):
        // 1 − 0.8·0.6 = 0.52.
        let p0 = agg.groups[0].event_probability.unwrap();
        let p1 = agg.groups[1].event_probability.unwrap();
        assert!((p0 - 0.7165).abs() < 1e-12, "got {p0}");
        assert!((p1 - 0.52).abs() < 1e-12, "got {p1}");
    }

    #[test]
    fn windowed_worlds_aggregates_are_thread_invariant_and_converge() {
        let rel = Relation::Probabilistic(fig1());
        let sql = "SELECT COUNT(*), SUM(room) FROM pv GROUP BY WINDOW(time, 2) \
                   HAVING COUNT(*) >= 1 WITH WORLDS 40000 SEED 21";
        let planned = plan_sql(sql);
        let one = planned
            .strategy(1)
            .execute(&rel, &planned.physical)
            .unwrap();
        let eight = planned
            .strategy(8)
            .execute(&rel, &planned.physical)
            .unwrap();
        let (one, eight) = match (&one, &eight) {
            (QueryOutput::Aggregate(a), QueryOutput::Aggregate(b)) => (a, b),
            other => panic!("wrong outputs: {other:?}"),
        };
        assert_eq!(
            one.fingerprint(),
            eight.fingerprint(),
            "thread count changed windowed MC aggregates"
        );
        let exact = match run(
            "SELECT COUNT(*), SUM(room) FROM pv GROUP BY WINDOW(time, 2) HAVING COUNT(*) >= 1",
            &rel,
        ) {
            QueryOutput::Aggregate(a) => a,
            other => panic!("wrong output: {other:?}"),
        };
        assert_eq!(one.groups.len(), exact.groups.len());
        for (mc, ex) in one.groups.iter().zip(&exact.groups) {
            assert_eq!(mc.key, ex.key, "bucket keys must align");
            for (m, e) in mc.values.iter().zip(&ex.values) {
                let tol = 3.0 * m.ci_half_width.unwrap_or(0.05) + 1e-3;
                assert!(
                    (m.value - e.value).abs() <= tol,
                    "MC {} vs exact {} (tol {tol})",
                    m.value,
                    e.value
                );
            }
            let (mp, ep) = (mc.event_probability.unwrap(), ex.event_probability.unwrap());
            assert!((mp - ep).abs() < 0.02, "event MC {mp} vs exact {ep}");
        }
    }

    #[test]
    fn windowed_deterministic_aggregates_follow_sql_semantics() {
        let schema = Schema::of(&[("x", ColumnType::Float), ("v", ColumnType::Int)]);
        let mut t = Table::new("t", schema);
        // Negative values exercise the floor (not truncate-toward-zero)
        // bucket index: −0.5 lands in bucket [−5, 0), not [0, 5).
        for (x, v) in [(-0.5, 1), (1.0, 2), (4.9, 3), (5.0, 4), (12.0, 5)] {
            t.insert(vec![Value::Float(x), Value::Int(v)]).unwrap();
        }
        let rel = Relation::Deterministic(t);
        let out = run(
            "SELECT COUNT(*), SUM(v) FROM t GROUP BY WINDOW(x, 5) HAVING COUNT(*) >= 2",
            &rel,
        );
        let agg = out.aggregate().unwrap();
        // Buckets: [−5, 0) → {1}, [0, 5) → {2, 3}, [5, 10) → {4},
        // [10, 15) → {5}; HAVING keeps only [0, 5).
        assert_eq!(agg.groups.len(), 1);
        assert_eq!(agg.groups[0].key, vec![Value::Float(0.0)]);
        assert_eq!(agg.groups[0].values[0].value, 2.0);
        assert_eq!(agg.groups[0].values[1].value, 5.0);
    }

    #[test]
    fn window_over_text_column_errors() {
        let schema = Schema::of(&[("tag", ColumnType::Text)]);
        let mut v = ProbTable::new("pv", schema);
        v.insert(vec![Value::from("a")], 0.5).unwrap();
        let rel = Relation::Probabilistic(v);
        let planned = plan_sql("SELECT COUNT(*) FROM pv GROUP BY WINDOW(tag, 2)");
        let err = planned
            .strategy(1)
            .execute(&rel, &planned.physical)
            .unwrap_err();
        assert!(matches!(err, DbError::TypeMismatch { .. }));
    }

    #[test]
    fn window_plans_render_in_logical_and_physical_form() {
        let planned = plan_sql(
            "SELECT COUNT(*) FROM pv WHERE room = 1 GROUP BY WINDOW(time, 2.5, 1) \
             WITH WORLDS 100 SEED 3",
        );
        let logical = planned.logical.to_string();
        assert!(
            logical.contains("Window time width=2.5 origin=1"),
            "{logical}"
        );
        assert!(
            logical.starts_with("Aggregate [COUNT(*)]"),
            "window sits below the aggregate: {logical}"
        );
        let physical = planned.physical.to_string();
        assert!(
            physical.contains("window=WINDOW(time, 2.5, 1.0)"),
            "{physical}"
        );
        // Windows without aggregates have no plan.
        assert!(matches!(
            plan_err("SELECT room FROM pv GROUP BY WINDOW(time, 2)"),
            DbError::Plan(_)
        ));
    }

    #[test]
    fn having_sum_executes_exactly() {
        let rel = Relation::Probabilistic(fig1());
        // At time 2: room 1 (p=0.2) and room 2 (p=0.4). SUM(room) ≥ 2 holds
        // exactly when room 2 is present: P = 0.4.
        let out = run(
            "SELECT COUNT(*) FROM pv WHERE time = 2 HAVING SUM(room) >= 2",
            &rel,
        );
        let agg = match &out {
            QueryOutput::Aggregate(a) => a,
            other => panic!("wrong output: {other:?}"),
        };
        assert_eq!(agg.strategy, "exact");
        let g = &agg.groups[0];
        assert!((g.values[0].value - 0.6).abs() < 1e-12);
        assert!(
            (g.event_probability.unwrap() - 0.4).abs() < 1e-12,
            "P(SUM(room) >= 2) = {:?}",
            g.event_probability
        );
        // The HAVING SUM column need not be projected, and the event works
        // per group.
        let out = run(
            "SELECT time, COUNT(*) FROM pv GROUP BY time HAVING SUM(room) >= 2",
            &rel,
        );
        let agg = match &out {
            QueryOutput::Aggregate(a) => a,
            other => panic!("wrong output: {other:?}"),
        };
        assert_eq!(agg.groups.len(), 2);
        // Time 1: SUM(room) < 2 iff nothing or only room 1 is present.
        let p_lt2 = 0.5 * 0.9 * 0.7 * 0.9 * 2.0;
        assert!((agg.groups[0].event_probability.unwrap() - (1.0 - p_lt2)).abs() < 1e-12);
        assert!((agg.groups[1].event_probability.unwrap() - 0.4).abs() < 1e-12);
        // HAVING SUM does not force the count DP when COUNT isn't asked.
        let out = run("SELECT SUM(room) FROM pv HAVING SUM(room) >= 2", &rel);
        let agg = match &out {
            QueryOutput::Aggregate(a) => a,
            other => panic!("wrong output: {other:?}"),
        };
        assert!(agg.groups[0].count_distribution.is_none());
        assert!(agg.groups[0].event_probability.is_some());
    }

    #[test]
    fn having_sum_filters_deterministic_groups() {
        let schema = Schema::of(&[("g", ColumnType::Int), ("x", ColumnType::Int)]);
        let mut t = Table::new("t", schema);
        for (g, x) in [(1, 1), (1, 2), (2, 4), (2, 5)] {
            t.insert(vec![Value::Int(g), Value::Int(x)]).unwrap();
        }
        let rel = Relation::Deterministic(t);
        let out = run(
            "SELECT g, COUNT(*) FROM t GROUP BY g HAVING SUM(x) >= 5",
            &rel,
        );
        let agg = match &out {
            QueryOutput::Aggregate(a) => a,
            other => panic!("wrong output: {other:?}"),
        };
        // Group 1 sums to 3 and is filtered; group 2 sums to 9 and stays.
        assert_eq!(agg.groups.len(), 1);
        assert_eq!(agg.groups[0].key, vec![Value::Int(2)]);
        assert_eq!(agg.groups[0].event_probability, None);
    }

    #[test]
    fn avg_and_expected_are_consistent() {
        let rel = Relation::Probabilistic(fig1());
        let out = run(
            "SELECT AVG(room), EXPECTED(room), COUNT(*) FROM pv WHERE time = 1",
            &rel,
        );
        let agg = match &out {
            QueryOutput::Aggregate(a) => a,
            other => panic!("wrong output: {other:?}"),
        };
        let avg = agg.groups[0].values[0].value;
        let expected = agg.groups[0].values[1].value;
        let count = agg.groups[0].values[2].value;
        assert!((expected - 2.0).abs() < 1e-12);
        assert!((avg - expected / count).abs() < 1e-12);
    }

    #[test]
    fn worlds_aggregates_converge_and_are_thread_invariant() {
        let rel = Relation::Probabilistic(fig1());
        let sql = "SELECT time, COUNT(*), SUM(room) FROM pv GROUP BY time \
                   HAVING COUNT(*) >= 1 WITH WORLDS 40000 SEED 11";
        let planned = plan_sql(sql);
        let one = planned
            .strategy(1)
            .execute(&rel, &planned.physical)
            .unwrap();
        let eight = planned
            .strategy(8)
            .execute(&rel, &planned.physical)
            .unwrap();
        let (one, eight) = match (&one, &eight) {
            (QueryOutput::Aggregate(a), QueryOutput::Aggregate(b)) => (a, b),
            other => panic!("wrong outputs: {other:?}"),
        };
        assert_eq!(
            one.fingerprint(),
            eight.fingerprint(),
            "thread count changed MC aggregates"
        );
        assert_eq!(one.strategy, "worlds");
        assert_eq!(one.groups.len(), 2);

        // Compare against the exact strategy group by group.
        let exact = match run(
            "SELECT time, COUNT(*), SUM(room) FROM pv GROUP BY time HAVING COUNT(*) >= 1",
            &rel,
        ) {
            QueryOutput::Aggregate(a) => a,
            other => panic!("wrong output: {other:?}"),
        };
        for (mc, ex) in one.groups.iter().zip(&exact.groups) {
            assert_eq!(mc.key, ex.key);
            for (m, e) in mc.values.iter().zip(&ex.values) {
                let tol = 3.0 * m.ci_half_width.unwrap_or(0.05) + 1e-3;
                assert!(
                    (m.value - e.value).abs() <= tol,
                    "MC {} vs exact {} (tol {tol})",
                    m.value,
                    e.value
                );
            }
            let (mp, ep) = (mc.event_probability.unwrap(), ex.event_probability.unwrap());
            assert!((mp - ep).abs() < 0.02, "event MC {mp} vs exact {ep}");
        }
    }

    #[test]
    fn deterministic_aggregates_follow_sql_semantics() {
        let schema = Schema::of(&[("g", ColumnType::Int), ("x", ColumnType::Float)]);
        let mut t = Table::new("t", schema);
        for (g, x) in [(1, 1.0), (1, 3.0), (2, 10.0)] {
            t.insert(vec![Value::Int(g), Value::Float(x)]).unwrap();
        }
        let rel = Relation::Deterministic(t);
        let out = run(
            "SELECT g, COUNT(*), SUM(x), AVG(x) FROM t GROUP BY g HAVING COUNT(*) >= 2",
            &rel,
        );
        let agg = match &out {
            QueryOutput::Aggregate(a) => a,
            other => panic!("wrong output: {other:?}"),
        };
        // HAVING filtered group g=2 away.
        assert_eq!(agg.groups.len(), 1);
        assert_eq!(agg.groups[0].key, vec![Value::Int(1)]);
        assert_eq!(agg.groups[0].values[0].value, 2.0);
        assert_eq!(agg.groups[0].values[1].value, 4.0);
        assert_eq!(agg.groups[0].values[2].value, 2.0);
        assert_eq!(agg.groups[0].event_probability, None);
    }

    #[test]
    fn text_column_aggregates_error() {
        let schema = Schema::of(&[("tag", ColumnType::Text)]);
        let mut v = ProbTable::new("pv", schema);
        v.insert(vec![Value::from("a")], 0.5).unwrap();
        let rel = Relation::Probabilistic(v);
        let planned = plan_sql("SELECT SUM(tag) FROM pv");
        let err = planned
            .strategy(1)
            .execute(&rel, &planned.physical)
            .unwrap_err();
        assert!(matches!(err, DbError::TypeMismatch { .. }));
    }

    #[test]
    fn hand_built_invalid_plans_error_instead_of_panicking() {
        // The plan structs have public fields, so execute_planned can see
        // shapes Planner::plan would never emit — they must surface
        // DbError::Plan, not hit the evaluators' internal expects.
        let rel = Relation::Probabilistic(fig1());
        let det = Relation::Deterministic(Table::new("t", Schema::of(&[("g", ColumnType::Int)])));
        let broken = [
            AggregatePlan {
                window: None,
                group_by: Vec::new(),
                aggregates: vec![AggExpr {
                    func: AggFunc::Sum,
                    column: None, // SUM without a column
                }],
                having: None,
            },
            AggregatePlan {
                window: None,
                group_by: Vec::new(),
                aggregates: vec![AggExpr::count()],
                having: Some(HavingClause {
                    agg: AggExpr::count(),
                    op: CmpOp::Ge,
                    value: Value::from("two"), // text literal
                }),
            },
            AggregatePlan {
                window: Some(crate::sql::WindowSpec {
                    column: "time".into(),
                    width: 0.0, // the parser would reject this width
                    origin: None,
                }),
                group_by: Vec::new(),
                aggregates: vec![AggExpr::count()],
                having: None,
            },
            AggregatePlan {
                window: Some(crate::sql::WindowSpec {
                    column: "time".into(),
                    width: 1.0,
                    origin: Some(f64::INFINITY), // non-finite origin
                }),
                group_by: Vec::new(),
                aggregates: vec![AggExpr::count()],
                having: None,
            },
        ];
        for agg_plan in broken {
            let physical = PhysicalPlan {
                table: "pv".into(),
                predicate: Vec::new(),
                threshold: None,
                top: None,
                action: PhysicalAction::Aggregate(agg_plan),
            };
            for (strategy, relation) in [
                (
                    Box::new(ExactStrategy::default()) as Box<dyn EvalStrategy>,
                    &rel,
                ),
                (
                    Box::new(ExactStrategy::default()) as Box<dyn EvalStrategy>,
                    &det,
                ),
                (
                    Box::new(WorldsStrategy {
                        clause: WorldsClause {
                            worlds: 64,
                            seed: None,
                            confidence: None,
                        },
                        threads: 1,
                        scan: ScanContext::default(),
                    }) as Box<dyn EvalStrategy>,
                    &rel,
                ),
                (
                    Box::new(SynopsisStrategy::new(
                        SynopsisClause {
                            buckets: None,
                            max_error: None,
                        },
                        &physical,
                        None,
                    )) as Box<dyn EvalStrategy>,
                    &rel,
                ),
            ] {
                assert!(
                    matches!(strategy.execute(relation, &physical), Err(DbError::Plan(_))),
                    "{} strategy accepted an invalid plan",
                    strategy.name()
                );
            }
        }
    }

    #[test]
    fn tail_probability_covers_all_operators() {
        let dist = [0.25, 0.25, 0.5]; // P(0), P(1), P(2)
        assert!((tail_probability(&dist, CmpOp::Ge, 1.0) - 0.75).abs() < 1e-12);
        assert!((tail_probability(&dist, CmpOp::Gt, 1.0) - 0.5).abs() < 1e-12);
        assert!((tail_probability(&dist, CmpOp::Le, 1.0) - 0.5).abs() < 1e-12);
        assert!((tail_probability(&dist, CmpOp::Lt, 1.0) - 0.25).abs() < 1e-12);
        assert!((tail_probability(&dist, CmpOp::Eq, 1.0) - 0.25).abs() < 1e-12);
        assert!((tail_probability(&dist, CmpOp::Ne, 1.0) - 0.75).abs() < 1e-12);
        // A fractional threshold: P(count ≥ 1.5) = P(count = 2).
        assert!((tail_probability(&dist, CmpOp::Ge, 1.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn explain_report_renders_all_sections() {
        let planned = plan_sql("SELECT COUNT(*) FROM pv WITH WORLDS 500 SEED 2");
        let report = ExplainReport {
            relation: "pv: probabilistic (6 tuples)".into(),
            logical: planned.logical.to_string(),
            physical: planned.physical.to_string(),
            strategy: planned.strategy(0).describe(),
        };
        let text = report.to_string();
        assert!(text.contains("Aggregate [COUNT(*)]"), "{text}");
        assert!(text.contains("Scan pv"), "{text}");
        assert!(text.contains("strategy: worlds"), "{text}");
        assert!(text.contains("max_worlds=500"), "{text}");
        assert!(text.contains("seed=2"), "{text}");
    }

    #[test]
    fn group_rows_orders_groups_canonically() {
        let schema = Schema::of(&[("g", ColumnType::Int)]);
        let mut v = ProbTable::new("pv", schema);
        for g in [5, 1, 3, 1, 5] {
            v.insert(vec![Value::Int(g)], 0.5).unwrap();
        }
        let keep: Vec<usize> = (0..v.len()).collect();
        let groups = group_rows(v.schema(), v.rows(), &keep, None, &["g".to_string()]).unwrap();
        let keys: Vec<i64> = groups.iter().map(|(k, _)| k[0].as_i64().unwrap()).collect();
        assert_eq!(keys, vec![1, 3, 5]);
        assert_eq!(groups[0].1, vec![1, 3]);
        // Unknown group column errors.
        assert!(matches!(
            group_rows(v.schema(), v.rows(), &keep, None, &["nope".to_string()]),
            Err(DbError::UnknownColumn(_))
        ));
    }

    #[test]
    fn predicate_in_plan_display_names_comparisons() {
        let planned = plan_sql("SELECT * FROM pv WHERE room = 2 AND prob >= 0.1");
        let rendered = planned.logical.to_string();
        assert!(
            rendered.contains("Filter room = 2 AND prob >= 0.1"),
            "{rendered}"
        );
    }

    /// A synthetic view with deterministic contents: `t` counts up, `r`
    /// ramps, probabilities cycle over [0, 0.96].
    fn synth(n: usize) -> ProbTable {
        let schema = Schema::of(&[("t", ColumnType::Int), ("r", ColumnType::Float)]);
        let mut v = ProbTable::new("pv", schema);
        for i in 0..n {
            let p = ((i * 37) % 97) as f64 / 100.0;
            v.insert(vec![Value::Int(i as i64), Value::Float(i as f64 * 0.25)], p)
                .unwrap();
        }
        v
    }

    fn run_agg(sql: &str, rel: &Relation) -> AggregateResult {
        match run(sql, rel) {
            QueryOutput::Aggregate(a) => a,
            other => panic!("wrong output: {other:?}"),
        }
    }

    #[test]
    fn sharded_restriction_is_bit_identical_to_sequential() {
        let v = synth(103);
        let statements = [
            "SELECT t FROM pv",
            "SELECT t FROM pv WHERE t >= 90",
            "SELECT t FROM pv WHERE r < 4.0 THRESHOLD 0.5",
            "SELECT t FROM pv THRESHOLD 0.99",
            "SELECT t FROM pv WHERE prob >= 0.6 TOP 7",
            "SELECT t FROM pv WHERE t = 1000",
            "SELECT t FROM pv WHERE t = 1000 AND bogus = 1",
        ];
        for sql in statements {
            let plan = plan_sql(sql).physical;
            let flat = restrict_prob_indices(&v, &plan, &ScanContext::default());
            for shard_count in [2, 3, 8, 64] {
                let shards = Arc::new(ShardMap::build(&v, "t", shard_count).unwrap());
                for threads in [1, 4] {
                    let scan = ScanContext {
                        threads,
                        shards: Some(Arc::clone(&shards)),
                    };
                    let sharded = restrict_prob_indices(&v, &plan, &scan);
                    assert_eq!(
                        format!("{flat:?}"),
                        format!("{sharded:?}"),
                        "{sql} @ {shard_count} shards, {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_restriction_reproduces_filter_errors() {
        // Every row reaches the unresolvable second comparison (t >= 0
        // always holds), so both paths must raise UnknownColumn — pruning
        // must not short-circuit the error away.
        let v = synth(64);
        let plan = plan_sql("SELECT t FROM pv WHERE t >= 0 AND bogus = 1").physical;
        let shards = Arc::new(ShardMap::build(&v, "t", 8).unwrap());
        let scan = ScanContext {
            threads: 4,
            shards: Some(shards),
        };
        let flat = restrict_prob_indices(&v, &plan, &ScanContext::default()).unwrap_err();
        let sharded = restrict_prob_indices(&v, &plan, &scan).unwrap_err();
        assert_eq!(format!("{flat:?}"), format!("{sharded:?}"));
        assert!(matches!(sharded, DbError::UnknownColumn(_)));
    }

    #[test]
    fn synopsis_planner_selects_the_strategy() {
        let planned = plan_sql("SELECT COUNT(*) FROM pv WITH SYNOPSIS BUCKETS 8 MAXERROR 0.5");
        assert!(matches!(planned.strategy, StrategyKind::Synopsis(_)));
        let described = planned.strategy(0).describe();
        for part in ["synopsis", "buckets=8", "bands=20", "maxerror=0.5"] {
            assert!(described.contains(part), "{described} missing {part}");
        }
        assert_eq!(planned.strategy(0).name(), "synopsis");
    }

    #[test]
    fn synopsis_answers_stay_within_their_reported_bounds() {
        let rel = Relation::Probabilistic(synth(200));
        let sql = "SELECT COUNT(*), SUM(r), AVG(r), EXPECTED(r) FROM pv";
        let exact = run_agg(sql, &rel);
        let syn = run_agg(&format!("{sql} WITH SYNOPSIS BUCKETS 8"), &rel);
        assert_eq!(syn.strategy, "synopsis");
        assert_eq!(syn.groups.len(), 1);
        assert!(syn.groups[0].count_distribution.is_none());
        assert!(syn.groups[0].worlds.is_none());
        for (i, (s, e)) in syn.groups[0]
            .values
            .iter()
            .zip(&exact.groups[0].values)
            .enumerate()
        {
            let hw = s.ci_half_width.expect("synopsis reports a bound");
            assert!(
                (s.value - e.value).abs() <= hw + 1e-9,
                "aggregate {i}: {} ± {hw} vs exact {}",
                s.value,
                e.value
            );
        }
    }

    #[test]
    fn synopsis_band_aligned_threshold_is_exact() {
        let rel = Relation::Probabilistic(synth(150));
        // τ = 0.25 lies on a probability-band edge (bands are 0.05 wide):
        // the band cut is exact, so the COUNT bound collapses to zero.
        let sql = "SELECT COUNT(*) FROM pv THRESHOLD 0.25";
        let exact = run_agg(sql, &rel);
        let syn = run_agg(&format!("{sql} WITH SYNOPSIS BUCKETS 4"), &rel);
        let s = &syn.groups[0].values[0];
        assert_eq!(s.ci_half_width, Some(0.0));
        assert!((s.value - exact.groups[0].values[0].value).abs() < 1e-9);
        // An off-band τ keeps a nonzero straddle bound that still contains
        // the exact answer.
        let sql = "SELECT COUNT(*) FROM pv THRESHOLD 0.33";
        let exact = run_agg(sql, &rel);
        let syn = run_agg(&format!("{sql} WITH SYNOPSIS BUCKETS 4"), &rel);
        let s = &syn.groups[0].values[0];
        let hw = s.ci_half_width.unwrap();
        assert!(hw > 0.0);
        assert!((s.value - exact.groups[0].values[0].value).abs() <= hw + 1e-9);
    }

    #[test]
    fn synopsis_windowed_groups_match_exact_keys_within_bounds() {
        let rel = Relation::Probabilistic(synth(200));
        let sql = "SELECT COUNT(*), SUM(t) FROM pv GROUP BY WINDOW(t, 16)";
        let exact = run_agg(sql, &rel);
        let syn = run_agg(&format!("{sql} WITH SYNOPSIS BUCKETS 32"), &rel);
        assert_eq!(syn.strategy, "synopsis");
        assert_eq!(
            exact.groups.iter().map(|g| &g.key).collect::<Vec<_>>(),
            syn.groups.iter().map(|g| &g.key).collect::<Vec<_>>(),
            "window bucket keys must be bit-identical to the exact grouping"
        );
        for (sg, eg) in syn.groups.iter().zip(&exact.groups) {
            for (s, e) in sg.values.iter().zip(&eg.values) {
                let hw = s.ci_half_width.unwrap();
                assert!(
                    (s.value - e.value).abs() <= hw + 1e-9,
                    "group {:?}: {} ± {hw} vs exact {}",
                    sg.key,
                    s.value,
                    e.value
                );
            }
        }
    }

    #[test]
    fn synopsis_having_count_tracks_the_exact_tail() {
        let schema = Schema::of(&[("t", ColumnType::Int)]);
        let mut v = ProbTable::new("pv", schema);
        for i in 0..100 {
            v.insert(vec![Value::Int(i)], 0.5).unwrap();
        }
        let rel = Relation::Probabilistic(v);
        let sql = "SELECT COUNT(*) FROM pv HAVING COUNT(*) >= 50";
        let exact = run_agg(sql, &rel);
        let syn = run_agg(&format!("{sql} WITH SYNOPSIS BUCKETS 16"), &rel);
        let (pe, ps) = (
            exact.groups[0].event_probability.unwrap(),
            syn.groups[0].event_probability.unwrap(),
        );
        // Full-range moments are exact here, so the only error is the
        // normal approximation of the Binomial(100, ½) tail.
        assert!((pe - ps).abs() < 0.05, "exact {pe} vs synopsis {ps}");
    }

    #[test]
    fn synopsis_falls_back_to_exact_with_a_reason() {
        let rel = Relation::Probabilistic(fig1());
        for (sql, reason) in [
            ("SELECT room FROM pv WITH SYNOPSIS", "row-returning"),
            (
                "SELECT COUNT(*) FROM pv WHERE time = 1 WITH SYNOPSIS",
                "WHERE",
            ),
            ("SELECT COUNT(*) FROM pv TOP 3 WITH SYNOPSIS", "TOP"),
            (
                "SELECT room, COUNT(*) FROM pv GROUP BY room WITH SYNOPSIS",
                "GROUP BY",
            ),
            (
                "SELECT COUNT(*) FROM pv HAVING SUM(room) >= 2 WITH SYNOPSIS",
                "HAVING SUM",
            ),
            (
                "SELECT SUM(room) FROM pv GROUP BY WINDOW(time, 1) WITH SYNOPSIS",
                "joint synopsis",
            ),
        ] {
            let planned = plan_sql(sql);
            let described = planned.strategy(0).describe();
            assert!(
                described.contains("falls back to exact") && described.contains(reason),
                "{sql}: {described}"
            );
            // The fallback executes — and reports itself as exact.
            match planned
                .strategy(0)
                .execute(&rel, &planned.physical)
                .unwrap()
            {
                QueryOutput::Aggregate(a) => assert_eq!(a.strategy, "exact"),
                QueryOutput::ProbRows(_) => {}
                other => panic!("{sql}: wrong output {other:?}"),
            }
        }
        // Supported shapes do not advertise a fallback.
        let planned = plan_sql("SELECT COUNT(*) FROM pv THRESHOLD 0.3 WITH SYNOPSIS");
        assert!(
            !planned.strategy(0).describe().contains("falls back"),
            "{}",
            planned.strategy(0).describe()
        );
    }

    #[test]
    fn synopsis_maxerror_gate_falls_back_when_bounds_are_too_wide() {
        let rel = Relation::Probabilistic(synth(150));
        // An off-band τ forces a nonzero bound; a tight MAXERROR rejects it.
        let tight = run_agg(
            "SELECT COUNT(*) FROM pv THRESHOLD 0.33 WITH SYNOPSIS BUCKETS 4 MAXERROR 0.000001",
            &rel,
        );
        assert_eq!(tight.strategy, "exact");
        let loose = run_agg(
            "SELECT COUNT(*) FROM pv THRESHOLD 0.33 WITH SYNOPSIS BUCKETS 4 MAXERROR 100",
            &rel,
        );
        assert_eq!(loose.strategy, "synopsis");
    }

    #[test]
    fn synopsis_results_are_deterministic_across_runs_and_bucket_sources() {
        let table = synth(120);
        let rel = Relation::Probabilistic(table.clone());
        let sql = "SELECT COUNT(*), SUM(r) FROM pv THRESHOLD 0.33 WITH SYNOPSIS BUCKETS 8";
        let a = run_agg(sql, &rel);
        let b = run_agg(sql, &rel);
        assert_eq!(a.fingerprint(), b.fingerprint(), "repeat runs must agree");
        // Injected catalog synopses (built at the default bucket count and
        // merged down) answer identically to the on-demand build path when
        // the merge boundaries line up — and always within bounds of exact.
        let planned = plan_sql(sql);
        let cached = Arc::new(RelationSynopses::build(&table, 64));
        let out = planned
            .strategy_with_synopses(1, Some(cached))
            .execute(&rel, &planned.physical)
            .unwrap();
        let QueryOutput::Aggregate(c) = out else {
            panic!("wrong output");
        };
        assert_eq!(c.strategy, "synopsis");
        let exact = run_agg("SELECT COUNT(*), SUM(r) FROM pv THRESHOLD 0.33", &rel);
        for (s, e) in c.groups[0].values.iter().zip(&exact.groups[0].values) {
            assert!((s.value - e.value).abs() <= s.ci_half_width.unwrap() + 1e-9);
        }
    }

    #[test]
    fn normal_count_tail_covers_all_operators() {
        // A healthy σ: complementary operators partition the mass.
        for (a, b) in [
            (CmpOp::Ge, CmpOp::Lt),
            (CmpOp::Gt, CmpOp::Le),
            (CmpOp::Eq, CmpOp::Ne),
        ] {
            let p = normal_count_tail(a, 10.0, 10.0, 4.0);
            let q = normal_count_tail(b, 10.0, 10.0, 4.0);
            assert!((p + q - 1.0).abs() < 1e-12, "{a:?}/{b:?}: {p} + {q}");
        }
        // Fractional thresholds collapse Eq to 0 (counts are integers).
        assert_eq!(normal_count_tail(CmpOp::Eq, 1.5, 10.0, 4.0), 0.0);
        assert_eq!(normal_count_tail(CmpOp::Ne, 1.5, 10.0, 4.0), 1.0);
        // Degenerate variance: a point mass at the rounded mean.
        assert_eq!(normal_count_tail(CmpOp::Ge, 3.0, 3.0, 0.0), 1.0);
        assert_eq!(normal_count_tail(CmpOp::Gt, 3.0, 3.0, 0.0), 0.0);
        assert_eq!(normal_count_tail(CmpOp::Eq, 3.0, 3.0, 0.0), 1.0);
    }
}
