//! The query planner: logical plans, physical plans, and pluggable
//! evaluation strategies.
//!
//! Query execution used to be ad-hoc dispatch inside the catalog — one
//! hard-coded execution shape per SQL clause. This module replaces that
//! with the classical pipeline
//!
//! ```text
//! parse  →  LogicalPlan  →  PhysicalPlan  →  EvalStrategy
//! ```
//!
//! * [`LogicalPlan`] is an operator tree (scan / filter / threshold /
//!   top-k / sort / limit / project / aggregate) built from a parsed
//!   [`SelectStmt`] by [`Planner::plan`]; it is what `EXPLAIN` prints.
//! * [`PhysicalPlan`] is the lowered, flat form every strategy consumes: a
//!   named scan, the tuple-domain restriction (`WHERE` / `THRESHOLD` /
//!   `TOP`), and one terminal [`PhysicalAction`] (return rows, or compute
//!   aggregates).
//! * [`EvalStrategy`] is the pluggable evaluation backend.
//!   [`ExactStrategy`] answers with closed forms over tuple independence
//!   (Poisson-binomial `COUNT`, linearity-of-expectation `SUM`);
//!   [`WorldsStrategy`] answers by Monte-Carlo possible-world sampling
//!   (selected by `WITH WORLDS`), inheriting the executor's bit-identical
//!   determinism at every thread count.
//!
//! Both strategies evaluate the *same* plans, so every aggregate admits an
//! exact-vs-MC differential test, and every future operator (joins,
//! windows, sharded scans) becomes a plan node instead of another `match`
//! arm in the catalog.

use crate::aggregates::{count_distribution_of, sum_moments_of};
use crate::catalog::{QueryOutput, Relation};
use crate::error::DbError;
use crate::query::{eval_conjunction, Conjunction, PROB_PSEUDO_COLUMN};
use crate::schema::Schema;
use crate::sql::{
    AggExpr, AggFunc, HavingClause, SelectItem, SelectStmt, WindowSpec, WorldsClause,
};
use crate::table::{ProbTable, Table};
use crate::value::{row_key, Value, ValueKey};
use crate::worlds::{mix_seed, SumEstimate, WorldsConfig, WorldsExecutor};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

// ---------------------------------------------------------------------------
// Logical plans
// ---------------------------------------------------------------------------

/// A node of the logical operator tree.
#[derive(Debug, Clone, PartialEq)]
pub enum LogicalPlan {
    /// Read a named relation.
    Scan {
        /// Table or view name.
        table: String,
    },
    /// Keep tuples satisfying a conjunctive predicate.
    Filter {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// The predicate.
        predicate: Conjunction,
    },
    /// Keep tuples with probability ≥ τ (`THRESHOLD`).
    Threshold {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Minimum tuple probability.
        tau: f64,
    },
    /// Keep the k most probable tuples (`TOP`).
    TopK {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Number of tuples to keep.
        k: usize,
    },
    /// Order tuples by a column (or the `prob` pseudo-column).
    Sort {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Sort column.
        column: String,
        /// Ascending?
        ascending: bool,
    },
    /// Keep the first n tuples (`LIMIT`).
    Limit {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Row cap.
        n: usize,
    },
    /// Project onto named columns.
    Project {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// Projected columns, in order.
        columns: Vec<String>,
    },
    /// Bucket tuples into temporal windows (`GROUP BY WINDOW(…)`): each
    /// tuple joins the half-open bucket containing its window-column value
    /// (canonical index `⌊(value − origin) / width⌋`), and every bucket
    /// becomes one aggregation group keyed by its bucket start.
    Window {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// The window specification.
        spec: WindowSpec,
    },
    /// Grouped aggregation with an optional `HAVING` event predicate.
    Aggregate {
        /// Input operator.
        input: Box<LogicalPlan>,
        /// `GROUP BY` columns (empty = one global group).
        group_by: Vec<String>,
        /// Aggregate expressions, in projection order.
        aggregates: Vec<AggExpr>,
        /// Optional event predicate.
        having: Option<HavingClause>,
    },
}

impl LogicalPlan {
    /// One-line description of this node (children excluded).
    fn describe(&self) -> String {
        match self {
            LogicalPlan::Scan { table } => format!("Scan {table}"),
            LogicalPlan::Filter { predicate, .. } => {
                let preds: Vec<String> = predicate
                    .iter()
                    .map(|c| format!("{} {} {}", c.column, c.op, c.value))
                    .collect();
                format!("Filter {}", preds.join(" AND "))
            }
            LogicalPlan::Threshold { tau, .. } => format!("Threshold τ={tau}"),
            LogicalPlan::TopK { k, .. } => format!("TopK k={k}"),
            LogicalPlan::Sort {
                column, ascending, ..
            } => format!("Sort {column} {}", if *ascending { "ASC" } else { "DESC" }),
            LogicalPlan::Limit { n, .. } => format!("Limit {n}"),
            LogicalPlan::Project { columns, .. } => format!("Project [{}]", columns.join(", ")),
            LogicalPlan::Window { spec, .. } => format!(
                "Window {} width={} origin={}",
                spec.column,
                spec.width,
                spec.origin()
            ),
            LogicalPlan::Aggregate {
                group_by,
                aggregates,
                having,
                ..
            } => {
                let aggs: Vec<String> = aggregates.iter().map(|a| a.to_string()).collect();
                let mut s = format!("Aggregate [{}]", aggs.join(", "));
                if !group_by.is_empty() {
                    s.push_str(&format!(" GROUP BY {}", group_by.join(", ")));
                }
                if let Some(h) = having {
                    s.push_str(&format!(" HAVING {h}"));
                }
                s
            }
        }
    }

    /// The node's single input, if it has one.
    fn input(&self) -> Option<&LogicalPlan> {
        match self {
            LogicalPlan::Scan { .. } => None,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Threshold { input, .. }
            | LogicalPlan::TopK { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::Limit { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Window { input, .. }
            | LogicalPlan::Aggregate { input, .. } => Some(input),
        }
    }
}

impl fmt::Display for LogicalPlan {
    /// Renders the tree root-first with two-space indentation per level.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut node = Some(self);
        let mut depth = 0usize;
        while let Some(n) = node {
            if depth > 0 {
                f.write_str("\n")?;
            }
            write!(f, "{:indent$}{}", "", n.describe(), indent = depth * 2)?;
            node = n.input();
            depth += 1;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Physical plans
// ---------------------------------------------------------------------------

/// The lowered plan every [`EvalStrategy`] consumes: scan + restriction +
/// one terminal action.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysicalPlan {
    /// Source relation name.
    pub table: String,
    /// `WHERE` conjunction (may reference the `prob` pseudo-column).
    pub predicate: Conjunction,
    /// `THRESHOLD` minimum tuple probability.
    pub threshold: Option<f64>,
    /// `TOP` k most probable tuples.
    pub top: Option<usize>,
    /// What to compute over the restricted domain.
    pub action: PhysicalAction,
}

/// Terminal operator of a [`PhysicalPlan`].
#[derive(Debug, Clone, PartialEq)]
pub enum PhysicalAction {
    /// Return (projected, ordered, limited) tuples. Under the worlds
    /// strategy this is the row-domain sampling estimate instead (`ORDER
    /// BY` / `LIMIT` are rejected at plan time for that combination).
    Rows {
        /// Projected columns (empty = all).
        columns: Vec<String>,
        /// Optional ordering.
        order_by: Option<(String, bool)>,
        /// Optional row cap.
        limit: Option<usize>,
    },
    /// Compute grouped aggregates.
    Aggregate(AggregatePlan),
}

/// The aggregate part of a physical plan.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregatePlan {
    /// Optional temporal window bucketing; when present, every bucket is
    /// one group keyed by its bucket start, ahead of the `group_by` values.
    pub window: Option<WindowSpec>,
    /// Grouping columns (empty = one global group).
    pub group_by: Vec<String>,
    /// Aggregate expressions in projection order.
    pub aggregates: Vec<AggExpr>,
    /// Optional `HAVING` event predicate.
    pub having: Option<HavingClause>,
}

impl fmt::Display for PhysicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scan({})", self.table)?;
        if !self.predicate.is_empty() {
            write!(f, " → filter({} comparisons)", self.predicate.len())?;
        }
        if let Some(tau) = self.threshold {
            write!(f, " → threshold({tau})")?;
        }
        if let Some(k) = self.top {
            write!(f, " → top({k})")?;
        }
        match &self.action {
            PhysicalAction::Rows {
                columns,
                order_by,
                limit,
            } => {
                if let Some((col, asc)) = order_by {
                    write!(f, " → sort({col} {})", if *asc { "ASC" } else { "DESC" })?;
                }
                if let Some(n) = limit {
                    write!(f, " → limit({n})")?;
                }
                if columns.is_empty() {
                    write!(f, " → rows(*)")
                } else {
                    write!(f, " → rows({})", columns.join(", "))
                }
            }
            PhysicalAction::Aggregate(agg) => {
                let aggs: Vec<String> = agg.aggregates.iter().map(|a| a.to_string()).collect();
                write!(f, " → aggregate([{}]", aggs.join(", "))?;
                if let Some(w) = &agg.window {
                    write!(f, ", window={w}")?;
                }
                if !agg.group_by.is_empty() {
                    write!(f, ", group_by=[{}]", agg.group_by.join(", "))?;
                }
                if let Some(h) = &agg.having {
                    write!(f, ", having={h}")?;
                }
                write!(f, ")")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The planner
// ---------------------------------------------------------------------------

/// Which evaluation backend a plan runs on.
#[derive(Debug, Clone, PartialEq)]
pub enum StrategyKind {
    /// Closed forms ([`ExactStrategy`]).
    Exact,
    /// Monte-Carlo possible-world sampling ([`WorldsStrategy`]), carrying
    /// the `WITH WORLDS` clause that selected it.
    Worlds(WorldsClause),
}

/// A fully planned query: logical tree, lowered physical plan, and the
/// chosen strategy.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedQuery {
    /// The logical operator tree (what `EXPLAIN` prints).
    pub logical: LogicalPlan,
    /// The lowered plan the strategies execute.
    pub physical: PhysicalPlan,
    /// The chosen evaluation strategy.
    pub strategy: StrategyKind,
}

impl PlannedQuery {
    /// Instantiates the chosen strategy (`worlds_threads` is the engine's
    /// fork-join width for sampling; it never changes MC estimates).
    pub fn strategy(&self, worlds_threads: usize) -> Box<dyn EvalStrategy> {
        match &self.strategy {
            StrategyKind::Exact => Box::new(ExactStrategy),
            StrategyKind::Worlds(clause) => Box::new(WorldsStrategy {
                clause: clause.clone(),
                threads: worlds_threads,
            }),
        }
    }
}

/// Builds [`PlannedQuery`]s from parsed statements. Stateless — planning
/// is a pure function of the statement; relation-dependent validation
/// (unknown tables/columns, deterministic-vs-probabilistic rules) stays
/// with execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct Planner;

impl Planner {
    /// Plans a `SELECT`.
    ///
    /// Validation performed here (all [`DbError::Plan`] unless noted):
    /// * plain projected columns must appear in `GROUP BY` when the
    ///   projection carries aggregates (the result is keyed by the full
    ///   `GROUP BY` list in `GROUP BY` order — see [`AggregateResult`]);
    /// * `GROUP BY` (windowed or not) / `HAVING` require an aggregate
    ///   projection;
    /// * aggregate queries reject `ORDER BY` / `LIMIT` (groups are
    ///   returned in canonical key order);
    /// * `GROUP BY WINDOW(…)` needs a positive, finite width (and a finite
    ///   origin when given); buckets become ordinary groups keyed by their
    ///   bucket start, ahead of the plain `GROUP BY` values;
    /// * `HAVING` must compare `COUNT(*)` against a numeric literal (the
    ///   only event predicate with an implemented evaluation —
    ///   `HAVING SUM(…)` names the missing sum-distribution closed form);
    /// * `WITH WORLDS` rejects `ORDER BY` / `LIMIT`
    ///   ([`DbError::InvalidWorlds`], as before the planner existed).
    pub fn plan(sel: &SelectStmt) -> Result<PlannedQuery, DbError> {
        let aggregates: Vec<AggExpr> = sel
            .projection
            .iter()
            .filter_map(|item| match item {
                SelectItem::Aggregate(a) => Some(a.clone()),
                SelectItem::Column(_) => None,
            })
            .collect();
        let plain: Vec<String> = sel
            .projection
            .iter()
            .filter_map(|item| match item {
                SelectItem::Column(c) => Some(c.clone()),
                SelectItem::Aggregate(_) => None,
            })
            .collect();

        if aggregates.is_empty() {
            if !sel.group_by.is_empty() || sel.window.is_some() {
                return Err(DbError::Plan(
                    "GROUP BY requires at least one aggregate in the projection".into(),
                ));
            }
            if sel.having.is_some() {
                return Err(DbError::Plan(
                    "HAVING requires an aggregate projection".into(),
                ));
            }
        } else {
            for col in &plain {
                if !sel.group_by.contains(col) {
                    return Err(DbError::Plan(format!(
                        "projected column {col} must appear in GROUP BY"
                    )));
                }
            }
            if sel.order_by.is_some() || sel.limit.is_some() {
                return Err(DbError::Plan(
                    "ORDER BY/LIMIT do not apply to aggregate queries; groups are \
                     returned in canonical key order"
                        .into(),
                ));
            }
            if let Some(w) = &sel.window {
                validate_window(w)?;
            }
            if let Some(h) = &sel.having {
                validate_having(h)?;
            }
        }
        if sel.worlds.is_some() && (sel.order_by.is_some() || sel.limit.is_some()) {
            return Err(DbError::InvalidWorlds(
                "ORDER BY/LIMIT do not apply to WITH WORLDS estimates; restrict the \
                 sampling domain with WHERE, THRESHOLD or TOP instead"
                    .into(),
            ));
        }

        // Logical tree, bottom-up: scan → filter → threshold → top-k, then
        // either the aggregate terminal or sort → limit → project.
        let mut logical = LogicalPlan::Scan {
            table: sel.table.clone(),
        };
        if !sel.predicate.is_empty() {
            logical = LogicalPlan::Filter {
                input: Box::new(logical),
                predicate: sel.predicate.clone(),
            };
        }
        if let Some(tau) = sel.threshold {
            logical = LogicalPlan::Threshold {
                input: Box::new(logical),
                tau,
            };
        }
        if let Some(k) = sel.top {
            logical = LogicalPlan::TopK {
                input: Box::new(logical),
                k,
            };
        }
        let action = if aggregates.is_empty() {
            if let Some((column, ascending)) = &sel.order_by {
                logical = LogicalPlan::Sort {
                    input: Box::new(logical),
                    column: column.clone(),
                    ascending: *ascending,
                };
            }
            if let Some(n) = sel.limit {
                logical = LogicalPlan::Limit {
                    input: Box::new(logical),
                    n,
                };
            }
            if !plain.is_empty() {
                logical = LogicalPlan::Project {
                    input: Box::new(logical),
                    columns: plain.clone(),
                };
            }
            PhysicalAction::Rows {
                columns: plain,
                order_by: sel.order_by.clone(),
                limit: sel.limit,
            }
        } else {
            if let Some(w) = &sel.window {
                logical = LogicalPlan::Window {
                    input: Box::new(logical),
                    spec: w.clone(),
                };
            }
            let agg_plan = AggregatePlan {
                window: sel.window.clone(),
                group_by: sel.group_by.clone(),
                aggregates: aggregates.clone(),
                having: sel.having.clone(),
            };
            logical = LogicalPlan::Aggregate {
                input: Box::new(logical),
                group_by: sel.group_by.clone(),
                aggregates,
                having: sel.having.clone(),
            };
            PhysicalAction::Aggregate(agg_plan)
        };

        Ok(PlannedQuery {
            logical,
            physical: PhysicalPlan {
                table: sel.table.clone(),
                predicate: sel.predicate.clone(),
                threshold: sel.threshold,
                top: sel.top,
                action,
            },
            strategy: match &sel.worlds {
                Some(clause) => StrategyKind::Worlds(clause.clone()),
                None => StrategyKind::Exact,
            },
        })
    }
}

// ---------------------------------------------------------------------------
// Aggregate results
// ---------------------------------------------------------------------------

/// One aggregate estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct AggValue {
    /// The point value: the exact closed form, or the MC mean.
    pub value: f64,
    /// 95% CI half-width of an MC estimate (`None` under exact evaluation,
    /// and for `AVG`, which is reported as a ratio of expectations without
    /// its own interval).
    pub ci_half_width: Option<f64>,
}

/// One group of an [`AggregateResult`].
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateGroup {
    /// The `GROUP BY` column values (empty for the global group).
    pub key: Vec<Value>,
    /// One estimate per aggregate expression, in projection order.
    pub values: Vec<AggValue>,
    /// The tuple-count distribution (exact Poisson-binomial or MC
    /// histogram) when `COUNT(*)` or `HAVING` asked for counts.
    pub count_distribution: Option<Vec<f64>>,
    /// `P(HAVING predicate)` on probabilistic inputs (on deterministic
    /// tables `HAVING` filters groups instead and this stays `None`).
    pub event_probability: Option<f64>,
    /// Worlds sampled for this group (`None` under exact evaluation).
    pub worlds: Option<usize>,
}

/// Result of an aggregate query: one row per group, in canonical group-key
/// order.
///
/// Groups are keyed by the **full `GROUP BY` list, in `GROUP BY` order**,
/// regardless of how many of those columns the projection repeated or in
/// what order — plain projected columns only have to *appear* in
/// `GROUP BY` (the planner checks that); they do not reorder or narrow
/// the group key. A `GROUP BY WINDOW(…)` bucketing contributes the bucket
/// start as the **first** key value (a float), with the window's canonical
/// rendering as the matching first entry of `group_columns` — so windowed
/// results reuse this struct unchanged and cross the wire without any new
/// frame shape.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateResult {
    /// `GROUP BY` column names (empty = single global group).
    pub group_columns: Vec<String>,
    /// The aggregate expressions, in projection order.
    pub aggregates: Vec<AggExpr>,
    /// The `HAVING` event predicate, if any.
    pub having: Option<HavingClause>,
    /// Name of the strategy that produced the result.
    pub strategy: &'static str,
    /// The groups.
    pub groups: Vec<AggregateGroup>,
}

impl AggregateResult {
    /// Bit-exact fingerprint of every estimate — the cross-thread-count
    /// determinism witness for MC aggregates (wall-clock excluded; there
    /// is none to exclude).
    pub fn fingerprint(&self) -> String {
        use fmt::Write;
        let mut s = format!("strategy={} groups={}", self.strategy, self.groups.len());
        for g in &self.groups {
            write!(s, " |").expect("write to String cannot fail");
            for k in &g.key {
                write!(s, " {k}").expect("write to String cannot fail");
            }
            for v in &g.values {
                write!(s, " {:016x}", v.value.to_bits()).expect("write to String cannot fail");
                if let Some(ci) = v.ci_half_width {
                    write!(s, "±{:016x}", ci.to_bits()).expect("write to String cannot fail");
                }
            }
            if let Some(p) = g.event_probability {
                write!(s, " ev={:016x}", p.to_bits()).expect("write to String cannot fail");
            }
            if let Some(dist) = &g.count_distribution {
                for d in dist {
                    write!(s, " d{:016x}", d.to_bits()).expect("write to String cannot fail");
                }
            }
        }
        s
    }
}

impl fmt::Display for AggregateResult {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Header: group columns, aggregates, then the event column — the
        // latter only when groups actually carry event probabilities (on
        // deterministic inputs HAVING filters groups instead, so the rows
        // would have no cell under that header).
        let mut header: Vec<String> = self.group_columns.clone();
        header.extend(self.aggregates.iter().map(|a| a.to_string()));
        if let (Some(h), true) = (
            &self.having,
            self.groups.iter().any(|g| g.event_probability.is_some()),
        ) {
            header.push(format!("P({h})"));
        }
        writeln!(f, "{} [{}]", header.join("  "), self.strategy)?;
        for g in &self.groups {
            let mut cells: Vec<String> = g.key.iter().map(|v| v.to_string()).collect();
            for v in &g.values {
                match v.ci_half_width {
                    Some(ci) => cells.push(format!("{:.4} ± {:.4}", v.value, ci)),
                    None => cells.push(format!("{:.4}", v.value)),
                }
            }
            if let Some(p) = g.event_probability {
                cells.push(format!("{p:.4}"));
            }
            writeln!(f, "{}", cells.join("  "))?;
        }
        Ok(())
    }
}

/// What `EXPLAIN` returns: the plans and the strategy, pre-rendered.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplainReport {
    /// The source relation, annotated with its kind when it exists.
    pub relation: String,
    /// The logical operator tree.
    pub logical: String,
    /// The lowered physical pipeline.
    pub physical: String,
    /// The chosen strategy with its parameters.
    pub strategy: String,
}

impl fmt::Display for ExplainReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "relation: {}", self.relation)?;
        writeln!(f, "logical plan:")?;
        for line in self.logical.lines() {
            writeln!(f, "  {line}")?;
        }
        writeln!(f, "physical plan:\n  {}", self.physical)?;
        writeln!(f, "strategy: {}", self.strategy)
    }
}

// ---------------------------------------------------------------------------
// Evaluation strategies
// ---------------------------------------------------------------------------

/// A pluggable evaluation backend executing physical plans.
pub trait EvalStrategy {
    /// Short name (`"exact"` / `"worlds"`).
    fn name(&self) -> &'static str;

    /// Parameter description for `EXPLAIN`.
    fn describe(&self) -> String;

    /// Executes a physical plan against the resolved source relation.
    fn execute(&self, relation: &Relation, plan: &PhysicalPlan) -> Result<QueryOutput, DbError>;
}

/// Closed-form evaluation over tuple independence.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactStrategy;

impl EvalStrategy for ExactStrategy {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn describe(&self) -> String {
        "exact (closed forms: Poisson-binomial COUNT, linearity-of-expectation SUM)".into()
    }

    fn execute(&self, relation: &Relation, plan: &PhysicalPlan) -> Result<QueryOutput, DbError> {
        match relation {
            Relation::Deterministic(t) => {
                if plan.threshold.is_some() || plan.top.is_some() {
                    return Err(DbError::InvalidWorlds(format!(
                        "THRESHOLD/TOP require a probabilistic relation; \
                         {} is deterministic",
                        plan.table
                    )));
                }
                match &plan.action {
                    PhysicalAction::Rows {
                        columns,
                        order_by,
                        limit,
                    } => Ok(QueryOutput::Rows(select_deterministic(
                        t,
                        &plan.predicate,
                        columns,
                        order_by.as_ref(),
                        *limit,
                    )?)),
                    PhysicalAction::Aggregate(agg) => Ok(QueryOutput::Aggregate(
                        aggregate_deterministic(t, &plan.predicate, agg)?,
                    )),
                }
            }
            Relation::Probabilistic(t) => match &plan.action {
                PhysicalAction::Rows {
                    columns,
                    order_by,
                    limit,
                } => {
                    let keep = restrict_prob_indices(t, plan)?;
                    Ok(QueryOutput::ProbRows(select_probabilistic(
                        t,
                        &keep,
                        columns,
                        order_by.as_ref(),
                        *limit,
                    )?))
                }
                PhysicalAction::Aggregate(agg) => {
                    let keep = restrict_prob_indices(t, plan)?;
                    Ok(QueryOutput::Aggregate(aggregate_exact(t, &keep, agg)?))
                }
            },
        }
    }
}

/// Monte-Carlo possible-world evaluation (`WITH WORLDS`).
///
/// Group seeds derive deterministically from the clause seed and the
/// group's canonical-order index (the global group keeps the clause seed
/// itself), and each group runs the batched executor — so results stay
/// bit-identical at every thread count, groups included.
#[derive(Debug, Clone)]
pub struct WorldsStrategy {
    /// The selecting `WITH WORLDS` clause.
    pub clause: WorldsClause,
    /// Fork-join width (0 = one thread per core); latency only.
    pub threads: usize,
}

impl WorldsStrategy {
    fn executor(&self, seed: u64) -> Result<WorldsExecutor, DbError> {
        WorldsExecutor::new(WorldsConfig {
            max_worlds: self.clause.worlds,
            seed,
            target_ci: self.clause.confidence,
            threads: self.threads,
            ..WorldsConfig::default()
        })
    }
}

impl EvalStrategy for WorldsStrategy {
    fn name(&self) -> &'static str {
        "worlds"
    }

    fn describe(&self) -> String {
        let mut s = format!(
            "worlds (Monte-Carlo, max_worlds={}, seed={}",
            self.clause.worlds,
            self.clause.seed.unwrap_or(0)
        );
        if let Some(eps) = self.clause.confidence {
            s.push_str(&format!(", confidence={eps}"));
        }
        s.push(')');
        s
    }

    fn execute(&self, relation: &Relation, plan: &PhysicalPlan) -> Result<QueryOutput, DbError> {
        let t = match relation {
            Relation::Probabilistic(t) => t,
            Relation::Deterministic(_) => {
                return Err(DbError::InvalidWorlds(format!(
                    "THRESHOLD/TOP/WITH WORLDS require a probabilistic relation; \
                     {} is deterministic",
                    plan.table
                )));
            }
        };
        let seed = self.clause.seed.unwrap_or(0);
        match &plan.action {
            PhysicalAction::Rows { columns, .. } => {
                // Validate the projection exactly like the exact path —
                // unknown columns error no matter how many are listed.
                for col in columns {
                    t.schema().index_of(col)?;
                }
                let keep = restrict_prob_indices(t, plan)?;
                let probs: Vec<f64> = keep.iter().map(|&i| t.probs()[i]).collect();
                // A single projected *numeric* column additionally requests
                // the SUM aggregate over that column (the pre-planner
                // heuristic, kept for compatibility; `SELECT SUM(col) …` is
                // the first-class spelling).
                let sum = match columns.as_slice() {
                    [col] => match t.schema().type_of(col)? {
                        crate::value::ColumnType::Text => None,
                        _ => Some((
                            col.as_str(),
                            numeric_column(t.schema(), t.rows(), &keep, col)?,
                        )),
                    },
                    _ => None,
                };
                let executor = self.executor(seed)?;
                Ok(QueryOutput::Worlds(executor.run_domain(
                    &probs,
                    sum.as_ref().map(|(c, v)| (*c, v.as_slice())),
                )))
            }
            PhysicalAction::Aggregate(agg) => {
                let keep = restrict_prob_indices(t, plan)?;
                Ok(QueryOutput::Aggregate(
                    self.aggregate_worlds(t, &keep, agg, seed)?,
                ))
            }
        }
    }
}

impl WorldsStrategy {
    /// MC aggregate evaluation: per group, **one** sampling pass tallies
    /// every distinct aggregated column at once
    /// ([`WorldsExecutor::run_domain_multi`]); presence sampling never
    /// consumes RNG for values, so the estimates are bit-identical to the
    /// historical one-run-per-column evaluation with the same seed.
    fn aggregate_worlds(
        &self,
        t: &ProbTable,
        keep: &[usize],
        plan: &AggregatePlan,
        seed: u64,
    ) -> Result<AggregateResult, DbError> {
        validate_aggregate_plan(plan)?;
        let groups = group_rows(
            t.schema(),
            t.rows(),
            keep,
            plan.window.as_ref(),
            &plan.group_by,
        )?;
        let single_group = plan.window.is_none() && plan.group_by.is_empty();
        let mut out = Vec::with_capacity(groups.len());
        for (gi, (key, indices)) in groups.into_iter().enumerate() {
            let group_seed = if single_group {
                seed
            } else {
                mix_seed(seed, gi as u64)
            };
            let probs: Vec<f64> = indices.iter().map(|&i| t.probs()[i]).collect();
            let columns = aggregated_columns(plan, t.schema(), t.rows(), &indices)?;
            let specs: Vec<(&str, &[f64])> = columns
                .iter()
                .map(|(&col, values)| (col, values.as_slice()))
                .collect();
            let executor = self.executor(group_seed)?;
            let (base, sum_estimates) = executor.run_domain_multi(&probs, &specs);
            let sums: BTreeMap<&str, &SumEstimate> = specs
                .iter()
                .map(|&(col, _)| col)
                .zip(sum_estimates.iter())
                .collect();
            let values: Vec<AggValue> = plan
                .aggregates
                .iter()
                .map(|agg| match agg.func {
                    AggFunc::Count => AggValue {
                        value: base.count_mean,
                        ci_half_width: Some(base.count_ci_half_width),
                    },
                    AggFunc::Sum | AggFunc::Expected => {
                        let col = agg
                            .column
                            .as_ref()
                            .expect("validate_aggregate_plan checked the column");
                        let sum = sums[col.as_str()];
                        AggValue {
                            value: sum.mean,
                            ci_half_width: Some(sum.ci_half_width),
                        }
                    }
                    AggFunc::Avg => {
                        let col = agg
                            .column
                            .as_ref()
                            .expect("validate_aggregate_plan checked the column");
                        let sum = sums[col.as_str()];
                        AggValue {
                            value: ratio_of_expectations(sum.mean, base.count_mean),
                            ci_half_width: None,
                        }
                    }
                })
                .collect();
            let event_probability = match &plan.having {
                Some(h) => Some(tail_probability(
                    &base.count_distribution,
                    h.op,
                    h.value
                        .as_f64()
                        .expect("validate_aggregate_plan checked the literal"),
                )),
                None => None,
            };
            out.push(AggregateGroup {
                key,
                values,
                count_distribution: Some(base.count_distribution.clone()),
                event_probability,
                worlds: Some(base.worlds),
            });
        }
        Ok(AggregateResult {
            group_columns: group_columns_of(plan),
            aggregates: plan.aggregates.clone(),
            having: plan.having.clone(),
            strategy: "worlds",
            groups: out,
        })
    }
}

// ---------------------------------------------------------------------------
// Shared physical operators (row pipeline)
// ---------------------------------------------------------------------------

/// Indices of rows satisfying the conjunction.
fn filter_rows(
    schema: &Schema,
    rows: &[Vec<Value>],
    probs: Option<&[f64]>,
    pred: &Conjunction,
) -> Result<Vec<usize>, DbError> {
    let mut out = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let p = probs.map(|ps| ps[i]);
        if eval_conjunction(schema, row, p, pred)? {
            out.push(i);
        }
    }
    Ok(out)
}

/// Indices of the tuples a probabilistic query works on: the `WHERE`
/// filter, then `THRESHOLD` (minimum probability), then `TOP` (the k most
/// probable, NaN-free total order, ties to the earlier row, returned in
/// descending probability). Shared by every strategy so all evaluate the
/// same sub-relation.
pub(crate) fn restrict_prob_indices(
    t: &ProbTable,
    plan: &PhysicalPlan,
) -> Result<Vec<usize>, DbError> {
    let mut keep = filter_rows(t.schema(), t.rows(), Some(t.probs()), &plan.predicate)?;
    if let Some(tau) = plan.threshold {
        if !(0.0..=1.0).contains(&tau) {
            return Err(DbError::InvalidProbability(tau));
        }
        keep.retain(|&i| t.probs()[i] >= tau);
    }
    if let Some(k) = plan.top {
        crate::query::sort_indices_desc_by_prob(&mut keep, t.probs());
        keep.truncate(k);
    }
    Ok(keep)
}

/// Ordering key extraction shared by both row paths; `prob` addresses the
/// tuple probability when one is available.
fn sort_indices(
    schema: &Schema,
    rows: &[Vec<Value>],
    probs: Option<&[f64]>,
    order: &(String, bool),
) -> Result<Vec<usize>, DbError> {
    let (col, asc) = order;
    let mut idx: Vec<usize> = (0..rows.len()).collect();
    if let (PROB_PSEUDO_COLUMN, Some(p)) = (col.as_str(), probs) {
        idx.sort_by(|&a, &b| {
            let ord = p[a].partial_cmp(&p[b]).unwrap_or(Ordering::Equal);
            if *asc {
                ord.then(a.cmp(&b))
            } else {
                ord.reverse().then(a.cmp(&b))
            }
        });
    } else {
        let c = schema.index_of(col)?;
        idx.sort_by(|&a, &b| {
            let ord = rows[a][c].compare(&rows[b][c]).unwrap_or(Ordering::Equal);
            if *asc {
                ord.then(a.cmp(&b))
            } else {
                ord.reverse().then(a.cmp(&b))
            }
        });
    }
    Ok(idx)
}

/// Row-returning execution over a deterministic table.
fn select_deterministic(
    t: &Table,
    pred: &Conjunction,
    columns: &[String],
    order_by: Option<&(String, bool)>,
    limit: Option<usize>,
) -> Result<Table, DbError> {
    let filtered = filter_rows(t.schema(), t.rows(), None, pred)?;
    let rows: Vec<Vec<Value>> = filtered.iter().map(|&i| t.rows()[i].clone()).collect();
    let mut order: Vec<usize> = (0..rows.len()).collect();
    if let Some(ob) = order_by {
        order = sort_indices(t.schema(), &rows, None, ob)?;
    }
    if let Some(l) = limit {
        order.truncate(l);
    }
    let (schema, idx) = if columns.is_empty() {
        (
            t.schema().clone(),
            (0..t.schema().arity()).collect::<Vec<_>>(),
        )
    } else {
        t.schema().project(columns)?
    };
    let mut out = Table::new(t.name().to_string(), schema);
    for &i in &order {
        out.insert(idx.iter().map(|&c| rows[i][c].clone()).collect())?;
    }
    Ok(out)
}

/// Row-returning execution over an already-restricted probabilistic
/// relation.
fn select_probabilistic(
    t: &ProbTable,
    keep: &[usize],
    columns: &[String],
    order_by: Option<&(String, bool)>,
    limit: Option<usize>,
) -> Result<ProbTable, DbError> {
    let rows: Vec<Vec<Value>> = keep.iter().map(|&i| t.rows()[i].clone()).collect();
    let probs: Vec<f64> = keep.iter().map(|&i| t.probs()[i]).collect();
    let mut order: Vec<usize> = (0..rows.len()).collect();
    if let Some(ob) = order_by {
        order = sort_indices(t.schema(), &rows, Some(&probs), ob)?;
    }
    if let Some(l) = limit {
        order.truncate(l);
    }
    let (schema, idx) = if columns.is_empty() {
        (
            t.schema().clone(),
            (0..t.schema().arity()).collect::<Vec<_>>(),
        )
    } else {
        t.schema().project(columns)?
    };
    let mut out = ProbTable::new(t.name().to_string(), schema);
    for &i in &order {
        out.insert(idx.iter().map(|&c| rows[i][c].clone()).collect(), probs[i])?;
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Shared physical operators (aggregation)
// ---------------------------------------------------------------------------

/// One aggregation group: its key values and its member row indices.
type Group = (Vec<Value>, Vec<usize>);

/// Splits the kept row indices into groups by the optional temporal
/// window and the `GROUP BY` columns, returned in canonical group-key
/// order ([`ValueKey`] order — the deterministic order both strategies
/// and `GROUP BY` output share). A windowed plan keys each group by the
/// bucket start ([`WindowSpec::bucket_start`], always a float) ahead of
/// the `GROUP BY` values; no window and an empty `group_by` yield one
/// global group with an empty key. Works over any relation kind —
/// callers pass the schema and row storage.
fn group_rows(
    schema: &Schema,
    rows: &[Vec<Value>],
    keep: &[usize],
    window: Option<&WindowSpec>,
    group_by: &[String],
) -> Result<Vec<Group>, DbError> {
    if window.is_none() && group_by.is_empty() {
        return Ok(vec![(Vec::new(), keep.to_vec())]);
    }
    let mut idx = Vec::with_capacity(group_by.len());
    for col in group_by {
        idx.push(schema.index_of(col)?);
    }
    // Per-kept-row bucket starts (windowed plans only), computed once so
    // the canonical bucket index is derived exactly one way everywhere.
    let starts: Vec<f64> = match window {
        Some(w) => {
            let c = schema.index_of(&w.column)?;
            keep.iter()
                .map(|&i| {
                    let v = rows[i][c].as_f64().ok_or_else(|| DbError::TypeMismatch {
                        column: w.column.clone(),
                        expected: crate::value::ColumnType::Float,
                        got: rows[i][c].column_type(),
                    })?;
                    Ok(w.bucket_start(v))
                })
                .collect::<Result<_, DbError>>()?
        }
        None => Vec::new(),
    };
    let mut groups: BTreeMap<Vec<ValueKey<'_>>, Vec<usize>> = BTreeMap::new();
    for (ki, &i) in keep.iter().enumerate() {
        let mut key = Vec::with_capacity(idx.len() + usize::from(window.is_some()));
        if window.is_some() {
            key.push(ValueKey::Float(starts[ki]));
        }
        key.extend(row_key(&rows[i], &idx));
        groups.entry(key).or_default().push(i);
    }
    Ok(groups
        .into_iter()
        .map(|(group_key, indices)| {
            let mut key: Vec<Value> = Vec::with_capacity(group_key.len());
            if window.is_some() {
                match group_key[0] {
                    ValueKey::Float(start) => key.push(Value::Float(start)),
                    _ => unreachable!("window keys are always floats"),
                }
            }
            key.extend(idx.iter().map(|&c| rows[indices[0]][c].clone()));
            (key, indices)
        })
        .collect())
}

/// The result's group-column names: the window label (its canonical
/// `WINDOW(col, width[, origin])` rendering) ahead of the `GROUP BY`
/// columns — matching the key layout [`group_rows`] produces.
fn group_columns_of(plan: &AggregatePlan) -> Vec<String> {
    let mut cols = Vec::with_capacity(plan.group_by.len() + usize::from(plan.window.is_some()));
    if let Some(w) = &plan.window {
        cols.push(w.to_string());
    }
    cols.extend(plan.group_by.iter().cloned());
    cols
}

/// Extracts a numeric column over the given row indices (errors on text
/// columns, like the exact aggregates do).
fn numeric_column(
    schema: &Schema,
    rows: &[Vec<Value>],
    indices: &[usize],
    column: &str,
) -> Result<Vec<f64>, DbError> {
    let c = schema.index_of(column)?;
    indices
        .iter()
        .map(|&i| {
            rows[i][c].as_f64().ok_or_else(|| DbError::TypeMismatch {
                column: column.to_string(),
                expected: crate::value::ColumnType::Float,
                got: rows[i][c].column_type(),
            })
        })
        .collect()
}

/// Checks the invariants [`Planner::plan`] guarantees for plans it built —
/// every column-taking aggregate names a column, and `HAVING` compares
/// `COUNT(*)` against a number. Re-checked at the entry of every aggregate
/// evaluator because the plan structs have public fields: a hand-built
/// [`PhysicalPlan`] fed to [`crate::Database::execute_planned`] must
/// surface [`DbError::Plan`], not panic on the evaluators' internal
/// `expect`s.
fn validate_aggregate_plan(plan: &AggregatePlan) -> Result<(), DbError> {
    for agg in &plan.aggregates {
        match agg.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg | AggFunc::Expected if agg.column.is_none() => {
                return Err(DbError::Plan(format!("{} requires a column", agg.func)));
            }
            _ => {}
        }
    }
    if let Some(w) = &plan.window {
        validate_window(w)?;
    }
    if let Some(h) = &plan.having {
        validate_having(h)?;
    }
    Ok(())
}

/// Validates a `GROUP BY WINDOW(…)` specification: the width must be a
/// positive, finite float (the canonical bucket index divides by it), and
/// an explicit origin must be finite.
fn validate_window(w: &WindowSpec) -> Result<(), DbError> {
    if !(w.width > 0.0) || !w.width.is_finite() {
        return Err(DbError::Plan(format!(
            "WINDOW width must be positive and finite, got {}",
            w.width
        )));
    }
    if let Some(o) = w.origin {
        if !o.is_finite() {
            return Err(DbError::Plan(format!(
                "WINDOW origin must be finite, got {o}"
            )));
        }
    }
    Ok(())
}

/// Validates a `HAVING` event predicate. Only `COUNT(*)` events have an
/// implemented evaluation; `HAVING SUM(…)` gets a dedicated message
/// because it is the one shape users reach for next — its closed form
/// (a sum-distribution DP, or an MC-only lowering) is an open ROADMAP
/// item, not a parse failure.
fn validate_having(h: &HavingClause) -> Result<(), DbError> {
    if h.agg != AggExpr::count() {
        if h.agg.func == AggFunc::Sum {
            return Err(DbError::Plan(format!(
                "HAVING {} {} … event predicates are not supported yet: \
                 P(SUM {} s) needs a sum-distribution closed form (or an \
                 MC-only lowering) — see the ROADMAP open item \"HAVING SUM \
                 closed form\"; only COUNT(*) event predicates are evaluable",
                h.agg, h.op, h.op
            )));
        }
        return Err(DbError::Plan(format!(
            "HAVING supports only COUNT(*) event predicates, got {}",
            h.agg
        )));
    }
    if h.value.as_f64().is_none() {
        return Err(DbError::Plan(format!(
            "HAVING compares COUNT(*) against a number, got {:?}",
            h.value
        )));
    }
    Ok(())
}

/// The distinct aggregated columns of a plan, extracted once per group so
/// `SUM(r), AVG(r), EXPECTED(r)` shares one column scan instead of three.
fn aggregated_columns<'a>(
    plan: &'a AggregatePlan,
    schema: &Schema,
    rows: &[Vec<Value>],
    indices: &[usize],
) -> Result<BTreeMap<&'a str, Vec<f64>>, DbError> {
    let mut columns: BTreeMap<&str, Vec<f64>> = BTreeMap::new();
    for agg in &plan.aggregates {
        if let Some(col) = &agg.column {
            if !columns.contains_key(col.as_str()) {
                columns.insert(col, numeric_column(schema, rows, indices, col)?);
            }
        }
    }
    Ok(columns)
}

/// `E[SUM] / E[COUNT]`, defined as 0 when the expected count is 0.
fn ratio_of_expectations(sum_mean: f64, count_mean: f64) -> f64 {
    if count_mean == 0.0 {
        0.0
    } else {
        sum_mean / count_mean
    }
}

/// `P(count op k)` over a count distribution: sums the mass of every
/// count value satisfying the comparison.
fn tail_probability(dist: &[f64], op: crate::query::CmpOp, k: f64) -> f64 {
    let mut p = 0.0;
    for (c, &mass) in dist.iter().enumerate() {
        let holds = op.eval((c as f64).partial_cmp(&k));
        if holds {
            p += mass;
        }
    }
    p.clamp(0.0, 1.0)
}

/// Exact aggregate evaluation over a restricted probabilistic relation:
/// Poisson-binomial counts, linearity-of-expectation sums, per group.
fn aggregate_exact(
    t: &ProbTable,
    keep: &[usize],
    plan: &AggregatePlan,
) -> Result<AggregateResult, DbError> {
    validate_aggregate_plan(plan)?;
    let needs_distribution =
        plan.having.is_some() || plan.aggregates.iter().any(|a| a.func == AggFunc::Count);
    let groups = group_rows(
        t.schema(),
        t.rows(),
        keep,
        plan.window.as_ref(),
        &plan.group_by,
    )?;
    let mut out = Vec::with_capacity(groups.len());
    for (key, indices) in groups {
        let probs: Vec<f64> = indices.iter().map(|&i| t.probs()[i]).collect();
        let count_mean: f64 = probs.iter().sum();
        let dist = needs_distribution.then(|| count_distribution_of(&probs));
        let columns = aggregated_columns(plan, t.schema(), t.rows(), &indices)?;
        let values: Vec<AggValue> = plan
            .aggregates
            .iter()
            .map(|agg| {
                let value = match agg.func {
                    AggFunc::Count => count_mean,
                    AggFunc::Sum | AggFunc::Expected => {
                        let col = agg
                            .column
                            .as_ref()
                            .expect("validate_aggregate_plan checked the column");
                        sum_moments_of(&probs, &columns[col.as_str()]).0
                    }
                    AggFunc::Avg => {
                        let col = agg
                            .column
                            .as_ref()
                            .expect("validate_aggregate_plan checked the column");
                        let (sum_mean, _) = sum_moments_of(&probs, &columns[col.as_str()]);
                        ratio_of_expectations(sum_mean, count_mean)
                    }
                };
                AggValue {
                    value,
                    ci_half_width: None,
                }
            })
            .collect();
        let event_probability = plan.having.as_ref().map(|h| {
            tail_probability(
                dist.as_ref().expect("distribution computed for HAVING"),
                h.op,
                h.value
                    .as_f64()
                    .expect("validate_aggregate_plan checked the literal"),
            )
        });
        out.push(AggregateGroup {
            key,
            values,
            count_distribution: dist,
            event_probability,
            worlds: None,
        });
    }
    Ok(AggregateResult {
        group_columns: group_columns_of(plan),
        aggregates: plan.aggregates.clone(),
        having: plan.having.clone(),
        strategy: "exact",
        groups: out,
    })
}

/// Classic SQL aggregation over a deterministic table; `HAVING` filters
/// groups (every world is the same world, so the event either holds or
/// does not).
fn aggregate_deterministic(
    t: &Table,
    pred: &Conjunction,
    plan: &AggregatePlan,
) -> Result<AggregateResult, DbError> {
    validate_aggregate_plan(plan)?;
    let keep = filter_rows(t.schema(), t.rows(), None, pred)?;
    let groups = group_rows(
        t.schema(),
        t.rows(),
        &keep,
        plan.window.as_ref(),
        &plan.group_by,
    )?;
    let mut out = Vec::new();
    for (key, indices) in groups {
        let count = indices.len() as f64;
        // HAVING filters deterministic groups — checked first, so no
        // per-group column extraction is spent on a discarded group.
        if let Some(h) = &plan.having {
            let k = h
                .value
                .as_f64()
                .expect("validate_aggregate_plan checked the literal");
            if !h.op.eval(count.partial_cmp(&k)) {
                continue;
            }
        }
        let columns = aggregated_columns(plan, t.schema(), t.rows(), &indices)?;
        let values: Vec<AggValue> = plan
            .aggregates
            .iter()
            .map(|agg| {
                let value = match agg.func {
                    AggFunc::Count => count,
                    AggFunc::Sum | AggFunc::Expected => {
                        let col = agg
                            .column
                            .as_ref()
                            .expect("validate_aggregate_plan checked the column");
                        columns[col.as_str()].iter().sum()
                    }
                    AggFunc::Avg => {
                        let col = agg
                            .column
                            .as_ref()
                            .expect("validate_aggregate_plan checked the column");
                        let sum: f64 = columns[col.as_str()].iter().sum();
                        ratio_of_expectations(sum, count)
                    }
                };
                AggValue {
                    value,
                    ci_half_width: None,
                }
            })
            .collect();
        out.push(AggregateGroup {
            key,
            values,
            count_distribution: None,
            event_probability: None,
            worlds: None,
        });
    }
    Ok(AggregateResult {
        group_columns: group_columns_of(plan),
        aggregates: plan.aggregates.clone(),
        having: plan.having.clone(),
        strategy: "exact",
        groups: out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::CmpOp;
    use crate::sql::parse;
    use crate::value::ColumnType;

    fn plan_sql(sql: &str) -> PlannedQuery {
        match parse(sql).unwrap() {
            crate::sql::Statement::Select(sel) => Planner::plan(&sel).unwrap(),
            other => panic!("not a SELECT: {other:?}"),
        }
    }

    fn plan_err(sql: &str) -> DbError {
        match parse(sql).unwrap() {
            crate::sql::Statement::Select(sel) => Planner::plan(&sel).unwrap_err(),
            other => panic!("not a SELECT: {other:?}"),
        }
    }

    #[test]
    fn row_query_plans_the_full_pipeline() {
        let planned = plan_sql(
            "SELECT room FROM pv WHERE time = 1 THRESHOLD 0.25 TOP 3 \
             ORDER BY prob DESC LIMIT 2",
        );
        let rendered = planned.logical.to_string();
        assert!(rendered.starts_with("Project [room]"), "{rendered}");
        for node in ["Limit 2", "Sort prob DESC", "TopK k=3", "Threshold τ=0.25"] {
            assert!(rendered.contains(node), "{rendered} missing {node}");
        }
        assert!(rendered.trim_end().ends_with("Scan pv"), "{rendered}");
        assert_eq!(planned.strategy, StrategyKind::Exact);
        match &planned.physical.action {
            PhysicalAction::Rows { columns, .. } => assert_eq!(columns, &["room".to_string()]),
            other => panic!("wrong action: {other:?}"),
        }
    }

    #[test]
    fn aggregate_query_plans_an_aggregate_node() {
        let planned =
            plan_sql("SELECT g, COUNT(*), SUM(r) FROM pv GROUP BY g HAVING COUNT(*) >= 2 WITH WORLDS 100 SEED 4");
        let rendered = planned.logical.to_string();
        assert!(
            rendered.starts_with("Aggregate [COUNT(*), SUM(r)] GROUP BY g HAVING COUNT(*) >= 2"),
            "{rendered}"
        );
        assert!(matches!(planned.strategy, StrategyKind::Worlds(_)));
        let physical = planned.physical.to_string();
        assert!(physical.contains("aggregate("), "{physical}");
    }

    #[test]
    fn planner_rejects_invalid_shapes() {
        // Plain projected column not in GROUP BY.
        assert!(matches!(
            plan_err("SELECT room, COUNT(*) FROM pv"),
            DbError::Plan(_)
        ));
        // GROUP BY without aggregates.
        assert!(matches!(
            plan_err("SELECT room FROM pv GROUP BY room"),
            DbError::Plan(_)
        ));
        // HAVING without aggregates.
        assert!(matches!(
            plan_err("SELECT room FROM pv HAVING COUNT(*) >= 1"),
            DbError::Plan(_)
        ));
        // ORDER BY on an aggregate query.
        assert!(matches!(
            plan_err("SELECT COUNT(*) FROM pv ORDER BY room"),
            DbError::Plan(_)
        ));
        // HAVING over a non-COUNT aggregate.
        assert!(matches!(
            plan_err("SELECT COUNT(*) FROM pv HAVING SUM(r) >= 1"),
            DbError::Plan(_)
        ));
        // HAVING against text.
        assert!(matches!(
            plan_err("SELECT COUNT(*) FROM pv HAVING COUNT(*) >= 'two'"),
            DbError::Plan(_)
        ));
        // ORDER BY with WITH WORLDS keeps its historical error type.
        assert!(matches!(
            plan_err("SELECT * FROM pv ORDER BY prob WITH WORLDS 10"),
            DbError::InvalidWorlds(_)
        ));
    }

    fn fig1() -> ProbTable {
        let schema = Schema::of(&[("time", ColumnType::Int), ("room", ColumnType::Int)]);
        let mut v = ProbTable::new("pv", schema);
        for (t, room, p) in [
            (1, 1, 0.5),
            (1, 2, 0.1),
            (1, 3, 0.3),
            (1, 4, 0.1),
            (2, 1, 0.2),
            (2, 2, 0.4),
        ] {
            v.insert(vec![Value::Int(t), Value::Int(room)], p).unwrap();
        }
        v
    }

    fn run(sql: &str, rel: &Relation) -> QueryOutput {
        let planned = plan_sql(sql);
        planned.strategy(1).execute(rel, &planned.physical).unwrap()
    }

    #[test]
    fn exact_count_and_grouped_sum() {
        let rel = Relation::Probabilistic(fig1());
        // Global expected count: Σp = 1.6.
        let out = run("SELECT COUNT(*) FROM pv", &rel);
        let agg = match &out {
            QueryOutput::Aggregate(a) => a,
            other => panic!("wrong output: {other:?}"),
        };
        assert_eq!(agg.strategy, "exact");
        assert_eq!(agg.groups.len(), 1);
        assert!((agg.groups[0].values[0].value - 1.6).abs() < 1e-12);
        let dist = agg.groups[0].count_distribution.as_ref().unwrap();
        assert_eq!(dist.len(), 7);
        assert!((dist.iter().sum::<f64>() - 1.0).abs() < 1e-12);

        // Grouped by time: E[Σ room | t=1] = 2.0, E[Σ room | t=2] = 1.0.
        let out = run("SELECT time, SUM(room) FROM pv GROUP BY time", &rel);
        let agg = match &out {
            QueryOutput::Aggregate(a) => a,
            other => panic!("wrong output: {other:?}"),
        };
        assert_eq!(agg.groups.len(), 2);
        assert_eq!(agg.groups[0].key, vec![Value::Int(1)]);
        assert!((agg.groups[0].values[0].value - 2.0).abs() < 1e-12);
        assert_eq!(agg.groups[1].key, vec![Value::Int(2)]);
        assert!((agg.groups[1].values[0].value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn exact_having_reports_event_probability() {
        let rel = Relation::Probabilistic(fig1());
        let out = run(
            "SELECT COUNT(*) FROM pv WHERE time = 1 HAVING COUNT(*) >= 1",
            &rel,
        );
        let agg = match &out {
            QueryOutput::Aggregate(a) => a,
            other => panic!("wrong output: {other:?}"),
        };
        // P(count ≥ 1) = 1 − 0.5·0.9·0.7·0.9 = 0.7165.
        let p = agg.groups[0].event_probability.unwrap();
        assert!((p - 0.7165).abs() < 1e-12, "got {p}");
    }

    #[test]
    fn windowed_exact_aggregates_bucket_canonically() {
        let rel = Relation::Probabilistic(fig1());
        // Width 2 from origin 0 over time ∈ {1, 2}: bucket [0, 2) holds the
        // four t=1 tuples, bucket [2, 4) the two t=2 tuples.
        let out = run(
            "SELECT COUNT(*), SUM(room) FROM pv GROUP BY WINDOW(time, 2)",
            &rel,
        );
        let agg = out.aggregate().unwrap();
        assert_eq!(agg.group_columns, vec!["WINDOW(time, 2.0)".to_string()]);
        assert_eq!(agg.groups.len(), 2);
        assert_eq!(agg.groups[0].key, vec![Value::Float(0.0)]);
        assert!((agg.groups[0].values[0].value - 1.0).abs() < 1e-12); // Σp at t=1
        assert!((agg.groups[0].values[1].value - 2.0).abs() < 1e-12); // E[Σ room | t=1]
        assert_eq!(agg.groups[1].key, vec![Value::Float(2.0)]);
        assert!((agg.groups[1].values[0].value - 0.6).abs() < 1e-12);
        assert!((agg.groups[1].values[1].value - 1.0).abs() < 1e-12);

        // An origin shifts the alignment: width 2 from origin 1 puts both
        // timestamps into the single bucket [1, 3).
        let out = run("SELECT COUNT(*) FROM pv GROUP BY WINDOW(time, 2, 1)", &rel);
        let agg = out.aggregate().unwrap();
        assert_eq!(agg.groups.len(), 1);
        assert_eq!(agg.groups[0].key, vec![Value::Float(1.0)]);
        assert!((agg.groups[0].values[0].value - 1.6).abs() < 1e-12);
    }

    #[test]
    fn window_composes_with_group_by_columns() {
        let rel = Relation::Probabilistic(fig1());
        let out = run(
            "SELECT room, COUNT(*) FROM pv GROUP BY WINDOW(time, 2), room",
            &rel,
        );
        let agg = out.aggregate().unwrap();
        assert_eq!(
            agg.group_columns,
            vec!["WINDOW(time, 2.0)".to_string(), "room".to_string()]
        );
        // Bucket [0, 2) has rooms 1–4, bucket [2, 4) rooms 1–2: 6 groups in
        // canonical (bucket, room) order.
        assert_eq!(agg.groups.len(), 6);
        assert_eq!(agg.groups[0].key, vec![Value::Float(0.0), Value::Int(1)]);
        assert_eq!(
            agg.groups.last().unwrap().key,
            vec![Value::Float(2.0), Value::Int(2)]
        );
    }

    #[test]
    fn windowed_having_reports_per_bucket_event_probability() {
        let rel = Relation::Probabilistic(fig1());
        let out = run(
            "SELECT COUNT(*) FROM pv GROUP BY WINDOW(time, 2) HAVING COUNT(*) >= 1",
            &rel,
        );
        let agg = out.aggregate().unwrap();
        assert_eq!(agg.groups.len(), 2);
        // Bucket [0, 2): 1 − 0.5·0.9·0.7·0.9 = 0.7165; bucket [2, 4):
        // 1 − 0.8·0.6 = 0.52.
        let p0 = agg.groups[0].event_probability.unwrap();
        let p1 = agg.groups[1].event_probability.unwrap();
        assert!((p0 - 0.7165).abs() < 1e-12, "got {p0}");
        assert!((p1 - 0.52).abs() < 1e-12, "got {p1}");
    }

    #[test]
    fn windowed_worlds_aggregates_are_thread_invariant_and_converge() {
        let rel = Relation::Probabilistic(fig1());
        let sql = "SELECT COUNT(*), SUM(room) FROM pv GROUP BY WINDOW(time, 2) \
                   HAVING COUNT(*) >= 1 WITH WORLDS 40000 SEED 21";
        let planned = plan_sql(sql);
        let one = planned
            .strategy(1)
            .execute(&rel, &planned.physical)
            .unwrap();
        let eight = planned
            .strategy(8)
            .execute(&rel, &planned.physical)
            .unwrap();
        let (one, eight) = match (&one, &eight) {
            (QueryOutput::Aggregate(a), QueryOutput::Aggregate(b)) => (a, b),
            other => panic!("wrong outputs: {other:?}"),
        };
        assert_eq!(
            one.fingerprint(),
            eight.fingerprint(),
            "thread count changed windowed MC aggregates"
        );
        let exact = match run(
            "SELECT COUNT(*), SUM(room) FROM pv GROUP BY WINDOW(time, 2) HAVING COUNT(*) >= 1",
            &rel,
        ) {
            QueryOutput::Aggregate(a) => a,
            other => panic!("wrong output: {other:?}"),
        };
        assert_eq!(one.groups.len(), exact.groups.len());
        for (mc, ex) in one.groups.iter().zip(&exact.groups) {
            assert_eq!(mc.key, ex.key, "bucket keys must align");
            for (m, e) in mc.values.iter().zip(&ex.values) {
                let tol = 3.0 * m.ci_half_width.unwrap_or(0.05) + 1e-3;
                assert!(
                    (m.value - e.value).abs() <= tol,
                    "MC {} vs exact {} (tol {tol})",
                    m.value,
                    e.value
                );
            }
            let (mp, ep) = (mc.event_probability.unwrap(), ex.event_probability.unwrap());
            assert!((mp - ep).abs() < 0.02, "event MC {mp} vs exact {ep}");
        }
    }

    #[test]
    fn windowed_deterministic_aggregates_follow_sql_semantics() {
        let schema = Schema::of(&[("x", ColumnType::Float), ("v", ColumnType::Int)]);
        let mut t = Table::new("t", schema);
        // Negative values exercise the floor (not truncate-toward-zero)
        // bucket index: −0.5 lands in bucket [−5, 0), not [0, 5).
        for (x, v) in [(-0.5, 1), (1.0, 2), (4.9, 3), (5.0, 4), (12.0, 5)] {
            t.insert(vec![Value::Float(x), Value::Int(v)]).unwrap();
        }
        let rel = Relation::Deterministic(t);
        let out = run(
            "SELECT COUNT(*), SUM(v) FROM t GROUP BY WINDOW(x, 5) HAVING COUNT(*) >= 2",
            &rel,
        );
        let agg = out.aggregate().unwrap();
        // Buckets: [−5, 0) → {1}, [0, 5) → {2, 3}, [5, 10) → {4},
        // [10, 15) → {5}; HAVING keeps only [0, 5).
        assert_eq!(agg.groups.len(), 1);
        assert_eq!(agg.groups[0].key, vec![Value::Float(0.0)]);
        assert_eq!(agg.groups[0].values[0].value, 2.0);
        assert_eq!(agg.groups[0].values[1].value, 5.0);
    }

    #[test]
    fn window_over_text_column_errors() {
        let schema = Schema::of(&[("tag", ColumnType::Text)]);
        let mut v = ProbTable::new("pv", schema);
        v.insert(vec![Value::from("a")], 0.5).unwrap();
        let rel = Relation::Probabilistic(v);
        let planned = plan_sql("SELECT COUNT(*) FROM pv GROUP BY WINDOW(tag, 2)");
        let err = planned
            .strategy(1)
            .execute(&rel, &planned.physical)
            .unwrap_err();
        assert!(matches!(err, DbError::TypeMismatch { .. }));
    }

    #[test]
    fn window_plans_render_in_logical_and_physical_form() {
        let planned = plan_sql(
            "SELECT COUNT(*) FROM pv WHERE room = 1 GROUP BY WINDOW(time, 2.5, 1) \
             WITH WORLDS 100 SEED 3",
        );
        let logical = planned.logical.to_string();
        assert!(
            logical.contains("Window time width=2.5 origin=1"),
            "{logical}"
        );
        assert!(
            logical.starts_with("Aggregate [COUNT(*)]"),
            "window sits below the aggregate: {logical}"
        );
        let physical = planned.physical.to_string();
        assert!(
            physical.contains("window=WINDOW(time, 2.5, 1.0)"),
            "{physical}"
        );
        // Windows without aggregates have no plan.
        assert!(matches!(
            plan_err("SELECT room FROM pv GROUP BY WINDOW(time, 2)"),
            DbError::Plan(_)
        ));
    }

    #[test]
    fn having_sum_reports_the_dedicated_unsupported_shape() {
        let err = plan_err("SELECT COUNT(*) FROM pv HAVING SUM(room) >= 3");
        let DbError::Plan(msg) = &err else {
            panic!("expected DbError::Plan, got {err:?}");
        };
        assert!(msg.contains("SUM(room)"), "names the shape: {msg}");
        assert!(msg.contains("sum-distribution"), "names the fix: {msg}");
        assert!(msg.contains("ROADMAP"), "points at the open item: {msg}");
    }

    #[test]
    fn avg_and_expected_are_consistent() {
        let rel = Relation::Probabilistic(fig1());
        let out = run(
            "SELECT AVG(room), EXPECTED(room), COUNT(*) FROM pv WHERE time = 1",
            &rel,
        );
        let agg = match &out {
            QueryOutput::Aggregate(a) => a,
            other => panic!("wrong output: {other:?}"),
        };
        let avg = agg.groups[0].values[0].value;
        let expected = agg.groups[0].values[1].value;
        let count = agg.groups[0].values[2].value;
        assert!((expected - 2.0).abs() < 1e-12);
        assert!((avg - expected / count).abs() < 1e-12);
    }

    #[test]
    fn worlds_aggregates_converge_and_are_thread_invariant() {
        let rel = Relation::Probabilistic(fig1());
        let sql = "SELECT time, COUNT(*), SUM(room) FROM pv GROUP BY time \
                   HAVING COUNT(*) >= 1 WITH WORLDS 40000 SEED 11";
        let planned = plan_sql(sql);
        let one = planned
            .strategy(1)
            .execute(&rel, &planned.physical)
            .unwrap();
        let eight = planned
            .strategy(8)
            .execute(&rel, &planned.physical)
            .unwrap();
        let (one, eight) = match (&one, &eight) {
            (QueryOutput::Aggregate(a), QueryOutput::Aggregate(b)) => (a, b),
            other => panic!("wrong outputs: {other:?}"),
        };
        assert_eq!(
            one.fingerprint(),
            eight.fingerprint(),
            "thread count changed MC aggregates"
        );
        assert_eq!(one.strategy, "worlds");
        assert_eq!(one.groups.len(), 2);

        // Compare against the exact strategy group by group.
        let exact = match run(
            "SELECT time, COUNT(*), SUM(room) FROM pv GROUP BY time HAVING COUNT(*) >= 1",
            &rel,
        ) {
            QueryOutput::Aggregate(a) => a,
            other => panic!("wrong output: {other:?}"),
        };
        for (mc, ex) in one.groups.iter().zip(&exact.groups) {
            assert_eq!(mc.key, ex.key);
            for (m, e) in mc.values.iter().zip(&ex.values) {
                let tol = 3.0 * m.ci_half_width.unwrap_or(0.05) + 1e-3;
                assert!(
                    (m.value - e.value).abs() <= tol,
                    "MC {} vs exact {} (tol {tol})",
                    m.value,
                    e.value
                );
            }
            let (mp, ep) = (mc.event_probability.unwrap(), ex.event_probability.unwrap());
            assert!((mp - ep).abs() < 0.02, "event MC {mp} vs exact {ep}");
        }
    }

    #[test]
    fn deterministic_aggregates_follow_sql_semantics() {
        let schema = Schema::of(&[("g", ColumnType::Int), ("x", ColumnType::Float)]);
        let mut t = Table::new("t", schema);
        for (g, x) in [(1, 1.0), (1, 3.0), (2, 10.0)] {
            t.insert(vec![Value::Int(g), Value::Float(x)]).unwrap();
        }
        let rel = Relation::Deterministic(t);
        let out = run(
            "SELECT g, COUNT(*), SUM(x), AVG(x) FROM t GROUP BY g HAVING COUNT(*) >= 2",
            &rel,
        );
        let agg = match &out {
            QueryOutput::Aggregate(a) => a,
            other => panic!("wrong output: {other:?}"),
        };
        // HAVING filtered group g=2 away.
        assert_eq!(agg.groups.len(), 1);
        assert_eq!(agg.groups[0].key, vec![Value::Int(1)]);
        assert_eq!(agg.groups[0].values[0].value, 2.0);
        assert_eq!(agg.groups[0].values[1].value, 4.0);
        assert_eq!(agg.groups[0].values[2].value, 2.0);
        assert_eq!(agg.groups[0].event_probability, None);
    }

    #[test]
    fn text_column_aggregates_error() {
        let schema = Schema::of(&[("tag", ColumnType::Text)]);
        let mut v = ProbTable::new("pv", schema);
        v.insert(vec![Value::from("a")], 0.5).unwrap();
        let rel = Relation::Probabilistic(v);
        let planned = plan_sql("SELECT SUM(tag) FROM pv");
        let err = planned
            .strategy(1)
            .execute(&rel, &planned.physical)
            .unwrap_err();
        assert!(matches!(err, DbError::TypeMismatch { .. }));
    }

    #[test]
    fn hand_built_invalid_plans_error_instead_of_panicking() {
        // The plan structs have public fields, so execute_planned can see
        // shapes Planner::plan would never emit — they must surface
        // DbError::Plan, not hit the evaluators' internal expects.
        let rel = Relation::Probabilistic(fig1());
        let det = Relation::Deterministic(Table::new("t", Schema::of(&[("g", ColumnType::Int)])));
        let broken = [
            AggregatePlan {
                window: None,
                group_by: Vec::new(),
                aggregates: vec![AggExpr {
                    func: AggFunc::Sum,
                    column: None, // SUM without a column
                }],
                having: None,
            },
            AggregatePlan {
                window: None,
                group_by: Vec::new(),
                aggregates: vec![AggExpr::count()],
                having: Some(HavingClause {
                    agg: AggExpr::count(),
                    op: CmpOp::Ge,
                    value: Value::from("two"), // text literal
                }),
            },
            AggregatePlan {
                window: Some(crate::sql::WindowSpec {
                    column: "time".into(),
                    width: 0.0, // the parser would reject this width
                    origin: None,
                }),
                group_by: Vec::new(),
                aggregates: vec![AggExpr::count()],
                having: None,
            },
            AggregatePlan {
                window: Some(crate::sql::WindowSpec {
                    column: "time".into(),
                    width: 1.0,
                    origin: Some(f64::INFINITY), // non-finite origin
                }),
                group_by: Vec::new(),
                aggregates: vec![AggExpr::count()],
                having: None,
            },
        ];
        for agg_plan in broken {
            let physical = PhysicalPlan {
                table: "pv".into(),
                predicate: Vec::new(),
                threshold: None,
                top: None,
                action: PhysicalAction::Aggregate(agg_plan),
            };
            for (strategy, relation) in [
                (Box::new(ExactStrategy) as Box<dyn EvalStrategy>, &rel),
                (Box::new(ExactStrategy) as Box<dyn EvalStrategy>, &det),
                (
                    Box::new(WorldsStrategy {
                        clause: WorldsClause {
                            worlds: 64,
                            seed: None,
                            confidence: None,
                        },
                        threads: 1,
                    }) as Box<dyn EvalStrategy>,
                    &rel,
                ),
            ] {
                assert!(
                    matches!(strategy.execute(relation, &physical), Err(DbError::Plan(_))),
                    "{} strategy accepted an invalid plan",
                    strategy.name()
                );
            }
        }
    }

    #[test]
    fn tail_probability_covers_all_operators() {
        let dist = [0.25, 0.25, 0.5]; // P(0), P(1), P(2)
        assert!((tail_probability(&dist, CmpOp::Ge, 1.0) - 0.75).abs() < 1e-12);
        assert!((tail_probability(&dist, CmpOp::Gt, 1.0) - 0.5).abs() < 1e-12);
        assert!((tail_probability(&dist, CmpOp::Le, 1.0) - 0.5).abs() < 1e-12);
        assert!((tail_probability(&dist, CmpOp::Lt, 1.0) - 0.25).abs() < 1e-12);
        assert!((tail_probability(&dist, CmpOp::Eq, 1.0) - 0.25).abs() < 1e-12);
        assert!((tail_probability(&dist, CmpOp::Ne, 1.0) - 0.75).abs() < 1e-12);
        // A fractional threshold: P(count ≥ 1.5) = P(count = 2).
        assert!((tail_probability(&dist, CmpOp::Ge, 1.5) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn explain_report_renders_all_sections() {
        let planned = plan_sql("SELECT COUNT(*) FROM pv WITH WORLDS 500 SEED 2");
        let report = ExplainReport {
            relation: "pv: probabilistic (6 tuples)".into(),
            logical: planned.logical.to_string(),
            physical: planned.physical.to_string(),
            strategy: planned.strategy(0).describe(),
        };
        let text = report.to_string();
        assert!(text.contains("Aggregate [COUNT(*)]"), "{text}");
        assert!(text.contains("Scan pv"), "{text}");
        assert!(text.contains("strategy: worlds"), "{text}");
        assert!(text.contains("max_worlds=500"), "{text}");
        assert!(text.contains("seed=2"), "{text}");
    }

    #[test]
    fn group_rows_orders_groups_canonically() {
        let schema = Schema::of(&[("g", ColumnType::Int)]);
        let mut v = ProbTable::new("pv", schema);
        for g in [5, 1, 3, 1, 5] {
            v.insert(vec![Value::Int(g)], 0.5).unwrap();
        }
        let keep: Vec<usize> = (0..v.len()).collect();
        let groups = group_rows(v.schema(), v.rows(), &keep, None, &["g".to_string()]).unwrap();
        let keys: Vec<i64> = groups.iter().map(|(k, _)| k[0].as_i64().unwrap()).collect();
        assert_eq!(keys, vec![1, 3, 5]);
        assert_eq!(groups[0].1, vec![1, 3]);
        // Unknown group column errors.
        assert!(matches!(
            group_rows(v.schema(), v.rows(), &keep, None, &["nope".to_string()]),
            Err(DbError::UnknownColumn(_))
        ));
    }

    #[test]
    fn predicate_in_plan_display_names_comparisons() {
        let planned = plan_sql("SELECT * FROM pv WHERE room = 2 AND prob >= 0.1");
        let rendered = planned.logical.to_string();
        assert!(
            rendered.contains("Filter room = 2 AND prob >= 0.1"),
            "{rendered}"
        );
    }
}
