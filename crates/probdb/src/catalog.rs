//! The in-memory database: named relations plus statement execution.
//!
//! [`Database`] owns deterministic tables and probabilistic views and
//! executes parsed [`Statement`]s. `SELECT`s are **planned, not
//! dispatched**: the statement is handed to [`Planner::plan`], which builds
//! a logical/physical plan and picks an evaluation strategy
//! ([`crate::plan::ExactStrategy`], [`crate::plan::WorldsStrategy`] under
//! `WITH WORLDS`, or [`crate::plan::SynopsisStrategy`] under
//! `WITH SYNOPSIS`, fed the relation's precomputed [`RelationSynopses`]);
//! the catalog's job shrinks to resolving the scanned relation and running
//! the chosen strategy. `EXPLAIN` returns the plan instead of running it.
//!
//! The one statement the catalog cannot execute by itself is `CREATE VIEW
//! … AS DENSITY …` — inferring densities is the job of the `tspdb-core`
//! crate — so [`Database::execute_with`] accepts a *density handler*
//! callback that the upper layer provides. This keeps the dependency arrow
//! pointing from the paper's contribution down into the substrate, never
//! backwards.

use crate::error::DbError;
use crate::plan::{AggregateResult, ExplainReport, PlannedQuery, Planner};
use crate::plan_cache::{PlanCache, PlanCacheStats};
use crate::schema::Schema;
use crate::shard::ShardMap;
use crate::sql::{parse, DensityViewSpec, SelectStmt, Statement};
use crate::table::{ProbTable, Table};
use crate::value::{ColumnType, Value};
use crate::worlds::WorldsResult;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use tspdb_stats::synopsis::{merge_sorted_pairs, ProbHistogram};

/// Probabilistic views at or above this tuple count are sharded
/// automatically on registration (below it, a scan is cheap enough that
/// fan-out overhead dominates).
pub const AUTO_SHARD_MIN_ROWS: usize = 32_768;

/// Target tuples per shard when auto-sharding (the shard count is
/// `len / AUTO_SHARD_TARGET_ROWS`, clamped to `2..=64`).
pub const AUTO_SHARD_TARGET_ROWS: usize = 8_192;

/// Default bucket count for relation synopses (`WITH SYNOPSIS` without a
/// `BUCKETS` clause, and the catalog's precomputed histograms).
pub const DEFAULT_SYNOPSIS_BUCKETS: usize = 64;

/// The precomputed probabilistic-histogram synopses of one relation: a
/// B-bucket [`ProbHistogram`] per numeric column, all built from the same
/// tuple snapshot.
///
/// The catalog keeps one per probabilistic view behind an [`Arc`] and
/// replaces the whole value on every write (views are registered whole),
/// so readers clone the `Arc` lock-free and never observe a half-rebuilt
/// synopsis.
#[derive(Debug, Clone, PartialEq)]
pub struct RelationSynopses {
    buckets: usize,
    tuples: usize,
    columns: BTreeMap<String, ProbHistogram>,
    /// The canonical sorted `(value, probability)` run each histogram was
    /// built from, retained per column so an append can stable-merge the
    /// new tuples' run into it and rebuild buckets from the merged run —
    /// bit-identical to a from-scratch build over the whole view, without
    /// re-sorting the old tuples (the Cormode & Garofalakis incremental
    /// recipe). Empty on [`RelationSynopses::merge_to`]-derived copies,
    /// which are per-query throwaways never appended to.
    pairs: BTreeMap<String, Vec<(f64, f64)>>,
}

impl RelationSynopses {
    /// Builds `buckets`-bucket histograms for every numeric column of the
    /// view (text columns have no value order to bucket and are skipped).
    pub fn build(t: &ProbTable, buckets: usize) -> Self {
        Self::build_from(t, 0, buckets, &BTreeMap::new())
    }

    /// The incremental form of [`RelationSynopses::build`]: `self` must
    /// summarise exactly the first `from_row` rows of `t`; the result
    /// summarises all of `t` and is **bit-identical** to
    /// `RelationSynopses::build(t, self.buckets)`. Only the appended
    /// suffix is extracted and sorted; the retained runs absorb it by
    /// stable merge.
    pub fn append_from(&self, t: &ProbTable, from_row: usize) -> Self {
        Self::build_from(t, from_row, self.buckets, &self.pairs)
    }

    fn build_from(
        t: &ProbTable,
        from_row: usize,
        buckets: usize,
        base: &BTreeMap<String, Vec<(f64, f64)>>,
    ) -> Self {
        let mut columns = BTreeMap::new();
        let mut pairs = BTreeMap::new();
        for c in 0..t.schema().arity() {
            let (name, ty) = t.schema().column(c);
            if ty == ColumnType::Text {
                continue;
            }
            // A column without a retained run (never the case for
            // catalog-built synopses; schemas are fixed per view) falls
            // back to extracting the whole column from row 0.
            let start = if base.contains_key(name) { from_row } else { 0 };
            let delta = ProbHistogram::prepare_pairs(
                t.rows()[start..]
                    .iter()
                    .zip(&t.probs()[start..])
                    .filter_map(|(row, &p)| row[c].as_f64().map(|v| (v, p)))
                    .collect(),
            );
            // A stable merge of two stably-sorted runs (base first on
            // ties) is exactly the stable sort of their concatenation, so
            // the merged run — and every bucket built from it — matches a
            // from-scratch build bit for bit.
            let run = match base.get(name) {
                Some(b) => merge_sorted_pairs(b, &delta),
                None => delta,
            };
            columns.insert(name.to_string(), ProbHistogram::from_sorted(&run, buckets));
            pairs.insert(name.to_string(), run);
        }
        RelationSynopses {
            buckets,
            tuples: t.len(),
            columns,
            pairs,
        }
    }

    /// The bucket count the histograms were built with.
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Tuples summarised (the view's length at build time).
    pub fn tuples(&self) -> usize {
        self.tuples
    }

    /// The histogram of one column (`None` for text/unknown columns).
    pub fn column(&self, name: &str) -> Option<&ProbHistogram> {
        self.columns.get(name)
    }

    /// Names of the summarised columns, sorted.
    pub fn column_names(&self) -> impl Iterator<Item = &str> {
        self.columns.keys().map(String::as_str)
    }

    /// The lexicographically-first summarised column, if any — the
    /// deterministic anchor for pure-`COUNT` queries.
    pub fn first_column(&self) -> Option<&str> {
        self.columns.keys().next().map(String::as_str)
    }

    /// A coarser view with every histogram merged down to `buckets`
    /// buckets (bucket payloads are additive, so derived answers keep
    /// sound bounds).
    pub fn merge_to(&self, buckets: usize) -> Self {
        RelationSynopses {
            buckets,
            tuples: self.tuples,
            columns: self
                .columns
                .iter()
                .map(|(name, hist)| (name.clone(), hist.merge_to(buckets)))
                .collect(),
            // Coarsened copies are per-query throwaways; cloning the runs
            // into them would only burn memory.
            pairs: BTreeMap::new(),
        }
    }
}

/// A stored relation: deterministic or probabilistic.
#[derive(Debug, Clone)]
pub enum Relation {
    /// Ordinary table.
    Deterministic(Table),
    /// Tuple-independent probabilistic view.
    Probabilistic(ProbTable),
}

/// An immutable, internally-consistent snapshot of one relation and the
/// derived structures a query strategy consumes — see
/// [`Database::snapshot`]. All three `Arc`s were taken under the same
/// catalog borrow, so the synopses and shard layout always describe
/// exactly the tuples in `relation`.
#[derive(Debug, Clone)]
pub struct RelationSnapshot {
    /// The relation rung.
    pub relation: Arc<Relation>,
    /// Precomputed histogram synopses (probabilistic views only).
    pub synopses: Option<Arc<RelationSynopses>>,
    /// Shard layout (sharded probabilistic views only).
    pub shards: Option<Arc<ShardMap>>,
}

/// Result of executing one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    /// DDL/DML statements produce no rows.
    None,
    /// Deterministic result set.
    Rows(Table),
    /// Probabilistic result set.
    ProbRows(ProbTable),
    /// Monte-Carlo estimate from a `WITH WORLDS` query: the distributional
    /// answers plus per-query sampling statistics (worlds sampled, CIs,
    /// wall time).
    Worlds(WorldsResult),
    /// Result of an aggregate query (`COUNT(*)` / `SUM` / `AVG` /
    /// `EXPECTED`, optionally grouped, optionally with a `HAVING` event
    /// probability) from either evaluation strategy.
    Aggregate(AggregateResult),
    /// The plan report of an `EXPLAIN` statement.
    Explain(ExplainReport),
}

impl QueryOutput {
    /// Convenience accessor for deterministic results.
    pub fn rows(&self) -> Option<&Table> {
        match self {
            QueryOutput::Rows(t) => Some(t),
            _ => None,
        }
    }

    /// Convenience accessor for probabilistic results.
    pub fn prob_rows(&self) -> Option<&ProbTable> {
        match self {
            QueryOutput::ProbRows(t) => Some(t),
            _ => None,
        }
    }

    /// Convenience accessor for `WITH WORLDS` results.
    pub fn worlds(&self) -> Option<&WorldsResult> {
        match self {
            QueryOutput::Worlds(w) => Some(w),
            _ => None,
        }
    }

    /// Convenience accessor for aggregate results.
    pub fn aggregate(&self) -> Option<&AggregateResult> {
        match self {
            QueryOutput::Aggregate(a) => Some(a),
            _ => None,
        }
    }

    /// Convenience accessor for `EXPLAIN` reports.
    pub fn explain(&self) -> Option<&ExplainReport> {
        match self {
            QueryOutput::Explain(e) => Some(e),
            _ => None,
        }
    }

    /// The variant's name, for logs and diagnostics.
    pub fn variant_name(&self) -> &'static str {
        match self {
            QueryOutput::None => "None",
            QueryOutput::Rows(_) => "Rows",
            QueryOutput::ProbRows(_) => "ProbRows",
            QueryOutput::Worlds(_) => "Worlds",
            QueryOutput::Aggregate(_) => "Aggregate",
            QueryOutput::Explain(_) => "Explain",
        }
    }
}

/// Signature of the density-view handler supplied by the upper layer: given
/// the source table and the parsed view spec, produce the probabilistic
/// view contents.
pub type DensityHandler<'a> =
    dyn FnMut(&Table, &DensityViewSpec) -> Result<ProbTable, DbError> + 'a;

/// A fallback provider of relations that are not resident in memory —
/// implemented by the persistent storage engine upstream (`tspdb-storage`),
/// which materialises relations from its paged on-disk tables.
///
/// The substrate stays storage-agnostic: it only asks for a relation by
/// name when the in-memory catalog misses. Whatever comes back is executed
/// by the *same* strategies over the *same* tuple representation, so for a
/// fixed query + seed the results are bit-identical whether the relation
/// was resident or scanned from the source.
pub trait ScanSource: std::fmt::Debug + Send + Sync {
    /// Materialises the named relation, or `None` if the source doesn't
    /// hold it either.
    fn scan(&self, name: &str) -> Result<Option<Relation>, DbError>;
    /// Opens a lazy tuple stream over the named relation, or `None` when
    /// the source either doesn't hold it or can't stream (the default:
    /// sources without a paged layout fall back to [`ScanSource::scan`]).
    /// The executor uses this to filter a disk-resident relation tuple by
    /// tuple instead of materialising it whole.
    fn scan_stream(&self, name: &str) -> Result<Option<Box<dyn TupleStream>>, DbError> {
        let _ = name;
        Ok(None)
    }
    /// Names of all relations the source can scan.
    fn names(&self) -> Vec<String>;
}

/// One streamed tuple: the row, plus its existence probability for
/// probabilistic relations (`None` for deterministic ones).
pub type StreamedTuple = (Vec<Value>, Option<f64>);

/// A pull-based tuple stream over one relation, yielded by
/// [`ScanSource::scan_stream`]. Tuples arrive in the relation's canonical
/// (insertion) order — the same order a materialised scan would hold them
/// — so anything computed from the stream is bit-identical to the
/// materialised path.
pub trait TupleStream {
    /// Column layout of the streamed tuples.
    fn schema(&self) -> &Schema;
    /// Whether tuples carry an existence probability.
    fn probabilistic(&self) -> bool;
    /// The next tuple, or `None` at exhaustion.
    fn next_tuple(&mut self) -> Result<Option<StreamedTuple>, DbError>;
}

/// Drains a lazy stream into a whole relation (used when a strategy needs
/// every tuple anyway — the whole-relation synopsis path).
fn materialize_stream(
    name: &str,
    schema: &Schema,
    stream: &mut dyn TupleStream,
) -> Result<Relation, DbError> {
    if stream.probabilistic() {
        let mut t = ProbTable::new(name, schema.clone());
        while let Some((row, prob)) = stream.next_tuple()? {
            let prob = prob.ok_or_else(|| {
                DbError::Storage(format!("{name}: probabilistic tuple without probability"))
            })?;
            t.insert(row, prob)?;
        }
        Ok(Relation::Probabilistic(t))
    } else {
        let mut t = Table::new(name, schema.clone());
        while let Some((row, _)) = stream.next_tuple()? {
            t.insert(row)?;
        }
        Ok(Relation::Deterministic(t))
    }
}

/// An in-memory database of named relations.
#[derive(Debug, Default)]
pub struct Database {
    /// The relation rungs, in the σ-cache idiom: each relation sits behind
    /// an immutable [`Arc`] snapshot. Writes swap in a new rung
    /// ([`Arc::make_mut`] copies only when a reader still holds the old
    /// one), so a query path that cloned the `Arc` keeps executing against
    /// a consistent MVCC-style snapshot while appends land.
    relations: BTreeMap<String, Arc<Relation>>,
    /// Fallback relation provider consulted when `relations` misses (the
    /// persistent storage engine, when the database runs on one).
    scan_source: Option<Arc<dyn ScanSource>>,
    /// Names dropped since the scan source last checkpointed. The source
    /// still holds their pages until the next checkpoint rewrites the
    /// file; these tombstones stop the fallback from resurrecting them.
    dropped: std::collections::BTreeSet<String>,
    /// Precomputed synopses, keyed by relation name. Maintained eagerly on
    /// the write paths (`&mut self`: view registration and drops), so the
    /// shared read path clones an [`Arc`] snapshot without locking.
    synopses: BTreeMap<String, Arc<RelationSynopses>>,
    /// Shard layouts of probabilistic views, keyed by relation name.
    /// Rebuilt whole on every write (like `synopses`), so the shared read
    /// path clones an [`Arc`] snapshot that always matches the tuples.
    shards: BTreeMap<String, Arc<ShardMap>>,
    /// Explicitly-requested shard layouts (`shard_relation`): column +
    /// count, re-applied whenever the view is re-registered. Auto-sharded
    /// views have no spec and are re-derived from their size.
    shard_specs: BTreeMap<String, (String, usize)>,
    /// Catalog (DDL) generation: bumped by every statement that changes
    /// the *shape* of the catalog — CREATE/DROP, view re-registration,
    /// shard re-layout. Cached plans are keyed by the generation they were
    /// planned under and lazily evicted when it moves on.
    generation: AtomicU64,
    /// Data generation: bumped by writes that only add tuples (INSERT and
    /// the batched append paths). Kept separate from the DDL generation so
    /// cached plans — which embed no tuple-derived state — survive pure
    /// appends; observers that need "did any data change?" (TAIL polling,
    /// dirty-relation checkpoint tracking) watch this counter instead.
    data_generation: AtomicU64,
    /// Shared plan cache (see [`crate::plan_cache`]). Interior-mutable so
    /// the concurrent read path (`&self`) can record hits and insert
    /// freshly-planned statements.
    plan_cache: PlanCache,
    /// Fork-join width for `WITH WORLDS` queries (0 = one thread per core).
    /// Only wall-clock is affected — MC estimates are bit-identical at
    /// every width. Stored atomically so the knob is tunable from the
    /// shared read path (`&self`) without an exclusive borrow — a server
    /// session can retune MC parallelism without blocking readers.
    worlds_threads: AtomicUsize,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Sets the fork-join width used by `WITH WORLDS` queries (`0` = one
    /// thread per core). The executor's determinism contract means this
    /// never changes query results, only their latency — which is why a
    /// shared borrow suffices: concurrent readers may observe either the
    /// old or the new width, but their estimates are identical under both.
    pub fn set_worlds_threads(&self, threads: usize) {
        self.worlds_threads.store(threads, Ordering::Relaxed);
    }

    /// The configured `WITH WORLDS` fork-join width.
    pub fn worlds_threads(&self) -> usize {
        self.worlds_threads.load(Ordering::Relaxed)
    }

    /// The catalog generation: a counter bumped by every DDL/write, used
    /// to key (and invalidate) cached plans.
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Relaxed)
    }

    fn bump_generation(&self) {
        self.generation.fetch_add(1, Ordering::Relaxed);
    }

    /// The data generation: bumped by tuple-only writes (INSERT/appends),
    /// which deliberately do **not** move the DDL generation — plans stay
    /// cached across pure appends.
    pub fn data_generation(&self) -> u64 {
        self.data_generation.load(Ordering::Relaxed)
    }

    fn bump_data_generation(&self) {
        self.data_generation.fetch_add(1, Ordering::Relaxed);
    }

    /// Plan-cache effectiveness counters.
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// The plan cached under this exact statement text at the current
    /// generation, if any — the parse-free fast path. Stale entries
    /// (older generation) are evicted, never returned.
    pub fn cached_plan(&self, sql: &str) -> Option<Arc<PlannedQuery>> {
        self.plan_cache.lookup(sql, self.generation())
    }

    /// Plans a `SELECT` through the shared plan cache: a normalized-text
    /// hit (the statement's `Display`, which the parser round-trips)
    /// reuses the cached plan and aliases this spelling's raw text for
    /// next time; a miss plans fresh and caches under both keys.
    pub fn plan_select_cached(
        &self,
        sql: &str,
        sel: &SelectStmt,
    ) -> Result<Arc<PlannedQuery>, DbError> {
        let generation = self.generation();
        let normalized = sel.to_string();
        if let Some(plan) = self.plan_cache.lookup(&normalized, generation) {
            if normalized != sql {
                self.plan_cache.insert(&[sql], &plan, generation);
            }
            return Ok(plan);
        }
        self.plan_cache.record_miss();
        let planned = Arc::new(Planner::plan(sel)?);
        if normalized == sql {
            self.plan_cache.insert(&[sql], &planned, generation);
        } else {
            self.plan_cache
                .insert(&[sql, normalized.as_str()], &planned, generation);
        }
        Ok(planned)
    }

    /// [`Database::query`] through the shared plan cache: hot statements
    /// skip parse+plan entirely (raw-text hit) or at least planning
    /// (normalized hit). Semantics are identical to [`Database::query`].
    pub fn query_cached(&self, sql: &str) -> Result<QueryOutput, DbError> {
        if let Some(planned) = self.cached_plan(sql) {
            return self.execute_planned(&planned);
        }
        match parse(sql)? {
            Statement::Select(sel) => {
                let planned = self.plan_select_cached(sql, &sel)?;
                self.execute_planned(&planned)
            }
            Statement::Explain(sel) => self.explain_select(&sel),
            other => Err(DbError::ReadOnly(format!("{other:?}"))),
        }
    }

    /// Names of all stored relations, sorted.
    pub fn relation_names(&self) -> Vec<&str> {
        self.relations.keys().map(String::as_str).collect()
    }

    /// Names of all reachable relations — resident ones plus any the
    /// attached scan source holds — sorted and deduplicated.
    pub fn all_relation_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.relations.keys().cloned().collect();
        if let Some(source) = &self.scan_source {
            names.extend(
                source
                    .names()
                    .into_iter()
                    .filter(|n| !self.dropped.contains(n)),
            );
        }
        names.sort();
        names.dedup();
        names
    }

    /// Attaches the fallback relation provider consulted when the
    /// in-memory catalog misses (the persistent storage engine).
    pub fn attach_scan_source(&mut self, source: Arc<dyn ScanSource>) {
        self.scan_source = Some(source);
        // The reachable-relation set just changed shape.
        self.bump_generation();
    }

    /// Whether a scan source is attached.
    pub fn has_scan_source(&self) -> bool {
        self.scan_source.is_some()
    }

    /// Materialises a relation from the attached scan source (`None` when
    /// no source is attached or the source doesn't hold the name).
    fn scan_from_source(&self, name: &str) -> Result<Option<Relation>, DbError> {
        if self.dropped.contains(name) {
            return Ok(None);
        }
        match &self.scan_source {
            Some(source) => source.scan(name),
            None => Ok(None),
        }
    }

    /// Drops a relation's tuples from memory while **keeping its
    /// synopses**, so later reads fall through to the scan source. Keeping
    /// the synopses means planner strategy selection — and therefore every
    /// query result — is identical for the disk-backed relation and the
    /// resident one. Refuses to evict anything the attached source cannot
    /// serve back (that would be data loss, not eviction).
    pub fn evict_relation(&mut self, name: &str) -> Result<(), DbError> {
        if !self.relations.contains_key(name) {
            return Err(DbError::UnknownTable(name.to_string()));
        }
        let served = self
            .scan_source
            .as_ref()
            .is_some_and(|s| s.names().iter().any(|n| n == name));
        if !served {
            return Err(DbError::Storage(format!(
                "evicting {name:?} would lose data: the scan source cannot serve it"
            )));
        }
        self.relations.remove(name);
        Ok(())
    }

    /// Loads a relation back into memory from the scan source if it is not
    /// already resident. Returns whether the relation is resident
    /// afterwards. Write paths call this so statements hit evicted
    /// relations transparently.
    pub fn ensure_resident(&mut self, name: &str) -> Result<bool, DbError> {
        if self.relations.contains_key(name) {
            return Ok(true);
        }
        match self.scan_from_source(name)? {
            Some(Relation::Deterministic(t)) => {
                self.relations
                    .insert(name.to_string(), Arc::new(Relation::Deterministic(t)));
                Ok(true)
            }
            Some(Relation::Probabilistic(t)) => {
                // Goes through registration so the synopses are (re)built
                // deterministically from the recovered tuples.
                self.register_prob_table(t)?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// Registers a deterministic table (errors on name collision).
    pub fn register_table(&mut self, table: Table) -> Result<(), DbError> {
        let name = table.name().to_string();
        if self.relations.contains_key(&name) {
            return Err(DbError::DuplicateTable(name));
        }
        self.dropped.remove(&name);
        self.relations
            .insert(name, Arc::new(Relation::Deterministic(table)));
        self.bump_generation();
        Ok(())
    }

    /// Registers a probabilistic view, replacing any same-named view (views
    /// are derived data, so re-creation is allowed; tables are not
    /// replaceable). The view's synopses are (re)built here — every write
    /// goes through registration, so a cached synopsis never outlives the
    /// tuples it summarises.
    pub fn register_prob_table(&mut self, table: ProbTable) -> Result<(), DbError> {
        let name = table.name().to_string();
        if matches!(
            self.relations.get(&name).map(|r| r.as_ref()),
            Some(Relation::Deterministic(_))
        ) {
            return Err(DbError::DuplicateTable(name));
        }
        self.dropped.remove(&name);
        self.synopses.insert(
            name.clone(),
            Arc::new(RelationSynopses::build(&table, DEFAULT_SYNOPSIS_BUCKETS)),
        );
        self.relations
            .insert(name.clone(), Arc::new(Relation::Probabilistic(table)));
        self.reshard(&name);
        self.bump_generation();
        Ok(())
    }

    /// Appends a batch of rows to a deterministic table — the write half
    /// of the streaming ingest path (a plain `INSERT` routes here too).
    ///
    /// The whole batch is validated against the schema **before** the
    /// relation is touched, so a bad row rejects the batch atomically
    /// instead of leaving a prefix behind. The append swaps in a new
    /// relation rung and bumps only the *data* generation: cached plans
    /// survive, in-flight snapshot readers keep their old rung.
    pub fn append_rows(&mut self, table: &str, rows: Vec<Vec<Value>>) -> Result<usize, DbError> {
        // An evicted relation comes back into memory before the write so
        // appends hit disk-backed tables transparently.
        self.ensure_resident(table)?;
        let rel = self
            .relations
            .get_mut(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))?;
        let Relation::Deterministic(t) = rel.as_ref() else {
            return Err(DbError::Unsupported(
                "INSERT into probabilistic views is not allowed; views are derived".into(),
            ));
        };
        let checked = rows
            .into_iter()
            .map(|row| t.schema().check_row(row))
            .collect::<Result<Vec<_>, _>>()?;
        let appended = checked.len();
        let Relation::Deterministic(t) = Arc::make_mut(rel) else {
            unreachable!("variant checked above");
        };
        for row in checked {
            t.insert(row)?;
        }
        self.bump_data_generation();
        Ok(appended)
    }

    /// Appends pre-derived tuples to a probabilistic view — the path
    /// incremental Ω-view maintenance lands its suffix through. Validation
    /// is batch-atomic like [`Database::append_rows`]; the view's synopses
    /// absorb the suffix incrementally via
    /// [`RelationSynopses::append_from`] (bit-identical to a rebuild), the
    /// shard layout is re-derived, and only the data generation moves.
    pub fn append_prob_rows(
        &mut self,
        view: &str,
        rows: Vec<Vec<Value>>,
        probs: Vec<f64>,
    ) -> Result<usize, DbError> {
        if rows.len() != probs.len() {
            return Err(DbError::Unsupported(format!(
                "append_prob_rows: {} rows but {} probabilities",
                rows.len(),
                probs.len()
            )));
        }
        self.ensure_resident(view)?;
        let rel = self
            .relations
            .get_mut(view)
            .ok_or_else(|| DbError::UnknownTable(view.to_string()))?;
        let Relation::Probabilistic(t) = rel.as_ref() else {
            return Err(DbError::Unsupported(format!(
                "append_prob_rows targets probabilistic views; {view:?} is deterministic"
            )));
        };
        if let Some(&p) = probs
            .iter()
            .find(|p| !(0.0..=1.0).contains(*p) || p.is_nan())
        {
            return Err(DbError::InvalidProbability(p));
        }
        let from_row = t.len();
        let checked = rows
            .into_iter()
            .map(|row| t.schema().check_row(row))
            .collect::<Result<Vec<_>, _>>()?;
        let appended = checked.len();
        let Relation::Probabilistic(t) = Arc::make_mut(rel) else {
            unreachable!("variant checked above");
        };
        for (row, p) in checked.into_iter().zip(&probs) {
            t.insert(row, *p)?;
        }
        let synopses = match self.synopses.get(view) {
            Some(base) => base.append_from(t, from_row),
            None => RelationSynopses::build(t, DEFAULT_SYNOPSIS_BUCKETS),
        };
        self.synopses.insert(view.to_string(), Arc::new(synopses));
        self.reshard(view);
        self.bump_data_generation();
        Ok(appended)
    }

    /// Pins a shard layout for a probabilistic view: `count` contiguous
    /// shards along `column`, rebuilt automatically whenever the view is
    /// re-registered by a write. Sharding never changes results — only
    /// how the scan is restricted (pruned + fanned out) — so the layout
    /// is a pure performance knob.
    pub fn shard_relation(
        &mut self,
        name: &str,
        column: &str,
        count: usize,
    ) -> Result<(), DbError> {
        self.ensure_resident(name)?;
        let map = match self.relations.get(name).map(|r| r.as_ref()) {
            Some(Relation::Probabilistic(t)) => ShardMap::build(t, column, count)?,
            Some(Relation::Deterministic(_)) => {
                return Err(DbError::Unsupported(format!(
                    "sharding applies to probabilistic views; {name:?} is deterministic"
                )))
            }
            None => return Err(DbError::UnknownTable(name.to_string())),
        };
        self.shard_specs
            .insert(name.to_string(), (column.to_string(), count));
        self.shards.insert(name.to_string(), Arc::new(map));
        self.bump_generation();
        Ok(())
    }

    /// The shard layout of a probabilistic view (`None` when the view is
    /// unsharded or unknown). Cloning the [`Arc`] is the whole cost.
    pub fn shard_map(&self, name: &str) -> Option<Arc<ShardMap>> {
        self.shards.get(name).cloned()
    }

    /// Rebuilds (or clears) the shard layout of one relation after a
    /// write: a pinned spec is re-applied; otherwise large views are
    /// auto-sharded along their time column and small views stay flat.
    fn reshard(&mut self, name: &str) {
        let Some(Relation::Probabilistic(t)) = self.relations.get(name).map(|r| r.as_ref()) else {
            self.shards.remove(name);
            return;
        };
        if let Some((column, count)) = self.shard_specs.get(name).cloned() {
            match ShardMap::build(t, &column, count) {
                Ok(map) => {
                    self.shards.insert(name.to_string(), Arc::new(map));
                    return;
                }
                Err(_) => {
                    // The pinned column vanished from the re-created view;
                    // forget the spec and fall back to auto-sharding.
                    self.shard_specs.remove(name);
                }
            }
        }
        match Self::auto_shard(t) {
            Some(map) => {
                self.shards.insert(name.to_string(), Arc::new(map));
            }
            None => {
                self.shards.remove(name);
            }
        }
    }

    /// Default layout for large views: shard along `t`/`time` when one of
    /// those columns is numeric, else the first numeric column; `None`
    /// below the size floor or when no numeric column exists.
    fn auto_shard(t: &ProbTable) -> Option<ShardMap> {
        if t.len() < AUTO_SHARD_MIN_ROWS {
            return None;
        }
        let schema = t.schema();
        let column = ["t", "time"]
            .iter()
            .copied()
            .find(|c| schema.type_of(c).is_ok_and(|ty| ty != ColumnType::Text))
            .map(str::to_string)
            .or_else(|| {
                (0..schema.arity())
                    .map(|i| schema.column(i))
                    .find(|(_, ty)| *ty != ColumnType::Text)
                    .map(|(n, _)| n.to_string())
            })?;
        let count = (t.len() / AUTO_SHARD_TARGET_ROWS).clamp(2, 64);
        ShardMap::build(t, &column, count).ok()
    }

    /// The precomputed synopsis snapshot of a probabilistic view (`None`
    /// for deterministic tables and unknown names). Cloning the [`Arc`] is
    /// the whole cost — the snapshot is immutable.
    pub fn synopses(&self, name: &str) -> Option<Arc<RelationSynopses>> {
        self.synopses.get(name).cloned()
    }

    /// Borrow of one resident relation (no scan-source fallback).
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name).map(|r| r.as_ref())
    }

    /// The current rung of one resident relation — an immutable snapshot a
    /// caller can keep executing against after dropping whatever lock
    /// guards the catalog. Appends swap in a new rung rather than mutating
    /// this one in place (unless nobody else holds it), so the snapshot
    /// stays internally consistent for as long as the `Arc` lives.
    pub fn relation_snapshot(&self, name: &str) -> Option<Arc<Relation>> {
        self.relations.get(name).cloned()
    }

    /// Everything a planned query needs to execute against one relation,
    /// as immutable snapshots: the relation rung plus the matching synopsis
    /// and shard-layout `Arc`s. This is the MVCC read path — clone the
    /// snapshot under a shared lock, release the lock, then run
    /// [`crate::plan::PlannedQuery::strategy_with_context`] against it
    /// while writers land new rungs. Falls through to the scan source for
    /// evicted relations (materialising a fresh snapshot).
    pub fn snapshot(&self, name: &str) -> Result<RelationSnapshot, DbError> {
        let relation = match self.relations.get(name).cloned() {
            Some(r) => r,
            None => match self.scan_from_source(name)? {
                Some(r) => Arc::new(r),
                None => return Err(DbError::UnknownTable(name.to_string())),
            },
        };
        Ok(RelationSnapshot {
            relation,
            synopses: self.synopses(name),
            shards: self.shard_map(name),
        })
    }

    /// Looks up a deterministic table.
    pub fn table(&self, name: &str) -> Result<&Table, DbError> {
        match self.relations.get(name).map(|r| r.as_ref()) {
            Some(Relation::Deterministic(t)) => Ok(t),
            _ => Err(DbError::UnknownTable(name.to_string())),
        }
    }

    /// Looks up a probabilistic view.
    pub fn prob_table(&self, name: &str) -> Result<&ProbTable, DbError> {
        match self.relations.get(name).map(|r| r.as_ref()) {
            Some(Relation::Probabilistic(t)) => Ok(t),
            _ => Err(DbError::UnknownTable(name.to_string())),
        }
    }

    /// Drops a relation by name (and its synopses, if any). A tombstone
    /// stops the scan source from resurrecting the name until a
    /// checkpoint rewrites the on-disk file (or the name is re-created).
    pub fn drop_relation(&mut self, name: &str) -> Result<(), DbError> {
        self.synopses.remove(name);
        self.shards.remove(name);
        self.shard_specs.remove(name);
        self.dropped.insert(name.to_string());
        self.bump_generation();
        self.relations
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Executes a read-only statement (`SELECT`) with a shared borrow.
    ///
    /// This is the concurrent read path: `&self` means any number of
    /// threads can run queries at once (e.g. through the read side of an
    /// `RwLock`). Mutating statements are rejected with
    /// [`DbError::ReadOnly`].
    ///
    /// # Examples
    ///
    /// ```
    /// use tspdb_probdb::{ColumnType, Database, ProbTable, Schema, Value};
    ///
    /// let mut db = Database::new();
    /// let mut view = ProbTable::new("pv", Schema::of(&[("room", ColumnType::Int)]));
    /// view.insert(vec![Value::Int(1)], 0.5).unwrap();
    /// view.insert(vec![Value::Int(2)], 0.25).unwrap();
    /// db.register_prob_table(view).unwrap();
    ///
    /// // Expected count E[COUNT(*)] = 0.5 + 0.25.
    /// let out = db.query("SELECT COUNT(*) FROM pv").unwrap();
    /// let agg = out.aggregate().unwrap();
    /// assert!((agg.groups[0].values[0].value - 0.75).abs() < 1e-12);
    ///
    /// // Writes are rejected on this path.
    /// assert!(db.query("DROP TABLE pv").is_err());
    /// ```
    pub fn query(&self, sql: &str) -> Result<QueryOutput, DbError> {
        match parse(sql)? {
            Statement::Select(sel) => self.query_select(&sel),
            Statement::Explain(sel) => self.explain_select(&sel),
            other => Err(DbError::ReadOnly(format!("{other:?}"))),
        }
    }

    /// Runs an already-parsed `SELECT` with a shared borrow — the
    /// parse-free core of [`Database::query`], for callers (like the
    /// engines) that classified the statement themselves. Planning and
    /// execution are split so callers can also plan once and execute many
    /// times via [`Database::execute_planned`].
    pub fn query_select(&self, sel: &SelectStmt) -> Result<QueryOutput, DbError> {
        self.execute_planned(&Planner::plan(sel)?)
    }

    /// [`Database::query_select`] with a per-query override of the
    /// `WITH WORLDS` fork-join width (`None` uses the database setting) —
    /// the hook server sessions use to tune MC parallelism per connection
    /// without touching shared state.
    pub fn query_select_with_threads(
        &self,
        sel: &SelectStmt,
        worlds_threads: Option<usize>,
    ) -> Result<QueryOutput, DbError> {
        self.execute_planned_with_threads(&Planner::plan(sel)?, worlds_threads)
    }

    /// Executes a planned query: resolves the scanned relation and runs
    /// the plan's strategy over it.
    pub fn execute_planned(&self, planned: &PlannedQuery) -> Result<QueryOutput, DbError> {
        self.execute_planned_with_threads(planned, None)
    }

    /// [`Database::execute_planned`] with a per-query override of the
    /// `WITH WORLDS` fork-join width (`None` uses the database setting;
    /// the override never changes MC estimates, only their latency).
    pub fn execute_planned_with_threads(
        &self,
        planned: &PlannedQuery,
        worlds_threads: Option<usize>,
    ) -> Result<QueryOutput, DbError> {
        // Resident relations win; otherwise try the scan source's lazy
        // stream, and fall through to whole-relation materialisation only
        // when the source can't stream. Either way the same strategy
        // executes over the same tuple representation, so results are
        // bit-identical across media for a fixed query + seed.
        let fetched;
        let relation = match self.relations.get(&planned.physical.table) {
            Some(r) => r.as_ref(),
            None => {
                if let Some(out) = self.execute_streamed(planned, worlds_threads)? {
                    return Ok(out);
                }
                match self.scan_from_source(&planned.physical.table)? {
                    Some(r) => {
                        fetched = r;
                        &fetched
                    }
                    None => return Err(DbError::UnknownTable(planned.physical.table.clone())),
                }
            }
        };
        planned
            .strategy_with_context(
                worlds_threads.unwrap_or_else(|| self.worlds_threads()),
                self.synopses(&planned.physical.table),
                self.shard_map(&planned.physical.table),
            )
            .execute(relation, &planned.physical)
    }

    /// Executes `planned` over the scan source's lazy tuple stream,
    /// filtering leaf by leaf instead of materialising the relation
    /// whole. Returns `Ok(None)` when the plan or source can't stream —
    /// `WITH WORLDS` plans (MC passes over the tuples many times, so they
    /// materialise; `EXPLAIN` notes it) and sources without a stream.
    ///
    /// Bit-identity with the materialised path is preserved by applying
    /// the *same* restrictions in the *same* observable order: `WHERE`
    /// (and `THRESHOLD`, when the strategy would apply it) run per tuple
    /// during the stream and are stripped from the plan the strategy
    /// executes; `TOP` stays with the strategy, which also keeps
    /// ownership of the deterministic `THRESHOLD`/`TOP` rejection and the
    /// τ range check.
    fn execute_streamed(
        &self,
        planned: &PlannedQuery,
        worlds_threads: Option<usize>,
    ) -> Result<Option<QueryOutput>, DbError> {
        use crate::plan::StrategyKind;
        use crate::query::eval_conjunction;

        if matches!(planned.strategy, StrategyKind::Worlds(_)) {
            return Ok(None);
        }
        let name = &planned.physical.table;
        if self.dropped.contains(name) {
            return Ok(None);
        }
        let Some(source) = &self.scan_source else {
            return Ok(None);
        };
        let Some(mut stream) = source.scan_stream(name)? else {
            return Ok(None);
        };
        let threads = worlds_threads.unwrap_or_else(|| self.worlds_threads());
        let plan = &planned.physical;
        let schema = stream.schema().clone();

        // A synopsis plan with no fallback answers from bucketed moments
        // over the whole relation: stream it through unfiltered and hand
        // the strategy the cached synopses, exactly like the materialised
        // path (the synopses' staleness guard compares tuple counts).
        if planned.synopsis_answers_whole_relation() {
            let relation = materialize_stream(name, &schema, stream.as_mut())?;
            let strategy = planned.strategy_with_context(threads, self.synopses(name), None);
            return strategy.execute(&relation, plan).map(Some);
        }

        if !stream.probabilistic() {
            if plan.threshold.is_some() || plan.top.is_some() {
                // The strategy rejects THRESHOLD/TOP on deterministic
                // relations *before* evaluating any predicate; handing it
                // an empty relation and the unstripped plan reproduces
                // that error (and its ordering) without reading a page.
                let empty = Relation::Deterministic(Table::new(name, schema));
                let strategy = planned.strategy_with_context(threads, None, None);
                return strategy.execute(&empty, plan).map(Some);
            }
            let mut t = Table::new(name, schema.clone());
            while let Some((row, _)) = stream.next_tuple()? {
                if eval_conjunction(&schema, &row, None, &plan.predicate)? {
                    t.insert(row)?;
                }
            }
            let mut stripped = plan.clone();
            stripped.predicate = Vec::new();
            let strategy = planned.strategy_with_context(threads, None, None);
            return strategy
                .execute(&Relation::Deterministic(t), &stripped)
                .map(Some);
        }

        // Probabilistic: WHERE and THRESHOLD filter per tuple during the
        // stream. Predicate errors surface on the first offending tuple
        // (as in the materialised path, which filters before validating
        // τ); τ's range check follows at exhaustion, in the same order
        // restrict_prob_indices checks it.
        let mut t = ProbTable::new(name, schema.clone());
        while let Some((row, prob)) = stream.next_tuple()? {
            let prob = prob.ok_or_else(|| {
                DbError::Storage(format!("{name}: probabilistic tuple without probability"))
            })?;
            if !eval_conjunction(&schema, &row, Some(prob), &plan.predicate)? {
                continue;
            }
            if let Some(tau) = plan.threshold {
                if !(prob >= tau) {
                    continue;
                }
            }
            t.insert(row, prob)?;
        }
        if let Some(tau) = plan.threshold {
            if !(0.0..=1.0).contains(&tau) {
                return Err(DbError::InvalidProbability(tau));
            }
        }
        let mut stripped = plan.clone();
        stripped.predicate = Vec::new();
        stripped.threshold = None;
        // No synopses (the restricted tuple set no longer matches the
        // cached ones — their staleness guard would reject them anyway)
        // and no shards (layouts describe the unrestricted relation).
        let strategy = planned.strategy_with_context(threads, None, None);
        strategy
            .execute(&Relation::Probabilistic(t), &stripped)
            .map(Some)
    }

    /// Plans a `SELECT` and returns its [`ExplainReport`] instead of
    /// executing it (the `EXPLAIN` statement).
    pub fn explain_select(&self, sel: &SelectStmt) -> Result<QueryOutput, DbError> {
        let planned = Planner::plan(sel)?;
        let relation = match self
            .relations
            .get(&planned.physical.table)
            .map(|r| r.as_ref())
        {
            Some(Relation::Deterministic(t)) => {
                format!(
                    "{}: deterministic ({} rows)",
                    planned.physical.table,
                    t.len()
                )
            }
            Some(Relation::Probabilistic(t)) => match self.shard_map(&planned.physical.table) {
                Some(map) => format!(
                    "{}: probabilistic ({} tuples, {} shards by {:?})",
                    planned.physical.table,
                    t.len(),
                    map.shard_count(),
                    map.column()
                ),
                None => format!(
                    "{}: probabilistic ({} tuples)",
                    planned.physical.table,
                    t.len()
                ),
            },
            None if !self.dropped.contains(&planned.physical.table)
                && self
                    .scan_source
                    .as_ref()
                    .is_some_and(|s| s.names().contains(&planned.physical.table)) =>
            {
                use crate::plan::StrategyKind;
                let scan_note = match &planned.strategy {
                    StrategyKind::Worlds(_) => {
                        " — materialises whole (MC sampling re-reads tuples)"
                    }
                    _ => " — lazy leaf-at-a-time scan",
                };
                format!(
                    "{}: on disk (via scan source){scan_note}",
                    planned.physical.table
                )
            }
            None => format!(
                "{}: not found (plan is still valid)",
                planned.physical.table
            ),
        };
        Ok(QueryOutput::Explain(ExplainReport {
            relation,
            logical: planned.logical.to_string(),
            physical: planned.physical.to_string(),
            strategy: planned
                .strategy_with_synopses(
                    self.worlds_threads(),
                    self.synopses(&planned.physical.table),
                )
                .describe(),
        }))
    }

    /// Executes a SQL statement that does not require density inference.
    /// `CREATE VIEW … AS DENSITY …` returns [`DbError::Unsupported`]; use
    /// [`Database::execute_with`] for that.
    pub fn execute(&mut self, sql: &str) -> Result<QueryOutput, DbError> {
        self.execute_parsed(parse(sql)?)
    }

    /// [`Database::execute`] for an already-parsed statement (no
    /// re-tokenizing on paths where the caller holds the AST).
    pub fn execute_parsed(&mut self, stmt: Statement) -> Result<QueryOutput, DbError> {
        match stmt {
            Statement::CreateDensityView(_) => Err(DbError::Unsupported(
                "DENSITY views need a density handler; use execute_with (or the \
                 tspdb-core engine)"
                    .into(),
            )),
            other => self.execute_statement(other),
        }
    }

    /// Executes any SQL statement, delegating `DENSITY` view creation to
    /// the supplied handler.
    pub fn execute_with(
        &mut self,
        sql: &str,
        handler: &mut DensityHandler<'_>,
    ) -> Result<QueryOutput, DbError> {
        let stmt = parse(sql)?;
        match stmt {
            Statement::CreateDensityView(spec) => {
                let source = self.table(&spec.source_table)?;
                let mut view = handler(source, &spec)?;
                // The handler may not know the requested view name.
                if view.name() != spec.view_name {
                    let mut renamed = ProbTable::new(spec.view_name.clone(), view.schema().clone());
                    for (row, p) in view.iter() {
                        renamed.insert(row.to_vec(), p)?;
                    }
                    view = renamed;
                }
                self.register_prob_table(view)?;
                Ok(QueryOutput::None)
            }
            other => self.execute_statement(other),
        }
    }

    fn execute_statement(&mut self, stmt: Statement) -> Result<QueryOutput, DbError> {
        match stmt {
            Statement::CreateTable { name, columns } => {
                let table = Table::new(name, Schema::new(columns));
                self.register_table(table)?;
                Ok(QueryOutput::None)
            }
            Statement::Insert { table, rows } => {
                self.append_rows(&table, rows).map(|_| QueryOutput::None)
            }
            Statement::Select(sel) => self.query_select(&sel),
            Statement::Explain(sel) => self.explain_select(&sel),
            Statement::CreateDensityView(_) => unreachable!("handled by callers"),
            Statement::Tail(_) => Err(DbError::Unsupported(
                "TAIL is a continuous query; submit it over the server wire protocol".into(),
            )),
            Statement::Drop { name } => {
                // Materialise an evicted relation first so the drop is
                // visible to the catalog (the storage layer forgets it at
                // the next checkpoint).
                self.ensure_resident(&name)?;
                self.drop_relation(&name)?;
                Ok(QueryOutput::None)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn setup() -> Database {
        let mut db = Database::new();
        db.execute("CREATE TABLE raw_values (t INT, r FLOAT)")
            .unwrap();
        db.execute("INSERT INTO raw_values VALUES (1, 4.2), (2, 5.9), (3, 7.1), (4, 7.9)")
            .unwrap();
        db
    }

    #[test]
    fn create_insert_select_round_trip() {
        let mut db = setup();
        let out = db
            .execute("SELECT r FROM raw_values WHERE t >= 2 AND t <= 3 ORDER BY r DESC")
            .unwrap();
        let rows = out.rows().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows.row(0)[0], Value::Float(7.1));
        assert_eq!(rows.row(1)[0], Value::Float(5.9));
    }

    #[test]
    fn select_star_and_limit() {
        let mut db = setup();
        let out = db.execute("SELECT * FROM raw_values LIMIT 2").unwrap();
        let rows = out.rows().unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows.schema().arity(), 2);
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut db = setup();
        assert!(matches!(
            db.execute("CREATE TABLE raw_values (x INT)"),
            Err(DbError::DuplicateTable(_))
        ));
    }

    #[test]
    fn drop_removes_relation() {
        let mut db = setup();
        db.execute("DROP TABLE raw_values").unwrap();
        assert!(matches!(
            db.execute("SELECT * FROM raw_values"),
            Err(DbError::UnknownTable(_))
        ));
    }

    #[test]
    fn density_view_without_handler_is_unsupported() {
        let mut db = setup();
        let sql = "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 FROM raw_values";
        assert!(matches!(db.execute(sql), Err(DbError::Unsupported(_))));
    }

    #[test]
    fn density_view_with_handler_registers_view() {
        let mut db = setup();
        let sql = "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 \
                   FROM raw_values WHERE t >= 1 AND t <= 2";
        let mut handler = |src: &Table, spec: &DensityViewSpec| {
            assert_eq!(src.name(), "raw_values");
            assert_eq!(spec.n, 2);
            let schema = Schema::of(&[
                ("t", crate::value::ColumnType::Int),
                ("lo", crate::value::ColumnType::Float),
                ("hi", crate::value::ColumnType::Float),
            ]);
            let mut v = ProbTable::new("anything", schema);
            v.insert(
                vec![Value::Int(1), Value::Float(0.0), Value::Float(1.0)],
                0.7,
            )
            .unwrap();
            Ok(v)
        };
        db.execute_with(sql, &mut handler).unwrap();
        let view = db.prob_table("v").unwrap();
        assert_eq!(view.len(), 1);
        assert_eq!(view.name(), "v");

        // SELECT over the created probabilistic view.
        let out = db.execute("SELECT * FROM v WHERE prob >= 0.5").unwrap();
        assert_eq!(out.prob_rows().unwrap().len(), 1);
        let none = db.execute("SELECT * FROM v WHERE prob >= 0.9").unwrap();
        assert!(none.prob_rows().unwrap().is_empty());
    }

    #[test]
    fn prob_view_ordering_by_probability() {
        let mut db = Database::new();
        let schema = Schema::of(&[("room", crate::value::ColumnType::Int)]);
        let mut v = ProbTable::new("pv", schema);
        for (room, p) in [(1, 0.2), (2, 0.9), (3, 0.5)] {
            v.insert(vec![Value::Int(room)], p).unwrap();
        }
        db.register_prob_table(v).unwrap();
        let out = db
            .execute("SELECT room FROM pv ORDER BY prob DESC LIMIT 2")
            .unwrap();
        let rows = out.prob_rows().unwrap();
        assert_eq!(rows.rows()[0][0], Value::Int(2));
        assert_eq!(rows.rows()[1][0], Value::Int(3));
    }

    #[test]
    fn synopsis_rebuild_is_scoped_to_the_written_relation() {
        let mut db = Database::new();
        let schema = Schema::of(&[("x", crate::value::ColumnType::Int)]);
        for name in ["a", "b"] {
            let mut v = ProbTable::new(name, schema.clone());
            v.insert(vec![Value::Int(1)], 0.5).unwrap();
            db.register_prob_table(v).unwrap();
        }
        let a_before = db.synopses("a").unwrap();

        // A write to `b` must rebuild `b`'s synopses and nobody else's:
        // `a`'s snapshot is still the very same allocation.
        let b_before = db.synopses("b").unwrap();
        let mut v = ProbTable::new("b", schema);
        v.insert(vec![Value::Int(2)], 0.25).unwrap();
        db.register_prob_table(v).unwrap();
        assert!(
            Arc::ptr_eq(&a_before, &db.synopses("a").unwrap()),
            "writing b must not touch a's synopses"
        );
        assert!(
            !Arc::ptr_eq(&b_before, &db.synopses("b").unwrap()),
            "writing b must rebuild b's synopses"
        );
    }

    #[test]
    fn insert_into_view_is_rejected() {
        let mut db = Database::new();
        let schema = Schema::of(&[("x", crate::value::ColumnType::Int)]);
        db.register_prob_table(ProbTable::new("pv", schema))
            .unwrap();
        assert!(matches!(
            db.execute("INSERT INTO pv VALUES (1)"),
            Err(DbError::Unsupported(_))
        ));
    }

    #[test]
    fn view_replacement_allowed_table_shadowing_not() {
        let mut db = setup();
        let schema = Schema::of(&[("x", crate::value::ColumnType::Int)]);
        db.register_prob_table(ProbTable::new("pv", schema.clone()))
            .unwrap();
        // Re-registering the same view name is fine (derived data).
        db.register_prob_table(ProbTable::new("pv", schema.clone()))
            .unwrap();
        // But a view cannot shadow a base table.
        assert!(db
            .register_prob_table(ProbTable::new("raw_values", schema))
            .is_err());
    }

    #[test]
    fn relation_names_sorted() {
        let db = setup();
        assert_eq!(db.relation_names(), vec!["raw_values"]);
    }

    fn fig1_database() -> Database {
        let mut db = Database::new();
        let schema = Schema::of(&[
            ("time", crate::value::ColumnType::Int),
            ("room", crate::value::ColumnType::Int),
        ]);
        let mut v = ProbTable::new("pv", schema);
        for (t, room, p) in [
            (1, 1, 0.5),
            (1, 2, 0.1),
            (1, 3, 0.3),
            (1, 4, 0.1),
            (2, 1, 0.2),
            (2, 2, 0.4),
        ] {
            v.insert(vec![Value::Int(t), Value::Int(room)], p).unwrap();
        }
        db.register_prob_table(v).unwrap();
        db
    }

    #[test]
    fn threshold_and_top_clauses_execute() {
        let db = fig1_database();
        let out = db.query("SELECT * FROM pv THRESHOLD 0.3").unwrap();
        assert_eq!(out.prob_rows().unwrap().len(), 3); // 0.5, 0.3, 0.4
        let out = db.query("SELECT * FROM pv TOP 2").unwrap();
        let rows = out.prob_rows().unwrap();
        assert_eq!(rows.probs(), &[0.5, 0.4]);
        // THRESHOLD composes with TOP, then LIMIT trims the result.
        let out = db
            .query("SELECT * FROM pv WHERE time = 1 THRESHOLD 0.2 TOP 5 LIMIT 1")
            .unwrap();
        let rows = out.prob_rows().unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows.probs(), &[0.5]);
    }

    #[test]
    fn with_worlds_queries_return_sampling_stats() {
        let db = fig1_database();
        let out = db
            .query("SELECT * FROM pv WHERE time = 1 WITH WORLDS 20000 SEED 5")
            .unwrap();
        let w = out.worlds().unwrap();
        assert_eq!(w.worlds, 20_000);
        assert_eq!(w.matching_tuples, 4);
        assert_eq!(w.seed, 5);
        assert!(!w.converged);
        // P(some room at time 1) = 1 − 0.5·0.9·0.7·0.9 ≈ 0.7165.
        assert!((w.event_probability - 0.7165).abs() < 0.02);
        assert!(w.event_ci_half_width > 0.0);
        assert!(w.wall > std::time::Duration::ZERO);
    }

    #[test]
    fn with_worlds_single_numeric_projection_adds_sum() {
        let db = fig1_database();
        let out = db
            .query("SELECT room FROM pv WHERE time = 2 WITH WORLDS 20000 SEED 1")
            .unwrap();
        let w = out.worlds().unwrap();
        let sum = w.sum.as_ref().unwrap();
        assert_eq!(sum.column, "room");
        // E[Σ room] = 1·0.2 + 2·0.4 = 1.0.
        assert!((sum.mean - 1.0).abs() < 0.05, "sum mean {}", sum.mean);
    }

    #[test]
    fn with_worlds_text_projection_skips_sum_unknown_column_errors() {
        let mut db = Database::new();
        let schema = Schema::of(&[
            ("room", crate::value::ColumnType::Int),
            ("tag", crate::value::ColumnType::Text),
        ]);
        let mut v = ProbTable::new("pv", schema);
        v.insert(vec![Value::Int(1), Value::Text("a".into())], 0.5)
            .unwrap();
        db.register_prob_table(v).unwrap();
        // A single text projection runs the MC query without a SUM.
        let out = db.query("SELECT tag FROM pv WITH WORLDS 1000").unwrap();
        assert!(out.worlds().unwrap().sum.is_none());
        // Unknown columns error like the exact path's projection would —
        // in single- and multi-column projections alike.
        assert!(matches!(
            db.query("SELECT nope FROM pv WITH WORLDS 1000"),
            Err(DbError::UnknownColumn(_))
        ));
        assert!(matches!(
            db.query("SELECT room, nope FROM pv WITH WORLDS 1000"),
            Err(DbError::UnknownColumn(_))
        ));
    }

    #[test]
    fn with_worlds_confidence_terminates_early() {
        let db = fig1_database();
        let out = db
            .query("SELECT * FROM pv WITH WORLDS 1000000 SEED 2 CONFIDENCE 0.02")
            .unwrap();
        let w = out.worlds().unwrap();
        assert!(w.converged);
        assert!(w.worlds < 1_000_000);
        assert!(w.event_ci_half_width <= 0.02);
    }

    #[test]
    fn with_worlds_rejects_presentation_clauses() {
        let db = fig1_database();
        for sql in [
            "SELECT * FROM pv ORDER BY prob DESC WITH WORLDS 100",
            "SELECT * FROM pv LIMIT 5 WITH WORLDS 100",
        ] {
            assert!(
                matches!(db.query(sql), Err(DbError::InvalidWorlds(_))),
                "{sql} should be rejected"
            );
        }
    }

    #[test]
    fn probabilistic_clauses_rejected_on_deterministic_tables() {
        let db = setup();
        for sql in [
            "SELECT * FROM raw_values WITH WORLDS 100",
            "SELECT * FROM raw_values THRESHOLD 0.5",
            "SELECT * FROM raw_values TOP 3",
        ] {
            assert!(
                matches!(db.query(sql), Err(DbError::InvalidWorlds(_))),
                "{sql} should be rejected"
            );
        }
    }

    #[test]
    fn worlds_queries_are_read_only_and_reproducible() {
        let db = fig1_database();
        db.set_worlds_threads(1);
        let a = db
            .query("SELECT * FROM pv WITH WORLDS 5000 SEED 9")
            .unwrap();
        db.set_worlds_threads(8);
        assert_eq!(db.worlds_threads(), 8);
        let b = db
            .query("SELECT * FROM pv WITH WORLDS 5000 SEED 9")
            .unwrap();
        assert_eq!(
            a.worlds().unwrap().fingerprint(),
            b.worlds().unwrap().fingerprint(),
            "thread count changed the estimate"
        );
    }

    #[test]
    fn query_path_serves_selects_and_rejects_writes() {
        let db = setup();
        // &Database is enough for a SELECT.
        let out = db.query("SELECT * FROM raw_values WHERE t >= 3").unwrap();
        assert_eq!(out.rows().unwrap().len(), 2);
        // All mutating statements are turned away.
        for sql in [
            "CREATE TABLE other (x INT)",
            "INSERT INTO raw_values VALUES (9, 1.0)",
            "DROP TABLE raw_values",
            "CREATE VIEW v AS DENSITY r OVER t OMEGA delta=1, n=2 FROM raw_values",
        ] {
            assert!(
                matches!(db.query(sql), Err(DbError::ReadOnly(_))),
                "{sql} slipped through the read-only path"
            );
        }
        // The table is untouched.
        assert_eq!(db.table("raw_values").unwrap().len(), 4);
    }
}
