//! Probabilistic aggregates over tuple-independent relations.
//!
//! Beyond the expected-value aggregates in [`crate::query`], several useful
//! queries need the full *distribution* of the tuple count — "what is the
//! probability that Alice visited room 4 at least three times?". For `n`
//! independent tuples with probabilities `p_1..p_n` the count follows a
//! Poisson-binomial distribution, computed exactly here with the standard
//! O(n²) dynamic program (O(n·k) when only the first `k` probabilities are
//! needed).

use crate::error::DbError;
use crate::query::{eval_conjunction, Conjunction};
use crate::table::ProbTable;

/// Exact distribution of the number of matching tuples present in a
/// possible world: entry `k` is `P(count = k)`.
///
/// Standard Poisson-binomial DP: fold tuples one at a time, maintaining the
/// distribution of the partial count.
pub fn count_distribution(table: &ProbTable, pred: &Conjunction) -> Result<Vec<f64>, DbError> {
    let mut dist = vec![1.0f64];
    for (row, p) in table.iter() {
        if eval_conjunction(table.schema(), row, Some(p), pred)? {
            fold_tuple(&mut dist, p);
        }
    }
    Ok(dist)
}

/// Poisson-binomial distribution over an explicit probability slice — the
/// predicate-free core of [`count_distribution`], used by the planner's
/// per-group aggregate evaluation.
pub fn count_distribution_of(probs: &[f64]) -> Vec<f64> {
    let mut dist = Vec::with_capacity(probs.len() + 1);
    dist.push(1.0f64);
    for &p in probs {
        fold_tuple(&mut dist, p);
    }
    dist
}

/// Folds one tuple with existence probability `p` into the partial-count
/// distribution **in place**: one `push` to grow the buffer, then a
/// backward sweep so every update reads only not-yet-overwritten entries.
/// The DP stays O(n²) in time but drops the per-tuple `next` vector — the
/// whole fold allocates O(1) times (the single buffer, grown amortised).
fn fold_tuple(dist: &mut Vec<f64>, p: f64) {
    dist.push(0.0);
    for k in (1..dist.len()).rev() {
        dist[k] = dist[k] * (1.0 - p) + dist[k - 1] * p;
    }
    dist[0] *= 1.0 - p;
}

/// Expectation and variance of the sum of `values` over tuples present in
/// a possible world: `Σ p_i v_i` and `Σ p_i (1 − p_i) v_i²` (linearity of
/// expectation; variance by tuple independence). `values` must be parallel
/// to `probs`.
pub fn sum_moments_of(probs: &[f64], values: &[f64]) -> (f64, f64) {
    assert_eq!(
        probs.len(),
        values.len(),
        "sum_moments_of: values must be parallel to probs"
    );
    let mut mean = 0.0;
    let mut var = 0.0;
    for (&p, &v) in probs.iter().zip(values) {
        mean += p * v;
        var += p * (1.0 - p) * v * v;
    }
    (mean, var)
}

/// `P(count ≥ k)` for tuples matching the predicate.
pub fn prob_count_at_least(
    table: &ProbTable,
    pred: &Conjunction,
    k: usize,
) -> Result<f64, DbError> {
    let dist = count_distribution(table, pred)?;
    Ok(dist.iter().skip(k).sum::<f64>().clamp(0.0, 1.0))
}

/// Expected count and variance of the count (`Σp_i`, `Σp_i(1−p_i)`) for
/// tuples matching the predicate — the closed forms, no DP needed.
pub fn count_moments(table: &ProbTable, pred: &Conjunction) -> Result<(f64, f64), DbError> {
    let mut mean = 0.0;
    let mut var = 0.0;
    for (row, p) in table.iter() {
        if eval_conjunction(table.schema(), row, Some(p), pred)? {
            mean += p;
            var += p * (1.0 - p);
        }
    }
    Ok((mean, var))
}

/// The most likely count (mode of the Poisson-binomial; smallest index on
/// ties).
pub fn most_likely_count(table: &ProbTable, pred: &Conjunction) -> Result<usize, DbError> {
    let dist = count_distribution(table, pred)?;
    let mut best = 0usize;
    for (k, &p) in dist.iter().enumerate() {
        if p > dist[best] {
            best = k;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{CmpOp, Comparison};
    use crate::schema::Schema;
    use crate::value::{ColumnType, Value};

    fn view(probs: &[f64]) -> ProbTable {
        let schema = Schema::of(&[("room", ColumnType::Int)]);
        let mut v = ProbTable::new("v", schema);
        for (i, &p) in probs.iter().enumerate() {
            v.insert(vec![Value::Int(i as i64 % 4)], p).unwrap();
        }
        v
    }

    #[test]
    fn distribution_sums_to_one() {
        let v = view(&[0.3, 0.7, 0.5, 0.9, 0.01]);
        let dist = count_distribution(&v, &vec![]).unwrap();
        assert_eq!(dist.len(), 6);
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_tuple_case_matches_hand_computation() {
        let v = view(&[0.5, 0.2]);
        let dist = count_distribution(&v, &vec![]).unwrap();
        assert!((dist[0] - 0.5 * 0.8).abs() < 1e-12);
        assert!((dist[1] - (0.5 * 0.8 + 0.5 * 0.2)).abs() < 1e-12);
        assert!((dist[2] - 0.5 * 0.2).abs() < 1e-12);
    }

    #[test]
    fn deterministic_tuples_give_point_mass() {
        let v = view(&[1.0, 1.0, 0.0]);
        let dist = count_distribution(&v, &vec![]).unwrap();
        assert!((dist[2] - 1.0).abs() < 1e-12);
        assert_eq!(most_likely_count(&v, &vec![]).unwrap(), 2);
    }

    #[test]
    fn at_least_queries() {
        let v = view(&[0.5, 0.5]);
        let p1 = prob_count_at_least(&v, &vec![], 1).unwrap();
        assert!((p1 - 0.75).abs() < 1e-12);
        let p0 = prob_count_at_least(&v, &vec![], 0).unwrap();
        assert!((p0 - 1.0).abs() < 1e-12);
        let p3 = prob_count_at_least(&v, &vec![], 3).unwrap();
        assert_eq!(p3, 0.0);
    }

    #[test]
    fn predicate_restricts_the_count() {
        // Rooms cycle 0,1,2,3,0,...; restrict to room 0 (indices 0 and 4).
        let v = view(&[0.5, 0.9, 0.9, 0.9, 0.5]);
        let pred = vec![Comparison::new("room", CmpOp::Eq, 0i64)];
        let dist = count_distribution(&v, &pred).unwrap();
        assert_eq!(dist.len(), 3); // two candidate tuples
        assert!((dist[2] - 0.25).abs() < 1e-12);
        let (mean, var) = count_moments(&v, &pred).unwrap();
        assert!((mean - 1.0).abs() < 1e-12);
        assert!((var - 0.5).abs() < 1e-12);
    }

    #[test]
    fn moments_match_distribution() {
        let probs = [0.1, 0.4, 0.65, 0.9, 0.25, 0.33];
        let v = view(&probs);
        let dist = count_distribution(&v, &vec![]).unwrap();
        let mean_dp: f64 = dist.iter().enumerate().map(|(k, p)| k as f64 * p).sum();
        let e2: f64 = dist
            .iter()
            .enumerate()
            .map(|(k, p)| (k as f64) * (k as f64) * p)
            .sum();
        let (mean, var) = count_moments(&v, &vec![]).unwrap();
        assert!((mean - mean_dp).abs() < 1e-12);
        assert!((var - (e2 - mean_dp * mean_dp)).abs() < 1e-9);
    }

    #[test]
    fn domain_dp_matches_table_dp() {
        let probs = [0.1, 0.4, 0.65, 0.9, 0.25, 0.33];
        let v = view(&probs);
        assert_eq!(
            count_distribution_of(&probs),
            count_distribution(&v, &vec![]).unwrap()
        );
        assert_eq!(count_distribution_of(&[]), vec![1.0]);
    }

    #[test]
    fn sum_moments_closed_forms() {
        let probs = [0.5, 0.2];
        let values = [3.0, -1.0];
        let (mean, var) = sum_moments_of(&probs, &values);
        assert!((mean - (0.5 * 3.0 - 0.2)).abs() < 1e-12);
        assert!((var - (0.25 * 9.0 + 0.16 * 1.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_relation_has_count_zero() {
        let v = view(&[]);
        let dist = count_distribution(&v, &vec![]).unwrap();
        assert_eq!(dist, vec![1.0]);
        assert_eq!(most_likely_count(&v, &vec![]).unwrap(), 0);
    }
}
