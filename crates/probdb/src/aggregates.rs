//! Probabilistic aggregates over tuple-independent relations.
//!
//! Beyond the expected-value aggregates in [`crate::query`], several useful
//! queries need the full *distribution* of the tuple count — "what is the
//! probability that Alice visited room 4 at least three times?". For `n`
//! independent tuples with probabilities `p_1..p_n` the count follows a
//! Poisson-binomial distribution, computed exactly here with the standard
//! O(n²) dynamic program (O(n·k) when only the first `k` probabilities are
//! needed).

use crate::error::DbError;
use crate::query::{eval_conjunction, CmpOp, Conjunction};
use crate::table::ProbTable;

/// Exact distribution of the number of matching tuples present in a
/// possible world: entry `k` is `P(count = k)`.
///
/// Standard Poisson-binomial DP: fold tuples one at a time, maintaining the
/// distribution of the partial count.
pub fn count_distribution(table: &ProbTable, pred: &Conjunction) -> Result<Vec<f64>, DbError> {
    let mut dist = vec![1.0f64];
    for (row, p) in table.iter() {
        if eval_conjunction(table.schema(), row, Some(p), pred)? {
            fold_tuple(&mut dist, p);
        }
    }
    Ok(dist)
}

/// Poisson-binomial distribution over an explicit probability slice — the
/// predicate-free core of [`count_distribution`], used by the planner's
/// per-group aggregate evaluation.
pub fn count_distribution_of(probs: &[f64]) -> Vec<f64> {
    let mut dist = Vec::with_capacity(probs.len() + 1);
    dist.push(1.0f64);
    for &p in probs {
        fold_tuple(&mut dist, p);
    }
    dist
}

/// Folds one tuple with existence probability `p` into the partial-count
/// distribution **in place**: one `push` to grow the buffer, then a
/// backward sweep so every update reads only not-yet-overwritten entries.
/// The DP stays O(n²) in time but drops the per-tuple `next` vector — the
/// whole fold allocates O(1) times (the single buffer, grown amortised).
fn fold_tuple(dist: &mut Vec<f64>, p: f64) {
    dist.push(0.0);
    for k in (1..dist.len()).rev() {
        dist[k] = dist[k] * (1.0 - p) + dist[k - 1] * p;
    }
    dist[0] *= 1.0 - p;
}

/// Expectation and variance of the sum of `values` over tuples present in
/// a possible world: `Σ p_i v_i` and `Σ p_i (1 − p_i) v_i²` (linearity of
/// expectation; variance by tuple independence). `values` must be parallel
/// to `probs`.
pub fn sum_moments_of(probs: &[f64], values: &[f64]) -> (f64, f64) {
    assert_eq!(
        probs.len(),
        values.len(),
        "sum_moments_of: values must be parallel to probs"
    );
    let mut mean = 0.0;
    let mut var = 0.0;
    for (&p, &v) in probs.iter().zip(values) {
        mean += p * v;
        var += p * (1.0 - p) * v * v;
    }
    (mean, var)
}

/// Largest dyadic scale probed when looking for an exact integer
/// representation of the sum domain: values are checked against grids of
/// step `2^-k` for `k = 0..=MAX_DYADIC_SHIFT`.
const MAX_DYADIC_SHIFT: u32 = 20;

/// Number of quantisation steps when values have no exact dyadic
/// representation: the sum domain is snapped to a grid of
/// `Σ|v| / QUANT_STEPS`, so the DP support stays bounded.
const QUANT_STEPS: f64 = 65536.0;

/// Ceiling on `tuples × support` cells the sum DP may touch — the
/// resource guard that turns a pathological `HAVING SUM` into a
/// [`DbError::Plan`] instead of an unbounded computation.
const MAX_DP_CELLS: u128 = 1 << 27;

/// Exact distribution of `SUM(column)` over possible worlds of a
/// tuple-independent group, on a uniform value grid.
///
/// Built by [`sum_distribution_of`]: tuple values are mapped to integer
/// multiples of a grid `step` (exactly, when a dyadic grid of step
/// `2^-k`, `k ≤ 20`, represents every value; otherwise snapped to a
/// `Σ|v| / 2^16` grid), and the world sum's probability mass function is
/// folded tuple by tuple — the value-weighted generalisation of the
/// Poisson-binomial count DP. Negative values are handled by an index
/// offset.
#[derive(Debug, Clone, PartialEq)]
pub struct SumDistribution {
    /// `dist[i] = P(sum = offset + i·step)`.
    dist: Vec<f64>,
    /// Grid step between adjacent support points.
    step: f64,
    /// Smallest representable sum (all-negative-tuples world).
    offset: f64,
    /// Whether the grid represents every input value exactly.
    exact: bool,
}

impl SumDistribution {
    /// `P(sum ⟨op⟩ threshold)`. Support points within `1e-9` of the
    /// threshold compare as equal, so grid-aligned thresholds behave
    /// exactly under `>=` / `<=` / `=`.
    pub fn tail(&self, op: CmpOp, threshold: f64) -> f64 {
        let mut mass = 0.0;
        for (i, &p) in self.dist.iter().enumerate() {
            let s = self.offset + i as f64 * self.step;
            let ord = if (s - threshold).abs() <= 1e-9 {
                std::cmp::Ordering::Equal
            } else if s < threshold {
                std::cmp::Ordering::Less
            } else {
                std::cmp::Ordering::Greater
            };
            if op.eval(Some(ord)) {
                mass += p;
            }
        }
        mass.clamp(0.0, 1.0)
    }

    /// Mean of the distribution (equals `Σ p·v` up to grid resolution).
    pub fn mean(&self) -> f64 {
        self.dist
            .iter()
            .enumerate()
            .map(|(i, &p)| p * (self.offset + i as f64 * self.step))
            .sum()
    }

    /// Whether every input value was represented exactly on the grid
    /// (false means values were quantised to `Σ|v| / 2^16` resolution).
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Number of support points.
    pub fn support_len(&self) -> usize {
        self.dist.len()
    }
}

/// Builds the exact [`SumDistribution`] of `Σ v_i` over worlds of
/// independent tuples `(p_i, v_i)`. `values` must be parallel to `probs`.
///
/// Fails with a [`DbError::Plan`] resource guard when the DP would touch
/// more than `2^27` cells — the caller should fall back to `WITH WORLDS`
/// estimation for such groups.
pub fn sum_distribution_of(probs: &[f64], values: &[f64]) -> Result<SumDistribution, DbError> {
    assert_eq!(
        probs.len(),
        values.len(),
        "sum_distribution_of: values must be parallel to probs"
    );
    // Tuples that cannot move the sum (impossible, or value 0) only
    // waste support; drop them up front.
    let live: Vec<(f64, f64)> = probs
        .iter()
        .zip(values)
        .filter(|&(&p, &v)| p > 0.0 && v != 0.0)
        .map(|(&p, &v)| (p, v))
        .collect();

    let (step, exact) = match dyadic_step(live.iter().map(|&(_, v)| v)) {
        Some(step) => (step, true),
        None => {
            let magnitude: f64 = live.iter().map(|&(_, v)| v.abs()).sum();
            (magnitude / QUANT_STEPS, false)
        }
    };
    let mut units: Vec<(f64, i64)> = Vec::with_capacity(live.len());
    let mut span: u128 = 0;
    for &(p, v) in &live {
        let u = (v / step).round() as i64;
        span += u.unsigned_abs() as u128;
        units.push((p, u));
    }
    let cells = span.saturating_add(1) * live.len().max(1) as u128;
    if cells > MAX_DP_CELLS {
        return Err(DbError::Plan(format!(
            "HAVING SUM distribution needs {cells} DP cells over {} tuples \
             (limit {MAX_DP_CELLS}); narrow the group or estimate with WITH WORLDS",
            live.len()
        )));
    }

    // Index layout: sums live on offset + i·step for i in 0..=span, where
    // offset is the all-negative-tuples world. Fold keeps the live index
    // range tight so cost tracks the actual support, not the allocation.
    let neg: i64 = units.iter().map(|&(_, u)| u.min(0)).sum();
    let mut dist = vec![0.0f64; span as usize + 1];
    let base = (-neg) as usize;
    dist[base] = 1.0;
    let (mut lo, mut hi) = (base, base);
    for &(p, u) in &units {
        if u > 0 {
            let u = u as usize;
            hi += u;
            for i in (lo..=hi).rev() {
                let carried = if i >= lo + u { dist[i - u] } else { 0.0 };
                dist[i] = dist[i] * (1.0 - p) + carried * p;
            }
        } else {
            let u = (-u) as usize;
            lo -= u;
            for i in lo..=hi {
                let carried = if i + u <= hi { dist[i + u] } else { 0.0 };
                dist[i] = dist[i] * (1.0 - p) + carried * p;
            }
        }
    }
    Ok(SumDistribution {
        dist,
        step,
        offset: neg as f64 * step,
        exact,
    })
}

/// The smallest dyadic grid step `2^-k` (`k ≤ `[`MAX_DYADIC_SHIFT`]) that
/// represents every value exactly, or `None` when no such grid exists.
fn dyadic_step(values: impl Iterator<Item = f64> + Clone) -> Option<f64> {
    for k in 0..=MAX_DYADIC_SHIFT {
        let scale = (1u64 << k) as f64;
        let fits = values.clone().all(|v| {
            let scaled = v * scale;
            scaled.abs() < 2f64.powi(52) && (scaled - scaled.round()).abs() <= 1e-9
        });
        if fits {
            return Some(1.0 / scale);
        }
    }
    None
}

/// `P(count ≥ k)` for tuples matching the predicate.
pub fn prob_count_at_least(
    table: &ProbTable,
    pred: &Conjunction,
    k: usize,
) -> Result<f64, DbError> {
    let dist = count_distribution(table, pred)?;
    Ok(dist.iter().skip(k).sum::<f64>().clamp(0.0, 1.0))
}

/// Expected count and variance of the count (`Σp_i`, `Σp_i(1−p_i)`) for
/// tuples matching the predicate — the closed forms, no DP needed.
pub fn count_moments(table: &ProbTable, pred: &Conjunction) -> Result<(f64, f64), DbError> {
    let mut mean = 0.0;
    let mut var = 0.0;
    for (row, p) in table.iter() {
        if eval_conjunction(table.schema(), row, Some(p), pred)? {
            mean += p;
            var += p * (1.0 - p);
        }
    }
    Ok((mean, var))
}

/// The most likely count (mode of the Poisson-binomial; smallest index on
/// ties).
pub fn most_likely_count(table: &ProbTable, pred: &Conjunction) -> Result<usize, DbError> {
    let dist = count_distribution(table, pred)?;
    let mut best = 0usize;
    for (k, &p) in dist.iter().enumerate() {
        if p > dist[best] {
            best = k;
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{CmpOp, Comparison};
    use crate::schema::Schema;
    use crate::value::{ColumnType, Value};

    fn view(probs: &[f64]) -> ProbTable {
        let schema = Schema::of(&[("room", ColumnType::Int)]);
        let mut v = ProbTable::new("v", schema);
        for (i, &p) in probs.iter().enumerate() {
            v.insert(vec![Value::Int(i as i64 % 4)], p).unwrap();
        }
        v
    }

    #[test]
    fn distribution_sums_to_one() {
        let v = view(&[0.3, 0.7, 0.5, 0.9, 0.01]);
        let dist = count_distribution(&v, &vec![]).unwrap();
        assert_eq!(dist.len(), 6);
        let total: f64 = dist.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn two_tuple_case_matches_hand_computation() {
        let v = view(&[0.5, 0.2]);
        let dist = count_distribution(&v, &vec![]).unwrap();
        assert!((dist[0] - 0.5 * 0.8).abs() < 1e-12);
        assert!((dist[1] - (0.5 * 0.8 + 0.5 * 0.2)).abs() < 1e-12);
        assert!((dist[2] - 0.5 * 0.2).abs() < 1e-12);
    }

    #[test]
    fn deterministic_tuples_give_point_mass() {
        let v = view(&[1.0, 1.0, 0.0]);
        let dist = count_distribution(&v, &vec![]).unwrap();
        assert!((dist[2] - 1.0).abs() < 1e-12);
        assert_eq!(most_likely_count(&v, &vec![]).unwrap(), 2);
    }

    #[test]
    fn at_least_queries() {
        let v = view(&[0.5, 0.5]);
        let p1 = prob_count_at_least(&v, &vec![], 1).unwrap();
        assert!((p1 - 0.75).abs() < 1e-12);
        let p0 = prob_count_at_least(&v, &vec![], 0).unwrap();
        assert!((p0 - 1.0).abs() < 1e-12);
        let p3 = prob_count_at_least(&v, &vec![], 3).unwrap();
        assert_eq!(p3, 0.0);
    }

    #[test]
    fn predicate_restricts_the_count() {
        // Rooms cycle 0,1,2,3,0,...; restrict to room 0 (indices 0 and 4).
        let v = view(&[0.5, 0.9, 0.9, 0.9, 0.5]);
        let pred = vec![Comparison::new("room", CmpOp::Eq, 0i64)];
        let dist = count_distribution(&v, &pred).unwrap();
        assert_eq!(dist.len(), 3); // two candidate tuples
        assert!((dist[2] - 0.25).abs() < 1e-12);
        let (mean, var) = count_moments(&v, &pred).unwrap();
        assert!((mean - 1.0).abs() < 1e-12);
        assert!((var - 0.5).abs() < 1e-12);
    }

    #[test]
    fn moments_match_distribution() {
        let probs = [0.1, 0.4, 0.65, 0.9, 0.25, 0.33];
        let v = view(&probs);
        let dist = count_distribution(&v, &vec![]).unwrap();
        let mean_dp: f64 = dist.iter().enumerate().map(|(k, p)| k as f64 * p).sum();
        let e2: f64 = dist
            .iter()
            .enumerate()
            .map(|(k, p)| (k as f64) * (k as f64) * p)
            .sum();
        let (mean, var) = count_moments(&v, &vec![]).unwrap();
        assert!((mean - mean_dp).abs() < 1e-12);
        assert!((var - (e2 - mean_dp * mean_dp)).abs() < 1e-9);
    }

    #[test]
    fn domain_dp_matches_table_dp() {
        let probs = [0.1, 0.4, 0.65, 0.9, 0.25, 0.33];
        let v = view(&probs);
        assert_eq!(
            count_distribution_of(&probs),
            count_distribution(&v, &vec![]).unwrap()
        );
        assert_eq!(count_distribution_of(&[]), vec![1.0]);
    }

    #[test]
    fn sum_moments_closed_forms() {
        let probs = [0.5, 0.2];
        let values = [3.0, -1.0];
        let (mean, var) = sum_moments_of(&probs, &values);
        assert!((mean - (0.5 * 3.0 - 0.2)).abs() < 1e-12);
        assert!((var - (0.25 * 9.0 + 0.16 * 1.0)).abs() < 1e-12);
    }

    #[test]
    fn empty_relation_has_count_zero() {
        let v = view(&[]);
        let dist = count_distribution(&v, &vec![]).unwrap();
        assert_eq!(dist, vec![1.0]);
        assert_eq!(most_likely_count(&v, &vec![]).unwrap(), 0);
    }

    /// Brute-force `P(sum ⟨op⟩ t)` by enumerating all 2^n worlds.
    fn brute_sum_tail(probs: &[f64], values: &[f64], op: CmpOp, t: f64) -> f64 {
        let n = probs.len();
        let mut mass = 0.0;
        for world in 0..(1u32 << n) {
            let mut p_world = 1.0;
            let mut sum = 0.0;
            for i in 0..n {
                if world & (1 << i) != 0 {
                    p_world *= probs[i];
                    sum += values[i];
                } else {
                    p_world *= 1.0 - probs[i];
                }
            }
            let ord = if (sum - t).abs() <= 1e-9 {
                std::cmp::Ordering::Equal
            } else {
                sum.partial_cmp(&t).unwrap()
            };
            if op.eval(Some(ord)) {
                mass += p_world;
            }
        }
        mass
    }

    #[test]
    fn sum_distribution_matches_world_enumeration() {
        let probs = [0.3, 0.7, 0.5, 0.9, 0.2];
        let values = [1.5, -2.0, 0.25, 3.0, -0.5];
        let d = sum_distribution_of(&probs, &values).unwrap();
        assert!(d.is_exact(), "dyadic values must use the exact grid");
        for op in [
            CmpOp::Ge,
            CmpOp::Gt,
            CmpOp::Le,
            CmpOp::Lt,
            CmpOp::Eq,
            CmpOp::Ne,
        ] {
            for t in [-2.5, -2.0, 0.0, 0.25, 1.0, 2.75, 4.75, 10.0] {
                let exact = brute_sum_tail(&probs, &values, op, t);
                let got = d.tail(op, t);
                assert!(
                    (got - exact).abs() < 1e-9,
                    "{op:?} {t}: DP {got} vs worlds {exact}"
                );
            }
        }
        let (mean, _) = sum_moments_of(&probs, &values);
        assert!((d.mean() - mean).abs() < 1e-9);
    }

    #[test]
    fn sum_distribution_quantizes_non_dyadic_values() {
        let probs = [0.5, 0.5, 0.5];
        let values = [0.1, 0.3, 1.0 / 3.0];
        let d = sum_distribution_of(&probs, &values).unwrap();
        assert!(!d.is_exact());
        // Quantisation resolution is Σ|v|/2^16 ≈ 1e-5; the tail at a
        // mid-grid threshold still matches world enumeration closely.
        let exact = brute_sum_tail(&probs, &values, CmpOp::Ge, 0.2);
        assert!((d.tail(CmpOp::Ge, 0.2) - exact).abs() < 1e-3);
    }

    #[test]
    fn sum_distribution_edge_cases() {
        // No tuples → point mass at zero.
        let d = sum_distribution_of(&[], &[]).unwrap();
        assert_eq!(d.support_len(), 1);
        assert_eq!(d.tail(CmpOp::Ge, 0.0), 1.0);
        assert_eq!(d.tail(CmpOp::Gt, 0.0), 0.0);
        // Zero-probability and zero-value tuples cannot move the sum.
        let d = sum_distribution_of(&[0.0, 0.8], &[5.0, 0.0]).unwrap();
        assert_eq!(d.support_len(), 1);
        assert_eq!(d.tail(CmpOp::Eq, 0.0), 1.0);
        // Certain tuples shift the whole distribution.
        let d = sum_distribution_of(&[1.0, 0.5], &[-2.0, 1.0]).unwrap();
        assert!((d.tail(CmpOp::Le, -2.0) - 0.5).abs() < 1e-12);
        assert!((d.tail(CmpOp::Eq, -1.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn sum_distribution_resource_guard_trips() {
        // One tuple whose unit count alone exceeds the cell budget.
        let err = sum_distribution_of(&[0.5], &[(1u64 << 40) as f64]).unwrap_err();
        match err {
            DbError::Plan(msg) => assert!(msg.contains("DP cells"), "{msg}"),
            other => panic!("expected Plan error, got {other:?}"),
        }
    }
}
