//! Deterministic and tuple-independent probabilistic tables.
//!
//! A [`ProbTable`] is the paper's target representation: a *tuple-level*
//! probabilistic relation in which every row carries an existence
//! probability and rows are mutually independent (the standard
//! tuple-independent model of Dalvi & Suciu that the Ω-view builder
//! materialises into, cf. the `prob_view` of Fig. 1/2).

use crate::error::DbError;
use crate::schema::Schema;
use crate::value::Value;
use std::fmt;

/// A deterministic relation.
#[derive(Debug, Clone, PartialEq)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Vec<Value>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            rows: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row after schema validation/coercion.
    pub fn insert(&mut self, row: Vec<Value>) -> Result<(), DbError> {
        let row = self.schema.check_row(row)?;
        self.rows.push(row);
        Ok(())
    }

    /// Borrow of all rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Row `i`.
    pub fn row(&self, i: usize) -> &[Value] {
        &self.rows[i]
    }

    /// Single cell by row index and column name.
    pub fn cell(&self, row: usize, column: &str) -> Result<&Value, DbError> {
        let c = self.schema.index_of(column)?;
        Ok(&self.rows[row][c])
    }

    /// Extracts a whole column as `f64` (errors on text columns).
    pub fn float_column(&self, column: &str) -> Result<Vec<f64>, DbError> {
        let c = self.schema.index_of(column)?;
        self.rows
            .iter()
            .map(|r| {
                r[c].as_f64().ok_or_else(|| DbError::TypeMismatch {
                    column: column.to_string(),
                    expected: crate::value::ColumnType::Float,
                    got: r[c].column_type(),
                })
            })
            .collect()
    }

    /// Renders the table in a compact aligned text form (used by the
    /// examples and the experiment harness).
    pub fn render(&self, max_rows: usize) -> String {
        render_rows(
            &self.schema,
            self.rows.iter().map(|r| (r.as_slice(), None)),
            self.len(),
            max_rows,
        )
    }
}

/// A tuple-independent probabilistic relation: rows plus per-row existence
/// probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbTable {
    name: String,
    schema: Schema,
    rows: Vec<Vec<Value>>,
    probs: Vec<f64>,
}

impl ProbTable {
    /// Creates an empty probabilistic table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        ProbTable {
            name: name.into(),
            schema,
            rows: Vec::new(),
            probs: Vec::new(),
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Schema of the deterministic attributes (the probability is carried
    /// separately, not as a column).
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Appends a row with its existence probability.
    pub fn insert(&mut self, row: Vec<Value>, prob: f64) -> Result<(), DbError> {
        if !(0.0..=1.0).contains(&prob) || prob.is_nan() {
            return Err(DbError::InvalidProbability(prob));
        }
        let row = self.schema.check_row(row)?;
        self.rows.push(row);
        self.probs.push(prob);
        Ok(())
    }

    /// Borrow of all rows.
    pub fn rows(&self) -> &[Vec<Value>] {
        &self.rows
    }

    /// Borrow of all probabilities (parallel to [`ProbTable::rows`]).
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Row `i` with its probability.
    pub fn tuple(&self, i: usize) -> (&[Value], f64) {
        (&self.rows[i], self.probs[i])
    }

    /// Iterator over `(row, probability)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&[Value], f64)> {
        self.rows
            .iter()
            .map(|r| r.as_slice())
            .zip(self.probs.iter().copied())
    }

    /// Expected number of tuples present in a possible world: `Σ_i p_i`
    /// (linearity of expectation; independence not even required).
    pub fn expected_count(&self) -> f64 {
        self.probs.iter().sum()
    }

    /// Renders the relation with a trailing probability column.
    pub fn render(&self, max_rows: usize) -> String {
        render_rows(
            &self.schema,
            self.rows
                .iter()
                .zip(&self.probs)
                .map(|(r, p)| (r.as_slice(), Some(*p))),
            self.len(),
            max_rows,
        )
    }
}

impl fmt::Display for ProbTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render(20))
    }
}

/// Shared text renderer for both table kinds.
fn render_rows<'a, I>(schema: &Schema, rows: I, total: usize, max_rows: usize) -> String
where
    I: Iterator<Item = (&'a [Value], Option<f64>)>,
{
    let mut header: Vec<String> = schema.names().map(str::to_string).collect();
    let mut has_prob = false;
    let mut body: Vec<Vec<String>> = Vec::new();
    for (row, prob) in rows.take(max_rows) {
        let mut cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        if let Some(p) = prob {
            has_prob = true;
            cells.push(format!("{p:.4}"));
        }
        body.push(cells);
    }
    if has_prob {
        header.push("prob".to_string());
    }
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in &body {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| {
        let mut line = String::new();
        for i in 0..cols {
            if i > 0 {
                line.push_str("  ");
            }
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            line.push_str(&format!("{cell:>w$}", w = widths[i]));
        }
        line
    };
    out.push_str(&fmt_row(&header, &widths));
    out.push('\n');
    for row in &body {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    if total > body.len() {
        out.push_str(&format!("… ({} more rows)\n", total - body.len()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ColumnType;

    fn schema() -> Schema {
        Schema::of(&[("time", ColumnType::Int), ("room", ColumnType::Int)])
    }

    #[test]
    fn deterministic_insert_and_access() {
        let mut t = Table::new("raw", schema());
        t.insert(vec![Value::Int(1), Value::Int(4)]).unwrap();
        t.insert(vec![Value::Int(2), Value::Int(3)]).unwrap();
        assert_eq!(t.len(), 2);
        assert_eq!(t.cell(1, "room").unwrap(), &Value::Int(3));
        assert_eq!(t.float_column("time").unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn prob_table_validates_probability() {
        let mut p = ProbTable::new("view", schema());
        assert!(p.insert(vec![Value::Int(1), Value::Int(1)], 0.5).is_ok());
        assert!(matches!(
            p.insert(vec![Value::Int(1), Value::Int(2)], 1.5),
            Err(DbError::InvalidProbability(_))
        ));
        assert!(matches!(
            p.insert(vec![Value::Int(1), Value::Int(2)], f64::NAN),
            Err(DbError::InvalidProbability(_))
        ));
        assert!(p.insert(vec![Value::Int(1), Value::Int(2)], 0.0).is_ok());
        assert!(p.insert(vec![Value::Int(1), Value::Int(3)], 1.0).is_ok());
    }

    #[test]
    fn expected_count_is_probability_sum() {
        let mut p = ProbTable::new("view", schema());
        for (room, prob) in [(1, 0.5), (2, 0.1), (3, 0.3), (4, 0.1)] {
            p.insert(vec![Value::Int(1), Value::Int(room)], prob)
                .unwrap();
        }
        assert!((p.expected_count() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tuple_access_pairs_row_and_prob() {
        let mut p = ProbTable::new("v", schema());
        p.insert(vec![Value::Int(1), Value::Int(2)], 0.25).unwrap();
        let (row, prob) = p.tuple(0);
        assert_eq!(row[1], Value::Int(2));
        assert_eq!(prob, 0.25);
        assert_eq!(p.iter().count(), 1);
    }

    #[test]
    fn render_includes_prob_column_and_truncation() {
        let mut p = ProbTable::new("v", schema());
        for i in 0..5 {
            p.insert(vec![Value::Int(i), Value::Int(1)], 0.5).unwrap();
        }
        let text = p.render(3);
        assert!(text.contains("prob"));
        assert!(text.contains("0.5000"));
        assert!(text.contains("2 more rows"));
    }

    #[test]
    fn insert_rejects_bad_rows() {
        let mut t = Table::new("raw", schema());
        assert!(matches!(
            t.insert(vec![Value::Int(1)]),
            Err(DbError::ArityMismatch { .. })
        ));
        assert!(matches!(
            t.insert(vec![Value::from("x"), Value::Int(1)]),
            Err(DbError::TypeMismatch { .. })
        ));
    }
}
