//! # tspdb-probdb
//!
//! Tuple-independent probabilistic database substrate for the `tspdb`
//! workspace — the storage and query layer that the paper's Ω-view builder
//! materialises probabilistic views into:
//!
//! * [`value`] / [`schema`] — typed cells and relation schemas.
//! * [`table`] — deterministic [`table::Table`]s and tuple-independent
//!   [`table::ProbTable`]s (the `prob_view` of the paper's Fig. 1/2).
//! * [`query`] — probabilistic operators: selection, projection with
//!   probabilistic deduplication, threshold, top-k, event probability,
//!   expected aggregates.
//! * [`sql`] — tokenizer/parser for the paper's SQL-like syntax including
//!   the Fig. 7 `CREATE VIEW … AS DENSITY … OMEGA …` statement, the
//!   aggregate grammar (`COUNT(*)` / `SUM` / `AVG` / `EXPECTED`,
//!   `GROUP BY`, `HAVING` event predicates) and `EXPLAIN`.
//! * [`plan`] — the query planner: [`plan::LogicalPlan`] trees lowered to
//!   [`plan::PhysicalPlan`]s and executed by a pluggable
//!   [`plan::EvalStrategy`] ([`plan::ExactStrategy`] closed forms, the
//!   [`plan::WorldsStrategy`] Monte-Carlo backend under `WITH WORLDS`, or
//!   the [`plan::SynopsisStrategy`] O(B) histogram backend under
//!   `WITH SYNOPSIS`).
//! * [`catalog`] — the in-memory [`catalog::Database`] executing
//!   statements; `SELECT`s are planned then executed, density views are
//!   delegated to a handler supplied by the engine layer (`tspdb-core`).
//! * [`worlds`] — possible-world sampling: the parallel, deterministic
//!   [`worlds::WorldsExecutor`] behind `SELECT … WITH WORLDS`, plus the
//!   sequential reference sampler.
//!
//! ## Quick start
//!
//! ```
//! use tspdb_probdb::{ColumnType, Database, ProbTable, Schema, Value};
//!
//! let mut db = Database::new();
//! let schema = Schema::of(&[("t", ColumnType::Int), ("room", ColumnType::Int)]);
//! let mut pv = ProbTable::new("pv", schema);
//! pv.insert(vec![Value::Int(1), Value::Int(2)], 0.9).unwrap();
//! pv.insert(vec![Value::Int(3), Value::Int(2)], 0.4).unwrap();
//! db.register_prob_table(pv).unwrap();
//!
//! // Temporal windows: expected sightings per 2-step bucket.
//! let out = db.query("SELECT COUNT(*) FROM pv GROUP BY WINDOW(t, 2)").unwrap();
//! let agg = out.aggregate().unwrap();
//! assert_eq!(agg.groups.len(), 2); // buckets [0, 2) and [2, 4)
//! assert!((agg.groups[0].values[0].value - 0.9).abs() < 1e-12);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]
#![allow(
    // `!(x > 0.0)` deliberately catches NaN alongside non-positive values
    // in numeric guards; `partial_cmp` obscures that intent.
    clippy::neg_cmp_op_on_partial_ord,
    // Index-based loops mirror the textbook formulations of the numeric
    // kernels (Cholesky, Levinson-Durbin, filters) they implement.
    clippy::needless_range_loop
)]

pub mod aggregates;
pub mod catalog;
pub mod error;
pub mod plan;
pub mod plan_cache;
pub mod query;
pub mod schema;
pub mod shard;
pub mod sql;
pub mod table;
pub mod value;
pub mod worlds;

pub use aggregates::{sum_distribution_of, SumDistribution};
pub use catalog::{
    Database, QueryOutput, Relation, RelationSnapshot, RelationSynopses, ScanSource, StreamedTuple,
    TupleStream, AUTO_SHARD_MIN_ROWS, DEFAULT_SYNOPSIS_BUCKETS,
};
pub use error::DbError;
pub use plan::{
    AggregateResult, EvalStrategy, ExactStrategy, ExplainReport, LogicalPlan, PhysicalPlan,
    PlannedQuery, Planner, ScanContext, StrategyKind, SynopsisStrategy, WorldsStrategy,
};
pub use plan_cache::PlanCacheStats;
pub use query::{CmpOp, Comparison, Conjunction};
pub use schema::Schema;
pub use shard::{ColumnBounds, Shard, ShardMap};
pub use sql::{
    parse, AggExpr, AggFunc, DensityViewSpec, HavingClause, SelectItem, SelectStmt, Statement,
    SynopsisClause, WindowSpec, WorldsClause,
};
pub use table::{ProbTable, Table};
pub use value::{ColumnType, Value, ValueKey};
pub use worlds::{SumEstimate, WorldsConfig, WorldsExecutor, WorldsResult};

#[cfg(test)]
mod proptests {
    use crate::query::{project_prob, top_k};
    use crate::schema::Schema;
    use crate::table::ProbTable;
    use crate::value::{ColumnType, Value};
    use proptest::prelude::*;

    fn arb_prob_table() -> impl Strategy<Value = ProbTable> {
        proptest::collection::vec((0i64..5, 0i64..4, 0.0f64..=1.0), 0..40).prop_map(|rows| {
            let schema = Schema::of(&[("t", ColumnType::Int), ("k", ColumnType::Int)]);
            let mut p = ProbTable::new("pt", schema);
            for (t, k, prob) in rows {
                p.insert(vec![Value::Int(t), Value::Int(k)], prob).unwrap();
            }
            p
        })
    }

    proptest! {
        #[test]
        fn projection_probabilities_stay_valid(table in arb_prob_table()) {
            let proj = project_prob(&table, &["k".to_string()]).unwrap();
            for &p in proj.probs() {
                prop_assert!((0.0..=1.0).contains(&p));
            }
            // Deduplicated key count never exceeds source row count.
            prop_assert!(proj.len() <= table.len().max(1));
        }

        #[test]
        fn projection_dominates_each_contributor(table in arb_prob_table()) {
            // P(∃ tuple with key k) ≥ max p_i over contributors: merging can
            // only increase existence probability.
            let proj = project_prob(&table, &["k".to_string()]).unwrap();
            for (row, p) in proj.iter() {
                let key = &row[0];
                let max_contrib = table
                    .iter()
                    .filter(|(r, _)| &r[1] == key)
                    .map(|(_, pi)| pi)
                    .fold(0.0f64, f64::max);
                prop_assert!(p >= max_contrib - 1e-12);
            }
        }

        #[test]
        fn top_k_is_sorted_and_bounded(table in arb_prob_table(), k in 0usize..50) {
            let top = top_k(&table, k);
            prop_assert!(top.len() <= k.min(table.len()));
            for w in top.probs().windows(2) {
                prop_assert!(w[0] >= w[1]);
            }
        }
    }
}
