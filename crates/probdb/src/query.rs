//! Probabilistic query operators over tuple-independent relations.
//!
//! The point of creating a probabilistic database (paper, Introduction) is
//! that downstream probabilistic queries can then run against it. This
//! module implements the standard operator set for tuple-independent
//! relations: selection, projection with probabilistic deduplication,
//! threshold and top-k queries, event probability and expected-value
//! aggregates — enough to express the paper's motivating query ("the
//! probability that Alice could be found in each of the four rooms").

use crate::error::DbError;
use crate::schema::Schema;
use crate::table::{ProbTable, Table};
use crate::value::{row_key, Value, ValueKey};
use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use tspdb_stats::OrdF64;

/// Comparison operator of a simple predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=` / `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

impl CmpOp {
    /// Evaluates the operator against an ordering outcome.
    pub(crate) fn eval(self, ord: Option<Ordering>) -> bool {
        match (self, ord) {
            (CmpOp::Eq, Some(Ordering::Equal)) => true,
            (CmpOp::Ne, Some(o)) => o != Ordering::Equal,
            (CmpOp::Lt, Some(Ordering::Less)) => true,
            (CmpOp::Le, Some(Ordering::Less | Ordering::Equal)) => true,
            (CmpOp::Gt, Some(Ordering::Greater)) => true,
            (CmpOp::Ge, Some(Ordering::Greater | Ordering::Equal)) => true,
            _ => false,
        }
    }
}

/// A single `column op literal` comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Column name (the pseudo-column `prob` addresses the tuple
    /// probability on probabilistic relations).
    pub column: String,
    /// Operator.
    pub op: CmpOp,
    /// Literal right-hand side.
    pub value: Value,
}

impl Comparison {
    /// Builds a comparison.
    pub fn new(column: impl Into<String>, op: CmpOp, value: impl Into<Value>) -> Self {
        Comparison {
            column: column.into(),
            op,
            value: value.into(),
        }
    }
}

/// A conjunction of comparisons (the paper's `WHERE t >= 1 AND t <= 3`
/// shape). An empty conjunction accepts every row.
pub type Conjunction = Vec<Comparison>;

/// Name of the pseudo-column addressing tuple probabilities in predicates
/// over probabilistic relations.
pub const PROB_PSEUDO_COLUMN: &str = "prob";

/// Evaluates a conjunction against a row (with optional tuple probability
/// for the `prob` pseudo-column).
pub fn eval_conjunction(
    schema: &Schema,
    row: &[Value],
    prob: Option<f64>,
    pred: &Conjunction,
) -> Result<bool, DbError> {
    for cmp in pred {
        let ok = if let (PROB_PSEUDO_COLUMN, Some(p)) = (cmp.column.as_str(), prob) {
            cmp.op.eval(Value::Float(p).compare(&cmp.value))
        } else {
            let i = schema.index_of(&cmp.column)?;
            cmp.op.eval(row[i].compare(&cmp.value))
        };
        if !ok {
            return Ok(false);
        }
    }
    Ok(true)
}

/// Selection over a deterministic table.
pub fn select_table(table: &Table, pred: &Conjunction) -> Result<Table, DbError> {
    let mut out = Table::new(table.name().to_string(), table.schema().clone());
    for row in table.rows() {
        if eval_conjunction(table.schema(), row, None, pred)? {
            out.insert(row.clone())?;
        }
    }
    Ok(out)
}

/// Selection over a probabilistic relation: rows keep their probabilities
/// (conditioning on deterministic attributes does not change tuple
/// marginals in the tuple-independent model).
pub fn select_prob(table: &ProbTable, pred: &Conjunction) -> Result<ProbTable, DbError> {
    let mut out = ProbTable::new(table.name().to_string(), table.schema().clone());
    for (row, p) in table.iter() {
        if eval_conjunction(table.schema(), row, Some(p), pred)? {
            out.insert(row.to_vec(), p)?;
        }
    }
    Ok(out)
}

/// Projection with probabilistic duplicate elimination: identical projected
/// rows merge with probability `1 − Π(1 − p_i)` (the probability that at
/// least one contributing tuple exists, by tuple independence).
pub fn project_prob(table: &ProbTable, columns: &[String]) -> Result<ProbTable, DbError> {
    let (schema, idx) = table.schema().project(columns)?;
    // BTreeMap over the canonical value key keeps output order
    // deterministic without formatting every cell into a string; the
    // projected row is only materialised once per distinct key.
    let mut groups: BTreeMap<Vec<ValueKey<'_>>, (usize, f64)> = BTreeMap::new();
    for (i, (row, p)) in table.iter().enumerate() {
        let entry = groups.entry(row_key(row, &idx)).or_insert((i, 1.0));
        entry.1 *= 1.0 - p; // accumulate absence probability
    }
    // Emit groups in first-appearance order (deterministic, and saner than
    // the lexicographic-debug-string order the old text keys produced).
    let mut merged: Vec<(usize, f64)> = groups.into_values().collect();
    merged.sort_by_key(|&(i, _)| i);
    let mut out = ProbTable::new(table.name().to_string(), schema);
    for (i, absent) in merged {
        let projected: Vec<Value> = idx.iter().map(|&c| table.rows()[i][c].clone()).collect();
        out.insert(projected, (1.0 - absent).clamp(0.0, 1.0))?;
    }
    Ok(out)
}

/// Threshold query: tuples whose probability is at least `tau`.
pub fn threshold(table: &ProbTable, tau: f64) -> Result<ProbTable, DbError> {
    if !(0.0..=1.0).contains(&tau) {
        return Err(DbError::InvalidProbability(tau));
    }
    let mut out = ProbTable::new(table.name().to_string(), table.schema().clone());
    for (row, p) in table.iter() {
        if p >= tau {
            out.insert(row.to_vec(), p)?;
        }
    }
    Ok(out)
}

/// Sorts row indices by descending probability, ties broken toward the
/// earlier row — the single ordering contract shared by [`top_k`] and the
/// SQL `TOP` clause, so the two cannot drift apart.
///
/// The comparison goes through [`tspdb_stats::OrdF64`]'s total order
/// rather than `partial_cmp().unwrap()`: probabilities are non-NaN by
/// [`ProbTable`] construction, and the total order keeps that invariant an
/// explicit (panicking) precondition instead of silently degrading the
/// sort.
pub(crate) fn sort_indices_desc_by_prob(indices: &mut [usize], probs: &[f64]) {
    indices.sort_by(|&a, &b| {
        OrdF64::new(probs[b])
            .cmp(&OrdF64::new(probs[a]))
            .then(a.cmp(&b))
    });
}

/// Top-k query: the `k` most probable tuples, ties broken by row order.
pub fn top_k(table: &ProbTable, k: usize) -> ProbTable {
    let mut order: Vec<usize> = (0..table.len()).collect();
    sort_indices_desc_by_prob(&mut order, table.probs());
    let mut out = ProbTable::new(table.name().to_string(), table.schema().clone());
    for &i in order.iter().take(k) {
        let (row, p) = table.tuple(i);
        out.insert(row.to_vec(), p)
            .expect("row came from same schema");
    }
    out
}

/// Probability that at least one tuple satisfying the predicate exists:
/// `1 − Π(1 − p_i)` over matching tuples (tuple independence).
pub fn event_probability(table: &ProbTable, pred: &Conjunction) -> Result<f64, DbError> {
    let mut absent = 1.0;
    for (row, p) in table.iter() {
        if eval_conjunction(table.schema(), row, Some(p), pred)? {
            absent *= 1.0 - p;
        }
    }
    Ok((1.0 - absent).clamp(0.0, 1.0))
}

/// Expected sum of a numeric column over a tuple-independent relation:
/// `Σ p_i · v_i` (linearity of expectation).
pub fn expected_sum(table: &ProbTable, column: &str) -> Result<f64, DbError> {
    let c = table.schema().index_of(column)?;
    let mut acc = 0.0;
    for (row, p) in table.iter() {
        let v = row[c].as_f64().ok_or_else(|| DbError::TypeMismatch {
            column: column.to_string(),
            expected: crate::value::ColumnType::Float,
            got: row[c].column_type(),
        })?;
        acc += p * v;
    }
    Ok(acc)
}

/// For each distinct value of `group_column`, the most probable tuple —
/// e.g. "the most likely room per timestamp" in the paper's Fig. 1 example.
pub fn most_probable_per_group(
    table: &ProbTable,
    group_column: &str,
) -> Result<ProbTable, DbError> {
    let g = table.schema().index_of(group_column)?;
    let mut best: BTreeMap<ValueKey<'_>, (usize, f64)> = BTreeMap::new();
    for (i, (row, p)) in table.iter().enumerate() {
        match best.get(&row[g].key()) {
            Some(&(_, bp)) if bp >= p => {}
            _ => {
                best.insert(row[g].key(), (i, p));
            }
        }
    }
    let mut out = ProbTable::new(table.name().to_string(), table.schema().clone());
    let mut picks: Vec<(usize, f64)> = best.into_values().collect();
    picks.sort_by_key(|&(i, _)| i);
    for (i, p) in picks {
        out.insert(table.rows()[i].clone(), p)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::ColumnType;

    /// The paper's Fig. 1 `prob_view`: per-room probabilities at two times.
    fn alice_view() -> ProbTable {
        let schema = Schema::of(&[("time", ColumnType::Int), ("room", ColumnType::Int)]);
        let mut p = ProbTable::new("prob_view", schema);
        for (t, room, prob) in [
            (1, 1, 0.5),
            (1, 2, 0.1),
            (1, 3, 0.3),
            (1, 4, 0.1),
            (2, 1, 0.2),
            (2, 2, 0.4),
            (2, 3, 0.1),
            (2, 4, 0.3),
        ] {
            p.insert(vec![Value::Int(t), Value::Int(room)], prob)
                .unwrap();
        }
        p
    }

    #[test]
    fn selection_keeps_probabilities() {
        let v = alice_view();
        let pred = vec![Comparison::new("time", CmpOp::Eq, 1i64)];
        let at1 = select_prob(&v, &pred).unwrap();
        assert_eq!(at1.len(), 4);
        assert!((at1.expected_count() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn prob_pseudo_column_filters() {
        let v = alice_view();
        let pred = vec![Comparison::new(PROB_PSEUDO_COLUMN, CmpOp::Ge, 0.3)];
        let likely = select_prob(&v, &pred).unwrap();
        assert_eq!(likely.len(), 4); // 0.5, 0.3, 0.4, 0.3
        assert!(likely.probs().iter().all(|&p| p >= 0.3));
    }

    #[test]
    fn projection_merges_with_independence() {
        let v = alice_view();
        let proj = project_prob(&v, &["room".to_string()]).unwrap();
        assert_eq!(proj.len(), 4);
        // Room 1 appears with p = 1 − (1−0.5)(1−0.2) = 0.6.
        let room1 = proj
            .iter()
            .find(|(row, _)| row[0] == Value::Int(1))
            .unwrap()
            .1;
        assert!((room1 - 0.6).abs() < 1e-12, "room1 prob {room1}");
    }

    #[test]
    fn threshold_and_topk() {
        let v = alice_view();
        let th = threshold(&v, 0.4).unwrap();
        assert_eq!(th.len(), 2); // 0.5 and 0.4
        let top = top_k(&v, 3);
        assert_eq!(top.len(), 3);
        assert!((top.probs()[0] - 0.5).abs() < 1e-12);
        assert!((top.probs()[1] - 0.4).abs() < 1e-12);
        assert!((top.probs()[2] - 0.3).abs() < 1e-12);
        assert!(threshold(&v, 1.2).is_err());
    }

    #[test]
    fn event_probability_combines_independent_tuples() {
        let v = alice_view();
        // P(Alice is in room 1 at time 1 or 2) = 1 − (1−0.5)(1−0.2) = 0.6.
        let pred = vec![Comparison::new("room", CmpOp::Eq, 1i64)];
        let p = event_probability(&v, &pred).unwrap();
        assert!((p - 0.6).abs() < 1e-12);
        // Empty predicate matches all 8 tuples.
        let all = event_probability(&v, &vec![]).unwrap();
        assert!(all > 0.9);
    }

    #[test]
    fn expected_sum_weights_by_probability() {
        let v = alice_view();
        let pred = vec![Comparison::new("time", CmpOp::Eq, 1i64)];
        let at1 = select_prob(&v, &pred).unwrap();
        // E[room number] at time 1: 1·0.5 + 2·0.1 + 3·0.3 + 4·0.1 = 2.0.
        let e = expected_sum(&at1, "room").unwrap();
        assert!((e - 2.0).abs() < 1e-12);
    }

    #[test]
    fn most_probable_per_group_picks_argmax() {
        let v = alice_view();
        let best = most_probable_per_group(&v, "time").unwrap();
        assert_eq!(best.len(), 2);
        // Time 1 → room 1 (0.5); time 2 → room 2 (0.4).
        let rows: Vec<(i64, i64, f64)> = best
            .iter()
            .map(|(r, p)| (r[0].as_i64().unwrap(), r[1].as_i64().unwrap(), p))
            .collect();
        assert!(rows.contains(&(1, 1, 0.5)));
        assert!(rows.contains(&(2, 2, 0.4)));
    }

    #[test]
    fn comparisons_cover_all_operators() {
        let schema = Schema::of(&[("x", ColumnType::Int)]);
        let row = vec![Value::Int(5)];
        let check = |op, lit: i64| {
            eval_conjunction(&schema, &row, None, &vec![Comparison::new("x", op, lit)]).unwrap()
        };
        assert!(check(CmpOp::Eq, 5));
        assert!(check(CmpOp::Ne, 4));
        assert!(check(CmpOp::Lt, 6));
        assert!(check(CmpOp::Le, 5));
        assert!(check(CmpOp::Gt, 4));
        assert!(check(CmpOp::Ge, 5));
        assert!(!check(CmpOp::Eq, 4));
    }

    #[test]
    fn unknown_column_in_predicate_errors() {
        let v = alice_view();
        let pred = vec![Comparison::new("nope", CmpOp::Eq, 1i64)];
        assert!(matches!(
            select_prob(&v, &pred),
            Err(DbError::UnknownColumn(_))
        ));
    }
}
