//! # tspdb-server
//!
//! A concurrent TCP front-end for the tspdb engine: many clients speak
//! the [`tspdb_wire`] protocol to one [`SharedEngine`], so every
//! connection rides the lock-free read path (`SELECT`s under the shared
//! read lock, including Monte-Carlo `WITH WORLDS` queries) while writes
//! (`CREATE` / `INSERT` / `DROP` / density-view registration) serialize
//! through the catalog write lock exactly as in-process callers do.
//!
//! ## Architecture
//!
//! * [`Server::bind`] opens the listener; [`Server::spawn`] starts one
//!   accept thread plus a **bounded worker pool** (`std::net` blocking
//!   I/O — the build environment is offline, so there is no async
//!   runtime; a thread per in-flight connection is the honest model).
//!   Accepted connections queue on a bounded channel; each worker serves
//!   one connection at a time, so `workers` bounds concurrent sessions
//!   and the queue bounds accepted-but-unserved backlog.
//! * Each connection runs a session: handshake, then a strict
//!   request/response loop. Sessions own a prepared-statement map
//!   (`Prepare` plans a `SELECT` once via the planner;
//!   `Execute` replays the plan through
//!   [`Database::execute_planned_with_threads`]) and a session-scoped
//!   `WITH WORLDS` fork-join override that never touches shared state.
//! * Shutdown is cooperative: workers poll a flag between reads (socket
//!   read timeouts double as the poll tick), the accept thread is woken
//!   by a loopback connection, and [`ServerHandle::shutdown`] joins
//!   everything.
//!
//! [`Database::execute_planned_with_threads`]:
//! tspdb_probdb::Database::execute_planned_with_threads
//!
//! ## Quick start
//!
//! ```
//! use tspdb_core::SharedEngine;
//! use tspdb_server::{demo_config, Server, ServerConfig};
//!
//! let handle = Server::bind(
//!     "127.0.0.1:0", // ephemeral port
//!     SharedEngine::new(demo_config()),
//!     ServerConfig::default(),
//! )
//! .unwrap()
//! .spawn()
//! .unwrap();
//!
//! let mut client = tspdb_client::Client::connect(handle.addr()).unwrap();
//! client.query("CREATE TABLE t (x INT)").unwrap();
//! client.close().unwrap();
//! handle.shutdown();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::collections::HashMap;
use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tspdb_core::{CoreError, SharedEngine};
use tspdb_probdb::plan::{PlannedQuery, Planner};
use tspdb_probdb::sql::SelectStmt;
use tspdb_probdb::{parse, DbError, QueryOutput, Statement};
use tspdb_wire::{
    decode_message, write_frame, Request, Response, StatementId, WireError, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};

/// How the server identifies itself in the handshake.
pub const SERVER_NAME: &str = concat!("tspdb-server/", env!("CARGO_PKG_VERSION"));

/// How often a blocked worker wakes to check the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads — the bound on concurrently served sessions.
    pub workers: usize,
    /// Accepted connections that may wait for a free worker before the
    /// accept thread blocks.
    pub queue_depth: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            queue_depth: 32,
        }
    }
}

/// Aggregate counters over the server's lifetime (relaxed atomics — read
/// as diagnostics, not as a consistent snapshot).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Sessions that completed their handshake.
    pub sessions: AtomicU64,
    /// Requests answered (handshakes and errors included).
    pub requests: AtomicU64,
}

/// A bound listener, ready to [`spawn`](Server::spawn) its threads.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    engine: SharedEngine,
    config: ServerConfig,
}

impl Server {
    /// Binds the listener (use port 0 for an ephemeral port) and wires it
    /// to the engine every session will share.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: SharedEngine,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            engine,
            config,
        })
    }

    /// The bound address (the actual port when 0 was requested).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the accept thread and the worker pool; the returned handle
    /// owns every thread.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let workers = self.config.workers.max(1);
        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(self.config.queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));

        let worker_handles: Vec<JoinHandle<()>> = (0..workers)
            .map(|_| {
                let rx = Arc::clone(&rx);
                let engine = self.engine.clone();
                let shutdown = Arc::clone(&shutdown);
                let stats = Arc::clone(&stats);
                std::thread::spawn(move || worker_loop(&rx, engine, &shutdown, &stats))
            })
            .collect();

        let accept = {
            let shutdown = Arc::clone(&shutdown);
            let listener = self.listener;
            std::thread::spawn(move || accept_loop(&listener, &tx, &shutdown))
        };

        Ok(ServerHandle {
            addr,
            shutdown,
            stats,
            accept: Some(accept),
            workers: worker_handles,
        })
    }
}

/// Owns a running server's threads; dropping without
/// [`shutdown`](ServerHandle::shutdown) detaches them.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Blocks until the server stops accepting (i.e. until another thread
    /// calls nothing — the accept loop only exits on shutdown; this is
    /// what the server binary parks on).
    pub fn wait(&mut self) {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
    }

    /// Stops accepting, wakes blocked threads, and joins the pool.
    /// In-flight requests finish; idle sessions are closed at the next
    /// poll tick.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept thread with a throwaway loopback connection. A
        // wildcard bind (0.0.0.0 / [::]) is not connectable on every
        // platform — substitute the matching loopback address.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            wake.set_ip(match wake {
                SocketAddr::V4(_) => std::net::Ipv4Addr::LOCALHOST.into(),
                SocketAddr::V6(_) => std::net::Ipv6Addr::LOCALHOST.into(),
            });
        }
        let _ = TcpStream::connect_timeout(&wake, POLL_INTERVAL);
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Accepts connections and queues them for the workers; exits when the
/// shutdown flag is raised (woken by the loopback connection) and drops
/// the sender so idle workers drain out.
fn accept_loop(listener: &TcpListener, tx: &SyncSender<TcpStream>, shutdown: &AtomicBool) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Persistent accept errors (EMFILE when fds run out, etc.)
                // must not busy-spin the accept thread exactly when the
                // process is resource-starved.
                std::thread::sleep(POLL_INTERVAL / 10);
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return;
        }
        // Block while the queue is full (backpressure), but keep checking
        // for shutdown so a saturated server still stops promptly.
        let mut pending = stream;
        loop {
            match tx.try_send(pending) {
                Ok(()) => break,
                Err(TrySendError::Full(back)) => {
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    pending = back;
                    std::thread::sleep(POLL_INTERVAL / 10);
                }
                Err(TrySendError::Disconnected(_)) => return,
            }
        }
    }
}

/// One worker: serve queued connections until the channel closes or
/// shutdown is raised.
fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    engine: SharedEngine,
    shutdown: &AtomicBool,
    stats: &ServerStats,
) {
    loop {
        let stream = {
            // Recover the queue from a poisoned lock: a worker that
            // panicked mid-`recv` left the receiver itself intact, and
            // letting the poison flag cascade would kill every remaining
            // worker one by one as each touches the mutex.
            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        match stream {
            Ok(stream) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // A failed session (I/O error, protocol violation) only
                // affects that connection.
                serve_connection(stream, &engine, shutdown, stats);
            }
            Err(_) => return, // accept loop gone
        }
    }
}

/// What one attempt to read a request produced.
enum ReadOutcome {
    /// A complete, well-formed request.
    Request(Request),
    /// The peer closed the connection (or overstayed a deadline).
    Disconnected,
    /// The server is shutting down.
    ShuttingDown,
}

/// How long a connection may stay silent before completing the
/// handshake. A socket that has not even said `Hello` must not pin a
/// pool worker; established sessions may idle indefinitely *between*
/// frames.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// How long a *started* frame may take to arrive in full. Wall-clock, so
/// a peer trickling one byte per poll interval (which never trips the
/// socket timeout) still cannot pin a worker past this bound.
const FRAME_COMPLETION_TIMEOUT: Duration = Duration::from_secs(60);

/// Reads one frame, waking every [`POLL_INTERVAL`] to check the shutdown
/// flag. `idle_deadline` bounds the wait for the frame to *start*
/// (`None` = the session may idle forever); once its first byte arrives,
/// the rest must land within [`FRAME_COMPLETION_TIMEOUT`]. Overstaying
/// either deadline counts as a disconnect.
fn read_request(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
    idle_deadline: Option<Instant>,
) -> Result<ReadOutcome, WireError> {
    let mut prefix = [0u8; 4];
    if !read_exact_interruptible(stream, &mut prefix[..1], shutdown, idle_deadline)? {
        return Ok(interrupted_outcome(shutdown));
    }
    // A frame has started: the remainder races the completion clock (and
    // still the idle deadline, if that is sooner — the handshake must fit
    // entirely inside its window).
    let mut deadline = Instant::now() + FRAME_COMPLETION_TIMEOUT;
    if let Some(idle) = idle_deadline {
        deadline = deadline.min(idle);
    }
    if !read_exact_interruptible(stream, &mut prefix[1..], shutdown, Some(deadline))? {
        return Ok(interrupted_outcome(shutdown));
    }
    let len = u32::from_be_bytes(prefix);
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    // Grow the body in bounded chunks instead of trusting the 4-byte
    // prefix with one up-front allocation (a hostile prefix just under
    // MAX_FRAME_LEN would otherwise pin 64 MiB per connection before a
    // single body byte arrives). Memory now grows only as fast as the
    // peer actually delivers data.
    const BODY_CHUNK: usize = 64 * 1024;
    let mut body = Vec::new();
    while body.len() < len as usize {
        let take = BODY_CHUNK.min(len as usize - body.len());
        let start = body.len();
        body.resize(start + take, 0);
        if !read_exact_interruptible(stream, &mut body[start..], shutdown, Some(deadline))? {
            return Ok(interrupted_outcome(shutdown));
        }
    }
    Ok(ReadOutcome::Request(decode_message(&body)?))
}

fn interrupted_outcome(shutdown: &AtomicBool) -> ReadOutcome {
    if shutdown.load(Ordering::SeqCst) {
        ReadOutcome::ShuttingDown
    } else {
        ReadOutcome::Disconnected
    }
}

/// Fills `buf` from the socket, treating read timeouts as shutdown poll
/// ticks and `deadline` as a wall-clock cutoff checked on every pass.
/// Returns `false` on EOF, shutdown or deadline expiry; `true` when
/// `buf` is full.
fn read_exact_interruptible(
    stream: &mut TcpStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
    deadline: Option<Instant>,
) -> Result<bool, WireError> {
    let mut have = 0usize;
    while have < buf.len() {
        if deadline.is_some_and(|d| Instant::now() >= d) {
            return Ok(false);
        }
        match stream.read(&mut buf[have..]) {
            Ok(0) => return Ok(false),
            Ok(n) => have += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Ok(false);
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(true)
}

/// A prepared statement held by one session.
enum Prepared {
    /// A planned `SELECT` — executing replays the plan without parsing or
    /// planning again.
    Select(PlannedQuery),
    /// An `EXPLAIN` — re-reported per execute so the relation annotation
    /// reflects the current catalog.
    Explain(SelectStmt),
}

/// Per-connection state: the prepared-statement map and the session's
/// `WITH WORLDS` fork-join override.
struct Session {
    prepared: HashMap<u64, Prepared>,
    next_statement: u64,
    worlds_threads: Option<usize>,
}

impl Session {
    fn new() -> Self {
        Session {
            prepared: HashMap::new(),
            next_statement: 1,
            worlds_threads: None,
        }
    }
}

/// Maps an engine-layer error onto the wire's [`DbError`] vocabulary.
fn core_to_db(e: CoreError) -> DbError {
    match e {
        CoreError::Db(db) => db,
        other => DbError::ViewBuild(other.to_string()),
    }
}

/// Runs one SQL statement with session-level routing: `SELECT`/`EXPLAIN`
/// under the shared read lock (with the session's worlds override),
/// everything else through the engine's write path.
fn run_sql(engine: &SharedEngine, session: &Session, sql: &str) -> Result<QueryOutput, DbError> {
    match parse(sql)? {
        Statement::Select(sel) => engine
            .read()
            .query_select_with_threads(&sel, session.worlds_threads),
        Statement::Explain(sel) => engine.read().explain_select(&sel),
        // Writes carry the original SQL text alongside the parsed form so
        // a persistent engine can journal the text to its WAL.
        other => engine.execute_sql_statement(sql, other).map_err(core_to_db),
    }
}

/// Builds the response to one post-handshake request; the bool is
/// `false` when the session should end.
fn respond(engine: &SharedEngine, session: &mut Session, req: Request) -> (Response, bool) {
    match req {
        Request::Hello { .. } => (
            Response::Error(DbError::Unsupported(
                "session already opened; a second handshake is a protocol violation".into(),
            )),
            false,
        ),
        Request::Query { sql } => match run_sql(engine, session, &sql) {
            Ok(out) => (Response::Result(out), true),
            Err(e) => (Response::Error(e), true),
        },
        Request::Prepare { sql } => {
            let prepared = match parse(&sql) {
                Ok(Statement::Select(sel)) => Planner::plan(&sel).map(Prepared::Select),
                Ok(Statement::Explain(sel)) => {
                    // Validate now so Prepare surfaces plan errors; the
                    // report itself is rebuilt per execute.
                    Planner::plan(&sel).map(|_| Prepared::Explain(sel))
                }
                Ok(other) => Err(DbError::ReadOnly(format!(
                    "only read-only statements can be prepared: {other:?}"
                ))),
                Err(e) => Err(e),
            };
            match prepared {
                Ok(p) => {
                    let id = session.next_statement;
                    session.next_statement += 1;
                    session.prepared.insert(id, p);
                    (
                        Response::Prepared {
                            statement: StatementId(id),
                        },
                        true,
                    )
                }
                Err(e) => (Response::Error(e), true),
            }
        }
        Request::Execute { statement } => {
            let result = match session.prepared.get(&statement.0) {
                Some(Prepared::Select(planned)) => engine
                    .read()
                    .execute_planned_with_threads(planned, session.worlds_threads),
                Some(Prepared::Explain(sel)) => engine.read().explain_select(sel),
                None => Err(DbError::Unsupported(format!(
                    "unknown prepared statement {statement}"
                ))),
            };
            match result {
                Ok(out) => (Response::Result(out), true),
                Err(e) => (Response::Error(e), true),
            }
        }
        Request::CloseStatement { statement } => {
            if session.prepared.remove(&statement.0).is_some() {
                (Response::Closed { statement }, true)
            } else {
                (
                    Response::Error(DbError::Unsupported(format!(
                        "unknown prepared statement {statement}"
                    ))),
                    true,
                )
            }
        }
        Request::SetWorldsThreads { threads } => {
            session.worlds_threads = threads.map(|t| usize::try_from(t).unwrap_or(usize::MAX));
            (Response::WorldsThreadsSet { threads }, true)
        }
        Request::Close => (Response::Bye, false),
    }
}

/// Serves one connection end-to-end: handshake, request loop, teardown.
fn serve_connection(
    mut stream: TcpStream,
    engine: &SharedEngine,
    shutdown: &AtomicBool,
    stats: &ServerStats,
) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));

    // Handshake first; anything else (including line noise) ends the
    // connection, with a structured error when one can still be written.
    // A connection that stays silent past the handshake deadline is
    // dropped so idle pre-handshake sockets cannot pin pool workers.
    match read_request(
        &mut stream,
        shutdown,
        Some(Instant::now() + HANDSHAKE_TIMEOUT),
    ) {
        Ok(ReadOutcome::Request(Request::Hello { version })) if version == PROTOCOL_VERSION => {
            let hello = Response::Hello {
                version: PROTOCOL_VERSION,
                server: SERVER_NAME.to_string(),
            };
            if write_frame(&mut stream, &hello).is_err() {
                return;
            }
        }
        Ok(ReadOutcome::Request(Request::Hello { version })) => {
            let _ = write_frame(
                &mut stream,
                &Response::Error(DbError::Unsupported(format!(
                    "protocol version {version} not supported; server speaks {PROTOCOL_VERSION}"
                ))),
            );
            return;
        }
        Ok(ReadOutcome::Request(_)) => {
            let _ = write_frame(
                &mut stream,
                &Response::Error(DbError::Unsupported(
                    "the first request must be the handshake".into(),
                )),
            );
            return;
        }
        Ok(ReadOutcome::Disconnected | ReadOutcome::ShuttingDown) | Err(_) => return,
    }
    stats.sessions.fetch_add(1, Ordering::Relaxed);

    let mut session = Session::new();
    loop {
        let req = match read_request(&mut stream, shutdown, None) {
            Ok(ReadOutcome::Request(req)) => req,
            Ok(ReadOutcome::Disconnected | ReadOutcome::ShuttingDown) => return,
            Err(WireError::Io(_)) => return,
            Err(e) => {
                // Protocol violations get a structured goodbye when the
                // socket still works; either way the session ends.
                let _ = write_frame(
                    &mut stream,
                    &Response::Error(DbError::Unsupported(format!("malformed request: {e}"))),
                );
                return;
            }
        };
        let (response, keep_going) = respond(engine, &mut session, req);
        stats.requests.fetch_add(1, Ordering::Relaxed);
        let written = match write_frame(&mut stream, &response) {
            Ok(()) => true,
            // A result too large for one frame is a *server-side* error,
            // not a dead socket: answer it as a structured Error so the
            // session keeps its "errors never kill a session" contract.
            Err(WireError::FrameTooLarge { len, max }) => write_frame(
                &mut stream,
                &Response::Error(DbError::Unsupported(format!(
                    "result of {len} bytes exceeds the {max}-byte frame limit; \
                     restrict the query (WHERE/LIMIT/THRESHOLD)"
                ))),
            )
            .is_ok(),
            Err(_) => false,
        };
        if !written || !keep_going {
            return;
        }
    }
}

/// The view-builder configuration the demo server runs with — one fixed,
/// documented config so an out-of-process client (the `server_client`
/// example, the CI smoke job) can rebuild the exact same views locally
/// and compare results byte for byte.
pub fn demo_config() -> tspdb_core::ViewBuilderConfig {
    tspdb_core::ViewBuilderConfig {
        window: 60,
        metric_config: tspdb_core::MetricConfig {
            p: 1,
            ..tspdb_core::MetricConfig::default()
        },
        ..tspdb_core::ViewBuilderConfig::default()
    }
}

/// One `INSERT` statement carrying the 60-reading synthetic series the
/// differential surfaces (the `server_client` example, the end-to-end
/// tests) replay — literals, so a server and a local mirror executing the
/// same text are guaranteed the same data.
pub fn demo_insert_statement(table: &str) -> String {
    let mut stmt = format!("INSERT INTO {table} VALUES ");
    for t in 0..60 {
        if t > 0 {
            stmt.push_str(", ");
        }
        let r = 4.0 + 0.05 * t as f64 + ((t * 7919) % 13) as f64 * 0.01;
        stmt.push_str(&format!("({t}, {r})"));
    }
    stmt
}

/// A [`demo_config`] engine pre-loaded with the demo dataset: 150
/// synthetic temperature readings in `raw_values` and a density view `pv`
/// over them — enough for every statement shape (rows, probabilistic
/// rows, `WITH WORLDS`, aggregates, `EXPLAIN`) to have a target.
pub fn demo_engine() -> Result<SharedEngine, CoreError> {
    let engine = SharedEngine::new(demo_config());
    load_demo_data(&engine)?;
    Ok(engine)
}

/// Loads the demo dataset into an existing engine (the `--demo --data-dir`
/// combination). Skipped when `raw_values` already exists — a recovered
/// data directory keeps its own data.
pub fn load_demo_data(engine: &SharedEngine) -> Result<(), CoreError> {
    if engine
        .read()
        .all_relation_names()
        .iter()
        .any(|n| n == "raw_values")
    {
        return Ok(());
    }
    let series = tspdb_timeseries::generate::TemperatureGenerator::default().generate(150);
    engine.load_series("raw_values", "r", &series)?;
    engine.execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=6 FROM raw_values")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspdb_client::Client;

    fn demo_server() -> ServerHandle {
        Server::bind(
            "127.0.0.1:0",
            demo_engine().unwrap(),
            ServerConfig::default(),
        )
        .unwrap()
        .spawn()
        .unwrap()
    }

    #[test]
    fn serves_queries_and_shuts_down() {
        let handle = demo_server();
        let mut client = Client::connect(handle.addr()).unwrap();
        assert!(client.server_info().starts_with("tspdb-server/"));
        let out = client.query("SELECT * FROM pv THRESHOLD 0.2").unwrap();
        assert!(!out.prob_rows().unwrap().is_empty());
        client.close().unwrap();
        assert_eq!(handle.stats().sessions.load(Ordering::Relaxed), 1);
        handle.shutdown();
    }

    #[test]
    fn prepared_statements_replay_the_plan() {
        let handle = demo_server();
        let mut client = Client::connect(handle.addr()).unwrap();
        let stmt = client
            .prepare("SELECT t, COUNT(*) FROM pv GROUP BY t WITH WORLDS 500 SEED 3")
            .unwrap();
        let a = client.execute(stmt).unwrap();
        let b = client.execute(stmt).unwrap();
        assert_eq!(
            a.aggregate().unwrap().fingerprint(),
            b.aggregate().unwrap().fingerprint()
        );
        client.close_statement(stmt).unwrap();
        assert!(client.execute(stmt).is_err());
        client.close().unwrap();
        handle.shutdown();
    }

    #[test]
    fn writes_and_reads_share_one_catalog() {
        let handle = demo_server();
        let mut a = Client::connect(handle.addr()).unwrap();
        let mut b = Client::connect(handle.addr()).unwrap();
        a.query("CREATE TABLE shared_t (x INT)").unwrap();
        a.query("INSERT INTO shared_t VALUES (1), (2), (3)")
            .unwrap();
        let out = b.query("SELECT COUNT(*) FROM shared_t").unwrap();
        let agg = out.aggregate().unwrap();
        assert_eq!(agg.groups[0].values[0].value, 3.0);
        a.close().unwrap();
        b.close().unwrap();
        handle.shutdown();
    }

    #[test]
    fn session_worlds_override_changes_latency_only_and_is_clearable() {
        let handle = demo_server();
        let mut client = Client::connect(handle.addr()).unwrap();
        const SQL: &str = "SELECT * FROM pv WITH WORLDS 2000 SEED 11";
        let base = client.query(SQL).unwrap().worlds().unwrap().fingerprint();
        client.set_worlds_threads(4).unwrap();
        let overridden = client.query(SQL).unwrap().worlds().unwrap().fingerprint();
        assert_eq!(base, overridden);
        // Clearing the override hands the session back to the engine-wide
        // default — still the same estimate, by the determinism contract.
        client.reset_worlds_threads().unwrap();
        let cleared = client.query(SQL).unwrap().worlds().unwrap().fingerprint();
        assert_eq!(base, cleared);
        client.close().unwrap();
        handle.shutdown();
    }

    #[test]
    fn errors_are_structured_and_non_fatal() {
        let handle = demo_server();
        let mut client = Client::connect(handle.addr()).unwrap();
        let err = client.query("SELECT * FROM nope").unwrap_err();
        assert!(matches!(
            err,
            tspdb_client::ClientError::Server(DbError::UnknownTable(_))
        ));
        let err = client.query("SELEC typo").unwrap_err();
        assert!(matches!(
            err,
            tspdb_client::ClientError::Server(DbError::Parse(_))
        ));
        let err = client.prepare("INSERT INTO raw_values VALUES (1, 2.0)");
        assert!(matches!(
            err,
            Err(tspdb_client::ClientError::Server(DbError::ReadOnly(_)))
        ));
        // The session survived all three.
        assert!(client.query("SELECT * FROM pv LIMIT 1").is_ok());
        client.close().unwrap();
        handle.shutdown();
    }
}
