//! # tspdb-server
//!
//! An event-driven TCP front-end for the tspdb engine: many clients speak
//! the [`tspdb_wire`] protocol to one [`SharedEngine`], so every
//! connection rides the lock-free read path (`SELECT`s under the shared
//! read lock, including Monte-Carlo `WITH WORLDS` queries) while writes
//! (`CREATE` / `INSERT` / `DROP` / density-view registration) serialize
//! through the catalog write lock exactly as in-process callers do.
//!
//! ## Architecture
//!
//! * One **event-loop thread** owns a hand-rolled `epoll` reactor (the
//!   [`poller`] module — the build environment is offline, so there is no
//!   async runtime) plus the nonblocking listener and every connection's
//!   socket. Per-connection read/write buffers and a small state machine
//!   absorb partial frames: the loop never blocks on any one peer, so
//!   thousands of idle connections cost one registered descriptor each
//!   rather than a parked thread.
//! * A pool of **CPU workers** executes ready requests off the loop.
//!   When a full frame has been buffered the loop hands the decoded
//!   request (plus the session it belongs to) to a worker; the worker
//!   runs it against the engine, *encodes the response frame itself*, and
//!   posts the bytes back through a completion queue + [`poller::Waker`].
//!   The loop only ever shuttles buffers.
//! * **Backpressure** is write-interest registration: a response that
//!   does not fit the socket buffer parks in the connection's write
//!   buffer and the descriptor is re-registered for writability; the
//!   loop resumes the flush when the peer drains. A peer that stops
//!   reading stalls only its own connection.
//! * **Admission control**: at most [`ServerConfig::max_connections`]
//!   sockets are resident; a connection beyond the cap is answered with
//!   a structured [`Response::Error`] and drained, never ignored.
//!   Pre-handshake sockets must say `Hello` within
//!   [`ServerConfig::handshake_timeout`], idle sessions are reaped after
//!   [`ServerConfig::idle_timeout`], and a started-but-stalled frame is
//!   bounded by a fixed completion timeout — so no peer can pin loop
//!   state forever.
//! * Sessions own a prepared-statement map (`Prepare` plans a `SELECT`
//!   once — through the engine's shared plan cache — and `Execute`
//!   replays the plan through
//!   [`Database::execute_planned_with_threads`]) and a session-scoped
//!   `WITH WORLDS` fork-join override that never touches shared state.
//!   Ad-hoc `Query` text is also answered from the plan cache when the
//!   catalog generation still matches, skipping parse and plan entirely.
//! * **TAIL continuous queries**: a [`tspdb_ingest::TailRegistry`] shared
//!   by the workers holds every standing `TAIL SELECT ... GROUP BY
//!   WINDOW(...)` query. After each request a worker polls the registry
//!   (two generation loads per subscription when nothing changed) and
//!   queues pushed `TailFrame` responses — one per newly closed window
//!   bucket — to the owning connections through the same completion
//!   path replies travel; the loop appends them to write buffers under
//!   the usual backpressure rules. Subscriptions die with their
//!   connection.
//!
//! [`Database::execute_planned_with_threads`]:
//! tspdb_probdb::Database::execute_planned_with_threads
//!
//! ## Quick start
//!
//! ```
//! use tspdb_core::SharedEngine;
//! use tspdb_server::{demo_config, Server, ServerConfig};
//!
//! let handle = Server::bind(
//!     "127.0.0.1:0", // ephemeral port
//!     SharedEngine::new(demo_config()),
//!     ServerConfig::default(),
//! )
//! .unwrap()
//! .spawn()
//! .unwrap();
//!
//! let mut client = tspdb_client::Client::connect(handle.addr()).unwrap();
//! client.query("CREATE TABLE t (x INT)").unwrap();
//! client.close().unwrap();
//! handle.shutdown();
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod poller;

use poller::{Event, Interest, Poller, Waker};
use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tspdb_core::{CoreError, SharedEngine};
use tspdb_ingest::{TailEvent, TailRegistry, TailToken};
use tspdb_probdb::plan::{PlannedQuery, Planner};
use tspdb_probdb::sql::SelectStmt;
use tspdb_probdb::{parse, DbError, QueryOutput, Statement};
use tspdb_wire::{
    decode_message, write_frame, Request, Response, StatementId, Wire, WireError, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};

/// How the server identifies itself in the handshake.
pub const SERVER_NAME: &str = concat!("tspdb-server/", env!("CARGO_PKG_VERSION"));

/// The event loop's housekeeping tick: the longest it will sleep in
/// `epoll_wait` before sweeping timeouts and checking the shutdown flag.
const POLL_INTERVAL: Duration = Duration::from_millis(200);

/// How long a *started* frame may take to arrive in full. Wall-clock, so
/// a peer trickling one byte per tick still cannot pin connection state
/// past this bound.
const FRAME_COMPLETION_TIMEOUT: Duration = Duration::from_secs(60);

/// How long a rejected (over-capacity) connection is drained so the
/// error frame outruns the close (an immediate close with unread `Hello`
/// bytes in the receive buffer would RST the frame away).
const REJECT_LINGER: Duration = Duration::from_secs(1);

/// Hard bound on a connection's buffered-but-unprocessed input: one
/// maximum frame plus slack. The protocol is strict request/response, so
/// a peer exceeding this is flooding, not pipelining.
const READ_BUFFER_LIMIT: usize = MAX_FRAME_LEN as usize + 4 + 64 * 1024;

/// Configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// CPU worker threads executing ready queries — the bound on
    /// concurrently *executing* requests (connections are not bounded by
    /// this; idle ones cost no thread at all).
    pub workers: usize,
    /// Sockets resident at once; a connection beyond the cap receives a
    /// structured error and is drained, never left hanging.
    pub max_connections: usize,
    /// How long an established session may sit idle *between* frames
    /// before the server drops it.
    pub idle_timeout: Duration,
    /// How long a fresh socket may take to complete the handshake.
    pub handshake_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 8,
            max_connections: 1024,
            idle_timeout: Duration::from_secs(300),
            handshake_timeout: Duration::from_secs(10),
        }
    }
}

/// Aggregate counters over the server's lifetime (relaxed atomics — read
/// as diagnostics, not as a consistent snapshot).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Sessions that completed their handshake.
    pub sessions: AtomicU64,
    /// Post-handshake requests answered (errors included).
    pub requests: AtomicU64,
}

/// A bound listener, ready to [`spawn`](Server::spawn) its threads.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    engine: SharedEngine,
    config: ServerConfig,
}

/// Reactor token of the listening socket.
const TOKEN_LISTENER: u64 = 0;
/// Reactor token of the loop's wake eventfd.
const TOKEN_WAKER: u64 = 1;
/// First token handed to an accepted connection.
const TOKEN_FIRST_CONNECTION: u64 = 2;

impl Server {
    /// Binds the listener (use port 0 for an ephemeral port) and wires it
    /// to the engine every session will share.
    pub fn bind(
        addr: impl ToSocketAddrs,
        engine: SharedEngine,
        config: ServerConfig,
    ) -> std::io::Result<Server> {
        Ok(Server {
            listener: TcpListener::bind(addr)?,
            engine,
            config,
        })
    }

    /// The bound address (the actual port when 0 was requested).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Starts the event-loop thread and the CPU worker pool; the returned
    /// handle owns every thread.
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.listener.local_addr()?;
        self.listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ServerStats::default());
        let waker = Arc::new(Waker::new()?);
        let completions = Arc::new(Mutex::new(VecDeque::new()));
        let tails = Arc::new(TailRegistry::new());
        let tail_owners: Arc<TailOwners> = Arc::new(Mutex::new(HashMap::new()));
        let (job_tx, job_rx) = std::sync::mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));

        let workers: Vec<JoinHandle<()>> = (0..self.config.workers.max(1))
            .map(|_| {
                let job_rx = Arc::clone(&job_rx);
                let engine = self.engine.clone();
                let stats = Arc::clone(&stats);
                let completions = Arc::clone(&completions);
                let waker = Arc::clone(&waker);
                let tails = Arc::clone(&tails);
                let tail_owners = Arc::clone(&tail_owners);
                std::thread::spawn(move || {
                    worker_loop(
                        &job_rx,
                        engine,
                        &stats,
                        &completions,
                        &waker,
                        &tails,
                        &tail_owners,
                    )
                })
            })
            .collect();

        let poller = Poller::new()?;
        poller.register(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.register(waker.as_raw_fd(), TOKEN_WAKER, Interest::READ)?;

        let event_loop = EventLoop {
            poller,
            listener: self.listener,
            config: self.config,
            shutdown: Arc::clone(&shutdown),
            stats: Arc::clone(&stats),
            waker: Arc::clone(&waker),
            completions,
            job_tx,
            connections: HashMap::new(),
            next_token: TOKEN_FIRST_CONNECTION,
            tails,
            tail_owners,
        };
        let loop_thread = std::thread::spawn(move || event_loop.run());

        Ok(ServerHandle {
            addr,
            shutdown,
            stats,
            waker,
            event_loop: Some(loop_thread),
            workers,
        })
    }
}

/// Owns a running server's threads; dropping without
/// [`shutdown`](ServerHandle::shutdown) detaches them.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    waker: Arc<Waker>,
    event_loop: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Lifetime counters.
    pub fn stats(&self) -> &ServerStats {
        &self.stats
    }

    /// Blocks until the event loop exits (it only exits on shutdown;
    /// this is what the server binary parks on).
    pub fn wait(&mut self) {
        if let Some(event_loop) = self.event_loop.take() {
            let _ = event_loop.join();
        }
    }

    /// Raises the shutdown flag, wakes the loop, and joins every thread.
    /// The loop drops its job sender on exit, which drains the worker
    /// pool; open connections are closed without a goodbye frame.
    pub fn shutdown(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.waker.wake();
        if let Some(event_loop) = self.event_loop.take() {
            let _ = event_loop.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// Encodes one message as a length-prefixed frame, reusing
/// [`write_frame`]'s size check.
fn encode_frame<T: Wire>(msg: &T) -> Result<Vec<u8>, WireError> {
    let mut buf = Vec::new();
    write_frame(&mut buf, msg)?;
    Ok(buf)
}

/// A ready request handed from the loop to a CPU worker. The session
/// travels with it (the connection is `Busy` and strictly alternating,
/// so nothing else can touch the session meanwhile).
struct Job {
    token: u64,
    request: Request,
    session: Session,
}

/// Which session owns each live TAIL subscription (tail token →
/// reactor connection token). Workers insert on `Tail` and remove on
/// `TailStop`/lapse; the event loop removes every entry of a closing
/// connection.
type TailOwners = Mutex<HashMap<u64, u64>>;

/// Work travelling back from a CPU worker to the event loop.
enum Completion {
    /// A finished request: the encoded response frame plus the returned
    /// session.
    Reply {
        token: u64,
        session: Session,
        frame: Vec<u8>,
        keep_going: bool,
    },
    /// A pushed TAIL frame for whichever connection owns the
    /// subscription — appended to that connection's write buffer outside
    /// the request/response alternation.
    Push { token: u64, frame: Vec<u8> },
}

/// One CPU worker: execute queued jobs until the loop drops the sender.
fn worker_loop(
    jobs: &Mutex<Receiver<Job>>,
    engine: SharedEngine,
    stats: &ServerStats,
    completions: &Mutex<VecDeque<Completion>>,
    waker: &Waker,
    tails: &TailRegistry,
    tail_owners: &TailOwners,
) {
    loop {
        let job = {
            // Recover from a poisoned lock: a worker that panicked
            // mid-`recv` left the receiver itself intact.
            let guard = jobs.lock().unwrap_or_else(|e| e.into_inner());
            guard.recv()
        };
        let Ok(Job {
            token,
            request,
            mut session,
        }) = job
        else {
            return; // event loop gone
        };
        let (response, keep_going) = match request {
            Request::Tail { sql } => tail_subscribe(tails, tail_owners, token, &sql),
            Request::TailStop { token: tail } => tail_stop(tails, tail_owners, token, tail),
            other => respond(&engine, &mut session, other),
        };
        stats.requests.fetch_add(1, Ordering::Relaxed);
        let frame = match encode_frame(&response) {
            Ok(frame) => frame,
            // A result too large for one frame is a *server-side* error,
            // not a dead socket: substitute a structured Error so the
            // session keeps its "errors never kill a session" contract.
            Err(WireError::FrameTooLarge { len, max }) => {
                encode_frame(&Response::Error(DbError::Unsupported(format!(
                    "result of {len} bytes exceeds the {max}-byte frame limit; \
                     restrict the query (WHERE/LIMIT/THRESHOLD)"
                ))))
                .unwrap_or_default()
            }
            Err(_) => Vec::new(), // unencodable: the loop closes the connection
        };
        completions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(Completion::Reply {
                token,
                session,
                frame,
                keep_going,
            });
        // Whatever just ran may have closed window buckets (an INSERT
        // landing rows past a bucket boundary, a fresh subscription
        // replaying closed history): drive the standing queries and push
        // their frames. Cheap when nothing changed — two generation
        // loads per subscription. Queued after the reply, so a new
        // subscriber sees `TailStarted` before its history frames.
        push_tail_frames(&engine, tails, tail_owners, completions);
        waker.wake();
    }
}

/// Registers a TAIL standing query owned by connection `conn`. Frames
/// start arriving via the poll that follows this request — including the
/// replay of already-closed buckets.
fn tail_subscribe(
    tails: &TailRegistry,
    tail_owners: &TailOwners,
    conn: u64,
    sql: &str,
) -> (Response, bool) {
    match tails.subscribe_sql(sql) {
        Ok(token) => {
            tail_owners
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(token.0, conn);
            (Response::TailStarted { token: token.0 }, true)
        }
        Err(e) => (Response::Error(core_to_db(e)), true),
    }
}

/// Cancels a TAIL subscription — only for the session that opened it, so
/// one connection cannot tear down another's standing query.
fn tail_stop(
    tails: &TailRegistry,
    tail_owners: &TailOwners,
    conn: u64,
    token: u64,
) -> (Response, bool) {
    let owned = {
        let mut owners = tail_owners.lock().unwrap_or_else(|e| e.into_inner());
        if owners.get(&token) == Some(&conn) {
            owners.remove(&token);
            true
        } else {
            false
        }
    };
    if owned {
        tails.unsubscribe(TailToken(token));
        (
            Response::TailStopped {
                token,
                reason: None,
            },
            true,
        )
    } else {
        (
            Response::Error(DbError::Unsupported(format!(
                "unknown TAIL subscription #{token}"
            ))),
            true,
        )
    }
}

/// Polls every standing query and queues one [`Completion::Push`] per
/// event to the owning connection. A frame that cannot be encoded (too
/// large for the frame limit) ends its subscription with a pushed
/// `TailStopped` rather than silently skipping a bucket.
fn push_tail_frames(
    engine: &SharedEngine,
    tails: &TailRegistry,
    tail_owners: &TailOwners,
    completions: &Mutex<VecDeque<Completion>>,
) {
    let events = tails.poll(engine);
    if events.is_empty() {
        return;
    }
    for event in events {
        let (tail, response) = match event {
            TailEvent::Frame(f) => (
                f.token.0,
                Response::TailFrame {
                    token: f.token.0,
                    bucket: f.bucket,
                    result: f.result,
                },
            ),
            TailEvent::Lapsed { token, error } => (
                token.0,
                Response::TailStopped {
                    token: token.0,
                    reason: Some(error),
                },
            ),
        };
        let ended = matches!(response, Response::TailStopped { .. });
        let (frame, ended) = match encode_frame(&response) {
            Ok(frame) => (frame, ended),
            Err(e) => {
                tails.unsubscribe(TailToken(tail));
                let stopped = Response::TailStopped {
                    token: tail,
                    reason: Some(format!("frame could not be delivered: {e}")),
                };
                (encode_frame(&stopped).unwrap_or_default(), true)
            }
        };
        let owner = {
            let mut owners = tail_owners.lock().unwrap_or_else(|e| e.into_inner());
            if ended {
                owners.remove(&tail)
            } else {
                owners.get(&tail).copied()
            }
        };
        let (Some(conn), false) = (owner, frame.is_empty()) else {
            continue; // connection already gone, or frame unencodable
        };
        completions
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push_back(Completion::Push { token: conn, frame });
    }
}

/// Where a connection is in its life cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Accepted; waiting for a well-formed `Hello`.
    Handshake,
    /// Session established; waiting for the next request frame.
    Ready,
    /// A request is out with a CPU worker (the session travelled with
    /// it); buffered input is held un-parsed until the completion lands.
    Busy,
    /// Flush the write buffer, then close.
    Closing,
    /// Rejected at capacity: flush the error frame, discard input, close
    /// at EOF or the stored deadline.
    Draining(Instant),
}

/// Per-socket state owned by the event loop.
struct Connection {
    stream: TcpStream,
    state: ConnState,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    write_pos: usize,
    session: Option<Session>,
    created: Instant,
    last_activity: Instant,
    /// When the first byte of a still-incomplete frame arrived.
    frame_started: Option<Instant>,
    /// Whether the descriptor is currently registered for writability.
    wants_write: bool,
}

impl Connection {
    fn new(stream: TcpStream, now: Instant) -> Connection {
        Connection {
            stream,
            state: ConnState::Handshake,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            write_pos: 0,
            session: None,
            created: now,
            last_activity: now,
            frame_started: None,
            wants_write: false,
        }
    }
}

/// What one pass over a connection's read buffer produced.
enum Parsed {
    /// No complete frame buffered.
    Incomplete,
    /// A protocol violation worth a structured goodbye.
    Violation(String),
    /// One complete, well-formed request.
    Request(Request),
}

/// The reactor: owns the poller, the listener and every connection.
struct EventLoop {
    poller: Poller,
    listener: TcpListener,
    config: ServerConfig,
    shutdown: Arc<AtomicBool>,
    stats: Arc<ServerStats>,
    waker: Arc<Waker>,
    completions: Arc<Mutex<VecDeque<Completion>>>,
    job_tx: Sender<Job>,
    connections: HashMap<u64, Connection>,
    next_token: u64,
    tails: Arc<TailRegistry>,
    tail_owners: Arc<TailOwners>,
}

impl EventLoop {
    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return; // dropping `self` closes every socket and the job sender
            }
            if self.poller.wait(&mut events, Some(POLL_INTERVAL)).is_err() {
                return; // a broken epoll fd is unrecoverable
            }
            for event in std::mem::take(&mut events) {
                match event.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.waker.drain(),
                    token => self.connection_ready(token, &event),
                }
            }
            self.apply_completions();
            self.sweep(Instant::now());
        }
    }

    /// Accepts until the listener would block; every accepted socket is
    /// made nonblocking and either admitted or rejected with a frame.
    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                // Persistent accept errors (EMFILE when fds run out, etc.)
                // retry at the next readiness event or tick instead of
                // spinning exactly when the process is resource-starved.
                Err(_) => return,
            }
        }
    }

    fn admit(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        let now = Instant::now();
        let at_capacity = self.connections.len() >= self.config.max_connections;
        let mut conn = Connection::new(stream, now);
        if at_capacity {
            let Ok(frame) = encode_frame(&Response::Error(DbError::Unsupported(format!(
                "server at capacity ({} connections); try again later",
                self.config.max_connections
            )))) else {
                return;
            };
            conn.write_buf = frame;
            conn.state = ConnState::Draining(now + REJECT_LINGER);
        }
        let token = self.next_token;
        self.next_token += 1;
        if self
            .poller
            .register(conn.stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            return; // dropped: the peer sees a reset
        }
        self.connections.insert(token, conn);
        if at_capacity {
            self.flush(token);
        }
    }

    fn connection_ready(&mut self, token: u64, event: &Event) {
        if event.writable {
            self.flush(token);
        }
        if event.readable || event.hangup {
            self.read_ready(token);
        }
    }

    /// Drains the socket into the read buffer (or the void, when
    /// draining a rejected/closing connection), then parses.
    fn read_ready(&mut self, token: u64) {
        let mut disconnected = false;
        let mut flooded = false;
        {
            let Some(conn) = self.connections.get_mut(&token) else {
                return;
            };
            let discard = matches!(conn.state, ConnState::Draining(_) | ConnState::Closing);
            let mut buf = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        disconnected = true;
                        break;
                    }
                    Ok(n) => {
                        if discard {
                            continue;
                        }
                        conn.read_buf.extend_from_slice(&buf[..n]);
                        conn.last_activity = Instant::now();
                        if conn.read_buf.len() > READ_BUFFER_LIMIT {
                            flooded = true;
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        disconnected = true;
                        break;
                    }
                }
            }
        }
        if disconnected || flooded {
            self.close(token);
            return;
        }
        self.process_read_buffer(token);
    }

    /// Parses and dispatches complete frames until the buffer runs dry
    /// or the connection stops being in a parsing state.
    fn process_read_buffer(&mut self, token: u64) {
        loop {
            let parsed = {
                let Some(conn) = self.connections.get_mut(&token) else {
                    return;
                };
                if !matches!(conn.state, ConnState::Handshake | ConnState::Ready) {
                    return;
                }
                parse_one_frame(conn)
            };
            match parsed {
                Parsed::Incomplete => return,
                Parsed::Violation(message) => {
                    self.fail(token, message);
                    return;
                }
                Parsed::Request(request) => self.handle_request(token, request),
            }
        }
    }

    /// Routes one complete request: handshakes are answered inline on
    /// the loop (cheap, no engine access); everything else goes to a
    /// CPU worker with the session in tow.
    fn handle_request(&mut self, token: u64, request: Request) {
        let Some(conn) = self.connections.get_mut(&token) else {
            return;
        };
        match conn.state {
            ConnState::Handshake => match request {
                Request::Hello { version } if version == PROTOCOL_VERSION => {
                    let Ok(frame) = encode_frame(&Response::Hello {
                        version: PROTOCOL_VERSION,
                        server: SERVER_NAME.to_string(),
                    }) else {
                        self.close(token);
                        return;
                    };
                    conn.session = Some(Session::new());
                    conn.state = ConnState::Ready;
                    conn.write_buf.extend_from_slice(&frame);
                    self.stats.sessions.fetch_add(1, Ordering::Relaxed);
                    self.flush(token);
                }
                Request::Hello { version } => {
                    self.fail(
                        token,
                        format!(
                            "protocol version {version} not supported; \
                             server speaks {PROTOCOL_VERSION}"
                        ),
                    );
                }
                _ => self.fail(token, "the first request must be the handshake".into()),
            },
            ConnState::Ready => {
                let session = conn
                    .session
                    .take()
                    .expect("a ready connection owns its session");
                conn.state = ConnState::Busy;
                if self
                    .job_tx
                    .send(Job {
                        token,
                        request,
                        session,
                    })
                    .is_err()
                {
                    self.close(token); // workers gone: shutting down
                }
            }
            _ => {}
        }
    }

    /// Applies every queued worker completion. A `Reply` restores the
    /// session, queues the response frame, flushes, and resumes parsing
    /// anything the peer sent meanwhile; a `Push` appends a TAIL frame to
    /// the owning connection's write buffer regardless of its
    /// request/response state.
    fn apply_completions(&mut self) {
        loop {
            let completion = self
                .completions
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .pop_front();
            let Some(completion) = completion else { return };
            match completion {
                Completion::Reply {
                    token,
                    session,
                    frame,
                    keep_going,
                } => {
                    {
                        let Some(conn) = self.connections.get_mut(&token) else {
                            continue; // connection died while the worker ran
                        };
                        conn.session = Some(session);
                        conn.last_activity = Instant::now();
                        if frame.is_empty() {
                            conn.state = ConnState::Closing; // unencodable response
                        } else {
                            conn.state = if keep_going {
                                ConnState::Ready
                            } else {
                                ConnState::Closing
                            };
                            conn.write_buf.extend_from_slice(&frame);
                        }
                    }
                    self.flush(token);
                    if self
                        .connections
                        .get(&token)
                        .is_some_and(|c| c.state == ConnState::Ready)
                    {
                        self.process_read_buffer(token);
                    }
                }
                Completion::Push { token, frame } => {
                    let deliverable = {
                        let Some(conn) = self.connections.get_mut(&token) else {
                            continue; // subscriber vanished; frame is moot
                        };
                        // Only sessions in their steady state receive
                        // pushes; a closing/draining connection is past
                        // caring.
                        if matches!(conn.state, ConnState::Ready | ConnState::Busy) {
                            conn.write_buf.extend_from_slice(&frame);
                            true
                        } else {
                            false
                        }
                    };
                    if deliverable {
                        self.flush(token);
                    }
                }
            }
        }
    }

    /// Writes buffered output until done or the socket would block;
    /// registers/deregisters write interest accordingly and finishes
    /// `Closing`/`Draining` connections whose buffers drained.
    fn flush(&mut self, token: u64) {
        let mut failed = false;
        let (done, fd) = {
            let Some(conn) = self.connections.get_mut(&token) else {
                return;
            };
            let fd = conn.stream.as_raw_fd();
            while conn.write_pos < conn.write_buf.len() {
                match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
                    Ok(0) => {
                        failed = true;
                        break;
                    }
                    Ok(n) => conn.write_pos += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            (conn.write_pos >= conn.write_buf.len(), fd)
        };
        if failed {
            self.close(token);
            return;
        }
        if !done {
            // Backpressure: resume when the peer drains its socket.
            let conn = self
                .connections
                .get_mut(&token)
                .expect("connection checked above");
            if !conn.wants_write {
                conn.wants_write = true;
                let _ = self.poller.modify(fd, token, Interest::READ_WRITE);
            }
            return;
        }
        let state = {
            let conn = self
                .connections
                .get_mut(&token)
                .expect("connection checked above");
            conn.write_buf.clear();
            conn.write_pos = 0;
            if conn.wants_write {
                conn.wants_write = false;
                let _ = self.poller.modify(fd, token, Interest::READ);
            }
            conn.state
        };
        match state {
            ConnState::Closing => self.close(token),
            ConnState::Draining(_) => {
                // Frame delivered; half-close so the peer sees EOF after
                // the error instead of a reset, then wait out the linger.
                if let Some(conn) = self.connections.get(&token) {
                    let _ = conn.stream.shutdown(Shutdown::Write);
                }
            }
            _ => {}
        }
    }

    /// Answers a protocol violation with a structured error, then closes
    /// once it flushes.
    fn fail(&mut self, token: u64, message: String) {
        let frame = encode_frame(&Response::Error(DbError::Unsupported(message)));
        let Some(conn) = self.connections.get_mut(&token) else {
            return;
        };
        conn.state = ConnState::Closing;
        if let Ok(frame) = frame {
            conn.write_buf.extend_from_slice(&frame);
        }
        self.flush(token);
    }

    /// Drops every connection that overstayed a deadline. `Busy`
    /// connections are exempt — their clock restarts when the worker's
    /// completion lands.
    fn sweep(&mut self, now: Instant) {
        let expired: Vec<u64> = self
            .connections
            .iter()
            .filter(|(_, conn)| {
                let frame_stalled = conn
                    .frame_started
                    .is_some_and(|s| now.duration_since(s) > FRAME_COMPLETION_TIMEOUT);
                match conn.state {
                    ConnState::Handshake => {
                        now.duration_since(conn.created) > self.config.handshake_timeout
                    }
                    ConnState::Ready => {
                        now.duration_since(conn.last_activity) > self.config.idle_timeout
                            || frame_stalled
                    }
                    ConnState::Busy => false,
                    ConnState::Closing => {
                        now.duration_since(conn.last_activity)
                            > self.config.idle_timeout.max(self.config.handshake_timeout)
                    }
                    ConnState::Draining(deadline) => now >= deadline,
                }
            })
            .map(|(&token, _)| token)
            .collect();
        for token in expired {
            self.close(token);
        }
    }

    /// Removes a connection; dropping the stream closes the descriptor
    /// (the explicit deregister just keeps the epoll set tidy first).
    /// Any TAIL subscriptions the session owned die with it — standing
    /// queries never outlive their subscriber.
    fn close(&mut self, token: u64) {
        if let Some(conn) = self.connections.remove(&token) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
        }
        let orphaned: Vec<u64> = {
            let mut owners = self.tail_owners.lock().unwrap_or_else(|e| e.into_inner());
            let ids: Vec<u64> = owners
                .iter()
                .filter(|&(_, &conn)| conn == token)
                .map(|(&tail, _)| tail)
                .collect();
            for tail in &ids {
                owners.remove(tail);
            }
            ids
        };
        for tail in orphaned {
            self.tails.unsubscribe(TailToken(tail));
        }
    }
}

/// Tries to cut one complete frame from the connection's read buffer,
/// maintaining the partial-frame clock.
fn parse_one_frame(conn: &mut Connection) -> Parsed {
    if conn.read_buf.len() < 4 {
        conn.frame_started = if conn.read_buf.is_empty() {
            None
        } else {
            conn.frame_started.or_else(|| Some(Instant::now()))
        };
        return Parsed::Incomplete;
    }
    let len = u32::from_be_bytes(conn.read_buf[..4].try_into().expect("4-byte slice"));
    if len > MAX_FRAME_LEN {
        let e = WireError::FrameTooLarge {
            len,
            max: MAX_FRAME_LEN,
        };
        return Parsed::Violation(format!("malformed request: {e}"));
    }
    let total = 4 + len as usize;
    if conn.read_buf.len() < total {
        conn.frame_started = conn.frame_started.or_else(|| Some(Instant::now()));
        return Parsed::Incomplete;
    }
    let request = decode_message::<Request>(&conn.read_buf[4..total]);
    conn.read_buf.drain(..total);
    conn.frame_started = None;
    conn.last_activity = Instant::now();
    match request {
        Ok(request) => Parsed::Request(request),
        Err(e) => Parsed::Violation(format!("malformed request: {e}")),
    }
}

/// A prepared statement held by one session.
enum Prepared {
    /// A planned `SELECT` — an immutable snapshot out of the shared plan
    /// cache; executing replays it without parsing or planning again.
    Select(Arc<PlannedQuery>),
    /// An `EXPLAIN` — re-reported per execute so the relation annotation
    /// reflects the current catalog (boxed: the statement AST dwarfs the
    /// `Arc` in the other variant).
    Explain(Box<SelectStmt>),
}

/// Per-connection state: the prepared-statement map and the session's
/// `WITH WORLDS` fork-join override.
struct Session {
    prepared: HashMap<u64, Prepared>,
    next_statement: u64,
    worlds_threads: Option<usize>,
}

impl Session {
    fn new() -> Self {
        Session {
            prepared: HashMap::new(),
            next_statement: 1,
            worlds_threads: None,
        }
    }
}

/// Maps an engine-layer error onto the wire's [`DbError`] vocabulary.
fn core_to_db(e: CoreError) -> DbError {
    match e {
        CoreError::Db(db) => db,
        other => DbError::ViewBuild(other.to_string()),
    }
}

/// Runs one SQL statement with session-level routing: `SELECT`s are
/// answered through the shared plan cache (an exact textual repeat skips
/// the parser entirely), `EXPLAIN` under the read lock, everything else
/// through the engine's write path.
fn run_sql(engine: &SharedEngine, session: &Session, sql: &str) -> Result<QueryOutput, DbError> {
    {
        let db = engine.read();
        if let Some(plan) = db.cached_plan(sql) {
            return db.execute_planned_with_threads(&plan, session.worlds_threads);
        }
    }
    match parse(sql)? {
        Statement::Select(sel) => {
            let db = engine.read();
            let plan = db.plan_select_cached(sql, &sel)?;
            db.execute_planned_with_threads(&plan, session.worlds_threads)
        }
        Statement::Explain(sel) => engine.read().explain_select(&sel),
        // Writes carry the original SQL text alongside the parsed form so
        // a persistent engine can journal the text to its WAL.
        other => engine.execute_sql_statement(sql, other).map_err(core_to_db),
    }
}

/// Builds the response to one post-handshake request; the bool is
/// `false` when the session should end.
fn respond(engine: &SharedEngine, session: &mut Session, req: Request) -> (Response, bool) {
    match req {
        Request::Hello { .. } => (
            Response::Error(DbError::Unsupported(
                "session already opened; a second handshake is a protocol violation".into(),
            )),
            false,
        ),
        Request::Query { sql } => match run_sql(engine, session, &sql) {
            Ok(out) => (Response::Result(out), true),
            Err(e) => (Response::Error(e), true),
        },
        Request::Prepare { sql } => {
            let prepared = match parse(&sql) {
                Ok(Statement::Select(sel)) => engine
                    .read()
                    .plan_select_cached(&sql, &sel)
                    .map(Prepared::Select),
                Ok(Statement::Explain(sel)) => {
                    // Validate now so Prepare surfaces plan errors; the
                    // report itself is rebuilt per execute.
                    Planner::plan(&sel).map(|_| Prepared::Explain(Box::new(sel)))
                }
                Ok(other) => Err(DbError::ReadOnly(format!(
                    "only read-only statements can be prepared: {other:?}"
                ))),
                Err(e) => Err(e),
            };
            match prepared {
                Ok(p) => {
                    let id = session.next_statement;
                    session.next_statement += 1;
                    session.prepared.insert(id, p);
                    (
                        Response::Prepared {
                            statement: StatementId(id),
                        },
                        true,
                    )
                }
                Err(e) => (Response::Error(e), true),
            }
        }
        Request::Execute { statement } => {
            let result = match session.prepared.get(&statement.0) {
                Some(Prepared::Select(planned)) => engine
                    .read()
                    .execute_planned_with_threads(planned, session.worlds_threads),
                Some(Prepared::Explain(sel)) => engine.read().explain_select(sel),
                None => Err(DbError::Unsupported(format!(
                    "unknown prepared statement {statement}"
                ))),
            };
            match result {
                Ok(out) => (Response::Result(out), true),
                Err(e) => (Response::Error(e), true),
            }
        }
        Request::CloseStatement { statement } => {
            if session.prepared.remove(&statement.0).is_some() {
                (Response::Closed { statement }, true)
            } else {
                (
                    Response::Error(DbError::Unsupported(format!(
                        "unknown prepared statement {statement}"
                    ))),
                    true,
                )
            }
        }
        Request::SetWorldsThreads { threads } => {
            session.worlds_threads = threads.map(|t| usize::try_from(t).unwrap_or(usize::MAX));
            (Response::WorldsThreadsSet { threads }, true)
        }
        Request::Close => (Response::Bye, false),
        // Dispatched in `worker_loop` before `respond` (they need the
        // registry and the connection token); reaching here is a bug.
        Request::Tail { .. } | Request::TailStop { .. } => (
            Response::Error(DbError::Unsupported(
                "TAIL requests bypass the plain dispatcher".into(),
            )),
            true,
        ),
    }
}

/// The view-builder configuration the demo server runs with — one fixed,
/// documented config so an out-of-process client (the `server_client`
/// example, the CI smoke job) can rebuild the exact same views locally
/// and compare results byte for byte.
pub fn demo_config() -> tspdb_core::ViewBuilderConfig {
    tspdb_core::ViewBuilderConfig {
        window: 60,
        metric_config: tspdb_core::MetricConfig {
            p: 1,
            ..tspdb_core::MetricConfig::default()
        },
        ..tspdb_core::ViewBuilderConfig::default()
    }
}

/// One `INSERT` statement carrying the 60-reading synthetic series the
/// differential surfaces (the `server_client` example, the end-to-end
/// tests) replay — literals, so a server and a local mirror executing the
/// same text are guaranteed the same data.
pub fn demo_insert_statement(table: &str) -> String {
    let mut stmt = format!("INSERT INTO {table} VALUES ");
    for t in 0..60 {
        if t > 0 {
            stmt.push_str(", ");
        }
        let r = 4.0 + 0.05 * t as f64 + ((t * 7919) % 13) as f64 * 0.01;
        stmt.push_str(&format!("({t}, {r})"));
    }
    stmt
}

/// A [`demo_config`] engine pre-loaded with the demo dataset: 150
/// synthetic temperature readings in `raw_values` and a density view `pv`
/// over them — enough for every statement shape (rows, probabilistic
/// rows, `WITH WORLDS`, aggregates, `EXPLAIN`) to have a target.
pub fn demo_engine() -> Result<SharedEngine, CoreError> {
    let engine = SharedEngine::new(demo_config());
    load_demo_data(&engine)?;
    Ok(engine)
}

/// Loads the demo dataset into an existing engine (the `--demo --data-dir`
/// combination). Skipped when `raw_values` already exists — a recovered
/// data directory keeps its own data.
pub fn load_demo_data(engine: &SharedEngine) -> Result<(), CoreError> {
    if engine
        .read()
        .all_relation_names()
        .iter()
        .any(|n| n == "raw_values")
    {
        return Ok(());
    }
    let series = tspdb_timeseries::generate::TemperatureGenerator::default().generate(150);
    engine.load_series("raw_values", "r", &series)?;
    engine.execute("CREATE VIEW pv AS DENSITY r OVER t OMEGA delta=0.5, n=6 FROM raw_values")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use tspdb_client::Client;

    fn demo_server() -> ServerHandle {
        Server::bind(
            "127.0.0.1:0",
            demo_engine().unwrap(),
            ServerConfig::default(),
        )
        .unwrap()
        .spawn()
        .unwrap()
    }

    #[test]
    fn serves_queries_and_shuts_down() {
        let handle = demo_server();
        let mut client = Client::connect(handle.addr()).unwrap();
        assert!(client.server_info().starts_with("tspdb-server/"));
        let out = client.query("SELECT * FROM pv THRESHOLD 0.2").unwrap();
        assert!(!out.prob_rows().unwrap().is_empty());
        client.close().unwrap();
        assert_eq!(handle.stats().sessions.load(Ordering::Relaxed), 1);
        handle.shutdown();
    }

    #[test]
    fn prepared_statements_replay_the_plan() {
        let handle = demo_server();
        let mut client = Client::connect(handle.addr()).unwrap();
        let stmt = client
            .prepare("SELECT t, COUNT(*) FROM pv GROUP BY t WITH WORLDS 500 SEED 3")
            .unwrap();
        let a = client.execute(stmt).unwrap();
        let b = client.execute(stmt).unwrap();
        assert_eq!(
            a.aggregate().unwrap().fingerprint(),
            b.aggregate().unwrap().fingerprint()
        );
        client.close_statement(stmt).unwrap();
        assert!(client.execute(stmt).is_err());
        client.close().unwrap();
        handle.shutdown();
    }

    #[test]
    fn writes_and_reads_share_one_catalog() {
        let handle = demo_server();
        let mut a = Client::connect(handle.addr()).unwrap();
        let mut b = Client::connect(handle.addr()).unwrap();
        a.query("CREATE TABLE shared_t (x INT)").unwrap();
        a.query("INSERT INTO shared_t VALUES (1), (2), (3)")
            .unwrap();
        let out = b.query("SELECT COUNT(*) FROM shared_t").unwrap();
        let agg = out.aggregate().unwrap();
        assert_eq!(agg.groups[0].values[0].value, 3.0);
        a.close().unwrap();
        b.close().unwrap();
        handle.shutdown();
    }

    #[test]
    fn session_worlds_override_changes_latency_only_and_is_clearable() {
        let handle = demo_server();
        let mut client = Client::connect(handle.addr()).unwrap();
        const SQL: &str = "SELECT * FROM pv WITH WORLDS 2000 SEED 11";
        let base = client.query(SQL).unwrap().worlds().unwrap().fingerprint();
        client.set_worlds_threads(4).unwrap();
        let overridden = client.query(SQL).unwrap().worlds().unwrap().fingerprint();
        assert_eq!(base, overridden);
        // Clearing the override hands the session back to the engine-wide
        // default — still the same estimate, by the determinism contract.
        client.reset_worlds_threads().unwrap();
        let cleared = client.query(SQL).unwrap().worlds().unwrap().fingerprint();
        assert_eq!(base, cleared);
        client.close().unwrap();
        handle.shutdown();
    }

    #[test]
    fn errors_are_structured_and_non_fatal() {
        let handle = demo_server();
        let mut client = Client::connect(handle.addr()).unwrap();
        let err = client.query("SELECT * FROM nope").unwrap_err();
        assert!(matches!(
            err,
            tspdb_client::ClientError::Server(DbError::UnknownTable(_))
        ));
        let err = client.query("SELEC typo").unwrap_err();
        assert!(matches!(
            err,
            tspdb_client::ClientError::Server(DbError::Parse(_))
        ));
        let err = client.prepare("INSERT INTO raw_values VALUES (1, 2.0)");
        assert!(matches!(
            err,
            Err(tspdb_client::ClientError::Server(DbError::ReadOnly(_)))
        ));
        // The session survived all three.
        assert!(client.query("SELECT * FROM pv LIMIT 1").is_ok());
        client.close().unwrap();
        handle.shutdown();
    }

    #[test]
    fn idle_sessions_are_reaped() {
        let handle = Server::bind(
            "127.0.0.1:0",
            demo_engine().unwrap(),
            ServerConfig {
                idle_timeout: Duration::from_millis(300),
                ..ServerConfig::default()
            },
        )
        .unwrap()
        .spawn()
        .unwrap();
        let mut client = Client::connect(handle.addr()).unwrap();
        assert!(client.query("SELECT * FROM pv LIMIT 1").is_ok());
        // Stay silent past the idle deadline plus a couple of sweep
        // ticks: the server must have dropped the session.
        std::thread::sleep(Duration::from_millis(1200));
        assert!(client.query("SELECT * FROM pv LIMIT 1").is_err());
        handle.shutdown();
    }

    #[test]
    fn capacity_guard_rejects_with_a_structured_error() {
        let handle = Server::bind(
            "127.0.0.1:0",
            demo_engine().unwrap(),
            ServerConfig {
                max_connections: 2,
                ..ServerConfig::default()
            },
        )
        .unwrap()
        .spawn()
        .unwrap();
        let mut a = Client::connect(handle.addr()).unwrap();
        let b = Client::connect(handle.addr()).unwrap();
        // The third connection is told why, not left hanging.
        let err = Client::connect(handle.addr()).unwrap_err();
        assert!(
            matches!(
                err,
                tspdb_client::ClientError::Server(DbError::Unsupported(ref msg))
                    if msg.contains("capacity")
            ),
            "{err:?}"
        );
        // The established sessions are unaffected...
        assert!(a.query("SELECT * FROM pv LIMIT 1").is_ok());
        // ...and closing one frees its slot.
        drop(b);
        std::thread::sleep(Duration::from_millis(600));
        let mut c = Client::connect(handle.addr()).unwrap();
        assert!(c.query("SELECT * FROM pv LIMIT 1").is_ok());
        c.close().unwrap();
        a.close().unwrap();
        handle.shutdown();
    }

    #[test]
    fn tail_streams_closed_buckets_byte_identically() {
        use tspdb_client::TailNotice;
        use tspdb_probdb::Value;

        let handle = demo_server();
        let mut writer = Client::connect(handle.addr()).unwrap();
        let mut sub = Client::connect(handle.addr()).unwrap();
        writer
            .query("CREATE TABLE stream_t (t INT, r FLOAT)")
            .unwrap();
        writer
            .query("INSERT INTO stream_t VALUES (0, 1.0), (5, 2.0)")
            .unwrap();

        const TAIL_SQL: &str = "TAIL SELECT COUNT(*), SUM(r) FROM stream_t GROUP BY WINDOW(t, 10)";
        let tail = sub.tail(TAIL_SQL).unwrap();
        // Bucket [0, 10) is still open — nothing later exists — so the
        // subscription stays silent.
        assert_eq!(
            sub.tail_next(Some(Duration::from_millis(300))).unwrap(),
            None
        );

        // A row in the next bucket closes [0, 10); the frame is pushed.
        writer
            .query("INSERT INTO stream_t VALUES (12, 3.0)")
            .unwrap();
        let notice = sub
            .tail_next(Some(Duration::from_secs(10)))
            .unwrap()
            .unwrap();
        let TailNotice::Frame(frame) = notice else {
            panic!("expected a frame, got {notice:?}");
        };
        assert_eq!(frame.tail, tail);
        assert_eq!(frame.bucket, 0.0);

        // Byte-identity: the frame equals the one-shot windowed query
        // filtered to the closed bucket.
        let oneshot = writer
            .query("SELECT COUNT(*), SUM(r) FROM stream_t GROUP BY WINDOW(t, 10)")
            .unwrap();
        let mut expected = oneshot.aggregate().unwrap().clone();
        expected
            .groups
            .retain(|g| g.key.first().and_then(Value::as_f64) == Some(0.0));
        assert_eq!(frame.result.fingerprint(), expected.fingerprint());

        // A late subscriber replays the closed history: same frame.
        let mut late = Client::connect(handle.addr()).unwrap();
        let late_tail = late.tail(TAIL_SQL).unwrap();
        let replay = late
            .tail_next(Some(Duration::from_secs(10)))
            .unwrap()
            .unwrap();
        let TailNotice::Frame(replayed) = replay else {
            panic!("expected a replayed frame, got {replay:?}");
        };
        assert_eq!(replayed.tail, late_tail);
        assert_eq!(replayed.bucket, 0.0);
        assert_eq!(replayed.result.fingerprint(), frame.result.fingerprint());

        // Pushes interleave with the subscriber's own round trips: close
        // bucket [10, 20) and make the subscriber issue a query before
        // collecting — the frame is set aside, never misread as a reply.
        writer
            .query("INSERT INTO stream_t VALUES (25, 4.0)")
            .unwrap();
        assert!(sub.query("SELECT COUNT(*) FROM stream_t").is_ok());
        let second = sub
            .tail_next(Some(Duration::from_secs(10)))
            .unwrap()
            .unwrap();
        let TailNotice::Frame(second) = second else {
            panic!("expected the second bucket's frame, got {second:?}");
        };
        assert_eq!(second.bucket, 10.0);

        // Stop is owned: another session cannot cancel, the owner can —
        // once.
        assert!(writer.tail_stop(tail).is_err());
        sub.tail_stop(tail).unwrap();
        assert!(sub.tail_stop(tail).is_err());

        // The late subscriber got the second bucket too.
        let late_second = late
            .tail_next(Some(Duration::from_secs(10)))
            .unwrap()
            .unwrap();
        assert!(
            matches!(late_second, TailNotice::Frame(ref f) if f.bucket == 10.0),
            "{late_second:?}"
        );

        // Dropping the source table lapses the remaining subscription
        // with a pushed, reasoned TailStopped.
        writer.query("DROP TABLE stream_t").unwrap();
        let lapse = late
            .tail_next(Some(Duration::from_secs(10)))
            .unwrap()
            .unwrap();
        let TailNotice::Stopped { tail: lapsed, .. } = lapse else {
            panic!("expected a lapse notice, got {lapse:?}");
        };
        assert_eq!(lapsed, late_tail);

        writer.close().unwrap();
        sub.close().unwrap();
        late.close().unwrap();
        handle.shutdown();
    }

    #[test]
    fn tail_misuse_is_rejected_with_structured_errors() {
        let handle = demo_server();
        let mut client = Client::connect(handle.addr()).unwrap();
        // TAIL without a window cannot stand.
        let err = client.tail("TAIL SELECT COUNT(*) FROM pv").unwrap_err();
        assert!(
            matches!(err, tspdb_client::ClientError::Server(_)),
            "{err:?}"
        );
        // TAIL over the one-shot Query path points at the right door.
        let err = client
            .query("TAIL SELECT COUNT(*) FROM pv GROUP BY WINDOW(t, 10)")
            .unwrap_err();
        assert!(
            matches!(
                err,
                tspdb_client::ClientError::Server(DbError::Unsupported(ref msg))
                    if msg.contains("continuous")
            ),
            "{err:?}"
        );
        // Stopping a never-started subscription errors; the session
        // survives all three.
        assert!(client.tail_stop(tspdb_client::TailId(999)).is_err());
        assert!(client.query("SELECT * FROM pv LIMIT 1").is_ok());
        client.close().unwrap();
        handle.shutdown();
    }

    #[test]
    fn silent_prehandshake_sockets_are_dropped() {
        let handle = Server::bind(
            "127.0.0.1:0",
            demo_engine().unwrap(),
            ServerConfig {
                handshake_timeout: Duration::from_millis(300),
                ..ServerConfig::default()
            },
        )
        .unwrap()
        .spawn()
        .unwrap();
        let mut socket = std::net::TcpStream::connect(handle.addr()).unwrap();
        socket
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        // Never say Hello: the server must hang up (EOF), not hold the
        // socket open indefinitely.
        let mut buf = [0u8; 16];
        let n = socket.read(&mut buf).unwrap();
        assert_eq!(n, 0, "expected EOF for a silent pre-handshake socket");
        assert_eq!(handle.stats().sessions.load(Ordering::Relaxed), 0);
        handle.shutdown();
    }
}
