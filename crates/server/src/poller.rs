//! Readiness polling over Linux `epoll`, hand-rolled against the libc
//! symbols the standard library already links (the build environment is
//! offline — no `libc`/`mio` crates, no async runtime).
//!
//! Three small types:
//!
//! * [`Poller`] — an `epoll` instance. Register file descriptors with a
//!   `u64` token and an [`Interest`]; [`Poller::wait`] blocks until
//!   readiness (or a timeout) and reports [`Event`]s carrying the token
//!   back.
//! * [`Interest`] — which readiness directions to watch. Registration is
//!   level-triggered: as long as a socket stays readable/writable the
//!   event re-fires, which keeps the event-loop state machine simple
//!   (nothing is lost if a handler leaves bytes unconsumed).
//! * [`Waker`] — an `eventfd` that lets other threads (CPU workers
//!   finishing a query, a shutdown call) interrupt a blocked
//!   [`Poller::wait`] from outside.
//!
//! The module is deliberately tiny and server-shaped rather than a
//! general reactor: one loop thread owns the `Poller`, and everything
//! else talks to it through the [`Waker`].

use std::io;
use std::os::fd::RawFd;
use std::time::Duration;

/// The raw FFI surface: the handful of glibc calls `epoll` needs. Kept in
/// one scoped module so the rest of the crate stays `deny(unsafe_code)`.
#[allow(unsafe_code)]
mod sys {
    use std::io;
    use std::os::fd::RawFd;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;
    pub const EPOLLIN: u32 = 0x1;
    pub const EPOLLOUT: u32 = 0x4;
    pub const EPOLLERR: u32 = 0x8;
    pub const EPOLLHUP: u32 = 0x10;
    pub const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CLOEXEC: i32 = 0x80000;
    const EFD_CLOEXEC: i32 = 0x80000;
    const EFD_NONBLOCK: i32 = 0x800;

    /// `struct epoll_event`. On x86-64 the kernel ABI packs it to 12
    /// bytes (4-byte `events` immediately followed by the 8-byte payload)
    /// — hence the conditional `repr(packed)`.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    pub struct EpollEvent {
        pub events: u32,
        pub data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    pub fn epoll_create() -> io::Result<RawFd> {
        let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if fd < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(fd)
        }
    }

    pub fn epoll_control(
        epfd: RawFd,
        op: i32,
        fd: RawFd,
        events: u32,
        data: u64,
    ) -> io::Result<()> {
        let mut ev = EpollEvent { events, data };
        let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    pub fn epoll_wait_events(
        epfd: RawFd,
        events: &mut [EpollEvent],
        timeout_ms: i32,
    ) -> io::Result<usize> {
        let n = unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(n as usize)
        }
    }

    pub fn eventfd_create() -> io::Result<RawFd> {
        let fd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
        if fd < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(fd)
        }
    }

    pub fn close_fd(fd: RawFd) {
        unsafe {
            close(fd);
        }
    }

    pub fn write_u64(fd: RawFd, value: u64) -> io::Result<()> {
        let buf = value.to_ne_bytes();
        let rc = unsafe { write(fd, buf.as_ptr(), buf.len()) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    pub fn read_u64(fd: RawFd) -> io::Result<u64> {
        let mut buf = [0u8; 8];
        let rc = unsafe { read(fd, buf.as_mut_ptr(), buf.len()) };
        if rc < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(u64::from_ne_bytes(buf))
        }
    }
}

/// Which readiness directions to watch for a registered descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor becomes readable (or hangs up).
    pub readable: bool,
    /// Wake when the descriptor becomes writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Read + write interest (a connection with buffered output).
    pub const READ_WRITE: Interest = Interest {
        readable: true,
        writable: true,
    };

    fn bits(self) -> u32 {
        let mut bits = sys::EPOLLRDHUP;
        if self.readable {
            bits |= sys::EPOLLIN;
        }
        if self.writable {
            bits |= sys::EPOLLOUT;
        }
        bits
    }
}

/// One readiness notification from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// Readable (includes hangup/error, so a `read` observes the EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Peer hangup or descriptor error.
    pub hangup: bool,
}

/// An `epoll` instance. See the module docs for the intended topology.
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
}

impl Poller {
    /// Creates a new poller.
    pub fn new() -> io::Result<Poller> {
        Ok(Poller {
            epfd: sys::epoll_create()?,
        })
    }

    /// Starts watching `fd` with level-triggered `interest`; `token` comes
    /// back in every [`Event`] for this descriptor.
    pub fn register(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_control(self.epfd, sys::EPOLL_CTL_ADD, fd, interest.bits(), token)
    }

    /// Changes the interest set of an already-registered descriptor.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_control(self.epfd, sys::EPOLL_CTL_MOD, fd, interest.bits(), token)
    }

    /// Stops watching `fd` (dropping the descriptor also deregisters it,
    /// but an explicit call keeps tombstoned connections out of the set).
    pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
        sys::epoll_control(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Blocks until readiness, a wake, or the timeout (`None` = forever),
    /// replacing the contents of `events`. A signal interruption returns
    /// an empty set rather than an error.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        events.clear();
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(t) => {
                // Round up so sub-millisecond timeouts still sleep.
                let ms = t.as_millis();
                let ms = if ms == 0 && !t.is_zero() { 1 } else { ms };
                ms.min(i32::MAX as u128) as i32
            }
        };
        let mut raw = [sys::EpollEvent { events: 0, data: 0 }; 256];
        let n = match sys::epoll_wait_events(self.epfd, &mut raw, timeout_ms) {
            Ok(n) => n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => 0,
            Err(e) => return Err(e),
        };
        for ev in raw.iter().take(n) {
            // Copy the (possibly unaligned) packed fields out by value.
            let bits = ev.events;
            let token = ev.data;
            let hangup = bits & (sys::EPOLLHUP | sys::EPOLLERR | sys::EPOLLRDHUP) != 0;
            events.push(Event {
                token,
                readable: bits & sys::EPOLLIN != 0 || hangup,
                writable: bits & sys::EPOLLOUT != 0,
                hangup,
            });
        }
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        sys::close_fd(self.epfd);
    }
}

/// An `eventfd`-backed wake handle: cheap, clonable-by-`Arc`, safe to use
/// from any thread to interrupt the loop's [`Poller::wait`].
#[derive(Debug)]
pub struct Waker {
    fd: RawFd,
}

impl Waker {
    /// Creates the eventfd (nonblocking, close-on-exec).
    pub fn new() -> io::Result<Waker> {
        Ok(Waker {
            fd: sys::eventfd_create()?,
        })
    }

    /// The descriptor to register (read interest) with the loop's poller.
    pub fn as_raw_fd(&self) -> RawFd {
        self.fd
    }

    /// Wakes the poller. Saturation (`EAGAIN` on a full counter) is fine —
    /// the loop is already guaranteed to wake.
    pub fn wake(&self) {
        match sys::write_u64(self.fd, 1) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {}
            Err(_) => {}
        }
    }

    /// Drains pending wakes so the level-triggered registration goes
    /// quiet until the next [`Waker::wake`].
    pub fn drain(&self) {
        while sys::read_u64(self.fd).is_ok() {}
    }
}

impl Drop for Waker {
    fn drop(&mut self) {
        sys::close_fd(self.fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn listener_readiness_fires_on_connect() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller
            .register(listener.as_raw_fd(), 7, Interest::READ)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.is_empty(), "no connection yet: {events:?}");
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert!(events.iter().any(|e| e.token == 7 && e.readable));
    }

    #[test]
    fn stream_readiness_and_write_interest() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller
            .register(server_side.as_raw_fd(), 42, Interest::READ_WRITE)
            .unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        // Fresh socket: writable immediately, not yet readable.
        let ev = events.iter().find(|e| e.token == 42).unwrap();
        assert!(ev.writable && !ev.readable, "{ev:?}");
        client.write_all(b"ping").unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().find(|e| e.token == 42).unwrap();
        assert!(ev.readable, "{ev:?}");
        // Downgrading to read interest stops writable wakeups.
        poller
            .modify(server_side.as_raw_fd(), 42, Interest::READ)
            .unwrap();
        poller
            .wait(&mut events, Some(Duration::from_millis(50)))
            .unwrap();
        assert!(events.iter().all(|e| !e.writable), "{events:?}");
    }

    #[test]
    fn waker_interrupts_a_blocked_wait_and_drains() {
        let poller = Poller::new().unwrap();
        let waker = Arc::new(Waker::new().unwrap());
        poller
            .register(waker.as_raw_fd(), 1, Interest::READ)
            .unwrap();
        let from_thread = Arc::clone(&waker);
        let start = Instant::now();
        let handle = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            from_thread.wake();
        });
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        handle.join().unwrap();
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(events.iter().any(|e| e.token == 1 && e.readable));
        waker.drain();
        poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert!(events.is_empty(), "drained waker must go quiet: {events:?}");
    }

    #[test]
    fn hangup_is_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server_side, _) = listener.accept().unwrap();
        server_side.set_nonblocking(true).unwrap();
        let poller = Poller::new().unwrap();
        poller
            .register(server_side.as_raw_fd(), 9, Interest::READ)
            .unwrap();
        drop(client);
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        let ev = events.iter().find(|e| e.token == 9).unwrap();
        assert!(ev.hangup && ev.readable, "{ev:?}");
    }
}
