//! The tspdb wire-protocol server binary.
//!
//! ```text
//! probdb-server [--addr HOST:PORT] [--workers N] [--demo]
//! ```
//!
//! * `--addr` — listen address (default `127.0.0.1:7878`; port `0` picks
//!   an ephemeral port, printed on stdout).
//! * `--workers` — worker threads, i.e. the bound on concurrently served
//!   sessions (default 8).
//! * `--demo` — pre-load the demo dataset (`raw_values` + density view
//!   `pv`) so clients have something to query immediately.
//!
//! The listen address is announced on stdout as `listening on <addr>`
//! before the accept loop starts — scripts (the CI smoke job) wait for
//! that line.

use tspdb_server::{demo_config, demo_engine, Server, ServerConfig};

fn usage() -> ! {
    eprintln!("usage: probdb-server [--addr HOST:PORT] [--workers N] [--demo]");
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = ServerConfig::default();
    let mut demo = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => usage(),
            },
            "--workers" => match args.next().and_then(|w| w.parse().ok()) {
                Some(w) => config.workers = w,
                None => usage(),
            },
            "--demo" => demo = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let engine = if demo {
        match demo_engine() {
            Ok(engine) => engine,
            Err(e) => {
                eprintln!("cannot build demo dataset: {e}");
                std::process::exit(1);
            }
        }
    } else {
        tspdb_core::SharedEngine::new(demo_config())
    };

    let server = match Server::bind(&addr, engine, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let local = server.local_addr().expect("bound listener has an address");
    let mut handle = match server.spawn() {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("cannot start server threads: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {local}");
    handle.wait();
}
