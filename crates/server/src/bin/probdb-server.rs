//! The tspdb wire-protocol server binary.
//!
//! ```text
//! probdb-server [--addr HOST:PORT] [--workers N] [--data-dir DIR] [--demo]
//! ```
//!
//! * `--addr` — listen address (default `127.0.0.1:7878`; port `0` picks
//!   an ephemeral port, printed on stdout).
//! * `--workers` — worker threads, i.e. the bound on concurrently served
//!   sessions (default 8).
//! * `--data-dir` — persistent mode: open (or create) a database
//!   directory, recover committed writes from its write-ahead log, and
//!   journal every later write. Without it the server is purely
//!   in-memory.
//! * `--demo` — pre-load the demo dataset (`raw_values` + density view
//!   `pv`) so clients have something to query immediately. With
//!   `--data-dir`, the dataset is only loaded if the directory does not
//!   already hold it.
//!
//! The listen address is announced on stdout as `listening on <addr>`
//! before the accept loop starts — scripts (the CI smoke job) wait for
//! that line.

use tspdb_server::{demo_config, load_demo_data, Server, ServerConfig};

fn usage() -> ! {
    eprintln!("usage: probdb-server [--addr HOST:PORT] [--workers N] [--data-dir DIR] [--demo]");
    std::process::exit(2);
}

fn main() {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut config = ServerConfig::default();
    let mut demo = false;
    let mut data_dir: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => match args.next() {
                Some(a) => addr = a,
                None => usage(),
            },
            "--workers" => match args.next().and_then(|w| w.parse().ok()) {
                Some(w) => config.workers = w,
                None => usage(),
            },
            "--data-dir" => match args.next() {
                Some(d) => data_dir = Some(d),
                None => usage(),
            },
            "--demo" => demo = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown argument: {other}");
                usage();
            }
        }
    }

    let engine = match &data_dir {
        Some(dir) => {
            match tspdb_core::SharedEngine::open_persistent(
                std::path::Path::new(dir),
                demo_config(),
            ) {
                Ok(engine) => {
                    println!("data dir {dir} recovered");
                    engine
                }
                Err(e) => {
                    eprintln!("cannot open data dir {dir}: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => tspdb_core::SharedEngine::new(demo_config()),
    };
    if demo {
        if let Err(e) = load_demo_data(&engine) {
            eprintln!("cannot build demo dataset: {e}");
            std::process::exit(1);
        }
    }

    let server = match Server::bind(&addr, engine, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    let local = server.local_addr().expect("bound listener has an address");
    let mut handle = match server.spawn() {
        Ok(handle) => handle,
        Err(e) => {
            eprintln!("cannot start server threads: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {local}");
    handle.wait();
}
