//! Offline shim for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses: the
//! [`Strategy`] trait with [`Strategy::prop_map`], range and tuple
//! strategies, [`collection::vec`], the [`proptest!`] macro and the
//! `prop_assert*` macros. Cases are generated from a deterministic RNG —
//! there is no shrinking; a failing case panics with the ordinary assert
//! message, which is enough signal for CI.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// Re-export used by the macros (`$crate::rand_shim`).
pub use rand as rand_shim;

/// Number of cases each property runs. Proptest's default is 256; the shim
/// uses a smaller budget because several properties fit GARCH/EM models per
/// case.
pub const NUM_CASES: usize = 64;

/// A generator of arbitrary values.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, i32, i64, u32, u64, usize, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Collection strategies.
pub mod collection {
    use super::{StdRng, Strategy};
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates `Vec<S::Value>` with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            let n = if self.len.start + 1 >= self.len.end {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property module usually imports.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy};
}

/// Runs each property for [`NUM_CASES`] deterministic cases.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn prop_name(x in 0f64..1.0, v in proptest::collection::vec(0i64..5, 0..40)) {
///         prop_assert!(x >= 0.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*) => {$(
        $(#[$attr])*
        fn $name() {
            use $crate::Strategy as _;
            use $crate::rand_shim::SeedableRng as _;
            // Seed folds in the property name so sibling properties do not
            // share a case sequence.
            let mut __seed = 0xcafef00dd15ea5e5u64;
            for b in stringify!($name).bytes() {
                __seed = __seed.wrapping_mul(1099511628211).wrapping_add(b as u64);
            }
            let mut __rng = $crate::rand_shim::rngs::StdRng::seed_from_u64(__seed);
            for __case in 0..$crate::NUM_CASES {
                $(let $arg = ($strategy).generate(&mut __rng);)*
                $body
            }
        }
    )*};
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -3.0f64..3.0, n in 1usize..10) {
            prop_assert!((-3.0..3.0).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn vec_strategy_obeys_length(v in crate::collection::vec(0i64..5, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            for x in &v {
                prop_assert!((0..5).contains(x));
            }
        }

        #[test]
        fn prop_map_applies(double in (0i64..10).prop_map(|x| x * 2)) {
            prop_assert_eq!(double % 2, 0);
            prop_assert!((0..20).contains(&double));
        }
    }

    #[test]
    fn tuples_and_trailing_comma_parse() {
        proptest! {
            #[allow(dead_code)]
            fn inner(
                pair in (0i64..3, 0.0f64..1.0),
                k in 0u32..4,
            ) {
                prop_assert!((0..3).contains(&pair.0));
                prop_assert!((0.0..1.0).contains(&pair.1));
                prop_assert!(k < 4);
            }
        }
        inner();
    }
}
