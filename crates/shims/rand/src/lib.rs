//! Offline shim for the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the (small) subset of the `rand` 0.8 API the workspace actually uses:
//! [`Rng::gen_bool`], [`Rng::gen_range`] over float/integer ranges,
//! [`SeedableRng::seed_from_u64`] and [`rngs::StdRng`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — not the same stream as the real
//! `StdRng` (ChaCha12), but every consumer in this workspace treats seeds as
//! opaque reproducibility handles, never as golden-value fixtures.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next uniformly distributed 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Take the 53 high bits; low bits of many generators are weaker.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// User-facing generator interface (blanket-implemented for all
/// [`RngCore`] types, matching the structure of the real crate).
pub trait Rng: RngCore {
    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Samples uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        // Scale by the next-representable step so `hi` itself is reachable,
        // clamping away the rounding overshoot that the widened scale can
        // produce at the very top of the generator's output range.
        (lo + rng.next_f64() * (hi - lo) * (1.0 + f64::EPSILON)).min(hi)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Modulo reduction; the bias is ≤ span / 2^64, irrelevant
                // for the simulation workloads this shim serves.
                let r = (rng.next_u64() as u128) % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let r = (rng.next_u64() as u128) % span;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

int_sample_range!(i32, i64, u32, u64, usize, isize);

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The shim's standard generator: xoshiro256++.
    ///
    /// Statistically strong for simulation purposes, 4×64-bit state,
    /// deterministic under [`SeedableRng::seed_from_u64`].
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure for
            // the xoshiro family.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn float_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&x));
            let y = rng.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn int_range_covers_span_uniformly() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.gen_range(0usize..5)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn gen_bool_frequency_matches_p() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((24_000..26_000).contains(&hits), "{hits}");
    }

    #[test]
    fn mean_of_uniform_is_centered() {
        let mut rng = StdRng::seed_from_u64(13);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }

    #[test]
    fn works_through_unsized_rng_reference() {
        fn sample(rng: &mut (impl Rng + ?Sized)) -> f64 {
            rng.gen_range(0.0f64..1.0)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let dyn_rng: &mut StdRng = &mut rng;
        assert!((0.0..1.0).contains(&sample(dyn_rng)));
    }
}
