//! Offline shim for the `criterion` crate.
//!
//! Provides the subset of the criterion 0.5 API the workspace's benches
//! use: [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_with_input`], [`BenchmarkId`], `b.iter(..)` and
//! the [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a
//! plain calibrated wall-clock loop printing `ns/iter`; there is no
//! statistical analysis, HTML report or comparison baseline.
//!
//! One extension beyond the real API: when the `CRITERION_JSON`
//! environment variable names a file, every measurement is also appended
//! to it as one JSON object per line
//! (`{"name":…,"ns_per_iter":…,"iters":…}`) so CI can collect bench
//! results as an artifact.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target measurement time per benchmark.
const TARGET_MEASURE: Duration = Duration::from_millis(400);
/// Warm-up budget per benchmark.
const TARGET_WARMUP: Duration = Duration::from_millis(80);

/// Identifies a benchmark within a group, mirroring criterion's type.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Calibrates an iteration count, then measures `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also estimates the per-iteration cost.
        let warm_started = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_started.elapsed() < TARGET_WARMUP {
            std::hint::black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_started.elapsed().as_secs_f64() / warm_iters as f64;
        let iters = ((TARGET_MEASURE.as_secs_f64() / per_iter) as u64).clamp(1, 10_000_000);
        let started = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.total = started.elapsed();
        self.iters = iters;
    }
}

/// Appends one measurement as a JSON line to `path` (the file named by
/// `CRITERION_JSON` in normal operation; taken as a parameter so tests
/// never have to mutate the process environment).
fn report_json(path: &str, name: &str, ns: f64, iters: u64) {
    // Names come from the benches themselves; escape the one character
    // that would break the JSON string.
    let escaped = name.replace('\\', "\\\\").replace('"', "\\\"");
    let line = format!("{{\"name\":\"{escaped}\",\"ns_per_iter\":{ns},\"iters\":{iters}}}\n");
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| std::io::Write::write_all(&mut f, line.as_bytes()));
    if let Err(e) = written {
        eprintln!("criterion shim: cannot append to CRITERION_JSON={path}: {e}");
    }
}

fn report(name: &str, b: &Bencher) {
    if b.iters == 0 {
        println!("{name:<48} (no measurement)");
        return;
    }
    let ns = b.total.as_nanos() as f64 / b.iters as f64;
    match std::env::var("CRITERION_JSON") {
        Ok(path) if !path.is_empty() => report_json(&path, name, ns, b.iters),
        _ => {}
    }
    let human = if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    };
    println!("{name:<48} time: {human}/iter  ({} iters)", b.iters);
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(name, &b);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }
}

/// A group of related benchmarks; names are prefixed with the group name.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's fixed time budget ignores
    /// the requested sample count.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        report(&format!("{}/{}", self.name, name), &b);
        self
    }

    /// Runs a parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.sample_size(10);
        group.bench_function("inner", |b| b.iter(|| 2 * 2));
        group.bench_with_input(BenchmarkId::new("param", 3), &3u64, |b, &x| {
            b.iter(|| x * x)
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_macro_produces_runnable_fn() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).to_string(), "f/8");
        assert_eq!(BenchmarkId::from_parameter(8).to_string(), "8");
    }

    #[test]
    fn json_lines_are_well_formed() {
        let path =
            std::env::temp_dir().join(format!("criterion-shim-json-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        report_json(path.to_str().unwrap(), "grp/q\"uoted", 12.5, 40);
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(text.contains("\"name\":\"grp/q\\\"uoted\""), "{text}");
        assert!(text.contains("\"ns_per_iter\":12.5"));
        assert!(text.contains("\"iters\":40"));
    }
}
