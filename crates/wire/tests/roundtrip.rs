//! Encode→decode identity for every frame type, mirroring the SQL
//! parse→format→parse round-trip property: whatever the database layer
//! can produce must cross the wire unchanged — bit-for-bit for floats.

use std::time::Duration;
use tspdb_probdb::plan::{AggValue, AggregateGroup, AggregateResult, ExplainReport};
use tspdb_probdb::sql::{AggExpr, AggFunc, HavingClause};
use tspdb_probdb::{
    CmpOp, ColumnType, DbError, ProbTable, QueryOutput, Schema, SumEstimate, Table, Value,
    WorldsResult,
};
use tspdb_wire::{decode_message, encode_message, Request, Response, StatementId, Wire};

/// Asserts the identity (and re-encode stability) for one message.
fn assert_round_trip<T: Wire + PartialEq + std::fmt::Debug>(msg: &T) {
    let bytes = encode_message(msg);
    let back: T = decode_message(&bytes).expect("decode of a just-encoded message");
    assert_eq!(&back, msg, "value changed across the wire");
    assert_eq!(
        encode_message(&back),
        bytes,
        "re-encoding produced different bytes"
    );
}

// ---------------------------------------------------------------------------
// Deterministic builders: raw (kind, int, float) material → wire values
// ---------------------------------------------------------------------------

const TEXTS: [&str; 4] = ["", "a", "room b", "Ω-view δ"];
const COLS: [&str; 4] = ["t", "room", "lambda", "r"];

fn value(kind: usize, i: i64, f: f64) -> Value {
    match kind % 3 {
        0 => Value::Int(i),
        1 => Value::Float(f),
        _ => Value::Text(TEXTS[i.unsigned_abs() as usize % TEXTS.len()].to_string()),
    }
}

fn column_type(kind: usize) -> ColumnType {
    match kind % 3 {
        0 => ColumnType::Int,
        1 => ColumnType::Float,
        _ => ColumnType::Text,
    }
}

/// A schema with one column per raw entry (names are made unique by
/// position, as `Schema` requires).
fn schema(raw: &[(usize, i64, f64)]) -> Schema {
    Schema::new(
        raw.iter()
            .enumerate()
            .map(|(pos, &(kind, _, _))| {
                (
                    format!("{}_{pos}", COLS[kind % COLS.len()]),
                    column_type(kind),
                )
            })
            .collect(),
    )
}

/// A row matching `schema(raw)`, varied by `salt`.
fn row(raw: &[(usize, i64, f64)], salt: i64) -> Vec<Value> {
    raw.iter()
        .map(|&(kind, i, f)| match column_type(kind) {
            ColumnType::Int => Value::Int(i.wrapping_add(salt)),
            ColumnType::Float => Value::Float(f + salt as f64),
            ColumnType::Text => Value::Text(
                TEXTS[(i.wrapping_add(salt)).unsigned_abs() as usize % TEXTS.len()].to_string(),
            ),
        })
        .collect()
}

fn table(raw: &[(usize, i64, f64)], rows: usize) -> Table {
    let mut t = Table::new("wire_t", schema(raw));
    for salt in 0..rows {
        t.insert(row(raw, salt as i64)).expect("row fits schema");
    }
    t
}

fn prob_table(raw: &[(usize, i64, f64)], rows: usize) -> ProbTable {
    let mut t = ProbTable::new("wire_pv", schema(raw));
    for salt in 0..rows {
        let p = (salt % 11) as f64 / 10.0;
        t.insert(row(raw, salt as i64), p)
            .expect("tuple fits schema");
    }
    t
}

fn worlds_result(fs: &[f64], with_sum: bool) -> WorldsResult {
    let f = |i: usize| fs[i % fs.len()];
    WorldsResult {
        worlds: fs.len() * 100,
        matching_tuples: fs.len(),
        seed: fs.len() as u64 * 7,
        threads: 1 + fs.len() % 8,
        converged: fs.len().is_multiple_of(2),
        event_probability: f(0),
        event_ci_half_width: f(1),
        count_distribution: fs.to_vec(),
        count_mean: f(2),
        count_variance: f(3),
        count_ci_half_width: f(4),
        sum: with_sum.then(|| SumEstimate {
            column: "r".into(),
            mean: f(5),
            variance: f(6),
            ci_half_width: f(7),
        }),
        wall: Duration::new(fs.len() as u64, (fs.len() as u32 * 31) % 1_000_000_000),
    }
}

fn agg_expr(kind: usize) -> AggExpr {
    match kind % 4 {
        0 => AggExpr::count(),
        1 => AggExpr::over(AggFunc::Sum, "r"),
        2 => AggExpr::over(AggFunc::Avg, "lambda"),
        _ => AggExpr::over(AggFunc::Expected, "r"),
    }
}

fn cmp_op(kind: usize) -> CmpOp {
    [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ][kind % 6]
}

fn aggregate_result(raw: &[(usize, i64, f64)], mc: bool) -> AggregateResult {
    let groups = raw
        .iter()
        .enumerate()
        .map(|(gi, &(kind, i, f))| AggregateGroup {
            key: vec![value(kind, i, f)],
            values: vec![
                AggValue {
                    value: f,
                    ci_half_width: mc.then_some(f.abs() / 10.0),
                },
                AggValue {
                    value: i as f64,
                    ci_half_width: None,
                },
            ],
            count_distribution: (gi % 2 == 0).then(|| vec![f, 1.0 - f]),
            event_probability: (gi % 3 == 0).then_some((f.abs() / 4.0).min(1.0)),
            worlds: mc.then_some(1000 + gi),
        })
        .collect();
    AggregateResult {
        group_columns: vec!["g".into()],
        aggregates: vec![agg_expr(raw.len()), agg_expr(raw.len() + 1)],
        having: raw.len().is_multiple_of(2).then(|| HavingClause {
            agg: AggExpr::count(),
            op: cmp_op(raw.len()),
            value: Value::Int(raw[0].1),
        }),
        strategy: if mc { "worlds" } else { "exact" },
        groups,
    }
}

fn db_error(kind: usize, text: &str, f: f64) -> DbError {
    match kind % 12 {
        0 => DbError::UnknownColumn(text.into()),
        1 => DbError::UnknownTable(text.into()),
        2 => DbError::DuplicateTable(text.into()),
        3 => DbError::ArityMismatch {
            expected: kind,
            got: kind + 2,
        },
        4 => DbError::TypeMismatch {
            column: text.into(),
            expected: column_type(kind),
            got: column_type(kind + 1),
        },
        5 => DbError::InvalidProbability(f),
        6 => DbError::Parse(text.into()),
        7 => DbError::Unsupported(text.into()),
        8 => DbError::ReadOnly(text.into()),
        9 => DbError::InvalidWorlds(text.into()),
        10 => DbError::Plan(text.into()),
        _ => DbError::ViewBuild(text.into()),
    }
}

fn query_output(raw: &[(usize, i64, f64)], variant: usize) -> QueryOutput {
    let fs: Vec<f64> = raw.iter().map(|&(_, _, f)| f).collect();
    match variant % 6 {
        0 => QueryOutput::None,
        1 => QueryOutput::Rows(table(raw, raw.len())),
        2 => QueryOutput::ProbRows(prob_table(raw, raw.len())),
        3 => QueryOutput::Worlds(worlds_result(&fs, raw.len().is_multiple_of(2))),
        4 => QueryOutput::Aggregate(aggregate_result(raw, raw.len() % 2 == 1)),
        _ => QueryOutput::Explain(ExplainReport {
            relation: format!(
                "{}: probabilistic ({} tuples)",
                TEXTS[raw.len() % 4],
                raw.len()
            ),
            logical: "Scan pv".into(),
            physical: "scan(pv) → rows(*)".into(),
            strategy: "exact".into(),
        }),
    }
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

use proptest::prelude::*;

proptest! {
    #[test]
    fn requests_round_trip(
        raw in proptest::collection::vec((0usize..6, -1000i64..1000, -100.0f64..100.0), 1..10),
        variant in 0usize..7,
    ) {
        let (kind, i, _f) = raw[0];
        let req = match variant {
            0 => Request::Hello { version: i.unsigned_abs() as u32 },
            1 => Request::Query { sql: format!("SELECT * FROM t{kind}") },
            2 => Request::Prepare { sql: format!("SELECT r FROM pv TOP {}", raw.len()) },
            3 => Request::Execute { statement: StatementId(i.unsigned_abs()) },
            4 => Request::CloseStatement { statement: StatementId(i.unsigned_abs()) },
            5 => Request::SetWorldsThreads {
                threads: (raw.len() % 2 == 0).then_some(raw.len() as u64),
            },
            _ => Request::Close,
        };
        let bytes = encode_message(&req);
        prop_assert_eq!(decode_message::<Request>(&bytes).unwrap(), req);
    }

    #[test]
    fn responses_round_trip(
        raw in proptest::collection::vec((0usize..6, -1000i64..1000, -100.0f64..100.0), 1..10),
        variant in 0usize..7,
    ) {
        let (kind, i, f) = raw[0];
        let resp = match variant {
            0 => Response::Hello { version: 1, server: TEXTS[kind % 4].to_string() },
            1 => Response::Result(query_output(&raw, kind + raw.len())),
            2 => Response::Prepared { statement: StatementId(i.unsigned_abs()) },
            3 => Response::Closed { statement: StatementId(i.unsigned_abs()) },
            4 => Response::WorldsThreadsSet {
                threads: (raw.len() % 2 == 1).then_some(raw.len() as u64),
            },
            5 => Response::Error(db_error(kind + raw.len(), TEXTS[kind % 4], f)),
            _ => Response::Bye,
        };
        assert_round_trip(&resp);
    }

    #[test]
    fn every_query_output_variant_round_trips(
        raw in proptest::collection::vec((0usize..6, -1000i64..1000, -100.0f64..100.0), 1..12),
    ) {
        for variant in 0..6 {
            assert_round_trip(&Response::Result(query_output(&raw, variant)));
        }
    }

    #[test]
    fn every_db_error_variant_round_trips(
        i in -1000i64..1000,
        f in -100.0f64..100.0,
    ) {
        for kind in 0..12 {
            let text = TEXTS[i.unsigned_abs() as usize % TEXTS.len()];
            assert_round_trip(&Response::Error(db_error(kind, text, f)));
        }
    }
}

// ---------------------------------------------------------------------------
// Deterministic edge cases
// ---------------------------------------------------------------------------

#[test]
fn float_bit_patterns_survive() {
    for f in [
        0.0,
        -0.0,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::MIN_POSITIVE,
        f64::EPSILON,
        1.0 / 3.0,
    ] {
        let v = Value::Float(f);
        let bytes = encode_message(&v);
        let back: Value = decode_message(&bytes).unwrap();
        assert_eq!(back, v);
    }
    // NaN is not PartialEq-comparable; compare the bits instead.
    let bytes = encode_message(&Value::Float(f64::NAN));
    match decode_message::<Value>(&bytes).unwrap() {
        Value::Float(f) => assert_eq!(f.to_bits(), f64::NAN.to_bits()),
        other => panic!("decoded {other:?}"),
    }
}

#[test]
fn malformed_inputs_error_instead_of_panicking() {
    // Truncated message.
    let bytes = encode_message(&Request::Query {
        sql: "SELECT 1".into(),
    });
    assert!(decode_message::<Request>(&bytes[..bytes.len() - 1]).is_err());
    // Trailing garbage.
    let mut padded = bytes.clone();
    padded.push(0);
    assert!(decode_message::<Request>(&padded).is_err());
    // Unknown tag.
    assert!(decode_message::<Request>(&[0xEE]).is_err());
    // Bad handshake magic.
    let mut hello = encode_message(&Request::Hello { version: 1 });
    hello[1] = b'X';
    assert!(decode_message::<Request>(&hello).is_err());
    // Sequence length beyond the frame.
    let mut dist = encode_message(&Response::Result(QueryOutput::Worlds(worlds_result(
        &[0.5, 0.5],
        false,
    ))));
    // Corrupt the count_distribution length prefix region by truncation.
    dist.truncate(dist.len() / 2);
    assert!(decode_message::<Response>(&dist).is_err());
    // An inflated sequence prefix that still fits the frame byte-wise
    // (1M claimed elements, each worth >100 bytes decoded) must fail on
    // the first element decode without a proportional pre-allocation —
    // the decoder caps its up-front reservation, so this returns
    // Malformed instead of attempting a multi-hundred-MB Vec.
    let mut inflated = Vec::new();
    inflated.extend_from_slice(&1_000_000u32.to_be_bytes());
    inflated.resize(1_000_001, 0xAB);
    assert!(decode_message::<Vec<AggregateGroup>>(&inflated).is_err());
    // A schema repeating a column name decodes as malformed, not a panic.
    let schema = Schema::of(&[("a", ColumnType::Int)]);
    let bytes = encode_message(&schema);
    let mut doubled = Vec::new();
    doubled.extend_from_slice(&2u32.to_be_bytes());
    doubled.extend_from_slice(&bytes[4..]);
    doubled.extend_from_slice(&bytes[4..]);
    assert!(decode_message::<Schema>(&doubled).is_err());
}

#[test]
fn frame_io_round_trips_over_a_buffer() {
    let req = Request::Query {
        sql: "SELECT * FROM pv WITH WORLDS 100 SEED 4".into(),
    };
    let mut buf = Vec::new();
    tspdb_wire::write_frame(&mut buf, &req).unwrap();
    let mut cursor: &[u8] = &buf;
    let back: Request = tspdb_wire::read_frame(&mut cursor).unwrap();
    assert_eq!(back, req);
    assert!(cursor.is_empty(), "frame reader left bytes behind");
}

#[test]
fn oversized_frame_is_rejected_on_read() {
    let mut buf = Vec::new();
    buf.extend_from_slice(&(tspdb_wire::MAX_FRAME_LEN + 1).to_be_bytes());
    let mut cursor: &[u8] = &buf;
    assert!(matches!(
        tspdb_wire::read_frame::<Request>(&mut cursor),
        Err(tspdb_wire::WireError::FrameTooLarge { .. })
    ));
}
