//! Pins the wire protocol's observable surface: version, magic, frame
//! limit, message tags, and the frame layout itself.
//!
//! The server front-end was rewritten from a thread-per-connection pool
//! to an event-driven loop; this suite is the proof that the rewrite is
//! invisible on the wire. Any byte-level change here is a protocol
//! change and must come with a [`PROTOCOL_VERSION`] bump and an entry in
//! `docs/wire-protocol.md`'s version-bump policy — the failing assertion
//! is the reminder.

use tspdb_wire::{
    decode_message, encode_message, read_frame, write_frame, Request, Response, StatementId, MAGIC,
    MAX_FRAME_LEN, PROTOCOL_VERSION,
};

#[test]
fn constants_are_pinned() {
    assert_eq!(PROTOCOL_VERSION, 1, "protocol version must not drift");
    assert_eq!(MAGIC, *b"TPDB");
    assert_eq!(MAX_FRAME_LEN, 64 * 1024 * 1024);
}

/// Every request variant, one of each tag.
fn all_requests() -> Vec<Request> {
    vec![
        Request::Hello {
            version: PROTOCOL_VERSION,
        },
        Request::Query {
            sql: "SELECT * FROM pv THRESHOLD 0.2".into(),
        },
        Request::Prepare {
            sql: "SELECT COUNT(*) FROM pv".into(),
        },
        Request::Execute {
            statement: StatementId(7),
        },
        Request::CloseStatement {
            statement: StatementId(7),
        },
        Request::SetWorldsThreads { threads: Some(4) },
        Request::Close,
        Request::Tail {
            sql: "TAIL SELECT COUNT(*) FROM pv GROUP BY WINDOW(t, 10)".into(),
        },
        Request::TailStop { token: 7 },
    ]
}

/// Every response variant a pure-wire test can build (a `Result` body
/// needs an engine-side `QueryOutput`; the round-trip suite covers it).
fn all_responses() -> Vec<Response> {
    vec![
        Response::Hello {
            version: PROTOCOL_VERSION,
            server: "tspdb-server/test".into(),
        },
        Response::Prepared {
            statement: StatementId(7),
        },
        Response::Closed {
            statement: StatementId(7),
        },
        Response::WorldsThreadsSet { threads: None },
        Response::Error(tspdb_probdb::DbError::Unsupported("pinned".into())),
        Response::Bye,
        Response::TailStarted { token: 7 },
        Response::TailFrame {
            token: 7,
            bucket: 10.0,
            result: pinned_aggregate(),
        },
        Response::TailStopped {
            token: 7,
            reason: Some("source table dropped".into()),
        },
    ]
}

/// The smallest well-formed [`AggregateResult`] the codec accepts — one
/// closed, empty bucket.
fn pinned_aggregate() -> tspdb_probdb::plan::AggregateResult {
    tspdb_probdb::plan::AggregateResult {
        group_columns: vec!["WINDOW(t, 10)".into()],
        aggregates: vec![tspdb_probdb::sql::AggExpr::count()],
        having: None,
        strategy: "exact",
        groups: Vec::new(),
    }
}

#[test]
fn request_tags_are_pinned() {
    let tags: Vec<u8> = all_requests()
        .iter()
        .map(|r| encode_message(r)[0])
        .collect();
    assert_eq!(tags, vec![0, 1, 2, 3, 4, 5, 6, 7, 8]);
}

#[test]
fn response_tags_are_pinned() {
    let tags: Vec<u8> = all_responses()
        .iter()
        .map(|r| encode_message(r)[0])
        .collect();
    // `Response::Result` (tag 1) is absent from the pure-wire list.
    assert_eq!(tags, vec![0, 2, 3, 4, 5, 6, 7, 8, 9]);
}

#[test]
fn hello_request_bytes_are_pinned() {
    // tag 0, the 4 magic bytes, then the version as big-endian u32:
    // the exact opening bytes every client ever written must produce.
    let body = encode_message(&Request::Hello {
        version: PROTOCOL_VERSION,
    });
    assert_eq!(body, vec![0, b'T', b'P', b'D', b'B', 0, 0, 0, 1]);
}

#[test]
fn frame_layout_is_pinned() {
    // u32 big-endian body length, then the body — nothing else.
    let msg = Request::Query {
        sql: "SELECT 1".into(),
    };
    let body = encode_message(&msg);
    let mut frame = Vec::new();
    write_frame(&mut frame, &msg).unwrap();
    assert_eq!(frame.len(), 4 + body.len());
    assert_eq!(&frame[..4], &(body.len() as u32).to_be_bytes());
    assert_eq!(&frame[4..], &body[..]);
}

#[test]
fn every_variant_round_trips() {
    for req in all_requests() {
        let decoded: Request = decode_message(&encode_message(&req)).unwrap();
        assert_eq!(decoded, req);
        let mut frame = Vec::new();
        write_frame(&mut frame, &req).unwrap();
        let framed: Request = read_frame(&mut frame.as_slice()).unwrap();
        assert_eq!(framed, req);
    }
    for resp in all_responses() {
        let decoded: Response = decode_message(&encode_message(&resp)).unwrap();
        assert_eq!(decoded, resp);
        let mut frame = Vec::new();
        write_frame(&mut frame, &resp).unwrap();
        let framed: Response = read_frame(&mut frame.as_slice()).unwrap();
        assert_eq!(framed, resp);
    }
}

#[test]
fn oversized_frames_are_rejected_on_read() {
    // A hostile length prefix larger than MAX_FRAME_LEN must be refused
    // before any body allocation.
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&(MAX_FRAME_LEN + 1).to_be_bytes());
    bytes.extend_from_slice(&[0u8; 16]);
    let err = read_frame::<Request>(&mut bytes.as_slice()).unwrap_err();
    assert!(matches!(err, tspdb_wire::WireError::FrameTooLarge { .. }));
}
