//! Frames: the request/response messages and their length-prefixed
//! transport encoding.
//!
//! Every message travels as one frame:
//!
//! ```text
//! ┌────────────────┬──────────────────────────────┐
//! │ u32 big-endian │ body                         │
//! │ body length    │ u8 message tag + payload     │
//! └────────────────┴──────────────────────────────┘
//! ```
//!
//! The first request on a connection must be [`Request::Hello`], whose
//! payload leads with the [`MAGIC`] bytes and the client's
//! [`PROTOCOL_VERSION`]; the server answers [`Response::Hello`] or an
//! error frame and closes. After the handshake the client drives a strict
//! request/response alternation — no pipelining — which keeps the session
//! state machine trivial on both ends.
//!
//! **One exception**: a session holding a [`Request::Tail`] subscription
//! may receive pushed [`Response::TailFrame`] frames (and a pushed
//! [`Response::TailStopped`] when a standing query lapses) at any point
//! between its own request/response pairs, including interleaved before
//! an in-flight request's reply. A client that never sends `Tail` never
//! sees a pushed frame, so pre-TAIL clients keep the pure alternation.

use crate::codec::{decode_message, encode_message, Decoder, Encoder, Wire, WireError};
use std::io::{Read, Write};
use tspdb_probdb::plan::AggregateResult;
use tspdb_probdb::{DbError, QueryOutput};

/// Bytes opening every [`Request::Hello`] payload — rejects stray
/// connections speaking some other protocol before any allocation
/// happens.
pub const MAGIC: [u8; 4] = *b"TPDB";

/// Version of the wire protocol this build speaks. The handshake rejects
/// mismatches outright (no negotiation until a second version exists).
///
/// Still **1** after the persistent storage engine landed: its
/// [`DbError::Storage`] variant is a new error tag (12) at the end of the
/// tag space, which the version-bump policy classifies as a compatible
/// addition — old peers decode it as `Malformed` rather than corrupting
/// state.
///
/// Still **1** after TAIL continuous queries landed, for the same
/// reason: [`Request::Tail`] / [`Request::TailStop`] (tags 7, 8) and
/// [`Response::TailStarted`] / [`Response::TailFrame`] /
/// [`Response::TailStopped`] (tags 7, 8, 9) extend the ends of their tag
/// spaces, and a pushed frame only ever reaches a session that opted in
/// by sending `Tail` — an old client cannot receive bytes it cannot
/// decode.
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on a frame body. Large enough for any realistic result
/// relation, small enough that a hostile length prefix cannot exhaust
/// memory.
pub const MAX_FRAME_LEN: u32 = 64 * 1024 * 1024;

/// A server-assigned handle to a prepared statement, scoped to the
/// session that prepared it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StatementId(pub u64);

impl Wire for StatementId {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.0);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(StatementId(dec.take_u64()?))
    }
}

impl std::fmt::Display for StatementId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens the session: magic bytes plus the client's protocol version.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Parse and execute one SQL statement.
    Query {
        /// The statement text.
        sql: String,
    },
    /// Parse and plan a read-only statement once; execute it later by id.
    Prepare {
        /// The statement text.
        sql: String,
    },
    /// Execute a prepared statement (plan-once / execute-many).
    Execute {
        /// Id returned by [`Response::Prepared`].
        statement: StatementId,
    },
    /// Discard a prepared statement.
    CloseStatement {
        /// Id returned by [`Response::Prepared`].
        statement: StatementId,
    },
    /// Session-scoped override of the `WITH WORLDS` fork-join width
    /// (`Some(0)` = one thread per core, `None` = clear the override and
    /// track the engine-wide default again). Latency-only: MC estimates
    /// are bit-identical at every width.
    SetWorldsThreads {
        /// The requested width, or `None` to clear the override.
        threads: Option<u64>,
    },
    /// Registers a `TAIL SELECT ... GROUP BY WINDOW(...)` standing query.
    /// The server answers [`Response::TailStarted`] with a token, then
    /// pushes one [`Response::TailFrame`] per window bucket as buckets
    /// close — already-closed history first, so a late subscriber catches
    /// up before it streams.
    Tail {
        /// The `TAIL SELECT ...` statement text.
        sql: String,
    },
    /// Cancels a TAIL subscription; the server answers
    /// [`Response::TailStopped`] (frames already pushed may still be in
    /// flight ahead of the ack).
    TailStop {
        /// Token returned by [`Response::TailStarted`].
        token: u64,
    },
    /// Ends the session; the server answers [`Response::Bye`] and closes.
    Close,
}

impl Wire for Request {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Request::Hello { version } => {
                enc.put_u8(0);
                enc.put_raw(&MAGIC);
                enc.put_u32(*version);
            }
            Request::Query { sql } => {
                enc.put_u8(1);
                enc.put_str(sql);
            }
            Request::Prepare { sql } => {
                enc.put_u8(2);
                enc.put_str(sql);
            }
            Request::Execute { statement } => {
                enc.put_u8(3);
                statement.encode(enc);
            }
            Request::CloseStatement { statement } => {
                enc.put_u8(4);
                statement.encode(enc);
            }
            Request::SetWorldsThreads { threads } => {
                enc.put_u8(5);
                threads.encode(enc);
            }
            Request::Close => enc.put_u8(6),
            Request::Tail { sql } => {
                enc.put_u8(7);
                enc.put_str(sql);
            }
            Request::TailStop { token } => {
                enc.put_u8(8);
                enc.put_u64(*token);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        match dec.take_u8()? {
            0 => {
                let magic = dec.take_raw(MAGIC.len())?;
                if magic != MAGIC {
                    return Err(WireError::Malformed(format!(
                        "bad handshake magic {magic:02x?}"
                    )));
                }
                Ok(Request::Hello {
                    version: dec.take_u32()?,
                })
            }
            1 => Ok(Request::Query {
                sql: dec.take_str()?,
            }),
            2 => Ok(Request::Prepare {
                sql: dec.take_str()?,
            }),
            3 => Ok(Request::Execute {
                statement: StatementId::decode(dec)?,
            }),
            4 => Ok(Request::CloseStatement {
                statement: StatementId::decode(dec)?,
            }),
            5 => Ok(Request::SetWorldsThreads {
                threads: Option::decode(dec)?,
            }),
            6 => Ok(Request::Close),
            7 => Ok(Request::Tail {
                sql: dec.take_str()?,
            }),
            8 => Ok(Request::TailStop {
                token: dec.take_u64()?,
            }),
            other => Err(WireError::Malformed(format!("unknown request tag {other}"))),
        }
    }
}

/// A server → client message. Every request yields exactly one response;
/// in addition, a session holding a TAIL subscription may receive pushed
/// [`Response::TailFrame`] / [`Response::TailStopped`] frames between its
/// own request/response pairs.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Successful handshake.
    Hello {
        /// The server's [`PROTOCOL_VERSION`].
        version: u32,
        /// Human-readable server identification (name/version).
        server: String,
    },
    /// Result of a `Query` or `Execute`.
    Result(QueryOutput),
    /// A statement was prepared.
    Prepared {
        /// Handle for subsequent [`Request::Execute`] calls.
        statement: StatementId,
    },
    /// A prepared statement was closed.
    Closed {
        /// The handle that is now invalid.
        statement: StatementId,
    },
    /// The session's worlds fork-join width was set or cleared.
    WorldsThreadsSet {
        /// The override now in effect for this session (`None` = the
        /// engine-wide default applies).
        threads: Option<u64>,
    },
    /// The request failed; the session stays usable.
    Error(DbError),
    /// Acknowledges [`Request::Close`]; the server closes the connection.
    Bye,
    /// A TAIL subscription was registered.
    TailStarted {
        /// Handle for the subscription, scoped to this session; quote it
        /// in [`Request::TailStop`] to cancel.
        token: u64,
    },
    /// **Pushed**: one window bucket of a TAIL subscription closed. The
    /// carried result is byte-identical to re-running the subscription's
    /// windowed query and keeping only this bucket's groups.
    TailFrame {
        /// The subscription the frame belongs to.
        token: u64,
        /// The closed bucket's start (the window column value the bucket
        /// begins at).
        bucket: f64,
        /// The closed bucket's groups, in the windowed query's shape.
        result: AggregateResult,
    },
    /// A TAIL subscription ended: the ack for [`Request::TailStop`]
    /// (`reason` is `None`), or **pushed** when the standing query
    /// lapsed server-side (`reason` says why — e.g. its source table was
    /// dropped).
    TailStopped {
        /// The subscription that ended.
        token: u64,
        /// `None` for a client-requested stop; the error text when the
        /// server cancelled the subscription.
        reason: Option<String>,
    },
}

impl Wire for Response {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Response::Hello { version, server } => {
                enc.put_u8(0);
                enc.put_u32(*version);
                enc.put_str(server);
            }
            Response::Result(out) => {
                enc.put_u8(1);
                out.encode(enc);
            }
            Response::Prepared { statement } => {
                enc.put_u8(2);
                statement.encode(enc);
            }
            Response::Closed { statement } => {
                enc.put_u8(3);
                statement.encode(enc);
            }
            Response::WorldsThreadsSet { threads } => {
                enc.put_u8(4);
                threads.encode(enc);
            }
            Response::Error(e) => {
                enc.put_u8(5);
                e.encode(enc);
            }
            Response::Bye => enc.put_u8(6),
            Response::TailStarted { token } => {
                enc.put_u8(7);
                enc.put_u64(*token);
            }
            Response::TailFrame {
                token,
                bucket,
                result,
            } => {
                enc.put_u8(8);
                enc.put_u64(*token);
                enc.put_f64(*bucket);
                result.encode(enc);
            }
            Response::TailStopped { token, reason } => {
                enc.put_u8(9);
                enc.put_u64(*token);
                reason.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        match dec.take_u8()? {
            0 => Ok(Response::Hello {
                version: dec.take_u32()?,
                server: dec.take_str()?,
            }),
            1 => Ok(Response::Result(QueryOutput::decode(dec)?)),
            2 => Ok(Response::Prepared {
                statement: StatementId::decode(dec)?,
            }),
            3 => Ok(Response::Closed {
                statement: StatementId::decode(dec)?,
            }),
            4 => Ok(Response::WorldsThreadsSet {
                threads: Option::decode(dec)?,
            }),
            5 => Ok(Response::Error(DbError::decode(dec)?)),
            6 => Ok(Response::Bye),
            7 => Ok(Response::TailStarted {
                token: dec.take_u64()?,
            }),
            8 => Ok(Response::TailFrame {
                token: dec.take_u64()?,
                bucket: dec.take_f64()?,
                result: AggregateResult::decode(dec)?,
            }),
            9 => Ok(Response::TailStopped {
                token: dec.take_u64()?,
                reason: Option::decode(dec)?,
            }),
            other => Err(WireError::Malformed(format!(
                "unknown response tag {other}"
            ))),
        }
    }
}

/// Writes one message as a length-prefixed frame and flushes.
pub fn write_frame<T: Wire>(w: &mut impl Write, msg: &T) -> Result<(), WireError> {
    let body = encode_message(msg);
    let len = u32::try_from(body.len()).map_err(|_| WireError::FrameTooLarge {
        len: u32::MAX,
        max: MAX_FRAME_LEN,
    })?;
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    w.write_all(&len.to_be_bytes())?;
    w.write_all(&body)?;
    w.flush()?;
    Ok(())
}

/// Reads one length-prefixed frame and decodes its body as `T`.
///
/// (The server does not use this: its reads interleave with shutdown
/// checks and wall-clock deadlines, so it reads the prefix and body
/// itself and shares only [`decode_message`].)
pub fn read_frame<T: Wire>(r: &mut impl Read) -> Result<T, WireError> {
    let mut prefix = [0u8; 4];
    r.read_exact(&mut prefix)?;
    let len = u32::from_be_bytes(prefix);
    if len > MAX_FRAME_LEN {
        return Err(WireError::FrameTooLarge {
            len,
            max: MAX_FRAME_LEN,
        });
    }
    let mut body = vec![0u8; len as usize];
    r.read_exact(&mut body)?;
    decode_message(&body)
}
