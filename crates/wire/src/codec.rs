//! The binary codec: a flat, deterministic byte encoding for every type
//! that crosses the wire.
//!
//! Design rules, chosen for a database protocol rather than a general
//! serialization framework:
//!
//! * **fixed-width scalars, big-endian** — no varints, so offsets are
//!   predictable and the encoder never branches on magnitude;
//! * **floats as IEEE-754 bit patterns** — `f64::to_bits`/`from_bits`
//!   round-trips every value including NaN payloads, which the
//!   determinism contract (bit-identical MC estimates across the wire)
//!   requires;
//! * **length-prefixed strings and sequences** (`u32` element count) with
//!   the frame length as the outer bound, so a malformed prefix can never
//!   allocate more than one frame's worth of memory;
//! * **decode validates** — schemas reject duplicate columns, rows are
//!   re-checked against their schema, probabilities against `[0, 1]`; a
//!   decoded relation upholds the same invariants as a locally built one.

use std::fmt;
use std::time::Duration;
use tspdb_probdb::plan::{AggValue, AggregateGroup, AggregateResult, ExplainReport};
use tspdb_probdb::sql::{AggExpr, AggFunc, HavingClause};
use tspdb_probdb::{
    CmpOp, ColumnType, DbError, ProbTable, QueryOutput, Schema, SumEstimate, Table, Value,
    WorldsResult,
};

/// Errors surfaced by the wire layer: transport failures and protocol
/// violations. Server-side *database* errors are not a `WireError` — they
/// travel as a well-formed [`crate::Response::Error`] frame.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed.
    Io(std::io::Error),
    /// The peer sent bytes that do not decode as the expected message.
    Malformed(String),
    /// A frame announced a length beyond [`crate::MAX_FRAME_LEN`].
    FrameTooLarge {
        /// Announced body length.
        len: u32,
        /// The permitted maximum.
        max: u32,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o error: {e}"),
            WireError::Malformed(msg) => write!(f, "malformed frame: {msg}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

/// Shorthand for a malformed-frame error.
fn malformed<T>(msg: impl Into<String>) -> Result<T, WireError> {
    Err(WireError::Malformed(msg.into()))
}

/// An append-only byte buffer messages encode into.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends raw bytes verbatim (used for the handshake magic).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact, NaN
    /// payloads included).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    /// Appends a `usize` as a `u64` (lossless on every supported target).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(u32::try_from(s.len()).expect("string longer than u32::MAX"));
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// A cursor over one received frame body.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Wraps a frame body.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Errors unless the frame was consumed exactly — trailing garbage is
    /// a protocol violation, not padding.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            malformed(format!("{} trailing bytes after message", self.remaining()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return malformed(format!(
                "need {n} bytes, {} remaining in frame",
                self.remaining()
            ));
        }
        let bytes = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(bytes)
    }

    /// Reads raw bytes verbatim (used for the handshake magic).
    pub fn take_raw(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        self.take(n)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a big-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_be_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a big-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a big-endian `i64`.
    pub fn take_i64(&mut self) -> Result<i64, WireError> {
        Ok(i64::from_be_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a bool byte (`0` or `1`; anything else is malformed).
    pub fn take_bool(&mut self) -> Result<bool, WireError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => malformed(format!("bool byte must be 0 or 1, got {other}")),
        }
    }

    /// Reads a `usize` encoded as `u64`.
    pub fn take_usize(&mut self) -> Result<usize, WireError> {
        usize::try_from(self.take_u64()?)
            .or_else(|_| malformed("length does not fit in usize on this target"))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, WireError> {
        let len = self.take_u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).or_else(|_| malformed("string is not valid UTF-8"))
    }

    /// Reads a `u32` sequence-length prefix, bounded by the bytes actually
    /// remaining in the frame (each element occupies at least one byte, so
    /// a longer announcement is necessarily malformed).
    fn take_seq_len(&mut self) -> Result<usize, WireError> {
        let len = self.take_u32()? as usize;
        if len > self.remaining() {
            return malformed(format!(
                "sequence announces {len} elements but only {} bytes remain",
                self.remaining()
            ));
        }
        Ok(len)
    }
}

/// Pre-allocation cap for decoded sequences. [`Decoder::take_seq_len`]
/// bounds the *count* by the frame, but `count × size_of::<T>()` is what
/// `Vec::with_capacity` actually reserves — a hostile prefix claiming
/// millions of multi-hundred-byte elements would allocate gigabytes
/// before the first element decode could fail. Capping the initial
/// reservation keeps the one-frame memory bound; honest large sequences
/// just grow amortized past it.
const SEQ_PREALLOC_CAP: usize = 4096;

/// A `Vec` sized for `len` decoded elements without trusting `len` with
/// more than [`SEQ_PREALLOC_CAP`] up-front slots.
fn seq_buffer<T>(len: usize) -> Vec<T> {
    Vec::with_capacity(len.min(SEQ_PREALLOC_CAP))
}

/// A type with a wire encoding. `decode(encode(x)) == x` for every value
/// the database layer can produce (property-tested per frame type).
pub trait Wire: Sized {
    /// Appends this value's encoding.
    fn encode(&self, enc: &mut Encoder);
    /// Decodes one value from the cursor.
    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError>;
}

/// Encodes a message into a standalone byte vector (no frame prefix).
pub fn encode_message<T: Wire>(msg: &T) -> Vec<u8> {
    let mut enc = Encoder::new();
    msg.encode(&mut enc);
    enc.into_bytes()
}

/// Decodes a message from a frame body, requiring every byte to be
/// consumed.
pub fn decode_message<T: Wire>(bytes: &[u8]) -> Result<T, WireError> {
    let mut dec = Decoder::new(bytes);
    let msg = T::decode(&mut dec)?;
    dec.finish()?;
    Ok(msg)
}

/// The canonical comparison form of a query result: its wire encoding,
/// except Monte-Carlo results, which compare by their bit-exact
/// [`WorldsResult::fingerprint`] — the one field a repeated execution may
/// legitimately change is the wall-clock time, and the fingerprint
/// excludes exactly that.
///
/// This is the single definition of "the same answer" used by the
/// differential surfaces (the `server_client` example, the end-to-end
/// tests, the `loadgen` baseline check); keep it here so a future
/// nondeterministic field needs one change, not three.
pub fn canonical_result_bytes(out: &QueryOutput) -> Vec<u8> {
    match out {
        QueryOutput::Worlds(w) => w.fingerprint().into_bytes(),
        other => encode_message(other),
    }
}

impl Wire for String {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        dec.take_str()
    }
}

impl Wire for u64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(*self);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        dec.take_u64()
    }
}

impl Wire for usize {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(*self);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        dec.take_usize()
    }
}

impl Wire for f64 {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(*self);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        dec.take_f64()
    }
}

impl Wire for bool {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_bool(*self);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        dec.take_bool()
    }
}

impl Wire for Duration {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u64(self.as_secs());
        enc.put_u32(self.subsec_nanos());
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let secs = dec.take_u64()?;
        let nanos = dec.take_u32()?;
        if nanos >= 1_000_000_000 {
            return malformed(format!("duration subsec nanos out of range: {nanos}"));
        }
        Ok(Duration::new(secs, nanos))
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            None => enc.put_u8(0),
            Some(v) => {
                enc.put_u8(1);
                v.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        match dec.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(dec)?)),
            other => malformed(format!("option tag must be 0 or 1, got {other}")),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(u32::try_from(self.len()).expect("sequence longer than u32::MAX"));
        for v in self {
            v.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let len = dec.take_seq_len()?;
        let mut out = seq_buffer(len);
        for _ in 0..len {
            out.push(T::decode(dec)?);
        }
        Ok(out)
    }
}

impl Wire for ColumnType {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            ColumnType::Int => 0,
            ColumnType::Float => 1,
            ColumnType::Text => 2,
        });
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        match dec.take_u8()? {
            0 => Ok(ColumnType::Int),
            1 => Ok(ColumnType::Float),
            2 => Ok(ColumnType::Text),
            other => malformed(format!("unknown column type tag {other}")),
        }
    }
}

impl Wire for Value {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            Value::Int(i) => {
                enc.put_u8(0);
                enc.put_i64(*i);
            }
            Value::Float(f) => {
                enc.put_u8(1);
                enc.put_f64(*f);
            }
            Value::Text(s) => {
                enc.put_u8(2);
                enc.put_str(s);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        match dec.take_u8()? {
            0 => Ok(Value::Int(dec.take_i64()?)),
            1 => Ok(Value::Float(dec.take_f64()?)),
            2 => Ok(Value::Text(dec.take_str()?)),
            other => malformed(format!("unknown value tag {other}")),
        }
    }
}

impl Wire for Schema {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u32(u32::try_from(self.arity()).expect("schema wider than u32::MAX"));
        for i in 0..self.arity() {
            let (name, ty) = self.column(i);
            enc.put_str(name);
            ty.encode(enc);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let len = dec.take_seq_len()?;
        let mut columns = seq_buffer(len);
        for _ in 0..len {
            let name = dec.take_str()?;
            let ty = ColumnType::decode(dec)?;
            // `Schema::new` panics on duplicates (a programming error
            // locally); over the wire it is peer-controlled input.
            if columns.iter().any(|(n, _)| *n == name) {
                return malformed(format!("schema repeats column {name}"));
            }
            columns.push((name, ty));
        }
        Ok(Schema::new(columns))
    }
}

impl Wire for Table {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self.name());
        self.schema().encode(enc);
        enc.put_u32(u32::try_from(self.len()).expect("table taller than u32::MAX"));
        for row in self.rows() {
            for v in row {
                v.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let name = dec.take_str()?;
        let schema = Schema::decode(dec)?;
        let rows = dec.take_seq_len()?;
        let arity = schema.arity();
        let mut table = Table::new(name, schema);
        for _ in 0..rows {
            let mut row = seq_buffer(arity);
            for _ in 0..arity {
                row.push(Value::decode(dec)?);
            }
            table
                .insert(row)
                .or_else(|e| malformed(format!("row violates its schema: {e}")))?;
        }
        Ok(table)
    }
}

impl Wire for ProbTable {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(self.name());
        self.schema().encode(enc);
        enc.put_u32(u32::try_from(self.len()).expect("relation taller than u32::MAX"));
        for (row, p) in self.iter() {
            for v in row {
                v.encode(enc);
            }
            enc.put_f64(p);
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let name = dec.take_str()?;
        let schema = Schema::decode(dec)?;
        let rows = dec.take_seq_len()?;
        let arity = schema.arity();
        let mut table = ProbTable::new(name, schema);
        for _ in 0..rows {
            let mut row = seq_buffer(arity);
            for _ in 0..arity {
                row.push(Value::decode(dec)?);
            }
            let p = dec.take_f64()?;
            table
                .insert(row, p)
                .or_else(|e| malformed(format!("tuple violates its schema: {e}")))?;
        }
        Ok(table)
    }
}

impl Wire for SumEstimate {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.column);
        enc.put_f64(self.mean);
        enc.put_f64(self.variance);
        enc.put_f64(self.ci_half_width);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(SumEstimate {
            column: dec.take_str()?,
            mean: dec.take_f64()?,
            variance: dec.take_f64()?,
            ci_half_width: dec.take_f64()?,
        })
    }
}

impl Wire for WorldsResult {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_usize(self.worlds);
        enc.put_usize(self.matching_tuples);
        enc.put_u64(self.seed);
        enc.put_usize(self.threads);
        enc.put_bool(self.converged);
        enc.put_f64(self.event_probability);
        enc.put_f64(self.event_ci_half_width);
        self.count_distribution.encode(enc);
        enc.put_f64(self.count_mean);
        enc.put_f64(self.count_variance);
        enc.put_f64(self.count_ci_half_width);
        self.sum.encode(enc);
        self.wall.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(WorldsResult {
            worlds: dec.take_usize()?,
            matching_tuples: dec.take_usize()?,
            seed: dec.take_u64()?,
            threads: dec.take_usize()?,
            converged: dec.take_bool()?,
            event_probability: dec.take_f64()?,
            event_ci_half_width: dec.take_f64()?,
            count_distribution: Vec::decode(dec)?,
            count_mean: dec.take_f64()?,
            count_variance: dec.take_f64()?,
            count_ci_half_width: dec.take_f64()?,
            sum: Option::decode(dec)?,
            wall: Duration::decode(dec)?,
        })
    }
}

impl Wire for AggFunc {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            AggFunc::Count => 0,
            AggFunc::Sum => 1,
            AggFunc::Avg => 2,
            AggFunc::Expected => 3,
        });
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        match dec.take_u8()? {
            0 => Ok(AggFunc::Count),
            1 => Ok(AggFunc::Sum),
            2 => Ok(AggFunc::Avg),
            3 => Ok(AggFunc::Expected),
            other => malformed(format!("unknown aggregate function tag {other}")),
        }
    }
}

impl Wire for AggExpr {
    fn encode(&self, enc: &mut Encoder) {
        self.func.encode(enc);
        self.column.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(AggExpr {
            func: AggFunc::decode(dec)?,
            column: Option::decode(dec)?,
        })
    }
}

impl Wire for CmpOp {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_u8(match self {
            CmpOp::Eq => 0,
            CmpOp::Ne => 1,
            CmpOp::Lt => 2,
            CmpOp::Le => 3,
            CmpOp::Gt => 4,
            CmpOp::Ge => 5,
        });
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        match dec.take_u8()? {
            0 => Ok(CmpOp::Eq),
            1 => Ok(CmpOp::Ne),
            2 => Ok(CmpOp::Lt),
            3 => Ok(CmpOp::Le),
            4 => Ok(CmpOp::Gt),
            5 => Ok(CmpOp::Ge),
            other => malformed(format!("unknown comparison operator tag {other}")),
        }
    }
}

impl Wire for HavingClause {
    fn encode(&self, enc: &mut Encoder) {
        self.agg.encode(enc);
        self.op.encode(enc);
        self.value.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(HavingClause {
            agg: AggExpr::decode(dec)?,
            op: CmpOp::decode(dec)?,
            value: Value::decode(dec)?,
        })
    }
}

impl Wire for AggValue {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_f64(self.value);
        self.ci_half_width.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(AggValue {
            value: dec.take_f64()?,
            ci_half_width: Option::decode(dec)?,
        })
    }
}

impl Wire for AggregateGroup {
    fn encode(&self, enc: &mut Encoder) {
        self.key.encode(enc);
        self.values.encode(enc);
        self.count_distribution.encode(enc);
        self.event_probability.encode(enc);
        self.worlds.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(AggregateGroup {
            key: Vec::decode(dec)?,
            values: Vec::decode(dec)?,
            count_distribution: Option::decode(dec)?,
            event_probability: Option::decode(dec)?,
            worlds: Option::decode(dec)?,
        })
    }
}

impl Wire for AggregateResult {
    fn encode(&self, enc: &mut Encoder) {
        self.group_columns.encode(enc);
        self.aggregates.encode(enc);
        self.having.encode(enc);
        enc.put_str(self.strategy);
        self.groups.encode(enc);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        let group_columns = Vec::decode(dec)?;
        let aggregates = Vec::decode(dec)?;
        let having = Option::decode(dec)?;
        // `strategy` is a `&'static str` naming the evaluation backend;
        // only the known backends can be reconstituted.
        let strategy = match dec.take_str()?.as_str() {
            "exact" => "exact",
            "worlds" => "worlds",
            "synopsis" => "synopsis",
            other => return malformed(format!("unknown evaluation strategy {other:?}")),
        };
        Ok(AggregateResult {
            group_columns,
            aggregates,
            having,
            strategy,
            groups: Vec::decode(dec)?,
        })
    }
}

impl Wire for ExplainReport {
    fn encode(&self, enc: &mut Encoder) {
        enc.put_str(&self.relation);
        enc.put_str(&self.logical);
        enc.put_str(&self.physical);
        enc.put_str(&self.strategy);
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        Ok(ExplainReport {
            relation: dec.take_str()?,
            logical: dec.take_str()?,
            physical: dec.take_str()?,
            strategy: dec.take_str()?,
        })
    }
}

impl Wire for QueryOutput {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            QueryOutput::None => enc.put_u8(0),
            QueryOutput::Rows(t) => {
                enc.put_u8(1);
                t.encode(enc);
            }
            QueryOutput::ProbRows(t) => {
                enc.put_u8(2);
                t.encode(enc);
            }
            QueryOutput::Worlds(w) => {
                enc.put_u8(3);
                w.encode(enc);
            }
            QueryOutput::Aggregate(a) => {
                enc.put_u8(4);
                a.encode(enc);
            }
            QueryOutput::Explain(e) => {
                enc.put_u8(5);
                e.encode(enc);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        match dec.take_u8()? {
            0 => Ok(QueryOutput::None),
            1 => Ok(QueryOutput::Rows(Table::decode(dec)?)),
            2 => Ok(QueryOutput::ProbRows(ProbTable::decode(dec)?)),
            3 => Ok(QueryOutput::Worlds(WorldsResult::decode(dec)?)),
            4 => Ok(QueryOutput::Aggregate(AggregateResult::decode(dec)?)),
            5 => Ok(QueryOutput::Explain(ExplainReport::decode(dec)?)),
            other => malformed(format!("unknown query output tag {other}")),
        }
    }
}

impl Wire for DbError {
    fn encode(&self, enc: &mut Encoder) {
        match self {
            DbError::UnknownColumn(c) => {
                enc.put_u8(0);
                enc.put_str(c);
            }
            DbError::UnknownTable(t) => {
                enc.put_u8(1);
                enc.put_str(t);
            }
            DbError::DuplicateTable(t) => {
                enc.put_u8(2);
                enc.put_str(t);
            }
            DbError::ArityMismatch { expected, got } => {
                enc.put_u8(3);
                enc.put_usize(*expected);
                enc.put_usize(*got);
            }
            DbError::TypeMismatch {
                column,
                expected,
                got,
            } => {
                enc.put_u8(4);
                enc.put_str(column);
                expected.encode(enc);
                got.encode(enc);
            }
            DbError::InvalidProbability(p) => {
                enc.put_u8(5);
                enc.put_f64(*p);
            }
            DbError::Parse(msg) => {
                enc.put_u8(6);
                enc.put_str(msg);
            }
            DbError::Unsupported(msg) => {
                enc.put_u8(7);
                enc.put_str(msg);
            }
            DbError::ReadOnly(msg) => {
                enc.put_u8(8);
                enc.put_str(msg);
            }
            DbError::InvalidWorlds(msg) => {
                enc.put_u8(9);
                enc.put_str(msg);
            }
            DbError::Plan(msg) => {
                enc.put_u8(10);
                enc.put_str(msg);
            }
            DbError::ViewBuild(msg) => {
                enc.put_u8(11);
                enc.put_str(msg);
            }
            DbError::Storage(msg) => {
                enc.put_u8(12);
                enc.put_str(msg);
            }
        }
    }

    fn decode(dec: &mut Decoder<'_>) -> Result<Self, WireError> {
        match dec.take_u8()? {
            0 => Ok(DbError::UnknownColumn(dec.take_str()?)),
            1 => Ok(DbError::UnknownTable(dec.take_str()?)),
            2 => Ok(DbError::DuplicateTable(dec.take_str()?)),
            3 => Ok(DbError::ArityMismatch {
                expected: dec.take_usize()?,
                got: dec.take_usize()?,
            }),
            4 => Ok(DbError::TypeMismatch {
                column: dec.take_str()?,
                expected: ColumnType::decode(dec)?,
                got: ColumnType::decode(dec)?,
            }),
            5 => Ok(DbError::InvalidProbability(dec.take_f64()?)),
            6 => Ok(DbError::Parse(dec.take_str()?)),
            7 => Ok(DbError::Unsupported(dec.take_str()?)),
            8 => Ok(DbError::ReadOnly(dec.take_str()?)),
            9 => Ok(DbError::InvalidWorlds(dec.take_str()?)),
            10 => Ok(DbError::Plan(dec.take_str()?)),
            11 => Ok(DbError::ViewBuild(dec.take_str()?)),
            12 => Ok(DbError::Storage(dec.take_str()?)),
            other => malformed(format!("unknown database error tag {other}")),
        }
    }
}
