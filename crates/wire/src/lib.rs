//! # tspdb-wire
//!
//! The versioned, length-prefixed binary wire protocol shared by
//! `tspdb-server` and `tspdb-client`: a [`codec`] turning every
//! query-result type the database produces into deterministic bytes, and
//! [`frame`]s carrying requests (handshake, `Query`, `Prepare` /
//! `Execute` / `CloseStatement`, the session `SetWorldsThreads` knob,
//! `Tail` / `TailStop` continuous-query subscriptions, `Close`) and
//! responses (typed results for every [`tspdb_probdb::QueryOutput`]
//! variant, structured [`tspdb_probdb::DbError`]s, acks, and pushed
//! `TailFrame`s for sessions holding a TAIL subscription).
//!
//! The crate deliberately contains **no I/O policy** beyond reading and
//! writing one frame — connection handling, sessions and threading live
//! in the server; blocking convenience calls live in the client. Both
//! ends therefore test against the exact same byte-level contract, and
//! the encode→decode identity is property-tested here once for every
//! frame type.
//!
//! ## Quick start
//!
//! ```
//! use tspdb_wire::{decode_message, encode_message, Request};
//!
//! let request = Request::Query {
//!     sql: "SELECT COUNT(*) FROM pv GROUP BY WINDOW(t, 10)".into(),
//! };
//! let bytes = encode_message(&request);
//! assert_eq!(decode_message::<Request>(&bytes).unwrap(), request);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod codec;
pub mod frame;

pub use codec::{
    canonical_result_bytes, decode_message, encode_message, Decoder, Encoder, Wire, WireError,
};
pub use frame::{
    read_frame, write_frame, Request, Response, StatementId, MAGIC, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
