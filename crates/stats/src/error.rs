//! Error type shared by the numerics substrate.

use std::fmt;

/// Errors surfaced by the statistics substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum StatsError {
    /// A matrix expected to be symmetric positive-definite was not.
    NotPositiveDefinite,
    /// An operation needed at least `needed` observations but only `got`
    /// were supplied.
    InsufficientData {
        /// Minimum count required.
        needed: usize,
        /// Count actually supplied.
        got: usize,
    },
    /// Vector/matrix dimensions do not line up.
    DimensionMismatch {
        /// Expected length.
        expected: usize,
        /// Observed length.
        got: usize,
    },
    /// Input is degenerate for the requested operation (e.g. a constant
    /// series where variance structure is required).
    DegenerateInput(String),
    /// An iterative procedure failed to converge.
    NoConvergence(String),
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::NotPositiveDefinite => {
                write!(f, "matrix is not positive definite")
            }
            StatsError::InsufficientData { needed, got } => {
                write!(f, "insufficient data: needed {needed}, got {got}")
            }
            StatsError::DimensionMismatch { expected, got } => {
                write!(f, "dimension mismatch: expected {expected}, got {got}")
            }
            StatsError::DegenerateInput(msg) => write!(f, "degenerate input: {msg}"),
            StatsError::NoConvergence(msg) => write!(f, "no convergence: {msg}"),
        }
    }
}

impl std::error::Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = StatsError::InsufficientData { needed: 10, got: 3 };
        assert!(e.to_string().contains("needed 10"));
        assert!(e.to_string().contains("got 3"));
        let e = StatsError::DegenerateInput("constant series".into());
        assert!(e.to_string().contains("constant series"));
    }

    #[test]
    fn implements_error_trait() {
        fn takes_error(_: &dyn std::error::Error) {}
        takes_error(&StatsError::NotPositiveDefinite);
    }
}
