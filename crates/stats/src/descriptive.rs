//! Descriptive statistics: moments, streaming accumulators, autocovariance,
//! rolling statistics, histograms and empirical CDFs.
//!
//! These are the building blocks for the paper's variable-thresholding
//! metric (sample variance over a window), the SVmax learning procedure of
//! C-GARCH (maximum windowed dispersion of clean data), Yule-Walker ARMA
//! estimation (autocovariances) and the density-distance quality measure
//! (histogram-approximated empirical CDF, Section II-B).

/// Arithmetic mean of a slice. Returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Unbiased sample variance (denominator `n − 1`). Returns `NaN` if fewer
/// than two observations are supplied.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Population variance (denominator `n`). Returns `NaN` on an empty slice.
pub fn population_variance(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (square root of [`sample_variance`]).
pub fn sample_std(xs: &[f64]) -> f64 {
    sample_variance(xs).sqrt()
}

/// Numerically stable streaming accumulator (Welford's algorithm) for count,
/// mean, variance and extrema.
///
/// Suitable for online-mode processing where values stream in one at a time.
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one observation into the accumulator.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        if x < self.min {
            self.min = x;
        }
        if x > self.max {
            self.max = x;
        }
    }

    /// Number of observations folded in so far.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Current mean (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance (`NaN` with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            f64::NAN
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel-friendly).
    pub fn merge(&mut self, other: &RunningStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Sample autocovariance at the given lag, normalised by `n` (the standard
/// biased estimator used by Yule-Walker).
///
/// Returns `NaN` if `lag >= xs.len()`.
pub fn autocovariance(xs: &[f64], lag: usize) -> f64 {
    let n = xs.len();
    if lag >= n || n == 0 {
        return f64::NAN;
    }
    let m = mean(xs);
    let mut acc = 0.0;
    for i in 0..n - lag {
        acc += (xs[i] - m) * (xs[i + lag] - m);
    }
    acc / n as f64
}

/// Sample autocorrelations for lags `0..=max_lag` (lag 0 is always 1 for a
/// non-constant series).
pub fn autocorrelations(xs: &[f64], max_lag: usize) -> Vec<f64> {
    let c0 = autocovariance(xs, 0);
    (0..=max_lag)
        .map(|k| {
            if c0 > 0.0 {
                autocovariance(xs, k) / c0
            } else {
                f64::NAN
            }
        })
        .collect()
}

/// Rolling sample standard deviation with the given window length; output
/// index `i` covers `xs[i .. i + window]`. Returns an empty vector when the
/// series is shorter than the window.
pub fn rolling_std(xs: &[f64], window: usize) -> Vec<f64> {
    if window < 2 || xs.len() < window {
        return Vec::new();
    }
    let mut out = Vec::with_capacity(xs.len() - window + 1);
    // Maintain running sums for O(n) total cost.
    let mut s: f64 = xs[..window].iter().sum();
    let mut s2: f64 = xs[..window].iter().map(|x| x * x).sum();
    let w = window as f64;
    let var = |s: f64, s2: f64| ((s2 - s * s / w) / (w - 1.0)).max(0.0);
    out.push(var(s, s2).sqrt());
    for i in window..xs.len() {
        s += xs[i] - xs[i - window];
        s2 += xs[i] * xs[i] - xs[i - window] * xs[i - window];
        out.push(var(s, s2).sqrt());
    }
    out
}

/// Maximum sample variance over all sliding windows of the given length —
/// the paper's SVmax learning rule for the successive variance reduction
/// filter ("using a sample of size T of clean data, we compute SVmax as the
/// maximum sample variance we observe in all sliding windows of size
/// ocmax", Section V-B).
pub fn max_windowed_variance(xs: &[f64], window: usize) -> f64 {
    if window < 2 || xs.len() < window {
        return f64::NAN;
    }
    let mut s: f64 = xs[..window].iter().sum();
    let mut s2: f64 = xs[..window].iter().map(|x| x * x).sum();
    let w = window as f64;
    let var = |s: f64, s2: f64| ((s2 - s * s / w) / (w - 1.0)).max(0.0);
    let mut best = var(s, s2);
    for i in window..xs.len() {
        s += xs[i] - xs[i - window];
        s2 += xs[i] * xs[i] - xs[i - window] * xs[i - window];
        best = best.max(var(s, s2));
    }
    best
}

/// Fixed-width histogram over `[lo, hi)` with `bins` equal-width cells.
///
/// Out-of-range observations are clamped into the first/last cell so that
/// the histogram always accounts for every pushed value (important for the
/// probability-integral-transform values that can hit exactly 0 or 1).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram.
    ///
    /// # Panics
    /// Panics when `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "Histogram: lo must be below hi");
        assert!(bins > 0, "Histogram: need at least one bin");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        }
    }

    /// Number of cells.
    pub fn bins(&self) -> usize {
        self.counts.len()
    }

    /// Total observation count.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Adds one observation (values outside `[lo, hi)` clamp to edge cells).
    pub fn push(&mut self, x: f64) {
        let b = self.bin_index(x);
        self.counts[b] += 1;
        self.total += 1;
    }

    /// Index of the cell that would receive `x`.
    pub fn bin_index(&self, x: f64) -> usize {
        let bins = self.counts.len();
        if x <= self.lo {
            return 0;
        }
        if x >= self.hi {
            return bins - 1;
        }
        let frac = (x - self.lo) / (self.hi - self.lo);
        ((frac * bins as f64) as usize).min(bins - 1)
    }

    /// Raw counts per cell.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Right edge of cell `b`.
    pub fn right_edge(&self, b: usize) -> f64 {
        self.lo + (self.hi - self.lo) * (b + 1) as f64 / self.counts.len() as f64
    }

    /// Empirical CDF evaluated at every cell right-edge: entry `b` is the
    /// fraction of observations falling in cells `0..=b`.
    ///
    /// This is the histogram approximation `Q_Z(z)` of the paper's density
    /// distance (Section II-B).
    pub fn cdf(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.counts.len());
        let mut acc = 0u64;
        for &c in &self.counts {
            acc += c;
            out.push(if self.total == 0 {
                0.0
            } else {
                acc as f64 / self.total as f64
            });
        }
        out
    }
}

/// Empirical CDF of a sample evaluated at an arbitrary point (exact, not
/// histogram-approximated): fraction of observations `≤ x`.
pub fn ecdf(sample: &[f64], x: f64) -> f64 {
    if sample.is_empty() {
        return f64::NAN;
    }
    sample.iter().filter(|&&v| v <= x).count() as f64 / sample.len() as f64
}

/// Linear interpolation `lerp(a, b, t)` used by the successive variance
/// reduction filter when reconstructing deleted points.
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basic() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((population_variance(&xs) - 4.0).abs() < 1e-12);
        assert!((sample_variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_slices_yield_nan() {
        assert!(mean(&[]).is_nan());
        assert!(sample_variance(&[1.0]).is_nan());
        assert!(population_variance(&[]).is_nan());
    }

    #[test]
    fn welford_matches_batch() {
        let xs = [1.5, -2.0, 3.25, 0.0, 10.0, -7.5, 2.0];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert!((rs.mean() - mean(&xs)).abs() < 1e-12);
        assert!((rs.variance() - sample_variance(&xs)).abs() < 1e-12);
        assert_eq!(rs.min(), -7.5);
        assert_eq!(rs.max(), 10.0);
        assert_eq!(rs.count(), 7);
    }

    #[test]
    fn welford_merge_matches_single_pass() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin() * 5.0).collect();
        let mut all = RunningStats::new();
        for &x in &xs {
            all.push(x);
        }
        let mut left = RunningStats::new();
        let mut right = RunningStats::new();
        for &x in &xs[..40] {
            left.push(x);
        }
        for &x in &xs[40..] {
            right.push(x);
        }
        left.merge(&right);
        assert!((left.mean() - all.mean()).abs() < 1e-12);
        assert!((left.variance() - all.variance()).abs() < 1e-12);
        assert_eq!(left.count(), all.count());
    }

    #[test]
    fn autocovariance_of_constant_is_zero() {
        let xs = [3.0; 50];
        assert!(autocovariance(&xs, 0).abs() < 1e-12);
        assert!(autocovariance(&xs, 3).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_lag_zero_is_one() {
        let xs: Vec<f64> = (0..200).map(|i| ((i * 7 % 13) as f64) - 6.0).collect();
        let ac = autocorrelations(&xs, 5);
        assert!((ac[0] - 1.0).abs() < 1e-12);
        for &r in &ac[1..] {
            assert!(r.abs() <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn ar1_autocorrelation_decays_geometrically() {
        // x_t = 0.8 x_{t-1} + e_t has ρ(k) ≈ 0.8^k.
        let mut x = 0.0;
        let mut state = 123456789u64;
        let mut next = || {
            // xorshift for a deterministic pseudo-noise stream.
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) - 0.5
        };
        let xs: Vec<f64> = (0..20000)
            .map(|_| {
                x = 0.8 * x + next();
                x
            })
            .collect();
        let ac = autocorrelations(&xs, 3);
        assert!((ac[1] - 0.8).abs() < 0.05, "lag-1 acf {} ≉ 0.8", ac[1]);
        assert!((ac[2] - 0.64).abs() < 0.07, "lag-2 acf {} ≉ 0.64", ac[2]);
    }

    #[test]
    fn rolling_std_matches_direct_computation() {
        let xs: Vec<f64> = (0..50).map(|i| (i as f64).sin() * (i as f64)).collect();
        let w = 7;
        let rolled = rolling_std(&xs, w);
        assert_eq!(rolled.len(), xs.len() - w + 1);
        for (i, &r) in rolled.iter().enumerate() {
            let direct = sample_std(&xs[i..i + w]);
            assert!((r - direct).abs() < 1e-9, "window {i}: {r} vs {direct}");
        }
    }

    #[test]
    fn max_windowed_variance_finds_burst() {
        let mut xs = vec![0.0; 100];
        // Plant a high-dispersion burst in the middle.
        for (i, v) in xs.iter_mut().enumerate().skip(50).take(8) {
            *v = if i % 2 == 0 { 10.0 } else { -10.0 };
        }
        let sv = max_windowed_variance(&xs, 8);
        assert!(sv > 50.0, "burst variance {sv} should dominate");
        assert!((max_windowed_variance(&vec![1.0; 30], 5)).abs() < 1e-12);
    }

    #[test]
    fn histogram_cdf_is_monotone_and_ends_at_one() {
        let mut h = Histogram::new(0.0, 1.0, 10);
        for i in 0..1000 {
            h.push((i as f64 + 0.5) / 1000.0);
        }
        let cdf = h.cdf();
        assert_eq!(cdf.len(), 10);
        for w in cdf.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((cdf[9] - 1.0).abs() < 1e-12);
        // Uniform data ⇒ CDF close to the diagonal.
        for (b, &c) in cdf.iter().enumerate() {
            let ideal = (b + 1) as f64 / 10.0;
            assert!((c - ideal).abs() < 0.02);
        }
    }

    #[test]
    fn histogram_clamps_out_of_range() {
        let mut h = Histogram::new(0.0, 1.0, 4);
        h.push(-5.0);
        h.push(7.0);
        h.push(1.0); // right edge clamps into last cell
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[3], 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    fn ecdf_basic() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((ecdf(&xs, 2.5) - 0.5).abs() < 1e-12);
        assert_eq!(ecdf(&xs, 0.0), 0.0);
        assert_eq!(ecdf(&xs, 4.0), 1.0);
    }
}
