//! Distances between probability distributions.
//!
//! The σ-cache's correctness argument (paper Section VI-B, Theorem 1) rests
//! on the Hellinger distance between two Gaussians with equal means, eq. 10:
//!
//! ```text
//! H²[P_t, P_t'] = 1 − sqrt(2 σ_t σ_t' / (σ_t² + σ_t'²))
//! ```
//!
//! This module provides that quantity, the general unequal-mean form, and
//! the Kullback–Leibler divergence the paper mentions as the alternative it
//! rejected (unbounded, hence harder to use as a user-facing constraint).

/// Squared Hellinger distance between two zero-mean (or mean-shifted, per
/// the paper's argument) Gaussians with standard deviations `s1`, `s2`
/// — exactly the paper's eq. (10).
///
/// Result lies in `[0, 1]`; 0 iff `s1 == s2`.
pub fn hellinger_sq_equal_mean(s1: f64, s2: f64) -> f64 {
    assert!(s1 > 0.0 && s2 > 0.0, "hellinger: stds must be positive");
    (1.0 - (2.0 * s1 * s2 / (s1 * s1 + s2 * s2)).sqrt()).max(0.0)
}

/// Hellinger distance (not squared) for the equal-mean Gaussian case.
pub fn hellinger_equal_mean(s1: f64, s2: f64) -> f64 {
    hellinger_sq_equal_mean(s1, s2).sqrt()
}

/// Squared Hellinger distance between arbitrary Gaussians
/// `N(m1, s1²)` and `N(m2, s2²)`:
///
/// ```text
/// H² = 1 − sqrt(2 s1 s2 / (s1² + s2²)) · exp(−(m1−m2)² / (4 (s1² + s2²)))
/// ```
///
/// Reduces to [`hellinger_sq_equal_mean`] when `m1 == m2`, which is what the
/// paper's mean-shift argument (Fig. 8) exploits: `ρ_λ` is invariant under a
/// joint shift of the distribution and the Ω lattice.
pub fn hellinger_sq_normal(m1: f64, s1: f64, m2: f64, s2: f64) -> f64 {
    assert!(s1 > 0.0 && s2 > 0.0, "hellinger: stds must be positive");
    let v = s1 * s1 + s2 * s2;
    let bc = (2.0 * s1 * s2 / v).sqrt() * (-(m1 - m2) * (m1 - m2) / (4.0 * v)).exp();
    (1.0 - bc).max(0.0)
}

/// Kullback–Leibler divergence `KL(N(m1,s1²) ‖ N(m2,s2²))` in nats.
///
/// Provided for comparison with the Hellinger distance; unbounded above,
/// which is why the paper prefers Hellinger for user-facing constraints.
pub fn kl_normal(m1: f64, s1: f64, m2: f64, s2: f64) -> f64 {
    assert!(s1 > 0.0 && s2 > 0.0, "kl: stds must be positive");
    (s2 / s1).ln() + (s1 * s1 + (m1 - m2) * (m1 - m2)) / (2.0 * s2 * s2) - 0.5
}

/// The ratio-threshold bound of the paper's Theorem 1: given a distance
/// constraint `h` (a Hellinger distance, in `[0, 1)`), returns the largest
/// admissible ratio `d_s = σ_t' / σ_t` such that approximating one Gaussian
/// CDF by the other stays within `h`:
///
/// ```text
/// d_s ≤ (2 + sqrt(4 − 4 (1 − h²)⁴)) / (2 (1 − h²)²)        (eq. 11)
/// ```
pub fn ratio_threshold_for_distance(h: f64) -> f64 {
    assert!(
        (0.0..1.0).contains(&h),
        "ratio_threshold_for_distance: h must be in [0,1), got {h}"
    );
    let c = 1.0 - h * h; // (1 − H'²)
    let c2 = c * c;
    (2.0 + (4.0 - 4.0 * c2 * c2).sqrt()) / (2.0 * c2)
}

/// The memory-constraint bound of the paper's Theorem 2: with at most `q`
/// distributions allowed and overall spread `d_max = max(σ)/min(σ)`, the
/// ratio threshold must satisfy `d_s ≥ d_max^{1/q}` (eq. 14). Returns that
/// minimal admissible `d_s`.
pub fn ratio_threshold_for_memory(d_max: f64, q: usize) -> f64 {
    assert!(
        d_max >= 1.0,
        "ratio_threshold_for_memory: spread must be ≥ 1"
    );
    assert!(q > 0, "ratio_threshold_for_memory: need at least one slot");
    d_max.powf(1.0 / q as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hellinger_zero_iff_equal() {
        assert_eq!(hellinger_sq_equal_mean(2.0, 2.0), 0.0);
        assert!(hellinger_sq_equal_mean(1.0, 2.0) > 0.0);
    }

    #[test]
    fn hellinger_is_symmetric_and_bounded() {
        for &(a, b) in &[(0.5, 3.0), (1.0, 1.5), (0.01, 100.0)] {
            let h1 = hellinger_sq_equal_mean(a, b);
            let h2 = hellinger_sq_equal_mean(b, a);
            assert!((h1 - h2).abs() < 1e-15);
            assert!((0.0..=1.0).contains(&h1));
        }
    }

    #[test]
    fn hellinger_monotone_in_ratio() {
        // For fixed s1, H grows as s2/s1 moves away from 1.
        let mut prev = 0.0;
        for i in 1..=20 {
            let ratio = 1.0 + i as f64 * 0.25;
            let h = hellinger_sq_equal_mean(1.0, ratio);
            assert!(h > prev, "H² must increase with the σ ratio");
            prev = h;
        }
    }

    #[test]
    fn general_form_reduces_to_equal_mean_case() {
        let h_g = hellinger_sq_normal(7.0, 1.2, 7.0, 3.4);
        let h_e = hellinger_sq_equal_mean(1.2, 3.4);
        assert!((h_g - h_e).abs() < 1e-14);
    }

    #[test]
    fn mean_separation_increases_distance() {
        let base = hellinger_sq_normal(0.0, 1.0, 0.0, 1.0);
        let sep = hellinger_sq_normal(0.0, 1.0, 5.0, 1.0);
        assert_eq!(base, 0.0);
        assert!(sep > 0.9, "5σ separation should be nearly maximal: {sep}");
    }

    #[test]
    fn kl_zero_iff_identical() {
        assert!(kl_normal(1.0, 2.0, 1.0, 2.0).abs() < 1e-15);
        assert!(kl_normal(0.0, 1.0, 3.0, 1.0) > 0.0);
        // KL is asymmetric — verify we didn't accidentally symmetrise.
        let a = kl_normal(0.0, 1.0, 0.0, 2.0);
        let b = kl_normal(0.0, 2.0, 0.0, 1.0);
        assert!((a - b).abs() > 1e-3);
    }

    #[test]
    fn theorem1_bound_is_tight() {
        // Choosing d_s at the bound must give Hellinger distance exactly H'.
        for &h in &[0.001, 0.01, 0.05, 0.2, 0.5] {
            let ds = ratio_threshold_for_distance(h);
            assert!(ds > 1.0, "d_s must exceed 1 for positive H'");
            let achieved = hellinger_equal_mean(1.0, ds);
            assert!(
                (achieved - h).abs() < 1e-9,
                "H' = {h}: d_s = {ds} achieves {achieved}"
            );
        }
    }

    #[test]
    fn theorem1_monotone_in_h() {
        let mut prev = 1.0;
        for i in 1..50 {
            let h = i as f64 * 0.01;
            let ds = ratio_threshold_for_distance(h);
            assert!(ds > prev, "d_s must grow with the allowed distance");
            prev = ds;
        }
    }

    #[test]
    fn theorem2_bound_caps_ladder_size() {
        // With ratio d_s = d_max^{1/q}, exactly q rungs cover the spread.
        let d_max = 16000.0;
        let q = 100usize;
        let ds = ratio_threshold_for_memory(d_max, q);
        let needed = d_max.ln() / ds.ln();
        assert!(
            (needed - q as f64).abs() < 1e-6,
            "ladder needs {needed} rungs with q = {q}"
        );
        // A larger d_s (coarser ladder) needs fewer rungs — memory holds.
        let coarser = ds * 1.5;
        assert!(d_max.ln() / coarser.ln() < q as f64);
    }

    #[test]
    fn paper_parameterisation_h001() {
        // The experiments use H' = 0.01; eq. 11 then gives d_s ≈ 1.0202,
        // which with Ds = 2000..16000 yields ladders of ≈ 380..480 rungs —
        // the scale behind Fig. 14(b).
        let ds = ratio_threshold_for_distance(0.01);
        assert!((ds - 1.0202).abs() < 1e-3, "d_s = {ds}");
        let rungs_lo = (2000.0f64.ln() / ds.ln()).ceil();
        let rungs_hi = (16000.0f64.ln() / ds.ln()).ceil();
        assert!((350.0..=420.0).contains(&rungs_lo), "{rungs_lo}");
        assert!((450.0..=510.0).contains(&rungs_hi), "{rungs_hi}");
    }
}
