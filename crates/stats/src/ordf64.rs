//! A totally ordered `f64` newtype usable as a key in ordered containers.
//!
//! The σ-cache stores pre-computed distributions in "a sorted container like
//! a B-tree" keyed by standard deviation (paper, Section VI-B). Rust's
//! `BTreeMap` requires `Ord` keys, which `f64` does not provide; [`OrdF64`]
//! supplies the total order defined by `f64::total_cmp` while rejecting NaN
//! at construction so that the order over cache keys is the familiar numeric
//! one.

use std::cmp::Ordering;
use std::fmt;

/// An `f64` wrapper with a total order, guaranteed non-NaN.
#[derive(Clone, Copy, PartialEq)]
pub struct OrdF64(f64);

impl OrdF64 {
    /// Wraps a finite (or infinite, but not NaN) float.
    ///
    /// # Panics
    /// Panics if `v` is NaN — ordered containers keyed by NaN silently
    /// misbehave, so this is rejected eagerly.
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "OrdF64 cannot hold NaN");
        OrdF64(v)
    }

    /// Returns the wrapped value.
    pub fn get(self) -> f64 {
        self.0
    }
}

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Debug for OrdF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for OrdF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<OrdF64> for f64 {
    fn from(v: OrdF64) -> f64 {
        v.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn orders_numerically() {
        let mut m = BTreeMap::new();
        for v in [3.0, 1.0, 2.5, -4.0, 0.0] {
            m.insert(OrdF64::new(v), v);
        }
        let keys: Vec<f64> = m.keys().map(|k| k.get()).collect();
        assert_eq!(keys, vec![-4.0, 0.0, 1.0, 2.5, 3.0]);
    }

    #[test]
    fn range_queries_work() {
        let mut m = BTreeMap::new();
        for v in [0.5, 1.0, 2.0, 4.0, 8.0] {
            m.insert(OrdF64::new(v), ());
        }
        // Largest key ≤ 3.0 must be 2.0 (the σ-cache lookup pattern).
        let below = m.range(..=OrdF64::new(3.0)).next_back().unwrap().0.get();
        assert_eq!(below, 2.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        OrdF64::new(f64::NAN);
    }
}
